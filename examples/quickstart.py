#!/usr/bin/env python3
"""Quickstart: derive a field from an expression, in five lines.

The framework takes a user expression (VisIt-style, Fig 3 of the paper)
plus NumPy arrays for the input fields, compiles the expression into a
dataflow network of OpenCL building blocks, runs it under an execution
strategy on a simulated many-core device, and hands back the derived
field.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro

# --- the five-line version -------------------------------------------------

u = np.random.default_rng(0).standard_normal(1_000)
v = np.random.default_rng(1).standard_normal(1_000)
w = np.random.default_rng(2).standard_normal(1_000)

out = repro.derive("v_mag = sqrt(u*u + v*v + w*w)",
                   {"u": u, "v": v, "w": w})
print(f"derived {out['v_mag'].shape[0]} velocity magnitudes; "
      f"max = {out['v_mag'].max():.3f}")

# --- the instrumented version -----------------------------------------------

from repro.host import DerivedFieldEngine  # noqa: E402

# Pick a device ('cpu' = Intel X5660 model, 'gpu' = NVIDIA M2050 model)
# and an execution strategy ('roundtrip' | 'staged' | 'fusion').
engine = DerivedFieldEngine(device="gpu", strategy="fusion")

# Compiling once caches the parsed/lowered/optimized network; an in-situ
# host re-executes it every time step with fresh arrays.
compiled = engine.compile("v_mag = sqrt(u*u + v*v + w*w)")
print(f"\nexpression inputs: {compiled.required_inputs}")
print("network definition script:")
print(compiled.definition_script())

report = engine.execute(compiled, {"u": u, "v": v, "w": w})
print(f"strategy:        {report.strategy}")
print(f"event counts:    Dev-W={report.counts.dev_writes} "
      f"Dev-R={report.counts.dev_reads} "
      f"K-Exe={report.counts.kernel_execs}   (Table II's fusion row: 3 1 1)")
print(f"modeled time:    {report.timing.total * 1e6:.1f} us on the M2050")
print(f"device memory:   {report.mem_high_water} bytes high-water")

print("\ngenerated OpenCL kernel:")
print(next(iter(report.generated_sources.values())))
