#!/usr/bin/env python3
"""The Fig 7 experiment: distributed-memory parallel Q-criterion.

Two parts:

1. a *live* reduced-scale run — 8 simulated MPI ranks (2 GPUs per node),
   each processing its share of a decomposed synthetic RT mesh with ghost
   data, verified bit-for-bit against the single-device global result;
2. the *full paper scale* planned through the device model — 3072^3 cells,
   3072 sub-grids of 192x192x256, 256 GPUs on 128 nodes, 12 blocks per
   GPU — with per-rank memory and modeled time.

Run:  python examples/distributed_qcriterion.py
"""

import numpy as np

from repro.analysis.vortex import Q_CRITERION, q_criterion_reference
from repro.clsim import GIB
from repro.host.visitsim import RectilinearDataset
from repro.par import plan_distributed, run_distributed
from repro.workloads import FULL_DATASET, SubGrid, make_fields

# --- part 1: live reduced-scale run ------------------------------------------

grid = SubGrid(16, 16, 32)
fields = make_fields(grid, seed=7)
global_ds = RectilinearDataset(
    x=fields["x"], y=fields["y"], z=fields["z"],
    cell_fields={"u": fields["u"], "v": fields["v"], "w": fields["w"]})

result = run_distributed(
    Q_CRITERION, global_ds, block_dims=(8, 8, 8), n_ranks=8,
    strategy="fusion", device="gpu", devices_per_node=2)

expected = q_criterion_reference(
    fields["u"], fields["v"], fields["w"], fields["dims"],
    fields["x"], fields["y"], fields["z"])
max_err = np.abs(result.field - expected).max()

print("== live reduced-scale run ==")
print(f"mesh:      {grid.label()} decomposed into 8x8x8 blocks")
print(f"ranks:     {result.n_ranks} (2 simulated GPUs per node)")
print(f"max error vs single-device global computation: {max_err:.2e}")
print(f"allreduced statistics: min={result.field_min:.3f} "
      f"max={result.field_max:.3f}")
print(f"{'rank':>4} {'node':>4} {'gpu':>3} {'blocks':>6} {'K-Exe':>6} "
      f"{'modeled s':>10}")
for stats in result.rank_stats:
    print(f"{stats.rank:>4} {stats.rank // 2:>4} "
          f"{stats.device_index:>3} {stats.n_blocks:>6} "
          f"{stats.kernel_execs:>6} {stats.sim_seconds:>10.5f}")

# --- part 2: full paper scale, planned ---------------------------------------

print("\n== full paper scale (planned through the device model) ==")
plans = plan_distributed(
    Q_CRITERION,
    global_dims=FULL_DATASET["global_dims"],
    block_dims=FULL_DATASET["block_dims"],
    n_ranks=FULL_DATASET["n_gpus"],
    strategy="fusion", device="gpu", devices_per_node=2)

ok = sum(1 for p in plans if not p.failed)
peak = max(p.mem_high_water for p in plans)
block_time = max(p.timing.total for p in plans if p.timing)
print(f"configuration: {FULL_DATASET['n_blocks']} sub-grids of "
      f"192x192x256 on {FULL_DATASET['n_gpus']} GPUs "
      f"({FULL_DATASET['n_nodes']} nodes)")
print(f"ranks fitting in the M2050's 3 GiB: {ok}/{len(plans)}")
print(f"peak device memory per GPU: {peak / GIB:.3f} GiB "
      f"(ghosted block, fusion strategy)")
print(f"modeled time per block: {block_time:.3f} s -> "
      f"~{block_time * FULL_DATASET['blocks_per_gpu']:.2f} s per GPU "
      "for its 12 blocks")
