#!/usr/bin/env python3
"""Explore the paper's central trade-off: runtime vs device memory across
execution strategies (Figs 5 and 6), at full paper scale.

Sweeps the twelve Table I sub-grids for a chosen expression on both
simulated devices through the dry-run planner, printing the runtime and
memory series with the GPU's out-of-memory failures — the reproduction of
the paper's single-device evaluation.

Run:  python examples/strategy_tradeoffs.py [expression]
      expression in {velocity_magnitude, vorticity_magnitude, q_criterion}
      (default: q_criterion)
"""

import sys

from repro.analysis.vortex import EXPRESSIONS
from repro.experiments import (format_fig_series, format_table1,
                               format_table2, gpu_success_rate, run_sweep)

expression = sys.argv[1] if len(sys.argv) > 1 else "q_criterion"
if expression not in EXPRESSIONS:
    raise SystemExit(f"unknown expression {expression!r}; "
                     f"choose from {sorted(EXPRESSIONS)}")

print("Table I — evaluation sub-grids")
print(format_table1())

print("\nRunning the 288-case evaluation sweep "
      "(12 grids x 2 devices x 4 executors x 3 expressions)...")
results = run_sweep()

print("\nTable II — device events per expression x strategy")
print(format_table2(results))

print()
print(format_fig_series(results, metric="runtime", expression=expression))
print()
print(format_fig_series(results, metric="memory", expression=expression))

ok, total = gpu_success_rate(results)
print(f"\nGPU completed {ok} of {total} test cases (paper: 106 of 144).")
print("Takeaways, matching Section V-D: fusion is fastest and matches the")
print("hand-written reference kernel; staged is the most memory-hungry;")
print("roundtrip is slowest (transfer-bound) but the least constrained;")
print("only the CPU finishes every case.")
