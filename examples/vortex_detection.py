#!/usr/bin/env python3
"""Vortex detection on a synthetic Rayleigh-Taylor time step (the paper's
application study, Section IV-A).

Computes all three derived quantities — velocity magnitude, vorticity
magnitude, and Q-criterion — on one Table I-shaped sub-grid (scaled to
laptop size), compares every execution strategy's output against the
direct NumPy reference, and prints the Table II event counts measured
live.

Run:  python examples/vortex_detection.py
"""

import numpy as np

from repro.analysis import vortex
from repro.host import DerivedFieldEngine
from repro.workloads import SubGrid, make_fields

# A 12x12x64 slice of the RT problem (Table I shape, scaled 16x per axis).
grid = SubGrid(12, 12, 64)
fields = make_fields(grid, seed=42)
print(f"synthetic RT sub-grid: {grid.label()} = {grid.n_cells:,} cells\n")

references = {
    "velocity_magnitude": vortex.velocity_magnitude_reference(
        fields["u"], fields["v"], fields["w"]),
    "vorticity_magnitude": vortex.vorticity_magnitude_reference(
        *[fields[k] for k in ("u", "v", "w", "dims", "x", "y", "z")]),
    "q_criterion": vortex.q_criterion_reference(
        *[fields[k] for k in ("u", "v", "w", "dims", "x", "y", "z")]),
}

header = (f"{'expression':<22} {'strategy':<10} {'Dev-W':>6} {'Dev-R':>6} "
          f"{'K-Exe':>6} {'max |err|':>10}")
print(header)
print("-" * len(header))

for name, expression in vortex.EXPRESSIONS.items():
    inputs = {k: fields[k] for k in vortex.EXPRESSION_INPUTS[name]}
    for strategy in ("roundtrip", "staged", "fusion"):
        engine = DerivedFieldEngine(device="cpu", strategy=strategy)
        report = engine.execute(expression, inputs)
        err = np.abs(report.output - references[name]).max()
        print(f"{name:<22} {strategy:<10} "
              f"{report.counts.dev_writes:>6} "
              f"{report.counts.dev_reads:>6} "
              f"{report.counts.kernel_execs:>6} {err:>10.2e}")
    print()

# Where are the vortices?  Hunt's criterion: Q > 0 means rotation beats
# strain; combined with the mixing-layer envelope this highlights the RT
# roll-ups.
q = references["q_criterion"]
vortical = (q > 0).mean()
print(f"fraction of cells with Q > 0 (rotation-dominated): "
      f"{vortical:.1%}")
print(f"strongest vortex core: Q = {q.max():.2f}; "
      f"strongest strain region: Q = {q.min():.2f}")
