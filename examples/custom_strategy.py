#!/usr/bin/env python3
"""Extending the framework with a new execution strategy.

The paper's design claim (Section III-C): "Our system could easily be
extended to generate other execution strategies as well. This extension
would involve modifying only the Python-based transformations — the OpenCL
kernels for each primitive would not need to be modified."

This example adds a *chunked* strategy from the paper's future work ("we
plan to investigate the runtime performance of our execution strategies in
a streaming context"): it splits the element range into fixed-size chunks
and runs the fused kernel chunk by chunk, bounding device memory by the
chunk size at the cost of extra kernel launches.  It reuses the primitive
library and the fusion generator untouched.

Run:  python examples/custom_strategy.py
"""

import numpy as np

from repro.analysis.vortex import VELOCITY_MAGNITUDE
from repro.clsim import CLEnvironment, KernelCost
from repro.host import DerivedFieldEngine
from repro.strategies import ExecutionStrategy, FusionStrategy
from repro.strategies.fusion import plan_stages
from repro.workloads import SubGrid, make_fields


class ChunkedFusionStrategy(ExecutionStrategy):
    """Stream the fused kernel over element chunks.

    Only valid for pointwise networks (no gradient): a chunk is
    self-contained only when no work-item reads its neighbours.
    """

    name = "chunked-fusion"

    def __init__(self, chunk_elements: int = 4096):
        self.chunk_elements = chunk_elements
        self._fusion = FusionStrategy()

    def execute(self, network, arrays, env: CLEnvironment):
        bindings, n, dtype = self.prepare(network, arrays)
        stages, _ = plan_stages(network)
        if len(stages) != 1 or any(
                network.registry.get(node.filter).call_style.name
                == "GLOBAL" for node in stages[0].nodes):
            raise ValueError("chunked strategy supports pointwise "
                             "networks only")
        kernel, cost, _source = self._fusion._generate(
            network, stages[0], bindings, n, dtype)

        output_id = network.output_ids()[0]
        out = np.empty(n, dtype=dtype)
        itemsize = dtype.itemsize
        for start in range(0, n, self.chunk_elements):
            stop = min(start + self.chunk_elements, n)
            chunk_args = []
            for node_id in stages[0].reads:
                data = bindings[node_id].data
                chunk_args.append(env.upload(data[start:stop], node_id))
            out_buf = env.create_buffer((stop - start) * itemsize, "out")
            chunk_cost = KernelCost(
                global_bytes=cost.global_bytes * (stop - start) // n,
                flops=cost.flops * (stop - start) // n,
                register_words=cost.register_words,
                itemsize=itemsize, elements=stop - start)
            env.queue.enqueue_kernel(kernel, chunk_args, out_buf,
                                     chunk_cost)
            out[start:stop] = env.queue.enqueue_read_buffer(out_buf)
            for buf in chunk_args:
                buf.release()
            out_buf.release()
        return self._report(env, out, {})


grid = SubGrid(24, 24, 48)
fields = make_fields(grid, seed=3)
inputs = {k: fields[k] for k in ("u", "v", "w")}

print(f"{'strategy':<16} {'K-Exe':>6} {'Dev-W':>6} "
      f"{'peak device bytes':>18} {'modeled s':>10}")
for strategy in ("fusion", ChunkedFusionStrategy(chunk_elements=2048)):
    engine = DerivedFieldEngine(device="gpu", strategy=strategy)
    report = engine.execute(VELOCITY_MAGNITUDE, inputs)
    print(f"{report.strategy:<16} {report.counts.kernel_execs:>6} "
          f"{report.counts.dev_writes:>6} {report.mem_high_water:>18,} "
          f"{report.timing.total:>10.5f}")

# both agree with the direct computation
engine = DerivedFieldEngine(device="gpu",
                            strategy=ChunkedFusionStrategy(2048))
got = engine.derive(VELOCITY_MAGNITUDE, inputs)
want = np.sqrt(fields["u"] ** 2 + fields["v"] ** 2 + fields["w"] ** 2)
print(f"\nchunked result max error vs direct NumPy: "
      f"{np.abs(got - want).max():.2e}")
print("device memory is bounded by the chunk size — the streaming "
      "direction the paper names as future work.")
