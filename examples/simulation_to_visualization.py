#!/usr/bin/env python3
"""End-to-end: simulation dump -> disk -> in-situ pipeline -> images.

Plays a full campaign at laptop scale: a mock simulation writes a short
Rayleigh-Taylor-like time series in the block-file format, then the
VisIt-like host reads each step back (memory-mapped, no copies), derives
the Q-criterion with the fused kernel, and writes a pseudocolor PPM per
step — a flip-book of the vortex structure evolving.

Run:  python examples/simulation_to_visualization.py [output_dir]
"""

import pathlib
import sys
import tempfile

import numpy as np

from repro.analysis.vortex import Q_CRITERION
from repro.host import DerivedFieldEngine
from repro.host.visitsim import (GlobalArrayReader, Pipeline,
                                 PythonExpressionFilter,
                                 RectilinearDataset, save_ppm)
from repro.io import TimeSeriesReader, TimeSeriesWriter
from repro.workloads import SubGrid, make_fields

out_dir = pathlib.Path(sys.argv[1] if len(sys.argv) > 1
                       else tempfile.mkdtemp(prefix="repro_run_"))
series_dir = out_dir / "series"
n_steps = 4
grid = SubGrid(24, 24, 24)

# --- "simulation": dump a time series to disk -------------------------------

writer = TimeSeriesWriter(series_dir, metadata={"campaign": "rt-demo",
                                                "dims": list(grid.dims)})
for step in range(n_steps):
    # evolve the perturbation by reseeding mode phases per step
    fields = make_fields(grid, seed=1000 + step)
    dataset = RectilinearDataset(
        x=fields["x"], y=fields["y"], z=fields["z"],
        cell_fields={"u": fields["u"], "v": fields["v"],
                     "w": fields["w"]})
    path = writer.append(dataset, time=0.05 * step)
    print(f"wrote step {step}: {path.name} "
          f"({path.stat().st_size / 1e6:.2f} MB)")

# --- "visualization session": read back and derive --------------------------

reader = TimeSeriesReader(series_dir)
print(f"\nseries: {len(reader)} steps, campaign "
      f"{reader.metadata['campaign']!r}, times {reader.times()}")

engine = DerivedFieldEngine(device="gpu", strategy="fusion")
pipeline = Pipeline(
    GlobalArrayReader(reader.dataset_loader(mmap=True)),
    [PythonExpressionFilter(Q_CRITERION, engine=engine)])

for step in range(n_steps):
    image = pipeline.render(step, field="q_crit", axis=2)
    target = out_dir / f"q_crit_step{step}.ppm"
    save_ppm(image, target)
    dataset = pipeline.execute(step)
    q = dataset.field("q_crit")
    print(f"step {step}: Q in [{q.min():8.2f}, {q.max():8.2f}], "
          f"{(q > 0).mean():5.1%} rotation-dominated -> {target.name}")

print(f"\npipeline executed {pipeline.executions} times "
      f"({n_steps} steps; renders reused cached results)")
print(f"artifacts in {out_dir}")
