#!/usr/bin/env python3
"""In-situ embedding in a VisIt-like host pipeline (Section III-D).

Builds the paper's host configuration: a reader supplying one block of a
decomposed time step, a custom "Python Expression" filter that calls the
derived-field framework, and a pseudocolor render sink.  Shows the
contract system requesting ghost data for the gradient, pipeline caching
across re-renders, and re-execution when the time step changes.

Run:  python examples/insitu_pipeline.py
"""

import numpy as np

from repro.analysis.vortex import Q_CRITERION
from repro.host import DerivedFieldEngine
from repro.host.visitsim import (BlockExtent, GlobalArrayReader, Pipeline,
                                 PythonExpressionFilter,
                                 RectilinearDataset)
from repro.workloads import SubGrid, make_fields


def load_timestep(timestep: int) -> RectilinearDataset:
    """Stand-in for VisIt's file reader: a synthetic RT time step whose
    perturbation evolves with the step index."""
    grid = SubGrid(16, 16, 24)
    fields = make_fields(grid, seed=100 + timestep)
    return RectilinearDataset(
        x=fields["x"], y=fields["y"], z=fields["z"],
        cell_fields={"u": fields["u"], "v": fields["v"],
                     "w": fields["w"]})


from repro.host.visitsim import StatisticsFilter, ThresholdFilter  # noqa: E402

# The engine runs fusion on the simulated GPU — the configuration the
# paper's 256-GPU run used.
engine = DerivedFieldEngine(device="gpu", strategy="fusion")
expr_filter = PythonExpressionFilter(Q_CRITERION, engine=engine)

contract = expr_filter.contract()
print("contract negotiated bottom-up before execution:")
print(f"  fields requested: {sorted(contract.fields)}")
print(f"  ghost zones:      {contract.ghost_zones} "
      f"(width {contract.ghost_width}) — the gradient stencil needs "
      "neighbour cells at block seams\n")

# This MPI task owns one sub-grid of the decomposed mesh; the reader
# generates its ghost layers from the global data, as VisIt would.
# Downstream of the expression: threshold to vortex cores (Q > 0) and a
# statistics query — the "larger analysis pipeline" of Section III-D.
extent = BlockExtent((4, 4, 0), (8, 8, 24))
stats = StatisticsFilter("q_crit")
pipeline = Pipeline(GlobalArrayReader(load_timestep, extent=extent),
                    [expr_filter,
                     ThresholdFilter("q_crit", lower=0.0),
                     stats])

dataset = pipeline.execute(timestep=0)
print(f"block with ghosts: {dataset.dims} cells "
      f"(ghost_lo={dataset.ghost_lo}, ghost_hi={dataset.ghost_hi})")
interior = dataset.strip_ghost()
print(f"interior block:    {interior.dims} cells")
summary = stats.history[0]["q_crit"]
print(f"vortex cores (Q > 0 after threshold): "
      f"max Q = {summary.maximum:.2f}, "
      f"{summary.positive_fraction:.0%} of surviving cells\n")

# Re-rendering reuses the executed pipeline (the paper: "each subsequent
# rendering step reuses the resulting mesh").
for axis in (0, 1, 2):
    image = pipeline.render(timestep=0, field="q_crit", axis=axis)
    print(f"rendered axis-{axis} slice: image {image.shape}")
print(f"pipeline executions so far: {pipeline.executions} "
      "(renders reused the cached result)")

# A new time step invalidates the cache and re-executes.
pipeline.render(timestep=1, field="q_crit")
print(f"after loading time step 1:  {pipeline.executions} executions")
