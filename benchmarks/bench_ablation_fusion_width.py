"""Ablation: fusion register pressure (DESIGN.md §5).

The paper notes fusion wins "as long as the generated kernel program can
fit on the device and avoid spilling results intended for local registers
into the global memory".  We synthesize expressions of growing live-value
width and compare the modeled fused-kernel time on the real M2050 (63
registers per work item) against a hypothetical no-spill device, isolating
the spill penalty.  We also confirm fusion nonetheless keeps beating
staged (whose per-kernel launch + traffic costs grow linearly in width).
"""

import dataclasses

import numpy as np
import pytest
from conftest import write_artifact

from repro.clsim import CLEnvironment, NVIDIA_M2050_GPU
from repro.host.engine import DerivedFieldEngine
from repro.strategies import FusionStrategy, StagedStrategy
from repro.strategies.bindings import ArraySpec
from repro.workloads import SubGrid

# A device identical to the M2050 except registers never spill.
NO_SPILL_GPU = dataclasses.replace(NVIDIA_M2050_GPU,
                                   registers_per_work_item=10**9)

N_CELLS = SubGrid(64, 64, 64).n_cells
WIDTHS = (4, 16, 48, 96, 192, 384)


def wide_expression(width: int) -> str:
    """All `width` intermediates stay live until the final sum, forcing a
    register working set proportional to width."""
    lines = [f"t{i} = u * {float(i + 1)}" for i in range(width)]
    total = " + ".join(f"t{i}" for i in range(width))
    lines.append(f"result = {total}")
    return "\n".join(lines)


def modeled(width: int, strategy, device):
    engine = DerivedFieldEngine(device=device, strategy="fusion",
                                dry_run=True)
    compiled = engine.compile(wide_expression(width))
    shapes = {"u": ArraySpec((N_CELLS,), np.dtype(np.float64))}
    env = CLEnvironment(device, dry_run=True)
    report = strategy.execute(compiled.network, shapes, env)
    return report.timing.total


def test_fusion_width_artifact(results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    budget = NVIDIA_M2050_GPU.registers_per_work_item
    lines = [f"== Ablation: fusion register pressure "
             f"(M2050 budget: {budget} words/work-item) ==",
             f"{'width':>6} {'fusion s':>10} {'no-spill s':>11} "
             f"{'penalty':>8} {'staged s':>10}"]
    penalties = {}
    for width in WIDTHS:
        fused = modeled(width, FusionStrategy(), NVIDIA_M2050_GPU)
        ideal = modeled(width, FusionStrategy(), NO_SPILL_GPU)
        staged = modeled(width, StagedStrategy(), NVIDIA_M2050_GPU)
        penalties[width] = fused / ideal
        lines.append(f"{width:>6} {fused:>10.4f} {ideal:>11.4f} "
                     f"{penalties[width]:>8.3f} {staged:>10.4f}")
        # fusion remains ahead of staged even while spilling
        assert fused < staged
    write_artifact(results_dir, "ablation_fusion_width.txt",
                   "\n".join(lines))

    # no penalty while the working set fits in registers...
    assert penalties[4] == pytest.approx(1.0)
    assert penalties[16] == pytest.approx(1.0)
    # ...and a growing one once it exceeds the 63-register budget
    assert penalties[96] > 1.0
    assert penalties[384] > penalties[192] > penalties[96]


@pytest.mark.parametrize("width", [4, 48, 192])
def test_bench_generator_scaling(benchmark, width):
    """Wall-clock cost of dynamic kernel generation as the fused network
    grows (compile-time, not execute-time)."""
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    text = wide_expression(width)

    def compile_fresh():
        engine._cache.clear()
        return engine.compile(text)

    compiled = benchmark(compile_fresh)
    assert compiled.network.n_filters() >= width
