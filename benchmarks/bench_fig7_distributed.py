"""Regenerates the Fig 7 experiment: distributed Q-criterion with the
fusion strategy.

Full paper scale (3072^3 cells, 3072 blocks, 256 GPUs on 128 nodes) runs
through the per-rank planner; a reduced-scale live run wall-clocks the
whole distributed path (decomposition, ghost generation, per-rank devices,
reassembly, allreduced statistics) under pytest-benchmark.
"""

import numpy as np
from conftest import write_artifact

from repro.analysis.vortex import Q_CRITERION
from repro.clsim import GIB
from repro.host.visitsim import RectilinearDataset
from repro.par import plan_distributed, run_distributed
from repro.workloads import FULL_DATASET, SubGrid, make_fields


def test_fig7_full_scale_plan(results_dir, benchmark):
    plans = benchmark.pedantic(
        plan_distributed, args=(Q_CRITERION,),
        kwargs=dict(global_dims=FULL_DATASET["global_dims"],
                    block_dims=FULL_DATASET["block_dims"],
                    n_ranks=FULL_DATASET["n_gpus"],
                    strategy="fusion", device="gpu",
                    devices_per_node=2),
        rounds=1, iterations=1)
    ok = sum(1 for p in plans if not p.failed)
    peak = max(p.mem_high_water for p in plans)
    per_block_time = max(p.timing.total for p in plans if p.timing)
    blocks_per_gpu = FULL_DATASET["blocks_per_gpu"]
    lines = [
        "== Fig 7: distributed Q-criterion, fusion strategy ==",
        f"global mesh:        3072^3 rectilinear "
        f"({3072 ** 3 / 1e9:.1f}e9 cells)",
        f"decomposition:      {FULL_DATASET['n_blocks']} sub-grids of "
        f"192 x 192 x 256 (+1 ghost layer on interior faces)",
        f"resources:          {FULL_DATASET['n_gpus']} GPUs on "
        f"{FULL_DATASET['n_nodes']} nodes (2 GPUs/node, 1 MPI task/GPU)",
        f"blocks per GPU:     {blocks_per_gpu}",
        f"ranks succeeding:   {ok} / {len(plans)}",
        f"peak device memory: {peak / GIB:.3f} GiB of 3.0 GiB",
        f"modeled time/block: {per_block_time:.3f} s "
        f"(~{per_block_time * blocks_per_gpu:.2f} s per GPU, "
        "embarrassingly parallel)",
    ]
    write_artifact(results_dir, "fig7_distributed.txt", "\n".join(lines))
    assert ok == FULL_DATASET["n_gpus"]
    assert peak < 3 * GIB


def test_bench_distributed_run(benchmark):
    """Wall-clock the reduced-scale live distributed run and check the
    result against the single-device global computation."""
    grid = SubGrid(12, 12, 16)
    fields = make_fields(grid, seed=2)
    global_ds = RectilinearDataset(
        x=fields["x"], y=fields["y"], z=fields["z"],
        cell_fields={"u": fields["u"], "v": fields["v"],
                     "w": fields["w"]})

    result = benchmark(
        run_distributed, Q_CRITERION, global_ds,
        block_dims=(6, 6, 8), n_ranks=4, strategy="fusion", device="gpu")

    from repro.analysis.vortex import q_criterion_reference
    expected = q_criterion_reference(
        fields["u"], fields["v"], fields["w"], fields["dims"],
        fields["x"], fields["y"], fields["z"])
    np.testing.assert_allclose(result.field, expected, rtol=1e-12,
                               atol=1e-12)
    benchmark.extra_info["n_ranks"] = result.n_ranks
