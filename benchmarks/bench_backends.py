"""Bench: vectorized NumPy backend vs interpreted-OpenCL backend.

Quantifies what the interpreted path costs (it exists for differential
validation, not speed) and records that both produce identical results —
the simulated device's answer to "how do we know the generated kernels
are real?".
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, VELOCITY_MAGNITUDE
from repro.host.engine import DerivedFieldEngine
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(6, 6, 8)


@pytest.fixture(scope="module")
def tiny_fields():
    return make_fields(GRID, seed=4)


@pytest.mark.parametrize("backend", ["vectorized", "interpreted"])
def test_bench_backend(benchmark, backend, tiny_fields):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                backend=backend)
    compiled = engine.compile(VELOCITY_MAGNITUDE)
    inputs = {k: tiny_fields[k]
              for k in EXPRESSION_INPUTS["velocity_magnitude"]}
    report = benchmark(engine.execute, compiled, inputs)
    assert report.output is not None
    benchmark.extra_info["backend"] = backend


def test_backend_equivalence_artifact(results_dir, benchmark,
                                      tiny_fields):
    import time
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    inputs = {k: tiny_fields[k]
              for k in EXPRESSION_INPUTS["velocity_magnitude"]}
    timings = {}
    outputs = {}
    for backend in ("vectorized", "interpreted"):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend=backend)
        start = time.perf_counter()
        outputs[backend] = engine.derive(VELOCITY_MAGNITUDE, inputs)
        timings[backend] = time.perf_counter() - start
    np.testing.assert_array_equal(outputs["vectorized"],
                                  outputs["interpreted"])
    slowdown = timings["interpreted"] / timings["vectorized"]
    lines = ["== Execution backends (VelMag, 288 cells, fusion) ==",
             f"{'backend':<14} {'wall s':>10}",
             f"{'vectorized':<14} {timings['vectorized']:>10.5f}",
             f"{'interpreted':<14} {timings['interpreted']:>10.5f}",
             f"interpreted OpenCL is {slowdown:,.0f}x slower and "
             "bit-identical — it exists to prove the generated source, "
             "not to race it"]
    write_artifact(results_dir, "backends.txt", "\n".join(lines))
