#!/usr/bin/env python
"""Validate a ``derive --metrics`` JSON snapshot (CI metrics-smoke).

Checks the structural contract of :meth:`MetricsRegistry.snapshot`
and that a metered derive run actually populated the paper-facing
families: naming (``repro_<subsystem>_<name>[_<unit>]``), per-family
``type``/``help``/``samples`` keys, histogram sample completeness
(``count``/``sum``/``buckets`` with a ``+Inf`` bucket equal to the
count), and a minimum family set covering the allocator (Fig 6), the
event layer (Table II), the plan cache, and the engine phases.

Usage: ``python benchmarks/validate_metrics.py METRICS.json``
"""

from __future__ import annotations

import json
import re
import sys

NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")
TYPES = {"counter", "gauge", "histogram"}

# One family per instrumented subsystem; a metered derive run must
# have touched every one of these.
REQUIRED_FAMILIES = {
    "repro_clsim_allocated_bytes": "gauge",
    "repro_clsim_peak_bytes": "gauge",
    "repro_clsim_transfers_total": "counter",
    "repro_clsim_transfer_bytes_total": "counter",
    "repro_clsim_kernel_launches_total": "counter",
    "repro_plancache_misses_total": "counter",
    "repro_engine_execute_total": "counter",
    "repro_engine_execute_duration_seconds": "histogram",
}


def validate(snapshot: dict) -> list[str]:
    errors = []
    if not isinstance(snapshot, dict) or not snapshot:
        return ["snapshot is not a non-empty object"]
    for name, family in snapshot.items():
        where = f"family {name!r}"
        if not NAME_RE.match(name):
            errors.append(f"{where}: bad metric name")
        for key in ("type", "help", "samples"):
            if key not in family:
                errors.append(f"{where}: missing {key!r}")
        if family.get("type") not in TYPES:
            errors.append(f"{where}: bad type {family.get('type')!r}")
        if not family.get("help"):
            errors.append(f"{where}: empty help text")
        for i, sample in enumerate(family.get("samples", [])):
            swhere = f"{where} sample {i}"
            if "labels" not in sample:
                errors.append(f"{swhere}: missing labels")
            if family.get("type") == "histogram":
                for key in ("count", "sum", "buckets"):
                    if key not in sample:
                        errors.append(f"{swhere}: missing {key!r}")
                buckets = sample.get("buckets", {})
                if buckets.get("+Inf") != sample.get("count"):
                    errors.append(f"{swhere}: +Inf bucket != count")
                running = list(buckets.values())
                if running != sorted(running):
                    errors.append(f"{swhere}: buckets not cumulative")
            elif "value" not in sample:
                errors.append(f"{swhere}: missing value")
    for name, metric_type in REQUIRED_FAMILIES.items():
        family = snapshot.get(name)
        if family is None:
            errors.append(f"required family {name!r} absent "
                          f"(instrumentation not reached?)")
        elif family.get("type") != metric_type:
            errors.append(f"required family {name!r}: type "
                          f"{family.get('type')!r}, want {metric_type!r}")
        elif not family.get("samples"):
            errors.append(f"required family {name!r} has no samples")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    snapshot = json.loads(open(argv[0]).read())
    errors = validate(snapshot)
    if errors:
        for line in errors:
            print(f"INVALID: {line}", file=sys.stderr)
        return 1
    families = len(snapshot)
    samples = sum(len(f.get("samples", [])) for f in snapshot.values())
    print(f"{argv[0]}: valid ({families} families, {samples} samples)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
