"""Bench: cold vs. warm ``execute()`` through the plan cache.

The warm-execution layer caches executable plans (planned stages,
generated + validated OpenCL C, compiled kernels, buffer sizes) and pools
device-buffer reservations, so a repeated ``execute()`` of a compiled
expression skips everything but bind/launch/readback.  This benchmark
measures that for all three paper expressions across all three paper
strategies and writes the first JSON artifact of the bench trajectory.

The grid is deliberately small (codegen and planning are per-*plan* costs,
transfers are per-*element* costs): the warm/cold ratio here shows the
fixed overhead the cache removes, which is what dominates the paper's
in-situ workload of many timesteps over modest per-rank blocks.

Acceptance (ISSUE 1): a warm Q-criterion execute must be >= 5x faster
than cold.  Acceptance (ISSUE 6): the compiled executor must beat the
warm interpreter by >= 1.5x on q_criterion/fusion, bitwise-identical.
"""

import json
import statistics
import time

import numpy as np
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.clsim.compiler import validate_source_cached
from repro.host.engine import DerivedFieldEngine
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(8, 8, 12)
STRATEGIES = ("roundtrip", "staged", "fusion")
COLD_ROUNDS = 5
WARM_ROUNDS = 20


def _median_runtime(engine, compiled, inputs, rounds, cold=False):
    samples = []
    for _ in range(rounds):
        if cold:
            # Source validation memoizes globally; a true cold run (first
            # execute of a fresh process) validates from scratch.
            validate_source_cached.cache_clear()
        start = time.perf_counter()
        engine.execute(compiled, inputs)
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _bench_case(name, strategy, fields):
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS[name]}

    # Cold path: caching and pooling disabled — every run re-plans,
    # regenerates, revalidates, and re-reserves (the seed behavior).
    cold = DerivedFieldEngine(device="cpu", strategy=strategy,
                              plan_cache=False, pooling=False)
    compiled = cold.compile(EXPRESSIONS[name])
    cold_report = cold.execute(compiled, inputs)
    cold_s = _median_runtime(cold, compiled, inputs, COLD_ROUNDS,
                             cold=True)

    # Warm path: default engine, plan cache populated by a first run.
    warm = DerivedFieldEngine(device="cpu", strategy=strategy)
    warm.execute(compiled, inputs)
    warm_s = _median_runtime(warm, compiled, inputs, WARM_ROUNDS)
    warm_report = warm.execute(compiled, inputs)

    # Warm results must be bitwise-identical to cold, with the cache hot.
    np.testing.assert_array_equal(cold_report.output, warm_report.output)
    assert warm_report.cache is not None and warm_report.cache.hit
    assert warm_report.counts == cold_report.counts

    # Executor comparison on the same warm plan: pinned interpreter vs
    # the compiled sweep (ISSUE 6).  Outputs must be bitwise-identical.
    interp = DerivedFieldEngine(device="cpu", strategy=strategy,
                                backend="vectorized")
    interp.execute(compiled, inputs)
    warm_interpreted_s = _median_runtime(interp, compiled, inputs,
                                         WARM_ROUNDS)
    compiled_engine = DerivedFieldEngine(device="cpu", strategy=strategy,
                                         backend="compiled")
    compiled_report = compiled_engine.execute(compiled, inputs)
    warm_compiled_s = _median_runtime(compiled_engine, compiled, inputs,
                                      WARM_ROUNDS)
    assert compiled_report.codegen is not None
    assert compiled_report.codegen.compiled
    assert compiled_report.output.tobytes() == \
        cold_report.output.tobytes(), \
        "compiled output diverged from the interpreter"
    assert compiled_report.counts == cold_report.counts

    alloc = warm_report.alloc
    return {
        "expression": name,
        "strategy": strategy,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "speedup": cold_s / warm_s,
        "warm_interpreted_s": warm_interpreted_s,
        "warm_compiled_s": warm_compiled_s,
        "compiled_speedup": warm_interpreted_s / warm_compiled_s,
        "cache_hits": warm_report.cache.hits,
        "cache_misses": warm_report.cache.misses,
        "reused_allocations": alloc.reused_allocations,
        "pooled_bytes": alloc.pooled_bytes,
    }


def test_bench_cache_artifact(results_dir):
    fields = make_fields(GRID, seed=7)
    cases = [_bench_case(name, strategy, fields)
             for name in EXPRESSIONS for strategy in STRATEGIES]

    artifact = {
        "grid": GRID.label(),
        "n_cells": GRID.n_cells,
        "cold_rounds": COLD_ROUNDS,
        "warm_rounds": WARM_ROUNDS,
        "cases": cases,
    }
    content = json.dumps(artifact, indent=2)
    write_artifact(results_dir, "bench_cache.json", content)

    by_case = {(c["expression"], c["strategy"]): c for c in cases}
    best_q = max(c["speedup"] for c in cases
                 if c["expression"] == "q_criterion")
    # The acceptance bar: warm Q-criterion >= 5x faster than cold.
    assert by_case[("q_criterion", "fusion")]["speedup"] >= 5.0, \
        f"warm q_criterion/fusion speedup below 5x: {best_q:.1f}x"
    # Every configuration must at least not regress when warm.
    for case in cases:
        assert case["speedup"] > 1.0, \
            f"{case['expression']}/{case['strategy']} warm slower than cold"
    # ISSUE 6 acceptance: the compiled executor beats the warm
    # interpreter by >= 1.5x on the q_criterion fusion path.
    compiled_speedup = \
        by_case[("q_criterion", "fusion")]["compiled_speedup"]
    assert compiled_speedup >= 1.5, \
        f"compiled q_criterion/fusion speedup below 1.5x: " \
        f"{compiled_speedup:.2f}x"
