"""Bench: service throughput/latency scaling across device workers.

Drives the concurrent service with the closed-loop load generator and
measures how throughput scales from one device worker to two on the
fusion strategy.  Wall-clock throughput of the *simulated* devices is
GIL-bound (every "device" executes vectorized NumPy in one process), so
the scaling claim is made on the **modeled** timeline — served requests
per modeled makespan, where the makespan is the busiest device's
accumulated simulated seconds (the same parallel-makespan aggregation
the multi-device strategy reports).  That is the quantity a real
multi-device deployment scales.

Acceptance (ISSUE 2): a 2-device fusion run must sustain >= 1.5x the
modeled throughput of a 1-device run, with zero dropped requests and a
warm plan cache.

Acceptance (ISSUE 9): at batchable load (a presubmitted same-expression
backlog, the deterministic stand-in for open-loop bursts), micro-batched
dispatch (``max_batch=8``) must sustain >= 1.3x the modeled throughput
of unbatched dispatch (``max_batch=1``) on fusion ``q_criterion`` — the
coalesced launch pays the kernel launch overhead and transfer link
latency once per batch instead of once per request.  The backlog is
built with the service stopped (``start=False``) and drained after
``start()``, so the dispatcher sees a full queue and batch composition
is deterministic, which is what lets ``regress.py`` hard-gate the ratio.

Runs two ways:

* under pytest (the bench suite): writes ``bench_service.json``;
* standalone: ``python benchmarks/bench_service.py [--smoke]`` for the
  CI smoke step (reduced request count, same assertions).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.service import (DerivedFieldService, build_service,
                           default_cases, run_load)
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(8, 8, 12)
CLIENTS = 8
REQUESTS = 360
SMOKE_REQUESTS = 120
SCALING_FLOOR = 1.5
BATCH_REQUESTS = 96
SMOKE_BATCH_REQUESTS = 48
BATCH_FLOOR = 1.3

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _run_fleet(devices, cases, requests, clients) -> dict:
    with DerivedFieldService(devices=devices, strategy="fusion",
                             queue_depth=max(2 * clients, 16)) as service:
        report = run_load(service, cases, clients=clients,
                          requests=requests)
    report["devices_config"] = list(devices)
    return report


def _run_batch_config(cases, requests: int, max_batch: int) -> dict:
    """One deterministic batchable-load run: presubmit the whole backlog
    with the service stopped, then start it and drain."""
    service = build_service(("cpu",), strategy="fusion",
                            max_batch=max_batch, queue_depth=requests,
                            start=False)
    try:
        handles = [service.submit(cases[i % len(cases)].expression,
                                  cases[i % len(cases)].fields)
                   for i in range(requests)]
        service.start()
        for handle in handles:
            handle.result(timeout=120.0)
    finally:
        service.close()
    # Post-close snapshot: workers joined, outcome counters final.
    snapshot = service.snapshot()
    makespan = max(dev["modeled_seconds"]
                   for dev in snapshot["devices"].values())
    served = snapshot["requests"]["outcomes"]["served"]
    assert served == requests, \
        f"max_batch={max_batch}: only {served}/{requests} served"
    return {
        "max_batch": max_batch,
        "served": served,
        "modeled_makespan_seconds": makespan,
        "throughput_rps_modeled": served / makespan,
        "batching": snapshot["batching"],
    }


def run_batching_bench(requests: int = BATCH_REQUESTS) -> dict:
    """Batched vs unbatched modeled throughput at batchable load."""
    fields = make_fields(GRID, seed=13)
    cases = default_cases(fields, ("q_criterion",))
    unbatched = _run_batch_config(cases, requests, max_batch=1)
    batched = _run_batch_config(cases, requests, max_batch=8)
    assert unbatched["batching"]["coalesced_launches"] == 0, \
        "max_batch=1 must never coalesce"
    assert batched["batching"]["coalesced_launches"] > 0, \
        "batchable load never coalesced — dispatcher batching is dead"
    ratio = (batched["throughput_rps_modeled"]
             / unbatched["throughput_rps_modeled"])
    return {
        "grid": GRID.label(),
        "requests": requests,
        "expression": "q_criterion",
        "strategy": "fusion",
        "batched_speedup_modeled": ratio,
        "floor": BATCH_FLOOR,
        "unbatched": unbatched,
        "batched": batched,
    }


def run_bench(requests: int = REQUESTS, clients: int = CLIENTS,
              batch_requests: int = BATCH_REQUESTS) -> dict:
    fields = make_fields(GRID, seed=13)
    cases = default_cases(fields)

    fleets = {
        "cpu_x1": ("cpu",),
        "cpu_x2": ("cpu", "cpu"),
        "cpu_gpu": ("cpu", "gpu"),
    }
    runs = {name: _run_fleet(devices, cases, requests, clients)
            for name, devices in fleets.items()}

    t1 = runs["cpu_x1"]["throughput_rps_modeled"]
    t2 = runs["cpu_x2"]["throughput_rps_modeled"]
    batching = run_batching_bench(batch_requests)
    artifact = {
        "grid": GRID.label(),
        "n_cells": GRID.n_cells,
        "requests": requests,
        "clients": clients,
        "strategy": "fusion",
        "modeled_scaling_2dev": t2 / t1,
        "batching": batching,
        "runs": runs,
    }

    for name, run in runs.items():
        assert run["dropped"] == 0, \
            f"{name}: {run['dropped']} requests dropped on the floor"
        assert run["outcomes"]["served"] == requests, \
            f"{name}: only {run['outcomes']['served']}/{requests} served"
        assert run["plan_cache"]["hit_rate"] > 0.0, \
            f"{name}: plan cache never hit"
    # The acceptance bars: 2 fusion device workers sustain >= 1.5x the
    # modeled throughput of 1, and batched dispatch >= 1.3x unbatched.
    assert t2 / t1 >= SCALING_FLOOR, \
        f"2-device modeled throughput only {t2 / t1:.2f}x 1-device"
    ratio = batching["batched_speedup_modeled"]
    assert ratio >= BATCH_FLOOR, \
        (f"batched modeled throughput only {ratio:.2f}x unbatched "
         f"(floor {BATCH_FLOOR}x)")
    return artifact


def test_bench_service_artifact(results_dir):
    artifact = run_bench()
    content = json.dumps(artifact, indent=2)
    (results_dir / "bench_service.json").write_text(content + "\n")
    print(f"\n[written to benchmarks/results/bench_service.json]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="service throughput/latency scaling bench")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced request count (CI smoke)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    args = parser.parse_args(argv)
    requests = args.requests if args.requests is not None else (
        SMOKE_REQUESTS if args.smoke else REQUESTS)
    batch_requests = (SMOKE_BATCH_REQUESTS if args.smoke
                      else BATCH_REQUESTS)

    artifact = run_bench(requests=requests, clients=args.clients,
                         batch_requests=batch_requests)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_service.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    scaling = artifact["modeled_scaling_2dev"]
    for name, run in artifact["runs"].items():
        print(f"{name}: served {run['outcomes']['served']}"
              f"/{run['requests']}, "
              f"{run['throughput_rps_modeled']:.0f} req/s modeled, "
              f"{run['throughput_rps_wall']:.0f} req/s wall, "
              f"cache hit rate "
              f"{100 * run['plan_cache']['hit_rate']:.1f}%")
    print(f"2-device vs 1-device modeled throughput: {scaling:.2f}x "
          f"(floor {SCALING_FLOOR}x)")
    batching = artifact["batching"]
    stats = batching["batched"]["batching"]
    print(f"batched (max_batch=8) vs unbatched modeled throughput: "
          f"{batching['batched_speedup_modeled']:.2f}x "
          f"(floor {BATCH_FLOOR}x; {stats['coalesced_requests']} requests "
          f"in {stats['coalesced_launches']} coalesced launches, "
          f"mean batch {stats['mean_batch_size']:.1f})")
    print(f"[written to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
