"""Bench: service throughput/latency scaling across device workers.

Drives the concurrent service with the closed-loop load generator and
measures how throughput scales from one device worker to two on the
fusion strategy.  Wall-clock throughput of the *simulated* devices is
GIL-bound (every "device" executes vectorized NumPy in one process), so
the scaling claim is made on the **modeled** timeline — served requests
per modeled makespan, where the makespan is the busiest device's
accumulated simulated seconds (the same parallel-makespan aggregation
the multi-device strategy reports).  That is the quantity a real
multi-device deployment scales.

Acceptance (ISSUE 2): a 2-device fusion run must sustain >= 1.5x the
modeled throughput of a 1-device run, with zero dropped requests and a
warm plan cache.

Runs two ways:

* under pytest (the bench suite): writes ``bench_service.json``;
* standalone: ``python benchmarks/bench_service.py [--smoke]`` for the
  CI smoke step (reduced request count, same assertions).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.service import DerivedFieldService, default_cases, run_load
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(8, 8, 12)
CLIENTS = 8
REQUESTS = 360
SMOKE_REQUESTS = 120
SCALING_FLOOR = 1.5

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def _run_fleet(devices, cases, requests, clients) -> dict:
    with DerivedFieldService(devices=devices, strategy="fusion",
                             queue_depth=max(2 * clients, 16)) as service:
        report = run_load(service, cases, clients=clients,
                          requests=requests)
    report["devices_config"] = list(devices)
    return report


def run_bench(requests: int = REQUESTS, clients: int = CLIENTS) -> dict:
    fields = make_fields(GRID, seed=13)
    cases = default_cases(fields)

    fleets = {
        "cpu_x1": ("cpu",),
        "cpu_x2": ("cpu", "cpu"),
        "cpu_gpu": ("cpu", "gpu"),
    }
    runs = {name: _run_fleet(devices, cases, requests, clients)
            for name, devices in fleets.items()}

    t1 = runs["cpu_x1"]["throughput_rps_modeled"]
    t2 = runs["cpu_x2"]["throughput_rps_modeled"]
    artifact = {
        "grid": GRID.label(),
        "n_cells": GRID.n_cells,
        "requests": requests,
        "clients": clients,
        "strategy": "fusion",
        "modeled_scaling_2dev": t2 / t1,
        "runs": runs,
    }

    for name, run in runs.items():
        assert run["dropped"] == 0, \
            f"{name}: {run['dropped']} requests dropped on the floor"
        assert run["outcomes"]["served"] == requests, \
            f"{name}: only {run['outcomes']['served']}/{requests} served"
        assert run["plan_cache"]["hit_rate"] > 0.0, \
            f"{name}: plan cache never hit"
    # The acceptance bar: 2 fusion device workers sustain >= 1.5x the
    # modeled throughput of 1.
    assert t2 / t1 >= SCALING_FLOOR, \
        f"2-device modeled throughput only {t2 / t1:.2f}x 1-device"
    return artifact


def test_bench_service_artifact(results_dir):
    artifact = run_bench()
    content = json.dumps(artifact, indent=2)
    (results_dir / "bench_service.json").write_text(content + "\n")
    print(f"\n[written to benchmarks/results/bench_service.json]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="service throughput/latency scaling bench")
    parser.add_argument("--smoke", action="store_true",
                        help="reduced request count (CI smoke)")
    parser.add_argument("--requests", type=int, default=None)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    args = parser.parse_args(argv)
    requests = args.requests if args.requests is not None else (
        SMOKE_REQUESTS if args.smoke else REQUESTS)

    artifact = run_bench(requests=requests, clients=args.clients)
    RESULTS_DIR.mkdir(exist_ok=True)
    out = RESULTS_DIR / "bench_service.json"
    out.write_text(json.dumps(artifact, indent=2) + "\n")
    scaling = artifact["modeled_scaling_2dev"]
    for name, run in artifact["runs"].items():
        print(f"{name}: served {run['outcomes']['served']}"
              f"/{run['requests']}, "
              f"{run['throughput_rps_modeled']:.0f} req/s modeled, "
              f"{run['throughput_rps_wall']:.0f} req/s wall, "
              f"cache hit rate "
              f"{100 * run['plan_cache']['hit_rate']:.1f}%")
    print(f"2-device vs 1-device modeled throughput: {scaling:.2f}x "
          f"(floor {SCALING_FLOOR}x)")
    print(f"[written to {out}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
