"""Regenerates Fig 6: device-memory high-water mark vs data size, with the
M2050's 3 GiB limit and the failed GPU cases, plus a wall-clock benchmark
of the dry-run planner itself."""

import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSIONS
from repro.clsim import GIB, NVIDIA_M2050_GPU
from repro.experiments import format_fig_series
from repro.experiments.sweep import run_case
from repro.workloads import TABLE1_SUBGRIDS


def test_fig6_artifact(paper_sweep, results_dir, benchmark):
    def build():
        return [format_fig_series(paper_sweep, metric="memory",
                                  expression=e) for e in EXPRESSIONS]

    panels = benchmark.pedantic(build, rounds=3, iterations=1)
    write_artifact(results_dir, "fig6_memory.txt", "\n\n".join(panels))

    limit = NVIDIA_M2050_GPU.global_mem_bytes
    cpu_rows = [r for r in paper_sweep if r.device == "cpu"]
    # linear growth: the largest grid needs 12x the smallest's memory
    for expression in EXPRESSIONS:
        for executor in ("roundtrip", "staged", "fusion", "reference"):
            rows = sorted((r for r in cpu_rows
                           if (r.expression, r.executor)
                           == (expression, executor)),
                          key=lambda r: r.n_cells)
            ratio = rows[-1].mem_high_water / rows[0].mem_high_water
            assert ratio == pytest.approx(12.0, rel=0.02)
    # every GPU failure sits above the green line (via its CPU twin)
    for row in paper_sweep:
        if row.device != "gpu" or not row.failed:
            continue
        twin = next(r for r in cpu_rows
                    if (r.expression, r.executor, r.grid)
                    == (row.expression, row.executor, row.grid))
        assert twin.mem_high_water > limit


def test_fig6_memory_orderings(paper_sweep, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    largest = TABLE1_SUBGRIDS[-1]
    rows = {(r.expression, r.executor): r for r in paper_sweep
            if r.device == "cpu" and r.grid == largest}
    for expression in ("vorticity_magnitude", "q_criterion"):
        staged = rows[(expression, "staged")].mem_high_water
        rtrip = rows[(expression, "roundtrip")].mem_high_water
        fusion = rows[(expression, "fusion")].mem_high_water
        ref = rows[(expression, "reference")].mem_high_water
        assert staged > rtrip > fusion == ref
    velmag = {e: rows[("velocity_magnitude", e)].mem_high_water
              for e in ("roundtrip", "staged", "fusion", "reference")}
    assert velmag["roundtrip"] == min(velmag.values())


@pytest.mark.parametrize("executor", ["roundtrip", "staged", "fusion"])
def test_bench_planner(benchmark, executor):
    """Wall-clock cost of planning one full-scale Q-criterion case — the
    operation the memory study runs 288 times."""
    result = benchmark(run_case, "q_criterion", TABLE1_SUBGRIDS[-1],
                       "cpu", executor)
    assert not result.failed
    benchmark.extra_info["mem_high_water_gib"] = \
        result.mem_high_water / GIB
