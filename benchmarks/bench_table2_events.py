"""Regenerates Table II (Dev-W / Dev-R / K-Exe per expression x strategy)
and wall-clock benchmarks each strategy's end-to-end execution."""

import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.experiments import format_table2
from repro.host.engine import DerivedFieldEngine

TABLE_II = {
    ("velocity_magnitude", "roundtrip"): (11, 6, 6),
    ("velocity_magnitude", "staged"): (3, 1, 6),
    ("velocity_magnitude", "fusion"): (3, 1, 1),
    ("vorticity_magnitude", "roundtrip"): (32, 12, 12),
    ("vorticity_magnitude", "staged"): (7, 1, 18),
    ("vorticity_magnitude", "fusion"): (7, 1, 1),
    ("q_criterion", "roundtrip"): (123, 57, 57),
    ("q_criterion", "staged"): (7, 1, 67),
    ("q_criterion", "fusion"): (7, 1, 1),
}


def test_table2_artifact(paper_sweep, results_dir, benchmark):
    table = benchmark.pedantic(format_table2, args=(paper_sweep,),
                               rounds=3, iterations=1)
    write_artifact(results_dir, "table2.txt", table)
    for (_, _), (w, r, k) in TABLE_II.items():
        assert f"{w:>6} {r:>6} {k:>6}" in table


@pytest.mark.parametrize("strategy", ["roundtrip", "staged", "fusion"])
@pytest.mark.parametrize("expression", sorted(EXPRESSIONS))
def test_bench_strategy_execution(benchmark, expression, strategy,
                                  bench_fields):
    """Wall-clock per-execution cost of each Table II cell (scaled grid).

    The counts are asserted against the paper on every benchmark
    iteration's report.
    """
    engine = DerivedFieldEngine(device="cpu", strategy=strategy)
    compiled = engine.compile(EXPRESSIONS[expression])
    inputs = {k: bench_fields[k]
              for k in EXPRESSION_INPUTS[expression]}

    report = benchmark(engine.execute, compiled, inputs)
    assert report.counts.as_row() == TABLE_II[(expression, strategy)]
    benchmark.extra_info["dev_writes"] = report.counts.dev_writes
    benchmark.extra_info["kernel_execs"] = report.counts.kernel_execs
