"""Ablation: reference-counted eager release of intermediates (DESIGN.md
§5 — the dataflow module's "reference counting ... to reduce memory
overhead").

A retain-all variant of the staged strategy (release nothing until the
end) shows how much device memory the refcount machinery saves on the
gradient-heavy Q-criterion network.
"""

import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.clsim import GIB
from repro.host.engine import DerivedFieldEngine
from repro.strategies import StagedStrategy, plan
from repro.workloads import TABLE1_SUBGRIDS, make_shapes


class RetainAllStagedStrategy(StagedStrategy):
    """Staged without eager release: every buffer lives to the end."""

    name = "staged-retain-all"

    def execute(self, network, arrays, env):
        refcounts = network.refcounts()
        # Inflate every count so `consume` never reaches zero; the final
        # cleanup in StagedStrategy.execute skips still-referenced buffers,
        # leaving the allocator to report the retain-all peak.
        original = network.refcounts

        def inflated():
            return {k: v + 10**6 for k, v in original().items()}

        network.refcounts = inflated
        try:
            return super().execute(network, arrays, env)
        finally:
            network.refcounts = original


def peak_for(strategy_cls, expression):
    engine = DerivedFieldEngine(device="cpu", strategy="staged",
                                dry_run=True)
    compiled = engine.compile(EXPRESSIONS[expression])
    shapes = {k: v
              for k, v in make_shapes(TABLE1_SUBGRIDS[0]).items()
              if k in EXPRESSION_INPUTS[expression]}
    return plan(strategy_cls(), shapes, "cpu", network=compiled.network)


def test_refcount_ablation_artifact(results_dir, benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["== Ablation: refcounted release vs retain-all "
             "(staged, 9.4M cells) ==",
             f"{'expression':<22} {'refcount GiB':>13} "
             f"{'retain-all GiB':>15} {'saved':>7}"]
    for expression in EXPRESSIONS:
        with_rc = peak_for(StagedStrategy, expression)
        without = peak_for(RetainAllStagedStrategy, expression)
        saved = 1 - with_rc.mem_high_water / without.mem_high_water
        lines.append(
            f"{expression:<22} {with_rc.mem_high_water / GIB:>13.3f} "
            f"{without.mem_high_water / GIB:>15.3f} {saved:>6.0%}")
        assert without.mem_high_water >= with_rc.mem_high_water
    write_artifact(results_dir, "ablation_refcount.txt", "\n".join(lines))


def test_refcount_saves_memory_on_qcrit(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_rc = peak_for(StagedStrategy, "q_criterion")
    without = peak_for(RetainAllStagedStrategy, "q_criterion")
    assert without.mem_high_water > 1.3 * with_rc.mem_high_water


@pytest.mark.parametrize("strategy_cls", [StagedStrategy,
                                          RetainAllStagedStrategy])
def test_bench_refcount_overhead(benchmark, strategy_cls, bench_fields):
    """Refcount bookkeeping itself must be cheap: compare live wall-clock
    of the two variants."""
    engine = DerivedFieldEngine(device="cpu", strategy=strategy_cls())
    compiled = engine.compile(EXPRESSIONS["q_criterion"])
    inputs = {k: bench_fields[k]
              for k in EXPRESSION_INPUTS["q_criterion"]}
    report = benchmark(engine.execute, compiled, inputs)
    assert report.output is not None
