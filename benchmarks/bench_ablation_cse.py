"""Ablation: the limited CSE pass (DESIGN.md §5).

Q-criterion reuses the gradient components heavily, so CSE is what keeps
the roundtrip kernel count at 57 and staged at 67.  This bench measures
kernel counts and wall-clock with CSE off, with the paper's limited
(syntactic) CSE, and with the stronger commutative extension.
"""

import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, Q_CRITERION
from repro.host.engine import DerivedFieldEngine

MODES = {
    "no_cse": dict(cse=False),
    "limited_cse": dict(cse=True),             # the paper's pass
    "commutative_cse": dict(cse=True, commutative_cse=True),
}


def counts_for(mode, strategy="staged"):
    engine = DerivedFieldEngine(device="cpu", strategy=strategy,
                                dry_run=True, **MODES[mode])
    compiled = engine.compile(Q_CRITERION)
    from repro.strategies import get_strategy, plan
    from repro.workloads import SubGrid, make_shapes
    shapes = {k: v for k, v in make_shapes(SubGrid(32, 32, 32)).items()
              if k in EXPRESSION_INPUTS["q_criterion"]}
    return plan(get_strategy(strategy), shapes, "cpu",
                network=compiled.network)


def test_cse_ablation_artifact(results_dir, benchmark):
    rows = benchmark.pedantic(
        lambda: {mode: counts_for(mode) for mode in MODES},
        rounds=1, iterations=1)
    lines = ["== Ablation: common-subexpression elimination "
             "(Q-criterion, staged) ==",
             f"{'mode':<18} {'K-Exe':>6} {'modeled s':>10}"]
    for mode, result in rows.items():
        lines.append(f"{mode:<18} {result.counts.kernel_execs:>6} "
                     f"{result.runtime:>10.3f}")
    write_artifact(results_dir, "ablation_cse.txt", "\n".join(lines))

    no, limited, commutative = (rows[m].counts.kernel_execs
                                for m in MODES)
    assert no > limited == 67 > commutative
    assert rows["no_cse"].runtime > rows["limited_cse"].runtime


@pytest.mark.parametrize("mode", list(MODES))
def test_bench_cse_execution(benchmark, mode, bench_fields):
    engine = DerivedFieldEngine(device="cpu", strategy="staged",
                                **MODES[mode])
    compiled = engine.compile(Q_CRITERION)
    inputs = {k: bench_fields[k]
              for k in EXPRESSION_INPUTS["q_criterion"]}
    report = benchmark(engine.execute, compiled, inputs)
    benchmark.extra_info["kernel_execs"] = report.counts.kernel_execs
