"""Validate a Chrome trace-event JSON file (CI trace-smoke gate).

Usage::

    python benchmarks/validate_trace.py trace.json

Checks the invariants the exporter promises — the ones a trace viewer
needs to load the file at all:

* top level is ``{"traceEvents": [...]}``;
* every event has ``name``/``ph``/``ts``/``pid``/``tid``; complete
  events (``ph: "X"``) also carry a non-negative ``dur``;
* timestamps are non-negative and, past the leading metadata block,
  sorted ascending;
* at least one engine-phase span, one device-lane event, and one counter
  sample are present (an empty trace means the instrumentation fell off).

Exit code 0 on success, 1 with a diagnostic on the first violation.
"""

from __future__ import annotations

import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "pid", "tid")


def fail(message: str) -> int:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    return 1


def validate(path: str) -> int:
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        return fail(f"cannot load {path!r}: {exc}")

    if not isinstance(data, dict) or "traceEvents" not in data:
        return fail("top level must be an object with 'traceEvents'")
    events = data["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail("'traceEvents' must be a non-empty list")

    for i, event in enumerate(events):
        missing = [k for k in REQUIRED_KEYS if k not in event]
        if missing:
            return fail(f"event {i} missing keys {missing}: {event}")
        if event["ts"] < 0:
            return fail(f"event {i} has negative ts: {event['ts']}")
        if event["ph"] == "X" and event.get("dur", -1) < 0:
            return fail(f"complete event {i} lacks non-negative dur")

    data_events = [e for e in events if e["ph"] != "M"]
    for prev, event in zip(data_events, data_events[1:]):
        if event["ts"] < prev["ts"]:
            return fail(f"timestamps not sorted: {prev['ts']} then "
                        f"{event['ts']} ({event['name']!r})")

    phases = {e["name"] for e in events if e.get("cat") == "engine"}
    if not phases & {"engine.execute", "engine.compile"}:
        return fail("no engine-phase spans found")
    if not any(e["ph"] == "X" and e["pid"] > 1 for e in events):
        return fail("no device-lane events found")
    if not any(e["ph"] == "C" for e in events):
        return fail("no counter samples found")

    lanes = {(e["pid"], e["tid"]) for e in events
             if e["ph"] == "X" and e["pid"] > 1}
    print(f"validate_trace: OK: {len(events)} events, "
          f"{len(data_events)} data, {len(lanes)} device lanes")
    return 0


if __name__ == "__main__":
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    sys.exit(validate(sys.argv[1]))
