"""Extension benches: the paper's future-work strategies (Section VI).

*Streaming* trades kernel launches for a bounded device footprint —
sweeping the chunk count shows the memory/runtime frontier, including the
headline capability: Q-criterion on Table I grids the M2050 cannot fit
under plain fusion.  *Multi-device* splits one node's problem across both
M2050s, near-halving the modeled makespan and the per-device memory.
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, Q_CRITERION
from repro.clsim import GIB
from repro.host.engine import DerivedFieldEngine
from repro.strategies import (FusionStrategy, MultiDeviceStrategy,
                              StreamingFusionStrategy)
from repro.workloads import SubGrid, make_fields


@pytest.fixture(scope="module")
def medium_fields():
    return make_fields(SubGrid(48, 48, 96), seed=5)


def run(strategy, fields, device="gpu"):
    engine = DerivedFieldEngine(device=device, strategy=strategy)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}
    return engine.execute(Q_CRITERION, inputs)


def test_streaming_frontier_artifact(results_dir, benchmark,
                                     medium_fields):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    base = run("fusion", medium_fields)
    lines = ["== Streaming fusion: chunk-count frontier "
             "(Q-criterion, 221,184 cells, M2050 model) ==",
             f"{'chunks':>7} {'K-Exe':>6} {'peak bytes':>12} "
             f"{'modeled s':>10}"]
    lines.append(f"{'fused':>7} {base.counts.kernel_execs:>6} "
                 f"{base.mem_high_water:>12,} {base.timing.total:>10.5f}")
    prev_mem = base.mem_high_water
    for n_chunks in (2, 4, 8):
        report = run(StreamingFusionStrategy(n_chunks), medium_fields)
        np.testing.assert_allclose(report.output, base.output,
                                   rtol=1e-12, atol=1e-12)
        lines.append(f"{n_chunks:>7} {report.counts.kernel_execs:>6} "
                     f"{report.mem_high_water:>12,} "
                     f"{report.timing.total:>10.5f}")
        assert report.mem_high_water < prev_mem
        prev_mem = report.mem_high_water
    write_artifact(results_dir, "ext_streaming.txt", "\n".join(lines))


def test_multidevice_artifact(results_dir, benchmark, medium_fields):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    single = run("fusion", medium_fields)
    strategy = MultiDeviceStrategy(devices=("gpu", "gpu"))
    dual = run(strategy, medium_fields)
    np.testing.assert_allclose(dual.output, single.output, rtol=1e-12,
                               atol=1e-12)
    speedup = single.timing.total / dual.timing.total
    lines = ["== Multi-device fusion: one node, two M2050s ==",
             f"{'config':<12} {'modeled s':>10} {'peak/device B':>14}",
             f"{'1 GPU':<12} {single.timing.total:>10.5f} "
             f"{single.mem_high_water:>14,}",
             f"{'2 GPUs':<12} {dual.timing.total:>10.5f} "
             f"{dual.mem_high_water:>14,}",
             f"modeled speedup: {speedup:.2f}x; per-device memory "
             f"{single.mem_high_water / dual.mem_high_water:.2f}x smaller"]
    write_artifact(results_dir, "ext_multidevice.txt", "\n".join(lines))
    assert 1.5 < speedup < 2.3
    assert dual.mem_high_water < 0.75 * single.mem_high_water


def test_streaming_unlocks_oversized_gpu_case(benchmark):
    """Plain fusion cannot fit Q-criterion's largest Table I grids on the
    M2050 (Fig 5/6 gray cases); streaming executes the same shape chunked.
    Verified here at reduced scale against a proportionally tiny device."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    import dataclasses
    from repro.clsim import CLEnvironment, NVIDIA_M2050_GPU
    from repro.errors import CLOutOfMemoryError

    grid = SubGrid(32, 12, 12)
    fields = make_fields(grid, seed=6)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}
    # room for ~3.9 problem-sized arrays; fused Q-crit holds u, v, w and
    # the output simultaneously (4 arrays + coordinate scraps)
    tiny = dataclasses.replace(NVIDIA_M2050_GPU,
                               global_mem_bytes=int(3.9 * grid.n_cells * 8))
    engine = DerivedFieldEngine(device=tiny, strategy="fusion")
    compiled = engine.compile(Q_CRITERION)
    with pytest.raises(CLOutOfMemoryError):
        FusionStrategy().execute(compiled.network, inputs,
                                 CLEnvironment(tiny))
    report = StreamingFusionStrategy(8).execute(
        compiled.network, inputs, CLEnvironment(tiny))
    assert report.output is not None
    assert report.mem_high_water <= tiny.global_mem_bytes


@pytest.mark.parametrize("strategy_name,factory", [
    ("fusion", lambda: "fusion"),
    ("streaming-4", lambda: StreamingFusionStrategy(4)),
    ("multi-device", lambda: MultiDeviceStrategy(("gpu", "gpu"))),
])
def test_bench_extension_wallclock(benchmark, strategy_name, factory,
                                   medium_fields):
    engine = DerivedFieldEngine(device="gpu", strategy=factory())
    compiled = engine.compile(Q_CRITERION)
    inputs = {k: medium_fields[k]
              for k in EXPRESSION_INPUTS["q_criterion"]}
    report = benchmark(engine.execute, compiled, inputs)
    benchmark.extra_info["modeled_seconds"] = report.timing.total
