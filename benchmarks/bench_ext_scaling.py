"""Extension bench: distributed scaling study (the paper's future-work
"comprehensive performance study ... in a distributed-memory parallel
setting"), modeled over the Fig 7 configuration's hardware."""

import pytest
from conftest import write_artifact

from repro.experiments import format_scaling, strong_scaling, weak_scaling


def test_scaling_artifact(results_dir, benchmark):
    strong = benchmark.pedantic(
        strong_scaling, kwargs=dict(rank_counts=(64, 128, 256, 512, 1024)),
        rounds=1, iterations=1)
    weak = weak_scaling(rank_counts=(32, 64, 128, 256))
    content = (format_scaling(strong, kind="strong") + "\n\n"
               + format_scaling(weak, kind="weak"))
    write_artifact(results_dir, "ext_scaling.txt", content)

    # strong scaling: halving work per rank halves the makespan (within a
    # few % — ghost-layer asymmetry between corner and interior blocks)
    for a, b in zip(strong, strong[1:]):
        assert b.makespan == pytest.approx(a.makespan / 2, rel=0.05)
    # weak scaling: flat makespan
    base = weak[0].makespan
    for point in weak[1:]:
        assert point.makespan == pytest.approx(base, rel=0.05)
    # nobody runs out of memory anywhere in either study
    assert all(p.failed_ranks == 0 for p in (*strong, *weak))


def test_strong_scaling_memory_constant(benchmark):
    """More ranks never need more per-device memory (each still holds one
    ghosted block at a time)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    points = strong_scaling(rank_counts=(128, 512))
    assert points[1].mem_per_rank == pytest.approx(
        points[0].mem_per_rank, rel=0.02)


def test_invalid_rank_count_rejected(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with pytest.raises(ValueError, match="divide"):
        strong_scaling(rank_counts=(100,))
