"""Regenerates Table I: the twelve RT sub-grids used for single-device
evaluation, and times synthetic-field generation for the smallest one."""

from conftest import write_artifact

from repro.experiments import format_table1
from repro.workloads import SubGrid, TABLE1_SUBGRIDS, make_fields


def test_table1_catalogue(results_dir, benchmark):
    table = benchmark.pedantic(format_table1, rounds=3, iterations=1)
    write_artifact(results_dir, "table1.txt", table)
    assert "9,437,184" in table
    assert "113,246,208" in table
    assert len(TABLE1_SUBGRIDS) == 12


def test_bench_field_synthesis(benchmark):
    """Wall-clock cost of synthesizing the RT-like workload (scaled)."""
    grid = SubGrid(24, 24, 32)
    fields = benchmark(make_fields, grid, seed=0)
    assert fields["u"].shape == (grid.n_cells,)
