#!/usr/bin/env python
"""Continuous benchmark telemetry and the regression gate.

Each invocation runs the warm-path benchmark suite and appends one
normalized data point — ``BENCH_<n>.json`` — to the perf trajectory in
``benchmarks/results/`` (or ``--results-dir``):

* **cache** — warm ``execute()`` through the plan cache for
  q_criterion on all three paper strategies (median wall seconds,
  modeled seconds, peak device bytes, Table II event counts);
* **service** — a small closed-loop run against the concurrent
  service (wall seconds, served count, modeled device seconds);
* **fig5** — a paper-scale dry-run subset (Table I row 6 grids)
  through the device model: modeled runtime, peak bytes, event counts
  — fully deterministic, so any drift is a real behavior change;
* **overhead** — the metrics-registry cost on the warm fusion path,
  computed by op accounting: exact per-run op counts x per-op cost
  over the null instrument, divided by warm wall time (the acceptance
  bar is <= 1% of wall time; gate with ``--check-overhead``);
* **recorder overhead** — the always-on flight recorder's cost on the
  same warm path, by the same op-accounting construction (spans
  folded, device-event batches bridged, counter samples, plan notes
  vs the null tracer; ISSUE 10's bar is <= 2%; gate with
  ``--check-recorder-overhead``);
* **codegen** — the compiled-executor acceptance gates: warm compiled
  fusion must beat the pinned interpreter case by >= 1.5x wall with
  bitwise-identical output, and a fresh engine against a populated
  plan-cache directory must warm with zero codegen compiles;
* **batching** — the micro-batching acceptance gate (ISSUE 9): at a
  deterministic batchable load (presubmitted same-expression backlog),
  batched dispatch (``max_batch=8``) must sustain >= 1.3x the modeled
  throughput of unbatched dispatch (``max_batch=1``) on fusion
  q_criterion.  Both runs drain a stopped-then-started service, so the
  modeled ratio is deterministic and safe to hard-gate.

The new artifact is diffed against the previous ``BENCH_<n-1>.json``:
a *hard-gated* metric (modeled seconds, peak device bytes — both
deterministic) that regressed by more than ``--threshold`` (default
15%) fails the run with exit status 1; wall-clock regressions warn
(``--strict-wall`` promotes them to failures on quiet machines).
``--synthetic-slowdown 0.2`` inflates the measured wall and modeled
times by 20% after measurement, to demonstrate the gate trips.

Run as ``PYTHONPATH=src python benchmarks/regress.py`` (CI's
bench-regression job does exactly that and uploads the artifact).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import statistics
import sys
import time

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS  # noqa: E402
from repro.experiments import run_case  # noqa: E402
from repro.host.engine import DerivedFieldEngine  # noqa: E402
from repro.metrics import MetricsRegistry, set_registry  # noqa: E402
from repro.workloads import SubGrid, TABLE1_SUBGRIDS, make_fields  # noqa: E402

ARTIFACT_RE = re.compile(r"^BENCH_(\d+)\.json$")
SCHEMA_VERSION = 1

WARM_GRID = SubGrid(16, 16, 32)      # the derive default
STRATEGIES = ("roundtrip", "staged", "fusion")
FIG5_ROW = 6                          # Table I row used for the subset

# Metrics the gate compares between consecutive artifacts.  Hard-gated
# metrics are deterministic outputs of the device model — any drift is
# a real behavior change, so >threshold fails the run.  Wall times are
# soft by default (warn only): on a shared machine their run-to-run
# noise exceeds any useful threshold (pass --strict-wall to gate them
# anyway on a quiet, dedicated box).
HARD_GATED_METRICS = ("modeled_s", "peak_device_bytes")
SOFT_GATED_METRICS = ("wall_s",)


def _case_record(report, wall_s):
    return {
        "wall_s": wall_s,
        "modeled_s": report.timing.total,
        "peak_device_bytes": report.mem_high_water,
        "events": {
            "dev_writes": report.counts.dev_writes,
            "dev_reads": report.counts.dev_reads,
            "kernel_execs": report.counts.kernel_execs,
        },
    }


def bench_cache(rounds: int) -> dict:
    """Warm plan-cache executes: q_criterion on all three strategies.

    The default engines now run the compiled executor where it applies
    (fusion); ``cache.q_criterion.fusion_interpreted`` pins the
    interpreter so the compiled speedup is measured head to head on the
    same inputs, with bitwise-identical outputs asserted.
    """
    fields = make_fields(WARM_GRID, seed=0)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}
    cases = {}
    outputs = {}
    configs = [(f"cache.q_criterion.{s}", s, None) for s in STRATEGIES]
    configs.append(("cache.q_criterion.fusion_interpreted", "fusion",
                    "vectorized"))
    for case_name, strategy, backend in configs:
        engine = DerivedFieldEngine(device="cpu", strategy=strategy,
                                    backend=backend)
        compiled = engine.compile(EXPRESSIONS["q_criterion"])
        engine.execute(compiled, inputs)          # populate the cache
        samples = []
        report = None
        for _ in range(rounds):
            start = time.perf_counter()
            report = engine.execute(compiled, inputs)
            samples.append(time.perf_counter() - start)
        assert report.cache is not None and report.cache.hit
        record = _case_record(report, statistics.median(samples))
        if report.codegen is not None:
            record["executor"] = report.codegen.backend
        cases[case_name] = record
        outputs[case_name] = report.output.tobytes()
    assert outputs["cache.q_criterion.fusion"] == \
        outputs["cache.q_criterion.fusion_interpreted"], \
        "compiled fusion output diverged from the interpreter"
    return cases


def bench_compiled_speedup(rounds: int) -> dict:
    """Head-to-head wall gate: warm compiled fusion vs the pinned
    interpreter on the same inputs.

    The trajectory cases keep their median ``wall_s`` at the requested
    round count; this gate needs a noise-robust estimate even when
    ``--rounds`` is tiny (the test harness passes 2), so it interleaves
    the two engines round by round (slow system phases hit both
    equally) and takes the minimum over at least 20 rounds — wall noise
    is one-sided additive, so min converges on the true cost.
    """
    rounds = max(rounds, 20)
    fields = make_fields(WARM_GRID, seed=0)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}
    engines = {}
    for label, backend in (("interpreted", "vectorized"),
                           ("compiled", "compiled")):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend=backend)
        compiled = engine.compile(EXPRESSIONS["q_criterion"])
        engine.execute(compiled, inputs)                     # warm
        engines[label] = (engine, compiled)
    best = {label: None for label in engines}
    for _ in range(rounds):
        for label, (engine, compiled) in engines.items():
            start = time.perf_counter()
            engine.execute(compiled, inputs)
            elapsed = time.perf_counter() - start
            if best[label] is None or elapsed < best[label]:
                best[label] = elapsed
    return {
        "rounds": rounds,
        "interpreted_best_s": best["interpreted"],
        "compiled_best_s": best["compiled"],
        "speedup": best["interpreted"] / best["compiled"],
    }


def bench_codegen_restart() -> dict:
    """Persistent-plan-cache restart: a fresh engine against a populated
    ``--plan-cache-dir`` must report zero codegen compiles."""
    import tempfile

    fields = make_fields(WARM_GRID, seed=0)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}
    phases = {}
    with tempfile.TemporaryDirectory() as cache_dir:
        for phase in ("cold", "restart"):
            registry = MetricsRegistry()
            previous = set_registry(registry)
            try:
                engine = DerivedFieldEngine(device="cpu",
                                            strategy="fusion",
                                            backend="compiled",
                                            plan_cache_dir=cache_dir)
                start = time.perf_counter()
                report = engine.execute(EXPRESSIONS["q_criterion"],
                                        inputs)
                wall = time.perf_counter() - start
            finally:
                set_registry(previous)
            phases[phase] = {
                "first_execute_wall_s": wall,
                "disposition": report.codegen.disposition,
                "compiles": registry.value(
                    "repro_codegen_compiles_total"),
                "disk_hits": registry.value(
                    "repro_codegen_disk_hits_total"),
            }
    return phases


def bench_service(requests: int, clients: int) -> dict:
    """A small closed-loop run against the concurrent service.

    Pinned to ``max_batch=1``: the trajectory metric is per-request
    serving cost, which opportunistic closed-loop coalescing would
    turn nondeterministic (batching has its own gate, below).
    """
    from repro.service import build_service, default_cases, run_load

    fields = make_fields(WARM_GRID, seed=0)
    cases = default_cases(fields, ["q_criterion"])
    start = time.perf_counter()
    with build_service(("cpu",), max_batch=1) as service:
        load = run_load(service, cases, clients=clients, requests=requests)
        snapshot = service.snapshot()
    wall = time.perf_counter() - start
    modeled = sum(d["modeled_seconds"]
                  for d in snapshot["devices"].values())
    return {
        "service.q_criterion": {
            "wall_s": wall,
            "modeled_s": modeled,
            "served": load["outcomes"].get("served", 0),
            "requests": requests,
        },
    }


def bench_batching() -> dict:
    """The micro-batching acceptance ratio (deterministic; see
    ``bench_service.run_batching_bench``)."""
    import bench_service as service_bench

    return service_bench.run_batching_bench(
        service_bench.SMOKE_BATCH_REQUESTS)


def bench_fig5_subset() -> dict:
    """Paper-scale dry-run subset: deterministic modeled numbers."""
    grid = TABLE1_SUBGRIDS[FIG5_ROW - 1]
    cases = {}
    for strategy in STRATEGIES:
        result = run_case("q_criterion", grid, "gpu", strategy)
        cases[f"fig5.q_criterion.gpu.{strategy}"] = {
            "modeled_s": result.runtime if not result.failed else None,
            "peak_device_bytes": result.mem_high_water,
            "events": {
                "dev_writes": result.dev_writes,
                "dev_reads": result.dev_reads,
                "kernel_execs": result.kernel_execs,
            },
            "failed": result.failed,
        }
    return cases


class _CountingInstrument:
    """Null-shaped instrument that tallies update calls by kind."""

    def __init__(self, ops):
        self._ops = ops

    def labels(self, **labels):
        return self

    def inc(self, amount=1.0):
        self._ops["inc"] += 1

    def dec(self, amount=1.0):
        self._ops["inc"] += 1            # dec costs the same as inc

    def set(self, value):
        self._ops["set"] += 1

    def set_max(self, value):
        self._ops["set_max"] += 1

    def observe(self, value):
        self._ops["observe"] += 1


class _CountingRegistry:
    """Counts every instrument update so the warm path's metric traffic
    can be measured exactly (one number per op kind per run)."""

    def __init__(self):
        self.ops = {"inc": 0, "set": 0, "set_max": 0, "observe": 0}
        self._instrument = _CountingInstrument(self.ops)

    def counter(self, name, help="", labelnames=()):
        return self._instrument

    def gauge(self, name, help="", labelnames=()):
        return self._instrument

    def histogram(self, name, help="", labelnames=(), buckets=()):
        return self._instrument


def _op_cost(callable_, loops: int = 200_000, repeats: int = 5) -> float:
    """Per-call seconds for a metric op, min over tight-loop repeats."""
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            callable_()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best / loops


def bench_registry_overhead(rounds: int) -> dict:
    """Registry cost on the warm fusion path, by op accounting.

    A head-to-head wall-time A/B of real vs null registry cannot
    resolve a sub-1% effect on a ~2.6 ms run against multi-percent
    scheduler jitter, so the overhead is computed from exact parts:
    count the metric ops one warm execute performs (a counting
    registry), microbenchmark each op kind's per-call cost against the
    null instrument (tight loops are stable to nanoseconds), and
    divide the summed delta by the measured warm wall time.
    """
    fields = make_fields(WARM_GRID, seed=0)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}

    def build(registry):
        previous = set_registry(registry)
        try:
            engine = DerivedFieldEngine(device="cpu", strategy="fusion")
            compiled = engine.compile(EXPRESSIONS["q_criterion"])
            engine.execute(compiled, inputs)
            return engine, compiled
        finally:
            set_registry(previous)

    # Exact op counts for one warm run (deterministic).
    counting = _CountingRegistry()
    engine, compiled = build(counting)
    counting.ops.update({k: 0 for k in counting.ops})
    engine.execute(compiled, inputs)
    ops = dict(counting.ops)

    # Per-op cost of the real instruments over the null baseline.
    registry = MetricsRegistry()
    counter = registry.counter("bench_ops_total", "overhead probe")
    gauge = registry.gauge("bench_ops_bytes", "overhead probe")
    histogram = registry.histogram("bench_ops_seconds", "overhead probe")
    from repro.metrics.registry import _NULL_INSTRUMENT
    null_cost = _op_cost(_NULL_INSTRUMENT.inc)
    cost = {
        "inc": _op_cost(counter.inc) - null_cost,
        "set": _op_cost(lambda: gauge.set(1.0)) - null_cost,
        "set_max": _op_cost(lambda: gauge.set_max(1.0)) - null_cost,
        "observe": _op_cost(lambda: histogram.observe(1e-4)) - null_cost,
    }
    overhead_s = sum(ops[kind] * max(0.0, cost[kind]) for kind in ops)

    # Warm wall time with the real registry in place.
    engine, compiled = build(MetricsRegistry())
    wall = statistics.median(_timed_runs(engine, compiled, inputs,
                                         max(rounds, 20)))
    return {
        "warm_wall_s": wall,
        "overhead_s": overhead_s,
        "ops_per_run": ops,
        "op_cost_s": cost,
        "fraction": overhead_s / wall,
    }


def bench_recorder_overhead(rounds: int) -> dict:
    """Flight-recorder cost on the warm fusion path, by op accounting.

    Same model as :func:`bench_registry_overhead` — a wall-time A/B of
    recorder vs ``NULL_TRACER`` cannot resolve a <=2% effect against
    scheduler jitter, so the cost is built from exact parts: one warm
    execute's sealed :class:`~repro.obs.FlightRecorder` record gives the
    per-run op counts (spans folded, device-event batches bridged,
    counter samples offered, plan notes), each op kind is
    microbenchmarked against the null tracer, and the summed delta is
    divided by the measured warm wall time with the recorder installed.
    The ISSUE 10 acceptance bar is <= 2% (gate with
    ``--check-recorder-overhead``).
    """
    from repro.obs import FlightRecorder
    from repro.trace import NULL_TRACER

    fields = make_fields(WARM_GRID, seed=0)
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}

    # Exact op counts for one warm run: the engine's root span seals a
    # record; its contents are the per-run recorder traffic.
    recorder = FlightRecorder()
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                tracer=recorder)
    compiled = engine.compile(EXPRESSIONS["q_criterion"])
    engine.execute(compiled, inputs)              # populate the cache
    engine.execute(compiled, inputs)              # the counted warm run
    record = recorder.records()[-1]
    ops = {
        "spans": len(record.spans) + record.dropped_spans,
        "batches": len(record.batches) + record.dropped_batches,
        "plan_notes": 0 if record.plan is None else 1,
    }
    # Counter samples never land on a non-retain recorder, so count the
    # offered calls with a retained twin on the same warm path.
    retained = FlightRecorder(retain=True)
    twin = DerivedFieldEngine(device="cpu", strategy="fusion",
                              tracer=retained)
    twin_compiled = twin.compile(EXPRESSIONS["q_criterion"])
    twin.execute(twin_compiled, inputs)
    before = len(retained.counters)
    twin.execute(twin_compiled, inputs)
    ops["counters"] = len(retained.counters) - before

    # Per-op recorder cost over the null tracer, measured inside a held
    # root span so child spans accumulate instead of sealing.
    events = max((b.events for b in record.batches),
                 key=len, default=())
    loops = 20_000

    def tracer_costs(tracer):
        with tracer.span("bench-root") as root:
            trace_id = getattr(root, "trace_id", None)
            span = _op_cost(
                lambda: tracer.span("bench-child").__enter__()
                .__exit__(None, None, None), loops=loops)
            batch = _op_cost(
                lambda: tracer.add_device_events(
                    "bench-dev", events, anchor=0.0, trace_id=trace_id),
                loops=2_000)
            counter = _op_cost(
                lambda: tracer.counter("bench_counter", 1.0),
                loops=loops)
            note = _op_cost(
                lambda: tracer.note_plan("bench-key",
                                         disposition="memory-hit"),
                loops=loops)
        root_cost = _op_cost(
            lambda: tracer.span("bench-root").__enter__()
            .__exit__(None, None, None), loops=2_000)
        return {"span": span, "root": root_cost, "batch": batch,
                "counter": counter, "note": note}

    real = tracer_costs(FlightRecorder())
    null = tracer_costs(NULL_TRACER)
    cost = {k: max(0.0, real[k] - null[k]) for k in real}
    overhead_s = (
        max(ops["spans"] - 1, 0) * cost["span"]
        + cost["root"]                        # the sealing root span
        + ops["batches"] * cost["batch"]
        + ops["counters"] * cost["counter"]
        + ops["plan_notes"] * cost["note"])

    # Warm wall time with the recorder installed.
    wall = statistics.median(_timed_runs(engine, compiled, inputs,
                                         max(rounds, 20)))
    return {
        "warm_wall_s": wall,
        "overhead_s": overhead_s,
        "ops_per_run": ops,
        "op_cost_s": cost,
        "events_per_batch": len(events),
        "fraction": overhead_s / wall,
    }


def _timed_runs(engine, compiled, inputs, rounds):
    samples = []
    for _ in range(rounds):
        start = time.perf_counter()
        engine.execute(compiled, inputs)
        samples.append(time.perf_counter() - start)
    return samples


# -- trajectory bookkeeping --------------------------------------------------

def trajectory(results_dir: pathlib.Path) -> list[tuple[int, pathlib.Path]]:
    points = []
    if results_dir.is_dir():
        for path in results_dir.iterdir():
            match = ARTIFACT_RE.match(path.name)
            if match:
                points.append((int(match.group(1)), path))
    return sorted(points)


def diff_gate(previous: dict, current: dict, threshold: float,
              ) -> tuple[list[str], list[str]]:
    """Gated-metric comparison.

    Returns ``(hard, soft)`` regression descriptions: *hard* entries
    fail the run, *soft* entries (wall times) warn unless
    ``--strict-wall`` promotes them.
    """
    hard, soft = [], []
    for name, new_case in current["cases"].items():
        old_case = previous.get("cases", {}).get(name)
        if old_case is None:
            continue
        for metric in HARD_GATED_METRICS + SOFT_GATED_METRICS:
            old = old_case.get(metric)
            new = new_case.get(metric)
            if not old or new is None:       # no baseline (0/None): skip
                continue
            ratio = new / old
            if ratio > 1.0 + threshold:
                bucket = hard if metric in HARD_GATED_METRICS else soft
                bucket.append(
                    f"{name}.{metric}: {old:.6g} -> {new:.6g} "
                    f"({(ratio - 1.0) * 100:+.1f}%, threshold "
                    f"+{threshold * 100:.0f}%)")
    return hard, soft


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run the warm-path benchmarks, append a BENCH_<n> "
                    "artifact, and gate on regression vs the previous "
                    "point")
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=HERE / "results",
                        help="trajectory directory (default "
                             "benchmarks/results)")
    parser.add_argument("--rounds", type=int, default=30,
                        help="warm rounds per cache case (default 30)")
    parser.add_argument("--requests", type=int, default=80,
                        help="service-bench requests (default 80)")
    parser.add_argument("--clients", type=int, default=4,
                        help="service-bench client threads (default 4)")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="relative regression that fails the gate "
                             "(default 0.15)")
    parser.add_argument("--synthetic-slowdown", type=float, default=0.0,
                        metavar="FRACTION",
                        help="inflate measured warm wall times by this "
                             "fraction (demonstrates the gate trips)")
    parser.add_argument("--check-overhead", type=float, default=None,
                        metavar="PCT",
                        help="also fail if registry overhead exceeds "
                             "PCT percent of warm wall time")
    parser.add_argument("--check-recorder-overhead", type=float,
                        default=None, metavar="PCT",
                        help="also fail if flight-recorder overhead "
                             "exceeds PCT percent of warm wall time "
                             "(ISSUE 10 bar: 2.0)")
    parser.add_argument("--strict-wall", action="store_true",
                        help="fail (not just warn) on wall-time "
                             "regressions; for quiet dedicated machines")
    args = parser.parse_args(argv)

    print(f"warm cache bench ({args.rounds} rounds x "
          f"{len(STRATEGIES)} strategies) ...")
    cases = bench_cache(args.rounds)
    print(f"service bench ({args.requests} requests, "
          f"{args.clients} clients) ...")
    cases.update(bench_service(args.requests, args.clients))
    print("fig5 paper-scale subset (dry-run) ...")
    cases.update(bench_fig5_subset())
    print("registry overhead (real vs null registry) ...")
    overhead = bench_registry_overhead(max(args.rounds, 20))
    print("flight-recorder overhead (recorder vs null tracer) ...")
    recorder_overhead = bench_recorder_overhead(max(args.rounds, 20))
    print("compiled executor head-to-head ...")
    headtohead = bench_compiled_speedup(args.rounds)
    print("codegen disk-cache restart ...")
    restart = bench_codegen_restart()
    print("micro-batched vs unbatched service dispatch ...")
    batching = bench_batching()

    if args.synthetic_slowdown:
        # Inflate measured AND modeled times: modeled_s is deterministic,
        # so the gate trip is guaranteed regardless of wall-clock noise.
        for case in cases.values():
            for metric in ("wall_s", "modeled_s"):
                if case.get(metric):
                    case[metric] *= 1.0 + args.synthetic_slowdown
        print(f"synthetic slowdown applied: "
              f"+{args.synthetic_slowdown * 100:.0f}% on wall_s/modeled_s")

    points = trajectory(args.results_dir)
    seq = points[-1][0] + 1 if points else 1
    artifact = {
        "schema": SCHEMA_VERSION,
        "seq": seq,
        "created_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "config": {
            "grid": WARM_GRID.label(),
            "rounds": args.rounds,
            "requests": args.requests,
            "clients": args.clients,
            "synthetic_slowdown": args.synthetic_slowdown,
        },
        "registry_overhead": overhead,
        "recorder_overhead": recorder_overhead,
        "codegen_speedup": headtohead,
        "codegen_restart": restart,
        "batching": batching,
        "cases": cases,
    }
    args.results_dir.mkdir(parents=True, exist_ok=True)
    path = args.results_dir / f"BENCH_{seq}.json"
    path.write_text(json.dumps(artifact, indent=2) + "\n")
    print(f"wrote {path} "
          f"({len(cases)} cases, registry overhead "
          f"{overhead['fraction'] * 100:.2f}%)")

    failed = False
    if points:
        previous = json.loads(points[-1][1].read_text())
        hard, soft = diff_gate(previous, artifact, args.threshold)
        if args.strict_wall:
            hard, soft = hard + soft, []
        for line in soft:
            print(f"WARNING (wall-clock, not gated): {line}",
                  file=sys.stderr)
        if hard:
            print(f"REGRESSION vs BENCH_{points[-1][0]}.json:",
                  file=sys.stderr)
            for line in hard:
                print(f"  {line}", file=sys.stderr)
            failed = True
        else:
            print(f"no regression vs BENCH_{points[-1][0]}.json "
                  f"(threshold +{args.threshold * 100:.0f}%)")
    else:
        print("first trajectory point; nothing to diff against")

    if args.check_overhead is not None \
            and overhead["fraction"] * 100 > args.check_overhead:
        print(f"REGISTRY OVERHEAD {overhead['fraction'] * 100:.2f}% "
              f"exceeds {args.check_overhead:.2f}% of warm wall time",
              file=sys.stderr)
        failed = True

    print(f"flight-recorder overhead: "
          f"{recorder_overhead['fraction'] * 100:.2f}% of warm wall "
          f"({recorder_overhead['overhead_s'] * 1e6:.1f} us over "
          f"{recorder_overhead['warm_wall_s'] * 1e3:.2f} ms)")
    if args.check_recorder_overhead is not None \
            and recorder_overhead["fraction"] * 100 \
            > args.check_recorder_overhead:
        print(f"RECORDER OVERHEAD "
              f"{recorder_overhead['fraction'] * 100:.2f}% exceeds "
              f"{args.check_recorder_overhead:.2f}% of warm wall time",
              file=sys.stderr)
        failed = True

    # Compiled-executor acceptance gates (ISSUE 6): the compiled warm
    # fusion path must beat the interpreter by >= 1.5x wall, and a
    # restarted engine must warm from disk with zero recompiles.
    speedup = headtohead["speedup"]
    print(f"compiled warm fusion speedup over interpreter: "
          f"{speedup:.2f}x (interleaved best-of-"
          f"{headtohead['rounds']})")
    if speedup < 1.5:
        print(f"COMPILED SPEEDUP {speedup:.2f}x below the 1.5x "
              "acceptance bar", file=sys.stderr)
        failed = True
    if restart["restart"]["compiles"] != 0 \
            or restart["restart"]["disk_hits"] < 1:
        print("CODEGEN RESTART recompiled instead of warming from the "
              f"disk cache: {restart['restart']}", file=sys.stderr)
        failed = True
    else:
        print("codegen restart: zero recompiles "
              f"({restart['restart']['disposition']}, first execute "
              f"{restart['restart']['first_execute_wall_s'] * 1e3:.1f} ms "
              f"vs cold "
              f"{restart['cold']['first_execute_wall_s'] * 1e3:.1f} ms)")

    # Micro-batching acceptance gate (ISSUE 9): coalesced dispatch must
    # sustain >= 1.3x the unbatched modeled throughput at batchable
    # load.  Deterministic (presubmitted backlog), so hard-gated.
    batch_ratio = batching["batched_speedup_modeled"]
    batch_stats = batching["batched"]["batching"]
    print(f"batched dispatch modeled throughput: {batch_ratio:.2f}x "
          f"unbatched (mean batch {batch_stats['mean_batch_size']:.1f} "
          f"over {batch_stats['coalesced_launches']} coalesced launches)")
    if batch_ratio < batching["floor"]:
        print(f"BATCHED THROUGHPUT {batch_ratio:.2f}x below the "
              f"{batching['floor']}x acceptance bar", file=sys.stderr)
        failed = True

    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
