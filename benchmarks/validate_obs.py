#!/usr/bin/env python
"""Validate debug bundles and the live health surfaces (CI obs-smoke).

Two modes:

* **bundle-dir validation** (default): ``validate_obs.py BUNDLE_DIR``
  walks every bundle under the root and checks the ISSUE 10 contract —
  manifest schema/trigger, all six files present and parseable, the
  Chrome trace's events joined to the manifest's ``trace_id``, and
  (the acceptance criterion) the trace's device-lane event counts
  equal to ``report.json``'s executed-operation counters.
  ``--expect-trigger`` / ``--min-bundles`` pin what CI injected.

* **live smoke** (``--live``): spins an in-process service with a
  debug-bundle dir and an HTTP metrics server, drives a single-
  expression load with injected deadline misses, and asserts the
  health surfaces react: ``/readyz`` is ready, ``/healthz`` flips to
  503 once the error burn rate exceeds the budget, ``/debugz`` lists
  the written bundles — then runs bundle-dir validation on what was
  produced.

Usage::

    python benchmarks/validate_obs.py BUNDLE_DIR \
        [--expect-trigger deadline-miss] [--min-bundles 1]
    python benchmarks/validate_obs.py --live [--requests 30] [--misses 8]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

HERE = pathlib.Path(__file__).resolve().parent
SRC = HERE.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

from repro.obs.bundles import BUNDLE_SCHEMA, TRIGGERS  # noqa: E402

REQUIRED_FILES = ("manifest.json", "trace.json", "report.json",
                  "plan.json", "metrics.json", "log.jsonl")

# Chrome-trace device-lane category -> ExecutionReport counter name.
LANE_COUNTERS = {"kernel": "kernel_execs",
                 "dev-write": "dev_writes",
                 "dev-read": "dev_reads"}


def _load_json(path: pathlib.Path):
    with open(path) as fh:
        return json.load(fh)


def validate_bundle(bundle: pathlib.Path) -> "list[str]":
    """Errors for one bundle directory (empty list = valid)."""
    where = bundle.name
    errors = []
    for name in REQUIRED_FILES:
        if not (bundle / name).is_file():
            errors.append(f"{where}: missing {name}")
    if errors:
        return errors

    try:
        manifest = _load_json(bundle / "manifest.json")
        trace = _load_json(bundle / "trace.json")
        report = _load_json(bundle / "report.json")
        _load_json(bundle / "plan.json")
        metrics = _load_json(bundle / "metrics.json")
    except ValueError as exc:
        return [f"{where}: unparseable bundle file: {exc}"]

    if manifest.get("schema") != BUNDLE_SCHEMA:
        errors.append(f"{where}: schema {manifest.get('schema')!r}, "
                      f"want {BUNDLE_SCHEMA!r}")
    if manifest.get("trigger") not in TRIGGERS:
        errors.append(f"{where}: unknown trigger "
                      f"{manifest.get('trigger')!r}")
    trace_id = manifest.get("trace_id")
    if not trace_id:
        errors.append(f"{where}: manifest has no trace_id")

    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        errors.append(f"{where}: trace.json has no traceEvents")
        events = []
    joined = [e for e in events if e.get("ph") == "X"
              and e.get("args", {}).get("trace_id") == trace_id]
    if trace_id and not joined:
        errors.append(f"{where}: no trace events joined to {trace_id}")

    # Structured-log slice: every line parses and carries the trace id
    # somewhere in the slice (context lines from other traces are fine).
    log_lines = []
    for i, line in enumerate((bundle / "log.jsonl").read_text()
                             .splitlines()):
        try:
            log_lines.append(json.loads(line))
        except ValueError:
            errors.append(f"{where}: log.jsonl line {i + 1} unparseable")

    if not isinstance(metrics, dict):
        errors.append(f"{where}: metrics.json is not a snapshot object")

    # The acceptance criterion: device-lane event counts in the Chrome
    # trace equal the request's ExecutionReport counters.  Host spans
    # render with pid 1; device lanes get their own pids.
    if report is not None and trace_id:
        lanes: "dict[str, int]" = {}
        for event in joined:
            if event.get("pid", 1) > 1:
                cat = event.get("cat")
                lanes[cat] = lanes.get(cat, 0) + 1
        counts = report.get("counts", {})
        for cat, counter in LANE_COUNTERS.items():
            want = counts.get(counter)
            got = lanes.get(cat, 0)
            if want is not None and got != want:
                errors.append(
                    f"{where}: trace {cat} lane has {got} events, "
                    f"report.counts.{counter} says {want}")
    return errors


def validate_dir(root: pathlib.Path, *, min_bundles: int = 1,
                 expect_trigger: str = None) -> "list[str]":
    errors = []
    bundles = sorted(p.parent for p in root.glob("*/manifest.json"))
    if len(bundles) < min_bundles:
        errors.append(f"{root}: {len(bundles)} bundles, "
                      f"want >= {min_bundles}")
    triggers = set()
    for bundle in bundles:
        errors.extend(validate_bundle(bundle))
        try:
            triggers.add(_load_json(bundle / "manifest.json")
                         .get("trigger"))
        except ValueError:
            pass
    if expect_trigger and expect_trigger not in triggers:
        errors.append(f"{root}: no bundle with trigger "
                      f"{expect_trigger!r} (saw {sorted(triggers)})")
    if not errors:
        print(f"{root}: {len(bundles)} bundles valid "
              f"(triggers: {sorted(triggers)})")
    return errors


def _http_json(url: str) -> "tuple[int, dict]":
    import urllib.error
    import urllib.request
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def run_live(requests: int, misses: int, keep_dir=None) -> "list[str]":
    """In-process service + HTTP smoke: bundles written, /healthz flips
    to 503 under the injected error burn, /readyz ready, /debugz lists
    the bundles."""
    import tempfile

    from repro.metrics.exporter import MetricsServer
    from repro.service import build_service, default_cases, run_load
    from repro.workloads import SubGrid, make_fields

    errors = []
    fields = make_fields(SubGrid(8, 8, 8), seed=0)
    with tempfile.TemporaryDirectory() as tmp:
        bundle_root = pathlib.Path(keep_dir or tmp) / "bundles"
        # max_batch=1: a coalesced launch bridges its device events
        # once for the whole batch, so per-member lane counts would
        # depend on dispatch timing.  Unbatched dispatch keeps the
        # trace-lanes == report-counters check deterministic.
        with build_service(("cpu",), max_batch=1,
                           debug_bundle_dir=bundle_root) as service:
            cases = default_cases(fields, ["q_criterion"])
            server = MetricsServer(service.metrics.registry,
                                   port=0).start()
            try:
                server.add_json_route("/healthz", service.health)
                server.add_json_route("/readyz", service.readiness)
                server.add_json_route("/debugz", service.debug_index)
                url = f"http://127.0.0.1:{server.port}"

                code, ready = _http_json(url + "/readyz")
                if code != 200 or not ready.get("ready"):
                    errors.append(f"/readyz not ready before load: "
                                  f"{code} {ready}")
                code, health = _http_json(url + "/healthz")
                if code != 200:
                    errors.append(f"/healthz unhealthy before load: "
                                  f"{code} {health}")

                load = run_load(service, cases, clients=4,
                                requests=requests, timeout=30,
                                inject_deadline_miss=misses)
                if load["outcomes"]["timed_out"] != misses:
                    errors.append(
                        f"injected {misses} misses but outcomes say "
                        f"{load['outcomes']}")

                code, health = _http_json(url + "/healthz")
                if code != 503 or health.get("healthy"):
                    errors.append(
                        f"/healthz did not flip to 503 under burn: "
                        f"{code} {health}")
                else:
                    burning = [name for name, row in
                               health.get("expressions", {}).items()
                               if row.get("burning")]
                    print(f"/healthz flipped to 503 "
                          f"(burning: {burning})")
                code, debug = _http_json(url + "/debugz")
                if code != 200 \
                        or len(debug.get("bundles", [])) < misses:
                    errors.append(
                        f"/debugz lists "
                        f"{len(debug.get('bundles', []))} bundles, "
                        f"want >= {misses}: code {code}")
            finally:
                server.close()
        errors.extend(validate_dir(bundle_root, min_bundles=misses,
                                   expect_trigger="deadline-miss"))
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate debug bundles / live obs smoke")
    parser.add_argument("bundle_dir", nargs="?", type=pathlib.Path,
                        help="bundle root to validate")
    parser.add_argument("--min-bundles", type=int, default=1)
    parser.add_argument("--expect-trigger", choices=TRIGGERS,
                        default=None)
    parser.add_argument("--live", action="store_true",
                        help="run the in-process service + HTTP smoke")
    parser.add_argument("--requests", type=int, default=30,
                        help="live-mode requests (default 30)")
    parser.add_argument("--misses", type=int, default=8,
                        help="live-mode injected deadline misses "
                             "(default 8)")
    args = parser.parse_args(argv)

    if not args.live and args.bundle_dir is None:
        parser.error("need a BUNDLE_DIR or --live")

    errors = []
    if args.live:
        errors.extend(run_live(args.requests, args.misses))
    if args.bundle_dir is not None:
        errors.extend(validate_dir(args.bundle_dir,
                                   min_bundles=args.min_bundles,
                                   expect_trigger=args.expect_trigger))
    if errors:
        for line in errors:
            print(f"INVALID: {line}", file=sys.stderr)
        return 1
    print("obs validation passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
