"""Regenerates Fig 5: single-device runtime vs data size for the three
expressions, two devices, three strategies plus the reference kernel.

The paper-scale series (12 Table I grids, modeled device time) is written
as an artifact with the paper's qualitative shape asserted; pytest-benchmark
wall-clocks the live strategies across scaled grid sizes so the runtime
*growth* is also measured for real.
"""

import pytest
from conftest import SCALE_FACTOR, write_artifact

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.experiments import format_fig_series, gpu_success_rate
from repro.host.engine import DerivedFieldEngine
from repro.workloads import make_fields, scaled_subgrids


def test_fig5_artifact(paper_sweep, results_dir, benchmark):
    def build():
        return [format_fig_series(paper_sweep, metric="runtime",
                                  expression=e) for e in EXPRESSIONS]

    panels = benchmark.pedantic(build, rounds=3, iterations=1)
    ok, total = gpu_success_rate(paper_sweep)
    content = "\n\n".join(panels) + (
        f"\n\nGPU completed {ok} of {total} test cases "
        f"(paper: 106 of 144)")
    write_artifact(results_dir, "fig5_runtime.txt", content)

    # the paper's headline orderings must be visible in the artifact data
    for row in paper_sweep:
        if row.failed or row.device != "gpu":
            continue
        peers = {r.executor: r for r in paper_sweep
                 if (r.expression, r.grid, r.device)
                 == (row.expression, row.grid, row.device)
                 and not r.failed}
        if {"fusion", "staged", "roundtrip"} <= set(peers):
            assert peers["fusion"].runtime < peers["staged"].runtime \
                < peers["roundtrip"].runtime


@pytest.mark.parametrize("executor", ["roundtrip", "staged", "fusion"])
@pytest.mark.parametrize("size_index", [0, 5, 11])
def test_bench_runtime_growth(benchmark, executor, size_index):
    """Wall-clock Fig 5 points: Q-criterion across three of the twelve
    (scaled) sweep sizes per strategy."""
    grid = scaled_subgrids(SCALE_FACTOR)[size_index]
    fields = make_fields(grid, seed=1)
    engine = DerivedFieldEngine(device="cpu", strategy=executor)
    compiled = engine.compile(EXPRESSIONS["q_criterion"])
    inputs = {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}

    report = benchmark(engine.execute, compiled, inputs)
    benchmark.extra_info["n_cells"] = grid.n_cells
    benchmark.extra_info["modeled_seconds"] = report.timing.total
    assert report.output is not None
