"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper artifact (table or figure):

* **wall-clock timings** come from pytest-benchmark running the real
  strategies on scaled-down Table I grids (the full 113M-cell grids do not
  fit a laptop, and absolute times are not the reproduction target);
* **paper-scale series** (Fig 5 runtimes, Fig 6 memory, Table II counts)
  come from full-scale dry-run plans through the device model.

Every regenerated artifact is also written to ``benchmarks/results/`` so
the paper-vs-measured comparison is reviewable after a run.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments import run_sweep
from repro.workloads import SubGrid, make_fields

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

# Table I grids shrunk 16x per axis: 12x12x(16..192); the sweep shape
# (12 sizes, same aspect trend) is preserved at ~0.03% of the cells.
SCALE_FACTOR = 16


@pytest.fixture(scope="session")
def bench_grid() -> SubGrid:
    """A single scaled grid for per-case wall-clock benchmarks."""
    return SubGrid(192 // SCALE_FACTOR, 192 // SCALE_FACTOR,
                   1024 // SCALE_FACTOR)


@pytest.fixture(scope="session")
def bench_fields(bench_grid):
    return make_fields(bench_grid, seed=11)


@pytest.fixture(scope="session")
def paper_sweep():
    """The full 288-case paper-scale sweep (dry-run planned)."""
    return run_sweep()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def write_artifact(results_dir: pathlib.Path, name: str,
                   content: str) -> None:
    (results_dir / name).write_text(content + "\n")
    print(f"\n{content}\n[written to benchmarks/results/{name}]")
