"""Regenerates Fig 4: the Q-criterion dataflow network, as Graphviz DOT
(the paper's figure is a drawing of exactly this graph)."""

from conftest import write_artifact

from repro.analysis.vortex import Q_CRITERION
from repro.dataflow import Network, render_dot
from repro.expr import eliminate_common_subexpressions, lower, parse


def test_fig4_artifact(results_dir, benchmark):
    def build():
        spec, _ = lower(parse(Q_CRITERION))
        return eliminate_common_subexpressions(spec)

    spec = benchmark.pedantic(build, rounds=3, iterations=1)
    dot = render_dot(spec, graph_name="q_criterion")
    write_artifact(results_dir, "fig4_network.dot", dot)

    # structural checks matching the paper's description of the network
    assert dot.count('label="grad3d') == 3
    assert dot.count("decompose[") == 9
    assert dot.count('"u"') >= 1 and '"dims"' in dot
    assert 'label="0.5"' in dot        # the pooled constant
    assert "q_crit" in dot             # user naming survives to the figure
    net = Network(spec)
    edge_count = dot.count(" -> ")
    assert edge_count >= len(net)      # every input edge drawn
