"""Front-end benches: LALR(1) table construction, expression parsing,
lowering, and CSE — the per-expression costs an in-situ host pays once,
amortized over every time step (Section III-D's usage model)."""

import pytest

from repro.analysis.vortex import EXPRESSIONS, Q_CRITERION
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.expr.grammar import expression_grammar
from repro.lexyacc import build_lalr_table


def test_bench_lalr_table_construction(benchmark):
    """Building the ACTION/GOTO tables (once per process)."""
    grammar = expression_grammar()
    table = benchmark(build_lalr_table, grammar)
    assert table.conflicts == []


@pytest.mark.parametrize("name", sorted(EXPRESSIONS))
def test_bench_parse(benchmark, name):
    program = benchmark(parse, EXPRESSIONS[name])
    assert program.statements


def test_bench_lower_and_cse(benchmark):
    program = parse(Q_CRITERION)

    def lower_and_optimize():
        spec, _ = lower(program)
        return eliminate_common_subexpressions(spec)

    spec = benchmark(lower_and_optimize)
    assert len(spec) > 60


def test_bench_compile_cached_vs_cold(benchmark):
    """The engine's compile cache: the hot path must be dict-lookup fast."""
    from repro.host.engine import DerivedFieldEngine
    engine = DerivedFieldEngine()
    engine.compile(Q_CRITERION)  # warm
    compiled = benchmark(engine.compile, Q_CRITERION)
    assert compiled.result_name == "q_crit"
