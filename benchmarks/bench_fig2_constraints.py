"""Regenerates the Fig 2 study: per-strategy device-memory constraints on
small example networks.

Fig 2's point is that the constraint ordering *depends on the network
shape*.  We reproduce both regimes our implementation exhibits:

* an elementwise chain, where fusion must hold every input at once and is
  the most constrained (the Section V-D "staged runs where fusion cannot"
  case);
* a gradient network, where roundtrip's per-kernel float4 working set
  exceeds fusion's steady-state footprint and staged's device-resident
  vector intermediates dominate everything (the Fig 6 regime).
"""

import numpy as np
import pytest
from conftest import write_artifact

from repro.dataflow import Network, NetworkSpec
from repro.strategies import (ArraySpec, FusionStrategy,
                              RoundtripStrategy, StagedStrategy, plan)

F8 = np.dtype(np.float64)
N = 100_000
UNIT = N * 8

STRATEGIES = (RoundtripStrategy, StagedStrategy, FusionStrategy)


def chain_network():
    spec = NetworkSpec()
    a, b, c = (spec.add_source(n) for n in ("A", "B", "C"))
    t = spec.add_filter("add", [a, b])
    spec.set_output(spec.add_filter("mult", [t, c]))
    return Network(spec), {n: ArraySpec((N,), F8) for n in "ABC"}


def gradient_network():
    """Two gradients feeding elementwise arithmetic (a VortMag slice).

    Staged must hold both float4 gradients in device memory at once;
    roundtrip's peak is one gradient kernel's working set; fusion streams
    everything through registers."""
    spec = NetworkSpec()
    for name in ("A", "B", "dims", "x", "y", "z"):
        spec.add_source(name)
    ga = spec.add_filter("grad3d", ["A", "dims", "x", "y", "z"])
    gb = spec.add_filter("grad3d", ["B", "dims", "x", "y", "z"])
    da = spec.add_filter("decompose", [ga], params={"component": 0})
    db = spec.add_filter("decompose", [gb], params={"component": 1})
    spec.set_output(spec.add_filter("mult", [da, db]))
    ni = 100
    shapes = {
        "A": ArraySpec((N,), F8),
        "B": ArraySpec((N,), F8),
        "dims": ArraySpec((3,), np.dtype(np.int32)),
        "x": ArraySpec((ni + 1,), F8),
        "y": ArraySpec((ni + 1,), F8),
        "z": ArraySpec((N // (ni * ni) + 1,), F8),
    }
    return Network(spec), shapes


def peaks(net, shapes):
    return {cls.name: plan(cls(), shapes, "gpu",
                           network=net).mem_high_water / UNIT
            for cls in STRATEGIES}


def test_fig2_artifact(results_dir, benchmark):
    def build():
        return peaks(*chain_network()), peaks(*gradient_network())

    chain, grad = benchmark.pedantic(build, rounds=3, iterations=1)
    lines = ["== Fig 2: device-memory constraints (problem-sized arrays) ==",
             f"{'network':<22} {'roundtrip':>10} {'staged':>10} "
             f"{'fusion':>10}"]
    for label, p in [("elementwise chain", chain),
                     ("gradient pipeline", grad)]:
        lines.append(f"{label:<22} {p['roundtrip']:>10.2f} "
                     f"{p['staged']:>10.2f} {p['fusion']:>10.2f}")
    lines.append("(paper's example: roundtrip 3, staged 4, fusion 5 — "
                 "shape-dependent; see EXPERIMENTS.md)")
    write_artifact(results_dir, "fig2_constraints.txt", "\n".join(lines))

    # chain regime: fusion most constrained (Section V-D)
    assert chain["fusion"] > chain["staged"]
    assert chain["fusion"] > chain["roundtrip"]
    # gradient regime: staged most constrained, fusion least (Fig 6)
    assert grad["staged"] > grad["roundtrip"] > grad["fusion"]


@pytest.mark.parametrize("network_factory", [chain_network,
                                             gradient_network])
def test_bench_constraint_planning(benchmark, network_factory):
    net, shapes = network_factory()
    result = benchmark(peaks, net, shapes)
    assert set(result) == {"roundtrip", "staged", "fusion"}
