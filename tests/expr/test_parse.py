"""Unit tests for the expression-language parser (repro.expr.parser)."""

import pytest

from repro.errors import ExpressionError, LexError, ParseError
from repro.expr import ast, parse, parser_diagnostics
from repro.analysis.vortex import (Q_CRITERION, VELOCITY_MAGNITUDE,
                                   VORTICITY_MAGNITUDE)


class TestBasicStatements:
    def test_simple_assignment(self):
        program = parse("a = b")
        assert program.result_name == "a"
        (stmt,) = program.statements
        assert stmt.expr == ast.Ident("b")

    def test_number_assignment(self):
        program = parse("a = 2.5")
        assert program.statements[0].expr == ast.Num(2.5)

    def test_scientific_notation(self):
        assert parse("a = 1e3").statements[0].expr == ast.Num(1000.0)
        assert parse("a = 2.5E-2").statements[0].expr == ast.Num(0.025)

    def test_multiple_statements_newline_separated(self):
        program = parse("a = 1\nb = a")
        assert [s.name for s in program.statements] == ["a", "b"]
        assert program.result_name == "b"

    def test_statements_without_separators(self):
        # statement boundaries are inferable: `expr IDENT` is never valid
        program = parse("a = 1 b = 2")
        assert [s.name for s in program.statements] == ["a", "b"]

    def test_semicolons_allowed(self):
        program = parse("a = 1; b = 2;")
        assert len(program.statements) == 2

    def test_comments_ignored(self):
        program = parse("# leading comment\na = 1 # trailing\n")
        assert len(program.statements) == 1


class TestOperators:
    def test_binary_ops(self):
        for op in "+-*/":
            expr = parse(f"a = b {op} c").statements[0].expr
            assert isinstance(expr, ast.BinOp)
            assert expr.op == op

    def test_precedence(self):
        expr = parse("a = b + c * d").statements[0].expr
        assert expr.op == "+"
        assert isinstance(expr.right, ast.BinOp)
        assert expr.right.op == "*"

    def test_left_associativity(self):
        expr = parse("a = b - c - d").statements[0].expr
        assert expr.op == "-"
        assert isinstance(expr.left, ast.BinOp)

    def test_parentheses(self):
        expr = parse("a = (b + c) * d").statements[0].expr
        assert expr.op == "*"
        assert isinstance(expr.left, ast.BinOp)
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = parse("a = -b").statements[0].expr
        assert expr == ast.UnaryOp("-", ast.Ident("b"))

    def test_unary_minus_binds_tighter_than_mul(self):
        expr = parse("a = -b * c").statements[0].expr
        assert isinstance(expr, ast.BinOp) and expr.op == "*"
        assert isinstance(expr.left, ast.UnaryOp)

    def test_double_negation(self):
        expr = parse("a = --b").statements[0].expr
        assert isinstance(expr.operand, ast.UnaryOp)

    @pytest.mark.parametrize("op", ["<", ">", "<=", ">=", "==", "!="])
    def test_comparisons(self, op):
        expr = parse(f"a = b {op} c").statements[0].expr
        assert isinstance(expr, ast.Compare)
        assert expr.op == op

    def test_comparison_binds_looser_than_arithmetic(self):
        expr = parse("a = b + c > d * e").statements[0].expr
        assert isinstance(expr, ast.Compare)
        assert isinstance(expr.left, ast.BinOp)
        assert isinstance(expr.right, ast.BinOp)


class TestCallsAndIndexing:
    def test_call_single_arg(self):
        expr = parse("a = sqrt(b)").statements[0].expr
        assert expr == ast.Call("sqrt", (ast.Ident("b"),))

    def test_call_multiple_args(self):
        expr = parse("a = grad3d(u, dims, x, y, z)").statements[0].expr
        assert expr.name == "grad3d"
        assert len(expr.args) == 5

    def test_nested_calls(self):
        expr = parse("a = sqrt(sqrt(b))").statements[0].expr
        assert isinstance(expr.args[0], ast.Call)

    def test_call_with_expression_args(self):
        expr = parse("a = max(b + 1, c * 2)").statements[0].expr
        assert all(isinstance(arg, ast.BinOp) for arg in expr.args)

    def test_index(self):
        expr = parse("a = du[1]").statements[0].expr
        assert expr == ast.Index(ast.Ident("du"), 1)

    def test_index_of_call(self):
        expr = parse("a = grad3d(u,d,x,y,z)[2]").statements[0].expr
        assert isinstance(expr.base, ast.Call)
        assert expr.component == 2

    def test_chained_index(self):
        expr = parse("a = m[0][1]").statements[0].expr
        assert expr.component == 1
        assert isinstance(expr.base, ast.Index)

    def test_non_integer_index_rejected(self):
        with pytest.raises(ParseError, match="integer"):
            parse("a = du[1.5]")


class TestConditional:
    def test_if_then_else(self):
        expr = parse("a = if (b > 10) then (c) else (d)").statements[0].expr
        assert isinstance(expr, ast.IfExpr)
        assert isinstance(expr.cond, ast.Compare)

    def test_paper_intro_example(self):
        text = ("a = if (norm(grad(b, dims, x, y, z)) > 10) "
                "then (c * c) else (-c * c)")
        expr = parse(text).statements[0].expr
        assert isinstance(expr, ast.IfExpr)
        assert isinstance(expr.then, ast.BinOp)
        assert isinstance(expr.otherwise, ast.BinOp)

    def test_nested_conditionals(self):
        expr = parse(
            "a = if (x > 0) then (if (y > 0) then (1) else (2)) else (3)"
        ).statements[0].expr
        assert isinstance(expr.then, ast.IfExpr)


class TestPaperExpressions:
    def test_velocity_magnitude(self):
        program = parse(VELOCITY_MAGNITUDE)
        assert program.result_name == "v_mag"

    def test_vorticity_magnitude(self):
        program = parse(VORTICITY_MAGNITUDE)
        assert program.result_name == "w_mag"
        assert len(program.statements) == 7

    def test_q_criterion(self):
        program = parse(Q_CRITERION)
        assert program.result_name == "q_crit"
        assert len(program.statements) == 18

    def test_multiline_continuation(self):
        # s_norm spans three physical lines ending in '+'
        program = parse("a = b +\n    c +\n    d")
        expr = program.statements[0].expr
        assert isinstance(expr, ast.BinOp)


class TestErrors:
    def test_empty_expression(self):
        with pytest.raises(ExpressionError):
            parse("")
        with pytest.raises(ExpressionError):
            parse("   \n ")

    def test_bare_expression_rejected(self):
        with pytest.raises(ParseError):
            parse("a + b")

    def test_missing_rhs(self):
        with pytest.raises(ParseError):
            parse("a =")

    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse("a = (b + c")

    def test_illegal_character(self):
        with pytest.raises(LexError):
            parse("a = b @ c")

    def test_chained_comparison_rejected(self):
        # comparisons are nonassociative, as in yacc
        with pytest.raises(ParseError):
            parse("a = b < c < d")


class TestDiagnostics:
    def test_grammar_is_conflict_free(self):
        assert parser_diagnostics()["conflicts"] == []

    def test_precedence_did_real_work(self):
        assert parser_diagnostics()["precedence_resolutions"] > 0

    def test_ast_walk_covers_all_nodes(self):
        program = parse("a = if (b > 1) then (sqrt(c[0])) else (-d)")
        kinds = {type(n).__name__ for n in ast.walk(program)}
        assert kinds >= {"Program", "Assign", "IfExpr", "Compare", "Call",
                         "Index", "UnaryOp", "Ident", "Num"}
