"""Unit tests for the limited CSE pass and its commutative extension."""

from repro.dataflow import Network
from repro.dataflow.spec import CONST, SOURCE
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.analysis.vortex import Q_CRITERION


def build(text, commutative=False):
    spec, _ = lower(parse(text))
    return eliminate_common_subexpressions(spec, commutative=commutative)


def n_filters(spec):
    return sum(1 for n in spec.nodes if n.filter not in (SOURCE, CONST))


class TestSyntacticCSE:
    def test_identical_subexpressions_merged(self):
        spec = build("a = (u * v) + (u * v)")
        assert n_filters(spec) == 2  # one mult, one add

    def test_different_subexpressions_kept(self):
        spec = build("a = (u * v) + (u * w)")
        assert n_filters(spec) == 3

    def test_transitive_merging(self):
        # (u*v)+w twice: inner mult merges, then outer add merges
        spec = build("a = ((u * v) + w) * ((u * v) + w)")
        assert n_filters(spec) == 3  # mult, add, outer mult

    def test_repeated_decompose_merged(self):
        spec = build("g = grad3d(u,dims,x,y,z)\na = g[0] + g[0]")
        decomposes = [n for n in spec.nodes if n.filter == "decompose"]
        assert len(decomposes) == 1

    def test_decompose_different_components_kept(self):
        spec = build("g = grad3d(u,dims,x,y,z)\na = g[0] + g[1]")
        decomposes = [n for n in spec.nodes if n.filter == "decompose"]
        assert len(decomposes) == 2

    def test_aliases_follow_replacement(self):
        spec = build("t1 = u * v\nt2 = u * v\na = t1 + t2")
        assert spec.resolve("t1") == spec.resolve("t2")

    def test_output_follows_replacement(self):
        spec = build("t1 = u * v\nt2 = u * v")
        out = spec.outputs[0]
        assert spec.node(out).filter == "mult"

    def test_sources_and_consts_survive(self):
        spec = build("a = 0.5 * u + 0.5 * u")
        assert spec.source_names() == ["u"]
        assert sum(1 for n in spec.nodes if n.filter == CONST) == 1


class TestLimitedness:
    """The paper's CSE is 'limited': purely syntactic, not commutative."""

    def test_operand_order_matters_by_default(self):
        spec = build("a = (u * v) + (v * u)")
        assert n_filters(spec) == 3  # both mults kept

    def test_q_criterion_s1_s3_not_merged(self):
        # s_1 = 0.5*(du[1] + dv[0]) and s_3 = 0.5*(dv[0] + du[1]) stay
        # distinct, which is what makes Table II's 57 kernels come out.
        spec = eliminate_common_subexpressions(
            lower(parse(Q_CRITERION))[0])
        assert n_filters(spec) == 66  # 57 kernel filters + 9 decomposes


class TestCommutativeExtension:
    def test_commutative_merges_swapped_operands(self):
        spec = build("a = (u * v) + (v * u)", commutative=True)
        assert n_filters(spec) == 2

    def test_non_commutative_ops_untouched(self):
        spec = build("a = (u - v) + (v - u)", commutative=True)
        assert n_filters(spec) == 3

    def test_q_criterion_shrinks(self):
        base = eliminate_common_subexpressions(
            lower(parse(Q_CRITERION))[0])
        stronger = eliminate_common_subexpressions(
            lower(parse(Q_CRITERION))[0], commutative=True)
        assert n_filters(stronger) < n_filters(base)

    def test_results_still_valid_network(self):
        spec = build(Q_CRITERION, commutative=True)
        net = Network(spec)
        assert net.n_filters() > 0
