"""Unit tests for AST -> dataflow-network lowering."""

import pytest

from repro.dataflow import Network
from repro.dataflow.spec import CONST, SOURCE
from repro.errors import LoweringError
from repro.expr import lower, parse
from repro.primitives import ResultKind
from repro.analysis.vortex import Q_CRITERION, VORTICITY_MAGNITUDE


def lowered(text, **kwargs):
    spec, kinds = lower(parse(text), **kwargs)
    return spec, kinds


def filters_of(spec):
    return [n.filter for n in spec.nodes
            if n.filter not in (SOURCE, CONST)]


class TestBasicLowering:
    def test_binop_becomes_filter(self):
        spec, _ = lowered("a = b + c")
        assert filters_of(spec) == ["add"]

    def test_all_operators_map(self):
        for op, name in [("+", "add"), ("-", "sub"), ("*", "mult"),
                         ("/", "div")]:
            spec, _ = lowered(f"a = b {op} c")
            assert filters_of(spec) == [name]

    def test_free_idents_become_sources(self):
        spec, _ = lowered("a = b + c")
        assert set(spec.source_names()) == {"b", "c"}

    def test_assigned_names_do_not_become_sources(self):
        spec, _ = lowered("t = u * u\na = t + t")
        assert spec.source_names() == ["u"]

    def test_aliases_recorded(self):
        spec, _ = lowered("t = u * u\na = t + v")
        assert "t" in spec.aliases and "a" in spec.aliases

    def test_output_is_last_assignment(self):
        spec, _ = lowered("t = u * u\na = t + v")
        assert spec.outputs == [spec.aliases["a"]]

    def test_unary_minus(self):
        spec, _ = lowered("a = -b")
        assert filters_of(spec) == ["neg"]

    def test_comparisons(self):
        spec, _ = lowered("a = b > c")
        assert filters_of(spec) == ["gt"]

    def test_conditional_becomes_select(self):
        spec, _ = lowered("a = if (b > 0) then (c) else (d)")
        assert set(filters_of(spec)) == {"gt", "select"}


class TestConstants:
    def test_constant_node_created(self):
        spec, _ = lowered("a = 0.5 * b")
        consts = [n for n in spec.nodes if n.filter == CONST]
        assert len(consts) == 1
        assert consts[0].param("value") == 0.5

    def test_common_constants_pooled(self):
        spec, _ = lowered("a = 0.5 * b + 0.5 * c")
        consts = [n for n in spec.nodes if n.filter == CONST]
        assert len(consts) == 1

    def test_distinct_constants_kept(self):
        spec, _ = lowered("a = 0.5 * b + 0.25 * c")
        consts = [n for n in spec.nodes if n.filter == CONST]
        assert len(consts) == 2


class TestCallsAndDecompose:
    def test_call_lowered(self):
        spec, _ = lowered("a = sqrt(b)")
        assert filters_of(spec) == ["sqrt"]

    def test_function_alias_norm(self):
        spec, _ = lowered("a = norm(grad(b, dims, x, y, z))")
        assert set(filters_of(spec)) == {"vmag", "grad3d"}

    def test_index_becomes_decompose_with_param(self):
        spec, _ = lowered("a = grad3d(u,dims,x,y,z)[2]")
        decomposes = [n for n in spec.nodes if n.filter == "decompose"]
        assert len(decomposes) == 1
        assert decomposes[0].param("component") == 2

    def test_unknown_filter_rejected(self):
        with pytest.raises(LoweringError, match="unknown filter"):
            lowered("a = frobnicate(b)")

    def test_wrong_arity_rejected(self):
        with pytest.raises(LoweringError, match="arguments"):
            lowered("a = sqrt(b, c)")

    def test_grad_alias(self):
        spec, _ = lowered("a = grad(u, dims, x, y, z)[0]")
        assert "grad3d" in filters_of(spec)


class TestKnownFields:
    def test_known_fields_accepts_listed(self):
        spec, kinds = lowered("a = u * u",
                              known_fields={"u": ResultKind.SCALAR})
        assert spec.source_names() == ["u"]

    def test_unknown_variable_rejected(self):
        with pytest.raises(LoweringError, match="unknown variable"):
            lowered("a = q * q", known_fields={"u": ResultKind.SCALAR})

    def test_vector_kind_propagates(self):
        spec, kinds = lowered("a = vel[0]",
                              known_fields={"vel": ResultKind.VECTOR})
        assert kinds == {"vel": ResultKind.VECTOR}
        net = Network(spec, source_kinds=kinds)
        assert net.kind_of("vel") is ResultKind.VECTOR


class TestPaperNetworks:
    def test_vorticity_network_is_valid(self):
        spec, _ = lowered(VORTICITY_MAGNITUDE)
        net = Network(spec)
        assert net.n_filters() == 18  # before CSE: 3 grads recomputed? no:
        # 3 grad + 6 decompose + 3 sub + 3 mult + 2 add + 1 sqrt

    def test_q_criterion_network_shape(self):
        """Fig 4: the Q-criterion dataflow network.

        Before CSE the decompose of each reused gradient component appears
        per use; after CSE the network has 3 gradients feeding 9 unique
        decomposes feeding the arithmetic tree into one output.
        """
        spec, _ = lowered(Q_CRITERION)
        net = Network(spec)
        grads = [n for n in net.schedule() if n.filter == "grad3d"]
        assert len(grads) == 3
        sqrt_like = [n for n in net.schedule() if n.filter == "sqrt"]
        assert not sqrt_like  # Q-criterion has no square root
