"""Tests for decomposed (multi-brick) storage and ghost reconstruction
from disk."""

import numpy as np
import pytest

from repro.analysis.vortex import Q_CRITERION, q_criterion_reference
from repro.host import DerivedFieldEngine
from repro.host.visitsim import RectilinearDataset, extract_block
from repro.io import BlockFileError
from repro.io.decomposed import DecomposedReader, write_decomposed
from repro.workloads import SubGrid, make_fields


@pytest.fixture(scope="module")
def global_fields():
    return make_fields(SubGrid(8, 8, 12), seed=21)


@pytest.fixture(scope="module")
def global_ds(global_fields):
    f = global_fields
    return RectilinearDataset(
        x=f["x"], y=f["y"], z=f["z"],
        cell_fields={"u": f["u"], "v": f["v"], "w": f["w"]})


@pytest.fixture()
def store(tmp_path, global_ds):
    n = write_decomposed(global_ds, (4, 4, 6), tmp_path / "bricks",
                         metadata={"step": 0})
    assert n == 8
    return DecomposedReader(tmp_path / "bricks")


class TestRoundTrip:
    def test_index_contents(self, store):
        assert len(store) == 8
        assert store.global_dims == (8, 8, 12)
        assert store.block_dims == (4, 4, 6)
        assert store.fields == ["u", "v", "w"]
        assert store.metadata == {"step": 0}

    def test_block_without_ghost(self, store, global_ds):
        for i, extent in enumerate(store.extents()):
            block = store.read_block(i)
            expected = extract_block(global_ds, extent, ghost_width=0)
            np.testing.assert_array_equal(block.field("u"),
                                          expected.field("u"))
            np.testing.assert_array_equal(block.x, expected.x)

    def test_block_with_ghost_matches_in_memory_extraction(self, store,
                                                           global_ds):
        """Ghost layers assembled from neighbouring brick *files* must be
        identical to in-memory ghost extraction."""
        for i, extent in enumerate(store.extents()):
            from_disk = store.read_block(i, ghost_width=1)
            in_memory = extract_block(global_ds, extent, ghost_width=1)
            assert from_disk.ghost_lo == in_memory.ghost_lo
            assert from_disk.ghost_hi == in_memory.ghost_hi
            for name in ("u", "v", "w"):
                np.testing.assert_array_equal(from_disk.field(name),
                                              in_memory.field(name))
            for axis in ("x", "y", "z"):
                np.testing.assert_array_equal(
                    getattr(from_disk, axis), getattr(in_memory, axis))

    def test_field_subset(self, store):
        block = store.read_block(0, fields=["u"])
        assert set(block.cell_fields) == {"u"}

    def test_wide_ghost(self, store, global_ds):
        block = store.read_block(0, ghost_width=3)
        expected = extract_block(global_ds, store.extents()[0],
                                 ghost_width=3)
        np.testing.assert_array_equal(block.field("w"),
                                      expected.field("w"))


class TestErrors:
    def test_bad_index(self, store):
        with pytest.raises(BlockFileError, match="out of range"):
            store.read_block(99)

    def test_missing_directory(self, tmp_path):
        with pytest.raises(BlockFileError):
            DecomposedReader(tmp_path / "nope")


class TestOutOfCoreDerivedField:
    def test_qcriterion_from_bricks(self, store, global_fields):
        """Each brick read ghosted from disk and derived independently
        reassembles the exact global Q-criterion — the out-of-core
        distributed path."""
        engine = DerivedFieldEngine(device="gpu", strategy="fusion")
        compiled = engine.compile(Q_CRITERION)
        output = np.empty(8 * 8 * 12)
        out3d = output.reshape(8, 8, 12)
        for i, extent in enumerate(store.extents()):
            block = store.read_block(i, ghost_width=1)
            bindings = dict(block.mesh_arrays())
            for name in ("u", "v", "w"):
                bindings[name] = block.field(name)
            derived = block.with_fields(
                {"q_crit": engine.derive(compiled, bindings)}).strip_ghost()
            (i0, j0, k0), (bi, bj, bk) = extent.lo, extent.dims
            out3d[i0:i0 + bi, j0:j0 + bj, k0:k0 + bk] = \
                derived.field3d("q_crit")
        f = global_fields
        expected = q_criterion_reference(
            f["u"], f["v"], f["w"], f["dims"], f["x"], f["y"], f["z"])
        np.testing.assert_allclose(output, expected, rtol=1e-12,
                                   atol=1e-12)
