"""Tests for the block-file format."""

import numpy as np
import pytest

from repro.io import (BlockFileError, read_blockfile, read_header,
                      write_blockfile)


@pytest.fixture
def sample_arrays(rng):
    return {
        "u": rng.standard_normal(64),
        "v": rng.standard_normal(64).astype(np.float32),
        "dims": np.array([4, 4, 4], np.int32),
        "grid": rng.standard_normal((4, 4, 4)),
    }


class TestRoundTrip:
    def test_all_arrays(self, tmp_path, sample_arrays):
        path = tmp_path / "block.dfgb"
        nbytes = write_blockfile(path, sample_arrays, {"step": 3})
        assert path.stat().st_size == nbytes
        arrays, metadata = read_blockfile(path)
        assert metadata == {"step": 3}
        assert set(arrays) == set(sample_arrays)
        for name in sample_arrays:
            np.testing.assert_array_equal(arrays[name],
                                          sample_arrays[name])
            assert arrays[name].dtype == sample_arrays[name].dtype
            assert arrays[name].shape == sample_arrays[name].shape

    def test_selected_fields(self, tmp_path, sample_arrays):
        path = tmp_path / "block.dfgb"
        write_blockfile(path, sample_arrays)
        arrays, _ = read_blockfile(path, fields=["u", "dims"])
        assert set(arrays) == {"u", "dims"}

    def test_mmap_mode(self, tmp_path, sample_arrays):
        path = tmp_path / "block.dfgb"
        write_blockfile(path, sample_arrays)
        arrays, _ = read_blockfile(path, mmap=True)
        np.testing.assert_array_equal(arrays["grid"],
                                      sample_arrays["grid"])
        assert isinstance(arrays["grid"], np.memmap)

    def test_noncontiguous_input_normalized(self, tmp_path, rng):
        transposed = rng.standard_normal((6, 4)).T  # F-order view
        path = tmp_path / "block.dfgb"
        write_blockfile(path, {"t": transposed})
        arrays, _ = read_blockfile(path)
        np.testing.assert_array_equal(arrays["t"], transposed)

    def test_header_only_read(self, tmp_path, sample_arrays):
        path = tmp_path / "block.dfgb"
        write_blockfile(path, sample_arrays, {"note": "hi"})
        header = read_header(path)
        assert header["metadata"]["note"] == "hi"
        assert {e["name"] for e in header["arrays"]} == set(sample_arrays)


class TestErrors:
    def test_empty_arrays_rejected(self, tmp_path):
        with pytest.raises(BlockFileError, match="no arrays"):
            write_blockfile(tmp_path / "x.dfgb", {})

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "x.dfgb"
        path.write_bytes(b"NOPE" + b"\0" * 32)
        with pytest.raises(BlockFileError, match="magic"):
            read_header(path)

    def test_truncated_prefix(self, tmp_path):
        path = tmp_path / "x.dfgb"
        path.write_bytes(b"DF")
        with pytest.raises(BlockFileError, match="truncated"):
            read_header(path)

    def test_truncated_payload(self, tmp_path, sample_arrays):
        path = tmp_path / "x.dfgb"
        write_blockfile(path, sample_arrays)
        data = path.read_bytes()
        path.write_bytes(data[:-100])
        with pytest.raises(BlockFileError, match="past end|truncated"):
            read_blockfile(path)

    def test_missing_field_request(self, tmp_path, sample_arrays):
        path = tmp_path / "x.dfgb"
        write_blockfile(path, sample_arrays)
        with pytest.raises(BlockFileError, match="missing arrays"):
            read_blockfile(path, fields=["pressure"])

    def test_wrong_version(self, tmp_path, sample_arrays):
        path = tmp_path / "x.dfgb"
        write_blockfile(path, sample_arrays)
        data = bytearray(path.read_bytes())
        data[4] = 99  # bump version byte
        path.write_bytes(bytes(data))
        with pytest.raises(BlockFileError, match="version"):
            read_header(path)

    def test_corrupt_header_json(self, tmp_path, sample_arrays):
        path = tmp_path / "x.dfgb"
        write_blockfile(path, sample_arrays)
        data = bytearray(path.read_bytes())
        data[16] = ord("!")  # the header's opening '{' follows the prefix
        path.write_bytes(bytes(data))
        with pytest.raises(BlockFileError):
            read_header(path)
