"""Tests for time-series storage and its pipeline integration."""

import numpy as np
import pytest

from repro.analysis.vortex import VELOCITY_MAGNITUDE
from repro.host.visitsim import (GlobalArrayReader, Pipeline,
                                 PythonExpressionFilter,
                                 RectilinearDataset)
from repro.io import (BlockFileError, TimeSeriesReader, TimeSeriesWriter,
                      arrays_to_dataset, dataset_to_arrays)
from repro.workloads import SubGrid, make_fields


def make_dataset(seed=0):
    fields = make_fields(SubGrid(4, 5, 6), seed=seed)
    return RectilinearDataset(
        x=fields["x"], y=fields["y"], z=fields["z"],
        cell_fields={"u": fields["u"], "v": fields["v"],
                     "w": fields["w"]})


class TestDatasetConversion:
    def test_round_trip(self):
        dataset = make_dataset()
        rebuilt = arrays_to_dataset(dataset_to_arrays(dataset))
        assert rebuilt.dims == dataset.dims
        np.testing.assert_array_equal(rebuilt.field("u"),
                                      dataset.field("u"))
        np.testing.assert_array_equal(rebuilt.x, dataset.x)

    def test_non_dataset_arrays_rejected(self):
        with pytest.raises(BlockFileError, match="missing"):
            arrays_to_dataset({"u": np.zeros(4)})


class TestWriterReader:
    def test_append_and_read(self, tmp_path):
        writer = TimeSeriesWriter(tmp_path / "run",
                                  metadata={"sim": "rt"})
        for step in range(3):
            writer.append(make_dataset(seed=step), time=0.1 * step)

        reader = TimeSeriesReader(tmp_path / "run")
        assert len(reader) == 3
        assert reader.metadata == {"sim": "rt"}
        assert reader.times() == pytest.approx([0.0, 0.1, 0.2])
        step1 = reader.read_step(1)
        np.testing.assert_array_equal(step1.field("u"),
                                      make_dataset(seed=1).field("u"))

    def test_mmap_read(self, tmp_path):
        writer = TimeSeriesWriter(tmp_path / "run")
        writer.append(make_dataset())
        dataset = TimeSeriesReader(tmp_path / "run").read_step(
            0, mmap=True)
        assert dataset.n_cells == 120

    def test_out_of_range_step(self, tmp_path):
        writer = TimeSeriesWriter(tmp_path / "run")
        writer.append(make_dataset())
        reader = TimeSeriesReader(tmp_path / "run")
        with pytest.raises(BlockFileError, match="out of range"):
            reader.read_step(5)

    def test_missing_index(self, tmp_path):
        with pytest.raises(BlockFileError, match="index"):
            TimeSeriesReader(tmp_path / "empty")

    def test_index_survives_reopen(self, tmp_path):
        TimeSeriesWriter(tmp_path / "run").append(make_dataset())
        # a second writer session continues the directory? (fresh writer
        # starts a new index; the reader sees the latest flush)
        reader = TimeSeriesReader(tmp_path / "run")
        assert len(reader) == 1


class TestPipelineIntegration:
    def test_end_to_end_from_disk(self, tmp_path):
        """simulation dump -> disk -> pipeline -> derived field."""
        writer = TimeSeriesWriter(tmp_path / "run")
        for step in range(2):
            writer.append(make_dataset(seed=step))
        reader = TimeSeriesReader(tmp_path / "run")

        pipeline = Pipeline(
            GlobalArrayReader(reader.dataset_loader()),
            [PythonExpressionFilter(VELOCITY_MAGNITUDE)])
        result0 = pipeline.execute(0)
        result1 = pipeline.execute(1)
        source0 = make_dataset(seed=0)
        expected = np.sqrt(source0.field("u") ** 2
                           + source0.field("v") ** 2
                           + source0.field("w") ** 2)
        np.testing.assert_allclose(result0.field("v_mag"), expected)
        assert not np.allclose(result0.field("v_mag"),
                               result1.field("v_mag"))
        assert pipeline.executions == 2
