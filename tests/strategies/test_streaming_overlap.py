"""Double-buffered streaming: the transfer/compute overlap contract.

The streaming strategy re-times its per-chunk event streams onto the
overlapped dual-DMA timeline.  These tests pin the three invariants that
make the rewrite honest: the output and every per-category cost are
identical to serial chunked execution, the win appears purely as
``timing.makespan``, and the overlap is observable downstream in the
Chrome-trace device lanes.
"""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.host import DerivedFieldEngine
from repro.strategies import StreamingFusionStrategy
from repro.trace import Tracer
from repro.workloads import SubGrid, make_fields

N_CHUNKS = 4


@pytest.fixture(scope="module")
def fields():
    return make_fields(SubGrid(12, 10, 8), seed=13)


def run(fields, *, depth, tracer=None):
    engine = DerivedFieldEngine(
        device="gpu",
        strategy=StreamingFusionStrategy(N_CHUNKS, pipeline_depth=depth),
        tracer=tracer)
    return engine.execute(vortex.Q_CRITERION, fields)


class TestOverlapTimeline:
    def test_serial_makespan_is_the_full_sum(self, fields):
        timing = run(fields, depth=1).timing
        assert timing.makespan == pytest.approx(
            timing.total + timing.build)

    def test_double_buffering_shrinks_makespan(self, fields):
        timing = run(fields, depth=2).timing
        assert 0 < timing.makespan < timing.total + timing.build

    def test_per_category_totals_invariant(self, fields):
        serial = run(fields, depth=1).timing
        overlapped = run(fields, depth=2).timing
        assert overlapped.host_to_device == \
            pytest.approx(serial.host_to_device)
        assert overlapped.kernel_exec == pytest.approx(serial.kernel_exec)
        assert overlapped.device_to_host == \
            pytest.approx(serial.device_to_host)
        assert overlapped.build == pytest.approx(serial.build)

    def test_event_counts_invariant(self, fields):
        serial = run(fields, depth=1)
        overlapped = run(fields, depth=2)
        assert overlapped.counts == serial.counts

    def test_output_bitwise_identical_to_serial(self, fields):
        assert np.array_equal(run(fields, depth=1).output,
                              run(fields, depth=2).output)

    def test_deeper_pipeline_is_at_least_as_fast(self, fields):
        two = run(fields, depth=2).timing.makespan
        four = run(fields, depth=4).timing.makespan
        assert four <= two + 1e-15

    def test_memory_pays_for_the_overlap(self, fields):
        serial = run(fields, depth=1).mem_high_water
        overlapped = run(fields, depth=2).mem_high_water
        assert serial < overlapped <= 2 * serial


class TestTraceLanes:
    def test_chrome_lanes_show_concurrent_transfer_and_compute(self, fields):
        tracer = Tracer()
        run(fields, depth=2, tracer=tracer)
        spans = [s for s in tracer.device_spans
                 if s.category in ("dev-write", "kernel")]
        kernels = [s for s in spans if s.category == "kernel"]
        writes = [s for s in spans if s.category == "dev-write"]
        assert kernels and writes
        overlapping = any(
            w.start < k.start + k.duration and k.start < w.start + w.duration
            for k in kernels for w in writes)
        assert overlapping, "no h2d transfer overlaps any kernel lane span"

    def test_serial_lanes_never_overlap(self, fields):
        tracer = Tracer()
        run(fields, depth=1, tracer=tracer)
        spans = sorted(tracer.device_spans, key=lambda s: s.start)
        for before, after in zip(spans, spans[1:]):
            assert after.start >= before.start + before.duration - 1e-12
