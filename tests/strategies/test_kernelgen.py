"""Tests for the single-primitive kernel generator (roundtrip/staged)."""

import numpy as np
import pytest

from repro.clsim import validate_source
from repro.primitives import ADD, GRAD3D, MULT, SELECT, SQRT
from repro.strategies.kernelgen import (ARRAY, BY_VALUE, CONST_BUF,
                                        KernelCache, VECTOR)


@pytest.fixture
def cache():
    return KernelCache(np.float64)


class TestElementwiseKernels:
    def test_array_array(self, cache):
        kernel = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        assert validate_source(kernel.source) == ["k_add_aa"]
        assert "a0[gid]" in kernel.source and "a1[gid]" in kernel.source

    def test_const_buffer_indexes_zero(self, cache):
        kernel = cache.primitive_kernel(MULT, [CONST_BUF, ARRAY])
        assert "a0[0]" in kernel.source
        assert validate_source(kernel.source)

    def test_three_args(self, cache):
        kernel = cache.primitive_kernel(SELECT, [ARRAY, ARRAY, ARRAY])
        assert validate_source(kernel.source)

    def test_unary(self, cache):
        kernel = cache.primitive_kernel(SQRT, [ARRAY])
        assert "sqrt(" in kernel.source

    def test_executor_attached(self, cache):
        kernel = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        result, wall = kernel.run([np.ones(3), np.full(3, 2.0)])
        np.testing.assert_array_equal(result, 3.0)
        assert wall >= 0

    def test_cache_by_signature(self, cache):
        k1 = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        k2 = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        k3 = cache.primitive_kernel(ADD, [CONST_BUF, ARRAY])
        assert k1 is k2
        assert k1 is not k3

    def test_float32_variant(self):
        cache = KernelCache(np.float32)
        kernel = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        assert "float" in kernel.source and "double" not in kernel.source


class TestSpecialKernels:
    def test_gradient_kernel(self, cache):
        kernel = cache.primitive_kernel(
            GRAD3D, [ARRAY, ARRAY, ARRAY, ARRAY, ARRAY])
        assert validate_source(kernel.source) == ["k_grad3d"]
        assert "double4" in kernel.source

    def test_decompose_kernel(self, cache):
        from repro.primitives import DECOMPOSE
        kernel = cache.primitive_kernel(DECOMPOSE, [VECTOR],
                                        component=1)
        assert validate_source(kernel.source) == ["k_decompose"]
        vec = np.arange(8.0).reshape(2, 4)
        result, _ = kernel.run([vec, 1])
        np.testing.assert_array_equal(result, [1.0, 5.0])

    def test_fill_kernel(self, cache):
        kernel = cache.fill_kernel()
        assert validate_source(kernel.source) == ["k_fill"]
        result, _ = kernel.run([2.5])
        np.testing.assert_array_equal(result, [2.5])
        assert result.dtype == np.float64

    def test_sources_snapshot(self, cache):
        cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        cache.fill_kernel()
        sources = cache.sources()
        assert set(sources) == {"k_add_aa", "k_fill"}
        for source in sources.values():
            validate_source(source)
