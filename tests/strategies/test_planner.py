"""Dry-run planner tests, including the Fig 2 memory-constraint example
and the M2050 out-of-memory failure behaviour."""

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSIONS
from repro.clsim import GIB
from repro.dataflow import Network, NetworkSpec
from repro.host.engine import DerivedFieldEngine
from repro.strategies import (ArraySpec, FusionStrategy, ReferenceKernel,
                              RoundtripStrategy, StagedStrategy, plan)
from repro.workloads import TABLE1_SUBGRIDS, make_shapes

F8 = np.dtype(np.float64)


def chain_network():
    """A Fig 2-style two-filter chain:  T = f1(A, B);  out = f2(T, C).

    The strategies' memory constraints diverge on exactly this shape
    (Fig 2's point): roundtrip needs only one kernel's working set at a
    time, staged holds live values only (lazy upload + refcounted
    release), while a fused kernel must hold *every* input plus the output
    simultaneously — so fusion is the most constrained strategy here, the
    Section V-D case where "staged can be used, while memory constraints
    would prevent fusion from executing".
    """
    spec = NetworkSpec()
    a, b, c = (spec.add_source(n) for n in ("A", "B", "C"))
    t = spec.add_filter("add", [a, b])
    out = spec.add_filter("mult", [t, c])
    spec.set_output(out)
    return Network(spec)


def chain_shapes(n):
    return {name: ArraySpec((n,), F8) for name in ("A", "B", "C")}


def engine_network(expression, strategy, device="gpu"):
    engine = DerivedFieldEngine(device=device, strategy=strategy,
                                dry_run=True)
    return engine.compile(expression).network


class TestFig2MemoryConstraints:
    N = 1000
    UNIT = 1000 * 8  # one problem-sized array

    def peaks(self):
        net = chain_network()
        shapes = chain_shapes(self.N)
        return {
            s.name: plan(s, shapes, "gpu", network=net).mem_high_water
            for s in (RoundtripStrategy(), StagedStrategy(),
                      FusionStrategy())}

    def test_roundtrip_needs_one_kernel_working_set(self):
        # each kernel: 2 inputs + 1 output
        assert self.peaks()["roundtrip"] == 3 * self.UNIT

    def test_staged_holds_only_live_values(self):
        # peak while f1 runs: A, B, T resident (C not yet uploaded)
        assert self.peaks()["staged"] == 3 * self.UNIT

    def test_fusion_holds_all_inputs_plus_output(self):
        assert self.peaks()["fusion"] == 4 * self.UNIT

    def test_fusion_is_most_constrained_on_this_shape(self):
        peaks = self.peaks()
        assert peaks["fusion"] > peaks["staged"]
        assert peaks["fusion"] > peaks["roundtrip"]

    def test_staged_succeeds_where_fusion_fails(self):
        """The Section V-D scenario, made concrete: a size where the fused
        kernel exceeds the M2050's 3 GiB but staged still fits."""
        n = 120_000_000  # 3 arrays = 2.7 GiB < 3 GiB < 4 arrays = 3.6 GiB
        net = chain_network()
        shapes = chain_shapes(n)
        staged = plan(StagedStrategy(), shapes, "gpu", network=net)
        fused = plan(FusionStrategy(), shapes, "gpu", network=net)
        assert not staged.failed
        assert fused.failed


class TestGradientNetworkConstraints:
    """On the paper's real (gradient-based) expressions the ordering flips:
    fusion is the least constrained (Fig 6)."""

    def test_fusion_minimal_for_vortmag(self):
        shapes = make_shapes(TABLE1_SUBGRIDS[0])
        peaks = {}
        for name in ("roundtrip", "staged", "fusion"):
            net = engine_network(EXPRESSIONS["vorticity_magnitude"], name)
            strategy = {"roundtrip": RoundtripStrategy,
                        "staged": StagedStrategy,
                        "fusion": FusionStrategy}[name]()
            peaks[name] = plan(strategy, shapes, "gpu",
                               network=net).mem_high_water
        assert peaks["fusion"] < peaks["roundtrip"] < peaks["staged"]


class TestPaperScaleFailures:
    def test_staged_vortmag_fails_on_gpu_at_38M_cells(self):
        shapes = make_shapes(TABLE1_SUBGRIDS[3])  # 37.7M cells
        net = engine_network(EXPRESSIONS["vorticity_magnitude"], "staged")
        result = plan(StagedStrategy(), shapes, "gpu", network=net)
        assert result.failed
        assert "global memory" in result.error

    def test_same_case_succeeds_on_cpu(self):
        shapes = make_shapes(TABLE1_SUBGRIDS[3])
        net = engine_network(EXPRESSIONS["vorticity_magnitude"], "staged",
                             device="cpu")
        result = plan(StagedStrategy(), shapes, "cpu", network=net)
        assert not result.failed
        assert result.runtime > 0

    def test_failed_plan_reports_partial_memory(self):
        shapes = make_shapes(TABLE1_SUBGRIDS[-1])
        result = plan(ReferenceKernel("q_criterion"), shapes, "gpu")
        assert result.failed
        assert 0 < result.mem_high_water <= 3 * GIB

    def test_reference_fails_exactly_when_fusion_does(self):
        net = engine_network(EXPRESSIONS["q_criterion"], "fusion")
        for grid in TABLE1_SUBGRIDS:
            shapes = make_shapes(grid)
            fusion = plan(FusionStrategy(), shapes, "gpu", network=net)
            ref = plan(ReferenceKernel("q_criterion"), shapes, "gpu")
            assert fusion.failed == ref.failed

    def test_plan_requires_network_for_strategies(self):
        with pytest.raises(ValueError, match="network"):
            plan(FusionStrategy(), chain_shapes(10), "gpu")

    def test_cpu_completes_all_144_paper_cases(self):
        from repro.experiments import run_sweep
        results = run_sweep(devices=("cpu",))
        assert all(not r.failed for r in results)
