"""Tests for the future-work strategies: mesh-aware chunking, streaming
fusion, and multi-device execution (paper Section VI)."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment
from repro.errors import StrategyError
from repro.host import DerivedFieldEngine
from repro.strategies import (MultiDeviceStrategy, StreamingFusionStrategy,
                              discover_mesh, plan_chunks)
from repro.strategies.chunking import assemble, chunk_bindings
from repro.workloads import SubGrid, make_fields


@pytest.fixture(scope="module")
def grid():
    return SubGrid(12, 10, 8)


@pytest.fixture(scope="module")
def fields(grid):
    return make_fields(grid, seed=13)


@pytest.fixture(scope="module")
def q_reference(fields):
    return vortex.q_criterion_reference(
        *[fields[k] for k in ("u", "v", "w", "dims", "x", "y", "z")])


class TestMeshDiscovery:
    def test_full_mesh(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        assert layout.has_mesh
        assert layout.dims == grid.dims
        assert layout.dims_name == "dims"
        assert layout.coord_names == ("x", "y", "z")
        assert set(layout.field_names) == {"u", "v", "w"}

    def test_pointwise_problem(self, fields, grid):
        pointwise = {k: fields[k] for k in ("u", "v", "w")}
        layout = discover_mesh(pointwise, grid.n_cells)
        assert not layout.has_mesh
        assert layout.dims == (grid.n_cells, 1, 1)

    def test_dims_mismatch_rejected(self, fields):
        bad = dict(fields)
        bad["dims"] = np.array([2, 2, 2], np.int32)
        with pytest.raises(StrategyError, match="dims"):
            discover_mesh(bad, fields["u"].size)

    def test_missing_coordinate_rejected(self, fields, grid):
        bad = dict(fields)
        bad["x"] = bad["x"][:-2]  # wrong length for every axis
        with pytest.raises(StrategyError, match="coordinate"):
            discover_mesh(bad, grid.n_cells)


class TestChunkPlanning:
    def test_chunks_cover_axis(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        chunks = plan_chunks(layout, 4, halo=1)
        assert chunks[0].start == 0 and chunks[-1].stop == grid.ni
        for a, b in zip(chunks, chunks[1:]):
            assert a.stop == b.start

    def test_halo_clipped_at_boundary(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        chunks = plan_chunks(layout, 3, halo=1)
        assert chunks[0].halo_lo == 0
        assert chunks[-1].halo_hi == 0
        assert chunks[1].halo_lo == chunks[1].halo_hi == 1

    def test_more_chunks_than_layers(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        chunks = plan_chunks(layout, 99, halo=0)
        assert len(chunks) == grid.ni
        assert all(c.owned == 1 for c in chunks)

    def test_chunk_bindings_shapes(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        (chunk,) = [c for c in plan_chunks(layout, 3, halo=1)
                    if c.halo_lo and c.halo_hi]
        sub = chunk_bindings(fields, layout, chunk)
        span = chunk.owned + 2
        assert sub["u"].size == span * grid.nj * grid.nk
        assert sub["dims"].tolist() == [span, grid.nj, grid.nk]
        assert sub["x"].size == span + 1
        np.testing.assert_array_equal(sub["y"], fields["y"])

    def test_assemble_round_trips(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        chunks = plan_chunks(layout, 4, halo=1)
        pieces = [(c, chunk_bindings(fields, layout, c)["u"])
                  for c in chunks]
        np.testing.assert_array_equal(
            assemble(pieces, layout), fields["u"])

    def test_zero_chunks_rejected(self, fields, grid):
        layout = discover_mesh(fields, grid.n_cells)
        with pytest.raises(StrategyError):
            plan_chunks(layout, 0, halo=1)


class TestStreamingStrategy:
    @pytest.mark.parametrize("n_chunks", [1, 2, 3, 6, 12])
    def test_matches_reference_for_all_chunk_counts(self, n_chunks,
                                                    fields, q_reference):
        engine = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(n_chunks))
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)

    def test_pointwise_expression(self, fields):
        engine = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(5))
        out = engine.derive(vortex.VELOCITY_MAGNITUDE,
                            {k: fields[k] for k in ("u", "v", "w")})
        np.testing.assert_array_equal(
            out, vortex.velocity_magnitude_reference(
                fields["u"], fields["v"], fields["w"]))

    def test_memory_bounded_by_chunk(self, fields):
        """Serial streaming (pipeline_depth=1) holds one chunk working
        set; the default double buffering (depth=2) pays at most two of
        them for the transfer/compute overlap — still below fused."""
        fused = DerivedFieldEngine(device="gpu", strategy="fusion")
        serial = DerivedFieldEngine(
            device="gpu",
            strategy=StreamingFusionStrategy(4, pipeline_depth=1))
        buffered = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(4))
        mem_f = fused.execute(vortex.Q_CRITERION, fields).mem_high_water
        mem_1 = serial.execute(vortex.Q_CRITERION, fields).mem_high_water
        mem_2 = buffered.execute(vortex.Q_CRITERION, fields).mem_high_water
        assert mem_1 < 0.5 * mem_f
        assert mem_1 <= mem_2 <= 2 * mem_1
        assert mem_2 < mem_f

    def test_kernel_per_chunk(self, fields):
        engine = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(4))
        report = engine.execute(vortex.Q_CRITERION, fields)
        assert report.counts.kernel_execs == 4
        assert report.counts.dev_reads == 4

    def test_dry_run_rejected(self, fields):
        from repro.strategies import ArraySpec
        engine = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(2),
            dry_run=True)
        shapes = {k: ArraySpec(v.shape, v.dtype)
                  for k, v in fields.items()}
        with pytest.raises(StrategyError, match="live arrays"):
            engine.execute(vortex.Q_CRITERION, shapes)

    def test_bad_chunk_count_rejected(self):
        with pytest.raises(StrategyError):
            StreamingFusionStrategy(0)

    def test_enables_otherwise_oversized_problem(self):
        """The streaming payoff: a problem whose fused form exceeds a tiny
        device limit still executes chunked."""
        import dataclasses
        from repro.clsim import NVIDIA_M2050_GPU
        from repro.dataflow import Network
        from repro.expr import lower, parse
        from repro.errors import CLOutOfMemoryError

        # room for ~3.5 problem-sized fields; fusion needs 4 (u,v,w,out)
        tiny_gpu = dataclasses.replace(
            NVIDIA_M2050_GPU, global_mem_bytes=110_000)
        grid = SubGrid(48, 10, 8)
        fields = make_fields(grid, seed=1)
        spec, _ = lower(parse(vortex.VELOCITY_MAGNITUDE))
        net = Network(spec)
        inputs = {k: fields[k] for k in ("u", "v", "w")}
        from repro.strategies import FusionStrategy
        with pytest.raises(CLOutOfMemoryError):
            FusionStrategy().execute(net, inputs, CLEnvironment(tiny_gpu))
        report = StreamingFusionStrategy(8).execute(
            net, inputs, CLEnvironment(tiny_gpu))
        np.testing.assert_array_equal(
            report.output, vortex.velocity_magnitude_reference(
                fields["u"], fields["v"], fields["w"]))


class TestMultiDeviceStrategy:
    def test_matches_reference(self, fields, q_reference):
        engine = DerivedFieldEngine(
            device="gpu",
            strategy=MultiDeviceStrategy(devices=("gpu", "gpu")))
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)

    def test_heterogeneous_devices(self, fields, q_reference):
        engine = DerivedFieldEngine(
            device="gpu",
            strategy=MultiDeviceStrategy(devices=("gpu", "cpu")))
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)

    def test_per_device_reports(self, fields):
        strategy = MultiDeviceStrategy(devices=("gpu", "gpu"))
        engine = DerivedFieldEngine(device="gpu", strategy=strategy)
        report = engine.execute(vortex.Q_CRITERION, fields)
        assert len(report.device_reports) == 2
        assert all(r.counts.kernel_execs == 1
                   for r in report.device_reports)

    def test_strategy_holds_no_per_run_state(self, fields):
        # device_reports lives on the report, not the strategy — one
        # instance is reusable across runs (and threads).
        strategy = MultiDeviceStrategy(devices=("gpu", "gpu"))
        assert not hasattr(strategy, "device_reports")
        engine = DerivedFieldEngine(device="gpu", strategy=strategy)
        first = engine.execute(vortex.Q_CRITERION, fields)
        second = engine.execute(vortex.Q_CRITERION, fields)
        assert not hasattr(strategy, "device_reports")
        assert len(first.device_reports) == len(second.device_reports) == 2

    def test_makespan_less_than_serial_sum(self, fields):
        strategy = MultiDeviceStrategy(devices=("gpu", "gpu"))
        engine = DerivedFieldEngine(device="gpu", strategy=strategy)
        report = engine.execute(vortex.Q_CRITERION, fields)
        serial = sum(r.timing.total for r in report.device_reports)
        assert report.timing.total < serial

    def test_memory_split_across_devices(self, fields):
        single = DerivedFieldEngine(device="gpu", strategy="fusion")
        dual = DerivedFieldEngine(
            device="gpu", strategy=MultiDeviceStrategy(("gpu", "gpu")))
        mem_1 = single.execute(vortex.Q_CRITERION, fields).mem_high_water
        mem_2 = dual.execute(vortex.Q_CRITERION, fields).mem_high_water
        assert mem_2 < 0.75 * mem_1

    def test_empty_devices_rejected(self):
        with pytest.raises(StrategyError):
            MultiDeviceStrategy(devices=())

    def test_registered_by_name(self, fields, q_reference):
        engine = DerivedFieldEngine(device="gpu", strategy="multi-device")
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)


class TestExtensionsUnderInterpretedBackend:
    def test_streaming_interpreted(self, fields, q_reference):
        """The future-work strategies compose with the interpreted
        backend too: chunked kernels run from generated source."""
        engine = DerivedFieldEngine(
            device="gpu", strategy=StreamingFusionStrategy(3),
            backend="interpreted")
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)

    def test_multidevice_interpreted(self, fields, q_reference):
        engine = DerivedFieldEngine(
            device="gpu", strategy=MultiDeviceStrategy(("gpu", "gpu")),
            backend="interpreted")
        out = engine.derive(vortex.Q_CRITERION, fields)
        np.testing.assert_allclose(out, q_reference, rtol=1e-12,
                                   atol=1e-12)
