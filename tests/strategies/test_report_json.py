"""Tests for the ExecutionReport JSON round-trip."""

import json

import pytest

from repro.analysis import vortex
from repro.host.engine import DerivedFieldEngine
from repro.strategies.base import ExecutionReport


@pytest.fixture(scope="module")
def warm_report(small_fields_module):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    compiled = engine.compile(vortex.EXPRESSIONS["q_criterion"])
    inputs = {k: small_fields_module[k] for k in compiled.required_inputs}
    engine.execute(compiled, inputs)            # cold: fills the plan cache
    return engine.execute(compiled, inputs)     # warm: cache/alloc filled


@pytest.fixture(scope="module")
def small_fields_module():
    from repro.workloads import SubGrid, make_fields
    return make_fields(SubGrid(6, 7, 8), seed=7)


class TestReportJsonRoundTrip:
    def test_to_json_is_json_dumpable(self, warm_report):
        text = json.dumps(warm_report.to_json())
        assert json.loads(text)["strategy"] == "fusion"

    def test_round_trip_preserves_everything_but_output(self, warm_report):
        restored = ExecutionReport.from_json(
            json.loads(json.dumps(warm_report.to_json())))
        assert restored.strategy == warm_report.strategy
        assert restored.counts == warm_report.counts
        assert restored.timing == warm_report.timing
        assert restored.mem_high_water == warm_report.mem_high_water
        assert restored.generated_sources == warm_report.generated_sources
        assert restored.cache == warm_report.cache
        assert restored.alloc == warm_report.alloc
        assert restored.device_reports == warm_report.device_reports

    def test_output_serialized_as_shape_dtype_only(self, warm_report):
        data = warm_report.to_json()
        assert data["output"] == {
            "shape": list(warm_report.output.shape),
            "dtype": str(warm_report.output.dtype)}
        assert ExecutionReport.from_json(data).output is None

    def test_round_trip_is_stable(self, warm_report):
        """to_json(from_json(x)) == x, minus the unserializable array."""
        once = warm_report.to_json()
        twice = ExecutionReport.from_json(once).to_json()
        once["output"] = None
        assert twice == once

    def test_multi_device_reports_round_trip(self, small_fields_module):
        engine = DerivedFieldEngine(device="cpu", strategy="multi-device")
        compiled = engine.compile(vortex.EXPRESSIONS["velocity_magnitude"])
        inputs = {k: small_fields_module[k]
                  for k in compiled.required_inputs}
        report = engine.execute(compiled, inputs)
        assert report.device_reports           # strategy is multi-device
        restored = ExecutionReport.from_json(
            json.loads(json.dumps(report.to_json())))
        assert restored.device_reports == report.device_reports
