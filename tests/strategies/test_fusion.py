"""Unit tests for the dynamic kernel generator (fusion strategy)."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment, validate_source
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import FusionStrategy, plan_stages
from repro.errors import StrategyError


def network_for(text):
    spec, _ = lower(parse(text))
    return Network(eliminate_common_subexpressions(spec))


def run_fusion(text, fields, device="cpu"):
    net = network_for(text)
    bindings = {k: fields[k] for k in net.live_sources()}
    return FusionStrategy().execute(net, bindings, CLEnvironment(device))


class TestGeneratedSource:
    def test_single_kernel_source_emitted(self, small_fields):
        report = run_fusion(vortex.Q_CRITERION, small_fields)
        assert len(report.generated_sources) == 1
        (source,) = report.generated_sources.values()
        validate_source(source)

    def test_constants_inlined_not_buffered(self, small_fields):
        report = run_fusion("a = 0.5 * u", small_fields)
        (source,) = report.generated_sources.values()
        assert "0.5" in source            # source-code level constant
        assert report.counts.dev_writes == 1  # only u uploaded

    def test_vector_types_used(self, small_fields):
        report = run_fusion(vortex.VORTICITY_MAGNITUDE, small_fields)
        (source,) = report.generated_sources.values()
        assert "double4" in source

    def test_decompose_uses_component_selection(self, small_fields):
        report = run_fusion("a = grad3d(u,dims,x,y,z)[1]", small_fields)
        (source,) = report.generated_sources.values()
        assert ".s1" in source

    def test_gradient_helper_included_once(self, small_fields):
        report = run_fusion(vortex.Q_CRITERION, small_fields)
        (source,) = report.generated_sources.values()
        assert source.count("inline double4 dfg_grad3d(") == 1

    def test_elementwise_helpers_shared(self, small_fields):
        report = run_fusion("a = u*u + v*v + w*w", small_fields)
        (source,) = report.generated_sources.values()
        assert source.count("dfg_mult(") >= 3        # three call sites
        assert source.count("inline double dfg_mult(") == 1

    def test_float32_renders_float_source(self, small_fields):
        fields = {k: (v.astype(np.float32) if v.dtype.kind == "f" else v)
                  for k, v in small_fields.items()}
        report = run_fusion(vortex.VORTICITY_MAGNITUDE, fields)
        (source,) = report.generated_sources.values()
        assert "float4" in source and "double4" not in source


class TestStagePlanning:
    def test_paper_expressions_single_stage(self):
        for text in vortex.EXPRESSIONS.values():
            stages, _ = plan_stages(network_for(text))
            assert len(stages) == 1

    def test_gradient_of_computed_value_splits(self):
        net = network_for("t = u * u\na = grad3d(t,dims,x,y,z)[0]")
        stages, materialized = plan_stages(net)
        assert len(stages) == 2
        # t must be materialized between the stages
        t_id = net.spec.resolve("t")
        assert t_id in materialized
        assert t_id in stages[0].writes
        assert t_id in stages[1].reads

    def test_gradient_of_source_does_not_split(self):
        stages, _ = plan_stages(
            network_for("a = grad3d(u,dims,x,y,z)[0]"))
        assert len(stages) == 1

    def test_chained_gradients_three_stages(self):
        net = network_for(
            "t = u * u\n"
            "g = grad3d(t,dims,x,y,z)[0]\n"
            "h = grad3d(g,dims,x,y,z)[1]")
        stages, _ = plan_stages(net)
        assert len(stages) == 3

    def test_gradient_of_constant_rejected(self):
        # rejected at network validation: a stencil over a uniform value
        from repro.errors import NetworkError
        with pytest.raises(NetworkError, match="uniform"):
            network_for("a = grad3d(2.0,dims,x,y,z)[0]")


class TestMultiStageExecution:
    def test_gradient_of_squared_field_correct(self, small_fields):
        report = run_fusion("t = u * u\na = grad3d(t,dims,x,y,z)[2]",
                            small_fields)
        from repro.primitives import grad3d_numpy
        u = small_fields["u"]
        expected = grad3d_numpy(
            u * u, small_fields["dims"], small_fields["x"],
            small_fields["y"], small_fields["z"])[:, 2]
        np.testing.assert_allclose(report.output, expected, rtol=1e-12)
        assert report.counts.kernel_execs == 2

    def test_two_sources_each_stage_validated(self, small_fields):
        report = run_fusion(
            "t = u + v\na = grad3d(t,dims,x,y,z)[0] * w", small_fields)
        assert len(report.generated_sources) == 2
        for source in report.generated_sources.values():
            validate_source(source)


class TestConstantOnlyExpressions:
    def test_constant_expression_broadcasts(self, small_fields):
        report = run_fusion("a = u * 0.0 + 3.0", small_fields)
        np.testing.assert_array_equal(report.output,
                                      np.full_like(small_fields["u"], 3.0))


class TestRegisterAccounting:
    def test_qcrit_uses_more_registers_than_velmag(self, small_fields):
        # indirectly visible through the modeled kernel cost: fetch the
        # planned register words via the stage generator
        from repro.strategies.fusion import FusionStrategy
        strategy = FusionStrategy()
        for text, floor in [(vortex.VELOCITY_MAGNITUDE, 1),
                            (vortex.Q_CRITERION, 10)]:
            net = network_for(text)
            bindings, n, dtype = strategy.prepare(
                net, {k: small_fields[k] for k in net.live_sources()})
            stages, _ = plan_stages(net)
            _, cost, _ = strategy._generate(net, stages[0], bindings, n,
                                            dtype)
            assert cost.register_words >= floor
