"""Every strategy must produce numerically identical results to the direct
NumPy references, for all three paper expressions and extension features."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import (FusionStrategy, ReferenceKernel,
                              RoundtripStrategy, StagedStrategy)

STRATEGIES = [RoundtripStrategy, StagedStrategy, FusionStrategy]


def compile_network(text):
    spec, kinds = lower(parse(text))
    return Network(eliminate_common_subexpressions(spec),
                   source_kinds=kinds)


def run(strategy_cls, text, fields, device="cpu"):
    net = compile_network(text)
    bindings = {k: fields[k] for k in net.live_sources()}
    return strategy_cls().execute(net, bindings, CLEnvironment(device))


@pytest.mark.parametrize("strategy_cls", STRATEGIES)
class TestPaperExpressions:
    def test_velocity_magnitude(self, strategy_cls, small_fields):
        report = run(strategy_cls, vortex.VELOCITY_MAGNITUDE, small_fields)
        expected = vortex.velocity_magnitude_reference(
            small_fields["u"], small_fields["v"], small_fields["w"])
        np.testing.assert_allclose(report.output, expected, rtol=1e-12)

    def test_vorticity_magnitude(self, strategy_cls, small_fields):
        report = run(strategy_cls, vortex.VORTICITY_MAGNITUDE, small_fields)
        expected = vortex.vorticity_magnitude_reference(
            *[small_fields[k] for k in
              ("u", "v", "w", "dims", "x", "y", "z")])
        np.testing.assert_allclose(report.output, expected, rtol=1e-12,
                                   atol=1e-12)

    def test_q_criterion(self, strategy_cls, small_fields):
        report = run(strategy_cls, vortex.Q_CRITERION, small_fields)
        expected = vortex.q_criterion_reference(
            *[small_fields[k] for k in
              ("u", "v", "w", "dims", "x", "y", "z")])
        np.testing.assert_allclose(report.output, expected, rtol=1e-12,
                                   atol=1e-12)

    def test_gpu_and_cpu_agree(self, strategy_cls, small_fields):
        cpu = run(strategy_cls, vortex.VELOCITY_MAGNITUDE, small_fields,
                  "cpu")
        gpu = run(strategy_cls, vortex.VELOCITY_MAGNITUDE, small_fields,
                  "gpu")
        np.testing.assert_array_equal(cpu.output, gpu.output)


@pytest.mark.parametrize("strategy_cls", STRATEGIES)
class TestLanguageFeatures:
    def test_constants(self, strategy_cls, small_fields):
        report = run(strategy_cls, "a = 2.5 * u + 0.5", small_fields)
        np.testing.assert_allclose(report.output,
                                   2.5 * small_fields["u"] + 0.5)

    def test_division_and_negation(self, strategy_cls, small_fields):
        report = run(strategy_cls, "a = -u / 4.0", small_fields)
        np.testing.assert_allclose(report.output, -small_fields["u"] / 4.0)

    def test_conditional_expression(self, strategy_cls, small_fields):
        u = small_fields["u"]
        report = run(strategy_cls,
                     "a = if (u > 0.0) then (u * u) else (-(u * u))",
                     small_fields)
        np.testing.assert_allclose(
            report.output, np.where(u > 0, u * u, -(u * u)))

    def test_min_max_abs(self, strategy_cls, small_fields):
        u, v = small_fields["u"], small_fields["v"]
        report = run(strategy_cls, "a = max(abs(u), abs(v))", small_fields)
        np.testing.assert_allclose(report.output,
                                   np.maximum(np.abs(u), np.abs(v)))

    def test_vector_helpers(self, strategy_cls, small_fields):
        report = run(strategy_cls, "a = vmag(vec3(u, v, w))", small_fields)
        expected = vortex.velocity_magnitude_reference(
            small_fields["u"], small_fields["v"], small_fields["w"])
        np.testing.assert_allclose(report.output, expected, rtol=1e-12)

    def test_intermediate_reuse(self, strategy_cls, small_fields):
        u = small_fields["u"]
        report = run(strategy_cls, "t = u * u\na = t + t\nb = a * t",
                     small_fields)
        np.testing.assert_allclose(report.output, (u * u + u * u) * (u * u))

    def test_float32_inputs(self, strategy_cls, small_fields):
        fields32 = {k: (v.astype(np.float32) if v.dtype.kind == "f" else v)
                    for k, v in small_fields.items()}
        report = run(strategy_cls, "a = sqrt(u*u + v*v)", fields32)
        assert report.output.dtype == np.float32


class TestReferenceKernels:
    @pytest.mark.parametrize("name", list(vortex.EXPRESSIONS))
    def test_matches_framework(self, name, small_fields):
        inputs = {k: small_fields[k]
                  for k in vortex.EXPRESSION_INPUTS[name]}
        ref = ReferenceKernel(name).execute(inputs, CLEnvironment("cpu"))
        fused = run(FusionStrategy, vortex.EXPRESSIONS[name], small_fields)
        np.testing.assert_allclose(ref.output, fused.output, rtol=1e-12,
                                   atol=1e-12)

    def test_unknown_expression_rejected(self):
        from repro.errors import StrategyError
        with pytest.raises(StrategyError):
            ReferenceKernel("enstrophy")

    def test_reference_counts_match_fusion(self, small_fields):
        inputs = {k: small_fields[k]
                  for k in vortex.EXPRESSION_INPUTS["q_criterion"]}
        ref = ReferenceKernel("q_criterion").execute(
            inputs, CLEnvironment("cpu"))
        assert ref.counts.as_row() == (7, 1, 1)
