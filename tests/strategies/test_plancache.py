"""Warm-execution layer: plan cache keys, LRU policy, engine integration,
and the cold/warm equivalence guarantees."""

import dataclasses

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim.device import INTEL_X5660_CPU, NVIDIA_M2050_GPU
from repro.clsim.environment import CLEnvironment
from repro.errors import CLOutOfMemoryError
from repro.expr.lower import lower
from repro.expr.parser import parse
from repro.dataflow.network import Network
from repro.host.engine import DerivedFieldEngine
from repro.strategies import get_strategy
from repro.strategies.bindings import normalize, problem_size
from repro.strategies.plancache import (PlanCache, network_signature,
                                        plan_key)

STRATEGIES = ("roundtrip", "staged", "fusion")


def _network(text: str) -> Network:
    spec, kinds = lower(parse(text))
    return Network(spec, source_kinds=kinds)


def _key(text: str, fields, strategy="fusion", device=INTEL_X5660_CPU,
         backend="vectorized", dtype=None):
    network = _network(text)
    bindings = normalize(fields, network.live_sources())
    n, inferred = problem_size(bindings)
    return plan_key(network, get_strategy(strategy), bindings, n,
                    dtype or np.dtype(inferred), device, backend)[0]


class TestNetworkSignature:
    def test_identical_structure_different_names_share(self):
        sig_a, sources_a = network_signature(_network("t = u * v"))
        sig_b, sources_b = network_signature(_network("s = p * q"))
        assert sig_a == sig_b
        assert sources_a != sources_b  # names differ, structure does not

    def test_different_structure_differs(self):
        sig_mul, _ = network_signature(_network("a = u * v"))
        sig_add, _ = network_signature(_network("a = u + v"))
        assert sig_mul != sig_add

    def test_const_value_in_signature(self):
        sig_2, _ = network_signature(_network("a = u * 2.0"))
        sig_3, _ = network_signature(_network("a = u * 3.0"))
        assert sig_2 != sig_3

    def test_memoized_on_network(self):
        network = _network("a = u + v")
        assert network_signature(network) is network_signature(network)


class TestPlanKeyInvalidation:
    def test_dtype_change_misses(self, rng):
        f64 = {"u": rng.standard_normal(32)}
        f32 = {"u": rng.standard_normal(32).astype(np.float32)}
        assert _key("a = sqrt(u)", f64) != _key("a = sqrt(u)", f32)

    def test_element_count_change_misses(self, rng):
        k32 = _key("a = sqrt(u)", {"u": rng.standard_normal(32)})
        k64 = _key("a = sqrt(u)", {"u": rng.standard_normal(64)})
        assert k32 != k64

    def test_device_change_misses(self, rng):
        fields = {"u": rng.standard_normal(32)}
        cpu = _key("a = sqrt(u)", fields, device=INTEL_X5660_CPU)
        gpu = _key("a = sqrt(u)", fields, device=NVIDIA_M2050_GPU)
        assert cpu != gpu

    def test_strategy_change_misses(self, rng):
        fields = {"u": rng.standard_normal(32)}
        assert _key("a = sqrt(u)", fields, strategy="roundtrip") != \
            _key("a = sqrt(u)", fields, strategy="staged")

    def test_strategy_option_change_misses(self, rng):
        """A strategy knob folded into plan_token() must invalidate."""
        from repro.strategies import FusionStrategy

        class TunedFusion(FusionStrategy):
            def __init__(self, width):
                self.width = width

            def plan_token(self):
                return (self.name, self.width)

        network = _network("a = sqrt(u)")
        bindings = normalize({"u": rng.standard_normal(32)},
                             network.live_sources())
        n, dtype = problem_size(bindings)
        keys = {plan_key(network, TunedFusion(w), bindings, n,
                         np.dtype(dtype), INTEL_X5660_CPU,
                         "vectorized")[0] for w in (2, 4)}
        assert len(keys) == 2

    def test_backend_change_misses(self, rng):
        fields = {"u": rng.standard_normal(32)}
        assert _key("a = sqrt(u)", fields, backend="vectorized") != \
            _key("a = sqrt(u)", fields, backend="interpreted")

    def test_source_shape_change_misses(self, rng):
        """Same element count, different bound array shapes (e.g. the
        same cell count with different coordinate-array sizes)."""
        flat = _key("a = sqrt(u)", {"u": rng.standard_normal(32)})
        square = _key("a = sqrt(u)",
                      {"u": rng.standard_normal(32).reshape(8, 4)})
        assert flat != square


class TestPlanCacheLRU:
    def test_hit_miss_eviction_counters(self):
        cache = PlanCache(maxsize=2)
        k1, k2, k3 = "k1", "k2", "k3"
        assert cache.get(k1) is None          # miss
        cache.put(k1, "plan1")
        cache.put(k2, "plan2")
        assert cache.get(k1) == "plan1"       # hit; k1 now most recent
        cache.put(k3, "plan3")                # evicts k2 (LRU)
        assert k2 not in cache
        assert k1 in cache and k3 in cache
        info = cache.info(hit=False)
        assert (info.hits, info.misses, info.evictions) == (1, 1, 1)
        assert info.size == 2 and info.maxsize == 2

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            PlanCache(maxsize=0)


class TestEngineWarmPath:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_warm_bitwise_equals_cold(self, strategy, small_fields):
        cold = DerivedFieldEngine(device="cpu", strategy=strategy,
                                  plan_cache=False, pooling=False)
        warm = DerivedFieldEngine(device="cpu", strategy=strategy)
        cold_report = cold.execute(vortex.Q_CRITERION, small_fields)
        warm.execute(vortex.Q_CRITERION, small_fields)   # populate
        warm_report = warm.execute(vortex.Q_CRITERION, small_fields)
        assert warm_report.cache is not None and warm_report.cache.hit
        np.testing.assert_array_equal(cold_report.output,
                                      warm_report.output)
        # The warm run replays the identical transfer/launch sequence, so
        # every modeled observable matches the cold run exactly.
        assert warm_report.counts == cold_report.counts
        assert warm_report.timing.total == cold_report.timing.total
        assert warm_report.generated_sources == \
            cold_report.generated_sources

    def test_first_run_miss_then_hits(self, small_fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        first = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        assert first.cache is not None
        assert not first.cache.hit and first.cache.misses == 1
        second = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        assert second.cache.hit and second.cache.hits == 1
        assert second.cache.size == 1

    def test_structural_sharing_across_names(self, rng):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        u, v = rng.standard_normal(64), rng.standard_normal(64)
        first = engine.execute("t = u * v", {"u": u, "v": v})
        assert not first.cache.hit
        p, q = rng.standard_normal(64), rng.standard_normal(64)
        second = engine.execute("s = p * q", {"p": p, "q": q})
        assert second.cache.hit  # same structure, names erased
        np.testing.assert_array_equal(second.output, p * q)

    def test_new_arrays_each_timestep(self, rng):
        """The in-situ pattern: one plan, fresh data every step."""
        engine = DerivedFieldEngine(device="cpu", strategy="staged")
        compiled = engine.compile("a = u * u + v")
        for _ in range(3):
            u, v = rng.standard_normal(48), rng.standard_normal(48)
            out = engine.derive(compiled, {"u": u, "v": v})
            np.testing.assert_array_equal(out, u * u + v)

    def test_pool_recycles_reservations(self, small_fields):
        # Pinned to the interpreter backend: compiled plans never touch
        # device buffers, so only interpreter runs exercise the pool.
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="vectorized")
        engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        report = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        alloc = report.alloc
        assert alloc.reused_allocations > 0
        assert alloc.pool_hits > 0
        assert alloc.pooled_bytes > 0      # parked again after the run
        assert alloc.live_bytes == 0       # nothing left alive

    def test_cache_disabled_matches_seed_behavior(self, small_fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    plan_cache=False, pooling=False)
        report = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        assert report.cache is None
        assert report.alloc is not None
        assert report.alloc.reused_allocations == 0

    def test_lru_bound_evicts_through_engine(self, rng):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    plan_cache=2)
        u = rng.standard_normal(32)
        engine.execute("a = u + 1.0", {"u": u})
        engine.execute("a = u + 2.0", {"u": u})
        report = engine.execute("a = u + 3.0", {"u": u})
        assert report.cache.evictions == 1
        assert report.cache.size == 2
        # The first expression was evicted: re-running it misses again.
        report = engine.execute("a = u + 1.0", {"u": u})
        assert not report.cache.hit


class TestErrorPathRelease:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_oom_mid_run_leaks_nothing(self, strategy, rng):
        """A failed execution must release every buffer it allocated
        (the try/finally fix) so later accounting is not skewed."""
        tiny = dataclasses.replace(NVIDIA_M2050_GPU, name="tiny",
                                   global_mem_bytes=2048)
        env = CLEnvironment(tiny)
        fields = {"u": rng.standard_normal(96),
                  "v": rng.standard_normal(96)}
        net = _network("a = sqrt(u * u + v * v)")
        with pytest.raises(CLOutOfMemoryError):
            get_strategy(strategy).execute(net, fields, env)
        assert env.mem_in_use == 0
        # The environment is still usable at a size that fits.
        small = {"u": rng.standard_normal(8), "v": rng.standard_normal(8)}
        report = get_strategy(strategy).execute(net, small, env)
        assert report.output is not None
        assert env.mem_in_use == 0
