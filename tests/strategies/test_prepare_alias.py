"""Regression tests for the deprecated ``_prepare`` alias: it must warn
exactly once per process and behave identically to the public method."""

import warnings

import numpy as np
import pytest

from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import get_strategy
from repro.strategies.base import ExecutionStrategy


@pytest.fixture()
def network():
    spec, _ = lower(parse("a = u + v"))
    return Network(eliminate_common_subexpressions(spec))


@pytest.fixture()
def arrays(small_fields):
    return {"u": small_fields["u"], "v": small_fields["v"]}


@pytest.fixture(autouse=True)
def reset_warn_once():
    ExecutionStrategy._prepare_warned = False
    yield
    ExecutionStrategy._prepare_warned = False


class TestPrepareAlias:
    def test_warns_deprecation_exactly_once(self, network, arrays):
        strategy = get_strategy("fusion")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            strategy._prepare(network, arrays)
            strategy._prepare(network, arrays)
            get_strategy("staged")._prepare(network, arrays)
        deprecations = [w for w in caught
                        if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1
        assert "_prepare is deprecated" in str(deprecations[0].message)

    def test_alias_matches_public_prepare(self, network, arrays):
        strategy = get_strategy("fusion")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            alias_bindings, alias_n, alias_dtype = \
                strategy._prepare(network, arrays)
        bindings, n, dtype = strategy.prepare(network, arrays)
        assert alias_n == n
        assert alias_dtype == dtype
        assert set(alias_bindings) == set(bindings)
        for name in bindings:
            np.testing.assert_array_equal(alias_bindings[name].data,
                                          bindings[name].data)

    def test_public_prepare_does_not_warn(self, network, arrays):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            get_strategy("fusion").prepare(network, arrays)
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
