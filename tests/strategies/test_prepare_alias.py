"""The deprecated ``_prepare`` alias (warned since PR 3) is gone:
``prepare()`` is the single entry point, and it stays warning-free."""

import warnings

import pytest

from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import get_strategy
from repro.strategies.base import ExecutionStrategy


@pytest.fixture()
def network():
    spec, _ = lower(parse("a = u + v"))
    return Network(eliminate_common_subexpressions(spec))


@pytest.fixture()
def arrays(small_fields):
    return {"u": small_fields["u"], "v": small_fields["v"]}


class TestPrepareIsTheOnlyEntryPoint:
    def test_alias_removed(self):
        assert not hasattr(ExecutionStrategy, "_prepare")
        assert not hasattr(ExecutionStrategy, "_prepare_warned")
        for name in ("roundtrip", "staged", "fusion"):
            assert not hasattr(get_strategy(name), "_prepare")

    def test_public_prepare_works_and_does_not_warn(self, network, arrays):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            bindings, n, dtype = get_strategy("fusion").prepare(network,
                                                                arrays)
        assert n == arrays["u"].size
        assert set(bindings) == {"u", "v"}
        assert not [w for w in caught
                    if issubclass(w.category, DeprecationWarning)]
