"""Property-based cross-strategy agreement.

The strongest invariant in the system: for *any* expressible program, the
three execution strategies and a direct NumPy evaluation of the AST must
agree bit-for-bit (same order of floating-point operations) or to tight
tolerance.  Hypothesis generates random programs over random fields.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import CLEnvironment
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import (FusionStrategy, RoundtripStrategy,
                              StagedStrategy)

NAMES = ("u", "v", "w")


@st.composite
def programs(draw):
    """A random expression program over fields u, v, w."""
    n_stmts = draw(st.integers(1, 3))
    defined = list(NAMES)
    lines = []
    for i in range(n_stmts):
        expr = draw(exprs(defined))
        name = f"t{i}"
        lines.append(f"{name} = {expr}")
        defined.append(name)
    # Expressions must reference at least one host field for the problem
    # size to be defined; anchor the result to u without changing values.
    lines.append(f"result = t{n_stmts - 1} + 0.0 * u")
    return "\n".join(lines)


@st.composite
def exprs(draw, defined, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return draw(st.sampled_from(defined))
        if choice == 1:
            return repr(round(draw(st.floats(-4, 4, allow_nan=False)), 3))
        return f"abs({draw(st.sampled_from(defined))})"
    kind = draw(st.sampled_from(["+", "-", "*", "max", "min", "select",
                                 "neg"]))
    if kind in "+-*":
        left = draw(exprs(defined, depth + 1))
        right = draw(exprs(defined, depth + 1))
        return f"({left} {kind} {right})"
    if kind == "neg":
        return f"(-{draw(exprs(defined, depth + 1))})"
    if kind == "select":
        c = draw(exprs(defined, depth + 1))
        t = draw(exprs(defined, depth + 1))
        f = draw(exprs(defined, depth + 1))
        return f"(if ({c} > 0.0) then ({t}) else ({f}))"
    a = draw(exprs(defined, depth + 1))
    b = draw(exprs(defined, depth + 1))
    return f"{kind}({a}, {b})"


def run_all_strategies(text, fields):
    spec, _ = lower(parse(text))
    net = Network(eliminate_common_subexpressions(spec))
    bindings = {k: fields[k] for k in net.live_sources()}
    outputs = {}
    for strategy in (RoundtripStrategy(), StagedStrategy(),
                     FusionStrategy()):
        report = strategy.execute(net, bindings, CLEnvironment("cpu"))
        outputs[strategy.name] = report.output
    return outputs


@given(programs(), st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_all_strategies_agree(text, seed):
    rng = np.random.default_rng(seed)
    fields = {name: rng.standard_normal(32) for name in NAMES}
    outputs = run_all_strategies(text, fields)
    base = outputs["roundtrip"]
    assert base.shape == (32,)
    for name in ("staged", "fusion"):
        np.testing.assert_allclose(outputs[name], base, rtol=1e-12,
                                   atol=1e-12, err_msg=f"{name} vs "
                                   f"roundtrip for program:\n{text}")


@given(st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_strategies_agree_on_gradient_networks(seed):
    rng = np.random.default_rng(seed)
    ni, nj, nk = 4, 5, 6
    fields = {
        "u": rng.standard_normal(ni * nj * nk),
        "dims": np.array([ni, nj, nk], np.int32),
        "x": np.concatenate([[0.0],
                             np.cumsum(rng.uniform(0.05, 1.0, ni))]),
        "y": np.linspace(0, 1, nj + 1),
        "z": np.linspace(0, 2, nk + 1),
    }
    text = "g = grad3d(u,dims,x,y,z)\na = g[0]*g[0] + g[1] - g[2]"
    outputs = run_all_strategies(text, fields)
    np.testing.assert_allclose(outputs["staged"], outputs["roundtrip"],
                               rtol=1e-10, atol=1e-10)
    np.testing.assert_allclose(outputs["fusion"], outputs["roundtrip"],
                               rtol=1e-10, atol=1e-10)
