"""Exact reproduction of Table II: host-to-device transfers (Dev-W),
device-to-host transfers (Dev-R), and kernel executions (K-Exe) for the
three test expressions under the three execution strategies.

These integers are structural consequences of the strategies' designs —
they must match the paper exactly, not approximately.
"""

import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import get_strategy

# (expression, strategy) -> (Dev-W, Dev-R, K-Exe), verbatim from Table II.
TABLE_II = {
    ("velocity_magnitude", "roundtrip"): (11, 6, 6),
    ("velocity_magnitude", "staged"): (3, 1, 6),
    ("velocity_magnitude", "fusion"): (3, 1, 1),
    ("vorticity_magnitude", "roundtrip"): (32, 12, 12),
    ("vorticity_magnitude", "staged"): (7, 1, 18),
    ("vorticity_magnitude", "fusion"): (7, 1, 1),
    ("q_criterion", "roundtrip"): (123, 57, 57),
    ("q_criterion", "staged"): (7, 1, 67),
    ("q_criterion", "fusion"): (7, 1, 1),
}


def network_for(name):
    spec, _ = lower(parse(vortex.EXPRESSIONS[name]))
    return Network(eliminate_common_subexpressions(spec))


@pytest.mark.parametrize("expression,strategy", sorted(TABLE_II))
def test_event_counts_match_paper(expression, strategy, small_fields):
    net = network_for(expression)
    bindings = {k: small_fields[k] for k in net.live_sources()}
    report = get_strategy(strategy).execute(net, bindings,
                                            CLEnvironment("cpu"))
    assert report.counts.as_row() == TABLE_II[(expression, strategy)]


@pytest.mark.parametrize("expression,strategy", sorted(TABLE_II))
def test_event_counts_identical_in_dry_run(expression, strategy,
                                           small_fields):
    """Planning must see exactly the events live execution sees."""
    net = network_for(expression)
    from repro.strategies.bindings import ArraySpec
    shapes = {k: ArraySpec(small_fields[k].shape, small_fields[k].dtype)
              for k in net.live_sources()}
    report = get_strategy(strategy).execute(
        net, shapes, CLEnvironment("cpu", dry_run=True))
    assert report.counts.as_row() == TABLE_II[(expression, strategy)]


def test_roundtrip_writes_equal_argument_occurrences(small_fields):
    """u*u uploads u twice — the naive per-argument transfer behaviour the
    paper's write counts imply."""
    spec, _ = lower(parse("a = u * u"))
    net = Network(eliminate_common_subexpressions(spec))
    report = get_strategy("roundtrip").execute(
        net, {"u": small_fields["u"]}, CLEnvironment("cpu"))
    assert report.counts.dev_writes == 2


def test_staged_reads_only_final_result(small_fields):
    net = network_for("q_criterion")
    bindings = {k: small_fields[k] for k in net.live_sources()}
    report = get_strategy("staged").execute(net, bindings,
                                            CLEnvironment("cpu"))
    assert report.counts.dev_reads == 1


def test_fusion_single_kernel_for_all_paper_expressions(small_fields):
    for name in vortex.EXPRESSIONS:
        net = network_for(name)
        bindings = {k: small_fields[k] for k in net.live_sources()}
        report = get_strategy("fusion").execute(net, bindings,
                                                CLEnvironment("cpu"))
        assert report.counts.kernel_execs == 1
