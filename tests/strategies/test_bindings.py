"""Unit tests for host-array bindings and problem sizing, plus
vector-valued outputs and dtype coverage across strategies/backends."""

import numpy as np
import pytest

from repro.errors import StrategyError
from repro.host import DerivedFieldEngine
from repro.primitives import grad3d_numpy
from repro.strategies import ArraySpec, normalize, problem_size
from repro.strategies.bindings import Binding
from repro.workloads import SubGrid, make_fields


class TestNormalize:
    def test_arrays_and_specs_mix(self):
        out = normalize({"u": np.zeros(8),
                         "v": ArraySpec((8,), np.float64)},
                        ["u", "v"])
        assert out["u"].data is not None
        assert out["v"].data is None
        assert out["u"].nbytes == out["v"].nbytes == 64

    def test_missing_binding_rejected(self):
        with pytest.raises(StrategyError, match="requires host array"):
            normalize({"u": np.zeros(4)}, ["u", "v"])

    def test_extra_bindings_ignored(self):
        out = normalize({"u": np.zeros(4), "junk": np.zeros(9)}, ["u"])
        assert set(out) == {"u"}


class TestProblemSize:
    def test_largest_float_source_wins(self):
        bindings = normalize({
            "u": np.zeros(100),
            "x": np.zeros(11),
            "dims": np.zeros(3, np.int32),
        }, ["u", "x", "dims"])
        n, dtype = problem_size(bindings)
        assert n == 100 and dtype == np.float64

    def test_no_float_source_rejected(self):
        bindings = normalize({"dims": np.zeros(3, np.int32)}, ["dims"])
        with pytest.raises(StrategyError, match="floating-point"):
            problem_size(bindings)

    def test_mixed_field_dtypes_rejected(self):
        bindings = normalize({
            "u": np.zeros(8, np.float32),
            "v": np.zeros(8, np.float64),
        }, ["u", "v"])
        with pytest.raises(StrategyError, match="share one float dtype"):
            problem_size(bindings)

    def test_mixed_dtype_surfaces_through_engine(self):
        engine = DerivedFieldEngine(strategy="staged")
        with pytest.raises(StrategyError, match="dtype"):
            engine.derive("a = u + v", {"u": np.ones(8, np.float32),
                                        "v": np.ones(8)})

    def test_small_aux_arrays_may_differ(self):
        # coordinate arrays are not problem-sized; float32 coords beside
        # float64 fields are tolerated (converted by the primitives)
        bindings = normalize({
            "u": np.zeros(100),
            "x": np.zeros(5, np.float32),
        }, ["u", "x"])
        n, dtype = problem_size(bindings)
        assert (n, dtype) == (100, np.float64)


class TestVectorOutputs:
    @pytest.mark.parametrize("strategy", ["roundtrip", "staged", "fusion"])
    def test_gradient_as_final_output(self, strategy):
        fields = make_fields(SubGrid(4, 5, 6), seed=2)
        out = DerivedFieldEngine(strategy=strategy).derive(
            "g = grad3d(u,dims,x,y,z)", fields)
        expected = grad3d_numpy(fields["u"], fields["dims"], fields["x"],
                                fields["y"], fields["z"])
        assert out.shape == expected.shape
        np.testing.assert_array_equal(out, expected)

    def test_vec3_as_final_output(self):
        fields = make_fields(SubGrid(3, 3, 3), seed=1)
        out = DerivedFieldEngine(strategy="fusion").derive(
            "g = vec3(u, v, w)", fields)
        assert out.shape == (27, 4)
        np.testing.assert_array_equal(out[:, 0], fields["u"])

    def test_vector_output_interpreted_backend(self):
        fields = make_fields(SubGrid(3, 4, 5), seed=1)
        fast = DerivedFieldEngine(strategy="fusion")
        slow = DerivedFieldEngine(strategy="fusion",
                                  backend="interpreted")
        text = "g = curl3d(u, v, w, dims, x, y, z)"
        np.testing.assert_array_equal(fast.derive(text, fields),
                                      slow.derive(text, fields))


class TestFloat32End2End:
    @pytest.mark.parametrize("strategy", ["roundtrip", "staged", "fusion"])
    def test_float32_q_criterion(self, strategy):
        fields = make_fields(SubGrid(4, 4, 6), seed=8, dtype=np.float32)
        out = DerivedFieldEngine(strategy=strategy).derive(
            "a = sqrt(u*u + v*v + w*w)", fields)
        assert out.dtype == np.float32
        expected = np.sqrt(fields["u"] ** 2 + fields["v"] ** 2
                           + fields["w"] ** 2)
        np.testing.assert_allclose(out, expected, rtol=1e-6)

    def test_float32_interpreted_backend(self):
        fields = make_fields(SubGrid(3, 3, 4), seed=8, dtype=np.float32)
        fast = DerivedFieldEngine(strategy="fusion")
        slow = DerivedFieldEngine(strategy="fusion",
                                  backend="interpreted")
        text = "a = 0.5 * u + v"
        np.testing.assert_allclose(fast.derive(text, fields),
                                   slow.derive(text, fields), rtol=1e-6)
