"""Tests for the canned vortex-detection expressions and references."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.expr import parse


class TestExpressionTexts:
    @pytest.mark.parametrize("name", list(vortex.EXPRESSIONS))
    def test_all_expressions_parse(self, name):
        program = parse(vortex.EXPRESSIONS[name])
        assert program.statements

    def test_result_names(self):
        assert parse(vortex.VELOCITY_MAGNITUDE).result_name == "v_mag"
        assert parse(vortex.VORTICITY_MAGNITUDE).result_name == "w_mag"
        assert parse(vortex.Q_CRITERION).result_name == "q_crit"

    def test_input_declarations_cover_sources(self):
        from repro.expr import lower
        for name, text in vortex.EXPRESSIONS.items():
            spec, _ = lower(parse(text))
            assert set(spec.source_names()) == \
                set(vortex.EXPRESSION_INPUTS[name])


class TestReferenceMath:
    def test_vorticity_of_rigid_rotation(self):
        """Rigid-body rotation about z: v = (-y, x, 0); curl = (0,0,2)."""
        n = 12
        x = np.linspace(-1, 1, n + 1)
        y = np.linspace(-1, 1, n + 1)
        z = np.linspace(-1, 1, n + 1)
        xc = 0.5 * (x[:-1] + x[1:])
        yc = 0.5 * (y[:-1] + y[1:])
        X, Y, _ = np.meshgrid(xc, yc, 0.5 * (z[:-1] + z[1:]),
                              indexing="ij")
        u = (-Y).ravel()
        v = X.ravel()
        w = np.zeros_like(u)
        dims = np.array([n, n, n], np.int32)
        omega = vortex.vorticity_reference(u, v, w, dims, x, y, z)
        np.testing.assert_allclose(omega[:, 2], 2.0, atol=1e-10)
        np.testing.assert_allclose(omega[:, :2], 0.0, atol=1e-10)

    def test_q_positive_in_rigid_rotation(self):
        """Pure rotation: S = 0, Q = 0.5 ||Omega||^2 > 0 — Hunt's
        criterion flags the vortex core."""
        n = 10
        coords = np.linspace(-1, 1, n + 1)
        c = 0.5 * (coords[:-1] + coords[1:])
        X, Y, _ = np.meshgrid(c, c, c, indexing="ij")
        u, v = (-Y).ravel(), X.ravel()
        w = np.zeros_like(u)
        dims = np.array([n, n, n], np.int32)
        q = vortex.q_criterion_reference(u, v, w, dims, coords, coords,
                                         coords)
        # J = [[0,-1],[1,0]] block: Omega = J, ||Omega||^2 = 2, Q = 1.
        assert (q > 0).all()
        np.testing.assert_allclose(q, 1.0, atol=1e-9)

    def test_q_negative_in_pure_strain(self):
        """Pure strain: u = x, v = -y: Omega = 0, Q < 0."""
        n = 10
        coords = np.linspace(-1, 1, n + 1)
        c = 0.5 * (coords[:-1] + coords[1:])
        X, Y, _ = np.meshgrid(c, c, c, indexing="ij")
        u, v = X.ravel(), (-Y).ravel()
        w = np.zeros_like(u)
        dims = np.array([n, n, n], np.int32)
        q = vortex.q_criterion_reference(u, v, w, dims, coords, coords,
                                         coords)
        assert (q < 0).all()
        np.testing.assert_allclose(q, -1.0, atol=1e-9)

    def test_velocity_magnitude_triangle(self):
        u = np.array([3.0]); v = np.array([4.0]); w = np.array([0.0])
        np.testing.assert_allclose(
            vortex.velocity_magnitude_reference(u, v, w), [5.0])

    def test_vorticity_magnitude_is_norm_of_vorticity(self, small_fields):
        args = [small_fields[k] for k in
                ("u", "v", "w", "dims", "x", "y", "z")]
        omega = vortex.vorticity_reference(*args)
        np.testing.assert_allclose(
            vortex.vorticity_magnitude_reference(*args),
            np.linalg.norm(omega, axis=1), rtol=1e-12)

    def test_expression_equals_tensor_form(self, small_fields):
        """The Fig 3C scalar expression and the Eq. 2 tensor computation
        are algebraically identical."""
        from repro.host import derive
        out = derive(vortex.Q_CRITERION, small_fields)["q_crit"]
        args = [small_fields[k] for k in
                ("u", "v", "w", "dims", "x", "y", "z")]
        np.testing.assert_allclose(out, vortex.q_criterion_reference(*args),
                                   rtol=1e-12, atol=1e-12)
