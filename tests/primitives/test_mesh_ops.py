"""Tests for the extension mesh operators: div3d, curl3d, laplace3d."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim.compiler import PREAMBLE, validate_source
from repro.host import derive, derive_report
from repro.primitives import (CURL3D, DIV3D, LAPLACE3D, cell_centers,
                              curl3d_numpy, div3d_numpy, grad3d_numpy,
                              laplace3d_numpy)
from repro.workloads import taylor_green_fields


@pytest.fixture(scope="module")
def tg():
    return taylor_green_fields((12, 12, 12))


def mesh_args(fields):
    return [fields[k] for k in ("dims", "x", "y", "z")]


class TestDivergence:
    def test_linear_field_exact(self):
        # V = (2x, 3y, -4z): div = 1 exactly under the discrete scheme
        n = 6
        coords = np.linspace(0, 1, n + 1)
        c = cell_centers(coords)
        X, Y, Z = np.meshgrid(c, c, c, indexing="ij")
        div = div3d_numpy(2 * X.ravel(), 3 * Y.ravel(), -4 * Z.ravel(),
                          (n, n, n), coords, coords, coords)
        np.testing.assert_allclose(div, 1.0, atol=1e-12)

    def test_taylor_green_interior_divergence_free(self, tg):
        div = div3d_numpy(tg["u"], tg["v"], tg["w"], *mesh_args(tg))
        interior = np.abs(div).reshape(12, 12, 12)[1:-1, 1:-1, 1:-1]
        assert interior.max() < 1e-12

    def test_matches_grad_composition(self, tg):
        direct = div3d_numpy(tg["u"], tg["v"], tg["w"], *mesh_args(tg))
        composed = (grad3d_numpy(tg["u"], *mesh_args(tg))[:, 0]
                    + grad3d_numpy(tg["v"], *mesh_args(tg))[:, 1]
                    + grad3d_numpy(tg["w"], *mesh_args(tg))[:, 2])
        np.testing.assert_allclose(direct, composed, rtol=1e-12)


class TestCurl:
    def test_matches_vorticity_reference(self, tg):
        curl = curl3d_numpy(tg["u"], tg["v"], tg["w"], *mesh_args(tg))
        omega = vortex.vorticity_reference(tg["u"], tg["v"], tg["w"],
                                           *mesh_args(tg))
        np.testing.assert_allclose(curl[:, :3], omega, rtol=1e-12,
                                   atol=1e-12)
        np.testing.assert_array_equal(curl[:, 3], 0.0)

    def test_expression_form_equals_fig3b(self, tg):
        """`vmag(curl3d(...))` must equal the paper's Fig 3B composition."""
        compact = derive(
            "w_mag = vmag(curl3d(u, v, w, dims, x, y, z))", tg)["w_mag"]
        composed = derive(vortex.VORTICITY_MAGNITUDE, tg)["w_mag"]
        np.testing.assert_allclose(compact, composed, rtol=1e-12,
                                   atol=1e-12)

    def test_compact_form_is_cheaper(self, tg):
        """One curl kernel replaces 3 gradients + 6 decomposes + 3 subs —
        the building-block library growing exactly as the paper intends."""
        compact = derive_report(
            "w_mag = vmag(curl3d(u, v, w, dims, x, y, z))", tg,
            strategy="staged")
        composed = derive_report(vortex.VORTICITY_MAGNITUDE, tg,
                                 strategy="staged")
        assert compact.counts.kernel_execs < composed.counts.kernel_execs

    def test_curl_of_gradient_is_zero_interior(self, tg):
        g = grad3d_numpy(tg["u"], *mesh_args(tg))
        curl = curl3d_numpy(g[:, 0], g[:, 1], g[:, 2], *mesh_args(tg))
        interior = np.abs(curl[:, :3]).max(axis=1).reshape(12, 12, 12)
        # curl(grad f) = 0; discrete central differences commute exactly
        # away from the one-sided boundary layers
        assert interior[2:-2, 2:-2, 2:-2].max() < 1e-10


class TestLaplacian:
    def test_quadratic_field(self):
        # f = x^2 + 2y^2 - z^2: laplacian = 2 + 4 - 2 = 4, exact at
        # interior cells of a uniform mesh
        n = 8
        coords = np.linspace(0, 1, n + 1)
        c = cell_centers(coords)
        X, Y, Z = np.meshgrid(c, c, c, indexing="ij")
        f = (X * X + 2 * Y * Y - Z * Z).ravel()
        lap = laplace3d_numpy(f, (n, n, n), coords, coords, coords)
        # central-of-central is exact two cells away from the one-sided
        # boundary layers
        interior = lap.reshape(n, n, n)[2:-2, 2:-2, 2:-2]
        np.testing.assert_allclose(interior, 4.0, atol=1e-10)

    def test_linear_field_zero(self):
        n = 6
        coords = np.linspace(0, 2, n + 1)
        c = cell_centers(coords)
        X, _, _ = np.meshgrid(c, c, c, indexing="ij")
        lap = laplace3d_numpy(3 * X.ravel(), (n, n, n), coords, coords,
                              coords)
        np.testing.assert_allclose(lap, 0.0, atol=1e-12)

    def test_through_expression_language(self, tg):
        out = derive("smooth = laplace3d(u, dims, x, y, z)", tg)["smooth"]
        np.testing.assert_allclose(
            out, laplace3d_numpy(tg["u"], *mesh_args(tg)), rtol=1e-12)


class TestOpenCLSources:
    @pytest.mark.parametrize("prim", [DIV3D, CURL3D, LAPLACE3D])
    def test_source_validates(self, prim):
        args = ["f"] * prim.arity
        out_t = "double4" if prim.result_kind.value == "vector" \
            else "double"
        source = (PREAMBLE + prim.render_source("double")
                  + f"\n__kernel void t(__global const double* f, "
                  f"__global const int* dims, __global {out_t}* out)\n"
                  "{ const size_t gid = get_global_id(0); out[gid] = "
                  + prim.render_call(*(["f"] * (prim.arity - 4)
                                       + ["dims", "f", "f", "f"]))
                  + "; }")
        assert validate_source(source) == ["t"]

    def test_shared_helper_appears_once_in_fused_kernel(self, tg):
        """grad3d and curl3d in one fused kernel share one axis helper."""
        report = derive_report(
            "a = grad3d(u,dims,x,y,z)[0] + curl3d(u,v,w,dims,x,y,z)[2]",
            tg, strategy="fusion")
        (source,) = report.generated_sources.values()
        assert source.count("inline double dfg_grad3d_axis(") == 1
        assert source.count("inline double4 dfg_curl3d(") == 1
        validate_source(source)

    def test_strategies_agree_on_mesh_ops(self, tg):
        text = "a = div3d(u, v, w, dims, x, y, z) * 0.5"
        outputs = [derive(text, tg, strategy=s)["a"]
                   for s in ("roundtrip", "staged", "fusion")]
        np.testing.assert_allclose(outputs[1], outputs[0], rtol=1e-12)
        np.testing.assert_allclose(outputs[2], outputs[0], rtol=1e-12)
