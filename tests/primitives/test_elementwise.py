"""Unit tests for elementwise primitives: NumPy semantics and OpenCL
source generation."""

import numpy as np
import pytest

from repro.clsim.compiler import PREAMBLE, validate_source
from repro.errors import PrimitiveError
from repro.primitives import (ABS, ADD, DEFAULT_REGISTRY, DIV, EQ, EXP, GE,
                              GT, LE, LOG, LT, MAX, MIN, MULT, NE, NEG, POW,
                              SELECT, SQRT, SUB, VECTOR_WIDTH)


@pytest.fixture
def a():
    return np.array([1.0, -2.0, 3.5, 0.25])


@pytest.fixture
def b():
    return np.array([2.0, 2.0, -1.0, 0.5])


class TestNumpySemantics:
    def test_add(self, a, b):
        np.testing.assert_array_equal(ADD.numpy_fn(a, b), a + b)

    def test_sub(self, a, b):
        np.testing.assert_array_equal(SUB.numpy_fn(a, b), a - b)

    def test_mult(self, a, b):
        np.testing.assert_array_equal(MULT.numpy_fn(a, b), a * b)

    def test_div(self, a, b):
        np.testing.assert_array_equal(DIV.numpy_fn(a, b), a / b)

    def test_neg(self, a):
        np.testing.assert_array_equal(NEG.numpy_fn(a), -a)

    def test_sqrt(self):
        x = np.array([0.0, 1.0, 4.0, 9.0])
        np.testing.assert_array_equal(SQRT.numpy_fn(x), [0, 1, 2, 3])

    def test_abs(self, a):
        np.testing.assert_array_equal(ABS.numpy_fn(a), np.abs(a))

    def test_min_max(self, a, b):
        np.testing.assert_array_equal(MIN.numpy_fn(a, b), np.minimum(a, b))
        np.testing.assert_array_equal(MAX.numpy_fn(a, b), np.maximum(a, b))

    def test_pow(self):
        np.testing.assert_allclose(
            POW.numpy_fn(np.array([2.0, 3.0]), np.array([3.0, 2.0])),
            [8.0, 9.0])

    def test_exp_log_inverse(self, a):
        np.testing.assert_allclose(LOG.numpy_fn(EXP.numpy_fn(a)), a)

    @pytest.mark.parametrize("prim,op", [
        (LT, np.less), (GT, np.greater), (LE, np.less_equal),
        (GE, np.greater_equal), (EQ, np.equal), (NE, np.not_equal)])
    def test_comparisons_produce_masks(self, prim, op, a, b):
        got = prim.numpy_fn(a, b)
        np.testing.assert_array_equal(got, op(a, b).astype(float))
        assert got.dtype == np.float64

    def test_select(self):
        cond = np.array([1.0, 0.0, 1.0])
        t = np.array([10.0, 20.0, 30.0])
        f = np.array([-1.0, -2.0, -3.0])
        np.testing.assert_array_equal(SELECT.numpy_fn(cond, t, f),
                                      [10.0, -2.0, 30.0])

    def test_broadcast_with_scalar_buffer(self, a):
        # constants are single-element device buffers: broadcasting applies
        np.testing.assert_array_equal(
            MULT.numpy_fn(np.array([0.5]), a), 0.5 * a)


class TestOpenCLSource:
    @pytest.mark.parametrize("prim", [ADD, SUB, MULT, DIV, NEG, SQRT, ABS,
                                      MIN, MAX, POW, EXP, LOG, LT, GT, LE,
                                      GE, EQ, NE, SELECT])
    @pytest.mark.parametrize("ctype", ["double", "float"])
    def test_helper_renders_and_validates(self, prim, ctype):
        args = ", ".join(
            f"__global const {ctype}* a{i}" for i in range(prim.arity))
        call = prim.render_call(
            *[f"a{i}[gid]" for i in range(prim.arity)], T=ctype)
        source = (PREAMBLE + prim.render_source(ctype) +
                  f"\n__kernel void t({args}, __global {ctype}* out)\n"
                  "{ const size_t gid = get_global_id(0); "
                  f"out[gid] = {call}; }}")
        assert validate_source(source) == ["t"]

    def test_render_call_arity_checked(self):
        with pytest.raises(PrimitiveError, match="operands"):
            ADD.render_call("a")

    def test_helper_type_substitution(self):
        assert "inline float dfg_add(const float a, const float b)" in \
            ADD.render_source("float")
        assert "double" in ADD.render_source("double")


class TestRegistry:
    def test_default_registry_contents(self):
        for name in ("add", "sub", "mult", "div", "sqrt", "decompose",
                     "grad3d", "select", "vmag"):
            assert name in DEFAULT_REGISTRY

    def test_unknown_lookup(self):
        with pytest.raises(PrimitiveError):
            DEFAULT_REGISTRY.get("bogus")

    def test_duplicate_registration_rejected(self):
        from repro.primitives import default_registry
        registry = default_registry()
        with pytest.raises(PrimitiveError, match="already registered"):
            registry.register(ADD)

    def test_names_sorted(self):
        names = DEFAULT_REGISTRY.names()
        assert names == sorted(names)

    def test_commutativity_metadata(self):
        assert ADD.commutative and MULT.commutative
        assert not SUB.commutative and not DIV.commutative
