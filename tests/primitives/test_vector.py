"""Unit tests for vector primitives (decompose, vec3, dot, cross, vmag)."""

import numpy as np
import pytest

from repro.primitives import (CROSS, DECOMPOSE, DOT, VEC3, VECTOR_WIDTH,
                              VMAG)


@pytest.fixture
def vectors(rng):
    a = np.zeros((5, VECTOR_WIDTH))
    b = np.zeros((5, VECTOR_WIDTH))
    a[:, :3] = rng.standard_normal((5, 3))
    b[:, :3] = rng.standard_normal((5, 3))
    return a, b


class TestDecompose:
    def test_selects_component(self, vectors):
        a, _ = vectors
        for component in range(VECTOR_WIDTH):
            np.testing.assert_array_equal(
                DECOMPOSE.numpy_fn(a, component), a[:, component])

    def test_result_contiguous(self, vectors):
        a, _ = vectors
        assert DECOMPOSE.numpy_fn(a, 1).flags["C_CONTIGUOUS"]

    def test_out_of_range_component(self, vectors):
        a, _ = vectors
        with pytest.raises(ValueError):
            DECOMPOSE.numpy_fn(a, VECTOR_WIDTH)

    def test_cl_call_uses_vector_component_syntax(self):
        assert DECOMPOSE.render_call("val", component=2) == "(val).s2"


class TestVec3:
    def test_packs_components(self):
        a, b, c = (np.array([1.0, 2.0]), np.array([3.0, 4.0]),
                   np.array([5.0, 6.0]))
        out = VEC3.numpy_fn(a, b, c)
        assert out.shape == (2, VECTOR_WIDTH)
        np.testing.assert_array_equal(out[:, 0], a)
        np.testing.assert_array_equal(out[:, 3], 0.0)

    def test_round_trip_with_decompose(self, rng):
        a = rng.standard_normal(7)
        out = VEC3.numpy_fn(a, a * 2, a * 3)
        np.testing.assert_array_equal(DECOMPOSE.numpy_fn(out, 1), a * 2)


class TestDotCrossMag:
    def test_dot_matches_einsum(self, vectors):
        a, b = vectors
        np.testing.assert_allclose(
            DOT.numpy_fn(a, b), (a[:, :3] * b[:, :3]).sum(axis=1))

    def test_dot_ignores_pad_lane(self, vectors):
        a, b = vectors
        a2 = a.copy()
        a2[:, 3] = 99.0
        np.testing.assert_allclose(DOT.numpy_fn(a2, b), DOT.numpy_fn(a, b))

    def test_cross_matches_numpy(self, vectors):
        a, b = vectors
        got = CROSS.numpy_fn(a, b)
        np.testing.assert_allclose(got[:, :3],
                                   np.cross(a[:, :3], b[:, :3]))
        np.testing.assert_array_equal(got[:, 3], 0.0)

    def test_cross_anticommutative(self, vectors):
        a, b = vectors
        np.testing.assert_allclose(CROSS.numpy_fn(a, b),
                                   -CROSS.numpy_fn(b, a))

    def test_vmag(self, vectors):
        a, _ = vectors
        np.testing.assert_allclose(
            VMAG.numpy_fn(a), np.linalg.norm(a[:, :3], axis=1))

    def test_vmag_of_cross_orthogonality(self, vectors):
        a, b = vectors
        c = CROSS.numpy_fn(a, b)
        np.testing.assert_allclose(DOT.numpy_fn(a, c), 0.0, atol=1e-12)
