"""Property-based tests on primitive invariants (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.primitives import (ADD, CROSS, DOT, MULT, SQRT, VECTOR_WIDTH,
                              grad3d_numpy)

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
                   allow_infinity=False)
fields = hnp.arrays(np.float64, st.integers(1, 40), elements=finite)


@given(fields, fields)
def test_add_commutes(a, b):
    n = min(a.size, b.size)
    np.testing.assert_array_equal(ADD.numpy_fn(a[:n], b[:n]),
                                  ADD.numpy_fn(b[:n], a[:n]))


@given(fields)
def test_sqrt_of_square_is_abs(a):
    np.testing.assert_allclose(SQRT.numpy_fn(MULT.numpy_fn(a, a)),
                               np.abs(a), rtol=1e-9, atol=1e-12)


@st.composite
def vec_pairs(draw):
    n = draw(st.integers(1, 20))
    data = draw(hnp.arrays(np.float64, (2, n, 3), elements=finite))
    a = np.zeros((n, VECTOR_WIDTH))
    b = np.zeros((n, VECTOR_WIDTH))
    a[:, :3], b[:, :3] = data[0], data[1]
    return a, b


@given(vec_pairs())
def test_cross_orthogonal_to_operands(pair):
    a, b = pair
    c = CROSS.numpy_fn(a, b)
    scale = 1.0 + np.abs(DOT.numpy_fn(a, a)) * np.abs(DOT.numpy_fn(b, b))
    np.testing.assert_allclose(DOT.numpy_fn(a, c) / scale, 0.0, atol=1e-7)
    np.testing.assert_allclose(DOT.numpy_fn(b, c) / scale, 0.0, atol=1e-7)


@st.composite
def mesh_and_coeffs(draw):
    dims = tuple(draw(st.integers(2, 6)) for _ in range(3))
    coeffs = tuple(draw(st.floats(-10, 10, allow_nan=False))
                   for _ in range(3))
    # strictly increasing random coordinates
    def coords(n):
        deltas = draw(hnp.arrays(
            np.float64, n + 1,
            elements=st.floats(0.05, 2.0, allow_nan=False)))
        return np.concatenate([[0.0], np.cumsum(deltas)])[:n + 1]
    return dims, coeffs, coords(dims[0]), coords(dims[1]), coords(dims[2])


@given(mesh_and_coeffs())
@settings(max_examples=50, deadline=None)
def test_gradient_exact_for_linear_fields(case):
    """Central + one-sided differencing w.r.t. cell centers reproduces the
    gradient of any affine field exactly, on any rectilinear mesh."""
    dims, coeffs, x, y, z = case
    xc = 0.5 * (x[:-1] + x[1:])
    yc = 0.5 * (y[:-1] + y[1:])
    zc = 0.5 * (z[:-1] + z[1:])
    X, Y, Z = np.meshgrid(xc, yc, zc, indexing="ij")
    f = (coeffs[0] * X + coeffs[1] * Y + coeffs[2] * Z).ravel()
    g = grad3d_numpy(f, dims, x, y, z)
    scale = 1.0 + max(abs(c) for c in coeffs)
    for axis in range(3):
        np.testing.assert_allclose(g[:, axis] / scale,
                                   coeffs[axis] / scale, atol=1e-8)


@given(fields, st.floats(-100, 100, allow_nan=False))
def test_gradient_linearity_in_field(a, scale):
    """grad(s * f) == s * grad(f) for any field on a fixed mesh."""
    n = 24
    f = np.resize(a, n)
    x = np.linspace(0, 1, 3)
    y = np.linspace(0, 1, 4)
    z = np.linspace(0, 2, 5)
    g1 = grad3d_numpy(scale * f, (2, 3, 4), x, y, z)
    g2 = scale * grad3d_numpy(f, (2, 3, 4), x, y, z)
    # atol must scale with the data: differencing |scale*f| ~ 1e8 leaves
    # absolute float64 noise far above a fixed 1e-9.
    atol = 1e-12 * (1.0 + abs(scale) * float(np.abs(f).max(initial=0.0)))
    np.testing.assert_allclose(g1, g2, rtol=1e-9, atol=max(atol, 1e-9))
