"""Unit tests for the 3D rectilinear gradient primitive."""

import numpy as np
import pytest

from repro.clsim.compiler import PREAMBLE, validate_source
from repro.errors import PrimitiveError
from repro.primitives import GRAD3D, VECTOR_WIDTH, cell_centers, grad3d_numpy
from repro.workloads import linear_field, quadratic_field


def uniform_mesh(ni, nj, nk, extent=(1.0, 1.0, 1.0)):
    return (np.linspace(0, extent[0], ni + 1),
            np.linspace(0, extent[1], nj + 1),
            np.linspace(0, extent[2], nk + 1))


class TestCellCenters:
    def test_uniform(self):
        np.testing.assert_allclose(
            cell_centers(np.array([0.0, 1.0, 2.0])), [0.5, 1.5])

    def test_nonuniform(self):
        np.testing.assert_allclose(
            cell_centers(np.array([0.0, 1.0, 4.0])), [0.5, 2.5])

    def test_too_short_rejected(self):
        with pytest.raises(PrimitiveError):
            cell_centers(np.array([1.0]))

    def test_2d_rejected(self):
        with pytest.raises(PrimitiveError):
            cell_centers(np.zeros((2, 2)))


class TestExactness:
    def test_linear_field_exact(self):
        x, y, z = uniform_mesh(5, 6, 7)
        f, coeffs = linear_field(x, y, z, (2.0, -3.0, 0.5))
        g = grad3d_numpy(f, (5, 6, 7), x, y, z)
        for axis in range(3):
            np.testing.assert_allclose(g[:, axis], coeffs[axis],
                                       atol=1e-12)

    def test_linear_field_exact_nonuniform(self):
        x = np.array([0.0, 0.1, 0.5, 0.6, 2.0, 2.2])
        y = np.array([0.0, 1.0, 1.5, 4.0])
        z = np.array([-1.0, 0.0, 0.25, 0.75, 1.0])
        f, coeffs = linear_field(x, y, z, (1.5, 2.5, -4.0))
        g = grad3d_numpy(f, (5, 3, 4), x, y, z)
        for axis in range(3):
            np.testing.assert_allclose(g[:, axis], coeffs[axis],
                                       atol=1e-10)

    def test_quadratic_interior_exact_on_uniform_mesh(self):
        x, y, z = uniform_mesh(8, 8, 8)
        f, exact = quadratic_field(x, y, z)
        g = grad3d_numpy(f, (8, 8, 8), x, y, z)
        interior = np.ones((8, 8, 8), dtype=bool)
        interior[[0, -1], :, :] = False
        interior[:, [0, -1], :] = False
        interior[:, :, [0, -1]] = False
        mask = interior.ravel()
        np.testing.assert_allclose(g[mask, :3], exact[mask], atol=1e-10)

    def test_matches_numpy_gradient_interior(self):
        rng = np.random.default_rng(3)
        x, y, z = uniform_mesh(6, 6, 6)
        f = rng.standard_normal(216)
        g = grad3d_numpy(f, (6, 6, 6), x, y, z)
        xc, yc, zc = (cell_centers(c) for c in (x, y, z))
        ref = np.gradient(f.reshape(6, 6, 6), xc, yc, zc)
        interior = (slice(1, -1),) * 3
        for axis in range(3):
            np.testing.assert_allclose(
                g[:, axis].reshape(6, 6, 6)[interior],
                ref[axis][interior], atol=1e-10)


class TestShapeAndMetadata:
    def test_output_shape_and_padding(self):
        x, y, z = uniform_mesh(3, 4, 5)
        f = np.ones(60)
        g = grad3d_numpy(f, (3, 4, 5), x, y, z)
        assert g.shape == (60, VECTOR_WIDTH)
        np.testing.assert_array_equal(g[:, 3], 0.0)

    def test_constant_field_zero_gradient(self):
        x, y, z = uniform_mesh(4, 4, 4)
        g = grad3d_numpy(np.full(64, 7.0), (4, 4, 4), x, y, z)
        np.testing.assert_array_equal(g[:, :3], 0.0)

    def test_preserves_dtype(self):
        x, y, z = uniform_mesh(2, 2, 2)
        f = np.ones(8, dtype=np.float32)
        assert grad3d_numpy(f, (2, 2, 2), x, y, z).dtype == np.float32

    def test_dims_accepts_int_array(self):
        x, y, z = uniform_mesh(2, 3, 4)
        g = grad3d_numpy(np.zeros(24), np.array([2, 3, 4], np.int32),
                         x, y, z)
        assert g.shape == (24, VECTOR_WIDTH)

    def test_degenerate_axis(self):
        # a single-cell axis yields zero derivative along it
        x = np.array([0.0, 1.0])
        y, z = np.linspace(0, 1, 4), np.linspace(0, 1, 5)
        f, _ = linear_field(x, y, z, (9.0, 1.0, 1.0))
        g = grad3d_numpy(f, (1, 3, 4), x, y, z)
        np.testing.assert_array_equal(g[:, 0], 0.0)


class TestValidationErrors:
    def test_field_size_mismatch(self):
        x, y, z = uniform_mesh(2, 2, 2)
        with pytest.raises(PrimitiveError, match="cells"):
            grad3d_numpy(np.zeros(9), (2, 2, 2), x, y, z)

    def test_coordinate_length_mismatch(self):
        x, y, z = uniform_mesh(2, 2, 2)
        with pytest.raises(PrimitiveError, match="points"):
            grad3d_numpy(np.zeros(8), (2, 2, 2), x[:-1], y, z)


class TestOpenCLSource:
    def test_source_is_over_50_lines(self):
        # the paper calls this out explicitly
        assert GRAD3D.render_source("double").strip().count("\n") >= 50

    def test_source_validates_in_kernel(self):
        for ctype in ("double", "float"):
            source = (
                PREAMBLE + GRAD3D.render_source(ctype) +
                f"\n__kernel void t(__global const {ctype}* f, "
                "__global const int* dims, "
                f"__global const {ctype}* x, __global const {ctype}* y, "
                f"__global const {ctype}* z, __global {ctype}4* out)\n"
                "{ const size_t gid = get_global_id(0); "
                "out[gid] = dfg_grad3d(f, dims, x, y, z, gid); }")
            assert validate_source(source) == ["t"]

    def test_call_style_is_global(self):
        from repro.primitives import CallStyle
        assert GRAD3D.call_style is CallStyle.GLOBAL
