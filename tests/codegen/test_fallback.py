"""Fallback semantics: when codegen cannot lower a plan the engine runs
the interpreter plan instead — correct output, a counted fallback, and a
report that says exactly what happened."""

import pytest

import repro.host.engine as engine_mod
from repro.analysis import vortex
from repro.errors import CodegenError
from repro.host.engine import DerivedFieldEngine
from repro.strategies import CodegenInfo, ExecutionReport


@pytest.fixture
def broken_codegen(monkeypatch):
    def explode(*args, **kwargs):
        raise CodegenError("forced failure for the fallback test")
    monkeypatch.setattr(engine_mod, "compile_plan", explode)


class TestInterpreterFallback:
    def test_falls_back_and_stays_correct(self, registry, small_fields,
                                          broken_codegen):
        reference = DerivedFieldEngine(
            device="cpu", strategy="fusion", backend="vectorized",
            plan_cache=False, pooling=False).execute(
                vortex.Q_CRITERION, small_fields)
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="compiled")
        report = engine.execute(vortex.Q_CRITERION, small_fields)
        assert report.output.tobytes() == reference.output.tobytes()
        assert report.codegen is not None
        assert report.codegen.disposition == "interpreter-fallback"
        assert not report.codegen.compiled
        assert report.codegen.backend == "vectorized"
        assert registry.value("repro_codegen_fallbacks_total") == 1
        assert registry.value("repro_codegen_compiles_total") == 0

    def test_fallback_plan_is_cached(self, registry, small_fields,
                                     broken_codegen):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="compiled")
        engine.execute(vortex.Q_CRITERION, small_fields)
        warm = engine.execute(vortex.Q_CRITERION, small_fields)
        # The interpreter plan went into the cache: a memory hit, with
        # codegen never retried on the warm path.
        assert warm.codegen.disposition == "memory-hit"
        assert not warm.codegen.compiled
        assert registry.value("repro_codegen_fallbacks_total") == 1

class TestReportRoundTrip:
    def test_codegen_info_round_trips_json(self, small_fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="compiled")
        report = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        assert report.codegen == CodegenInfo(
            backend="compiled", disposition="cold-codegen", compiled=True)
        rebuilt = ExecutionReport.from_json(report.to_json())
        assert rebuilt.codegen == report.codegen

    def test_reports_without_codegen_stay_none(self, small_fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="vectorized")
        report = engine.execute(vortex.VELOCITY_MAGNITUDE, small_fields)
        assert report.codegen is None
        assert ExecutionReport.from_json(report.to_json()).codegen is None


class TestCLIVerbose:
    def test_derive_verbose_prints_disposition(self, tmp_path, capsys):
        from repro.cli import main
        args = ["derive", "velocity_magnitude", "--grid", "6x7x8",
                "--backend", "compiled",
                "--plan-cache-dir", str(tmp_path), "-v"]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executor:   compiled (cold-codegen)" in out

        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executor:   compiled (disk-hit)" in out

    def test_derive_verbose_interpreter_backend(self, capsys):
        from repro.cli import main
        assert main(["derive", "velocity_magnitude", "--grid", "6x7x8",
                     "--backend", "vectorized", "-v"]) == 0
        out = capsys.readouterr().out
        assert "executor:   vectorized" in out


class TestServiceIntegration:
    def test_service_workers_share_the_disk_cache(self, tmp_path,
                                                  small_fields):
        from repro.service import DerivedFieldService
        inputs = {k: small_fields[k]
                  for k in vortex.EXPRESSION_INPUTS["q_criterion"]}
        with DerivedFieldService(devices=("cpu",),
                                 plan_cache_dir=tmp_path) as service:
            report = service.execute(vortex.EXPRESSIONS["q_criterion"],
                                     inputs)
        assert report.codegen is not None and report.codegen.compiled
        import os
        assert any(p.endswith(".json") for p in os.listdir(tmp_path))

        # A restarted service warms straight from disk.
        with DerivedFieldService(devices=("cpu",),
                                 plan_cache_dir=tmp_path) as service:
            warm = service.execute(vortex.EXPRESSIONS["q_criterion"],
                                   inputs)
        assert warm.codegen.disposition == "disk-hit"
        assert warm.output.tobytes() == report.output.tobytes()
