"""The persistent plan cache: a restarted engine (fresh process state)
must warm from disk with zero recompiles, stale entries must
self-invalidate, and corrupt files must never crash an execution."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis import vortex
from repro.codegen import DiskLookup, PlanDiskCache
from repro.host.engine import DerivedFieldEngine
from repro.metrics import MetricsRegistry, set_registry
from repro.strategies import plancache


def _codegen_values(registry):
    return {name: registry.value(f"repro_codegen_{name}_total")
            for name in ("compiles", "disk_hits", "disk_misses",
                         "invalidations", "fallbacks")}


def _run(tmp_path, small_fields, **engine_kwargs):
    """One engine in a fresh metrics registry; returns (report, counters)."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    try:
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    backend="compiled",
                                    plan_cache_dir=tmp_path,
                                    **engine_kwargs)
        report = engine.execute(vortex.Q_CRITERION, small_fields)
    finally:
        set_registry(previous)
    return report, _codegen_values(registry)


def _cache_files(tmp_path):
    return sorted(p for p in os.listdir(tmp_path)
                  if p.endswith(".json"))


class TestWarmRestart:
    def test_second_engine_loads_from_disk(self, tmp_path, small_fields):
        first, counters1 = _run(tmp_path, small_fields)
        assert counters1["compiles"] == 1
        assert counters1["disk_misses"] == 1
        assert counters1["disk_hits"] == 0
        assert first.codegen.disposition == "cold-codegen"
        assert len(_cache_files(tmp_path)) == 1

        second, counters2 = _run(tmp_path, small_fields)
        assert counters2["compiles"] == 0, \
            "restarted engine recompiled despite a populated disk cache"
        assert counters2["disk_hits"] == 1
        assert counters2["disk_misses"] == 0
        assert second.codegen.disposition == "disk-hit"
        assert second.codegen.compiled
        assert second.output.tobytes() == first.output.tobytes()
        assert second.counts == first.counts
        assert second.mem_high_water == first.mem_high_water

    def test_memory_cache_clear_falls_back_to_disk(self, tmp_path,
                                                   small_fields):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                        backend="compiled",
                                        plan_cache_dir=tmp_path)
            engine.execute(vortex.Q_CRITERION, small_fields)
            engine.plan_cache.clear()
            report = engine.execute(vortex.Q_CRITERION, small_fields)
        finally:
            set_registry(previous)
        assert report.codegen.disposition == "disk-hit"
        assert _codegen_values(registry)["compiles"] == 1  # only the cold

    def test_fresh_process_restart(self, tmp_path, small_fields):
        """A genuinely separate Python process warms from the same
        directory: zero compiles, one disk hit, identical checksum."""
        script = r"""
import hashlib, json, sys
import numpy as np
from repro.analysis import vortex
from repro.host.engine import DerivedFieldEngine
from repro.metrics import get_registry
from repro.workloads import SubGrid, make_fields

fields = make_fields(SubGrid(6, 7, 8), seed=7)
engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                            backend="compiled",
                            plan_cache_dir=sys.argv[1])
report = engine.execute(vortex.Q_CRITERION, fields)
registry = get_registry()
print(json.dumps({
    "disposition": report.codegen.disposition,
    "compiles": registry.value("repro_codegen_compiles_total"),
    "disk_hits": registry.value("repro_codegen_disk_hits_total"),
    "sha": hashlib.sha256(report.output.tobytes()).hexdigest(),
}))
"""
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(os.path.join(root, "src"))

        def run_once():
            out = subprocess.run(
                [sys.executable, "-c", script, str(tmp_path)],
                capture_output=True, text=True, env=env, check=True)
            return json.loads(out.stdout.strip().splitlines()[-1])

        first = run_once()
        second = run_once()
        assert first["disposition"] == "cold-codegen"
        assert first["compiles"] == 1
        assert second["disposition"] == "disk-hit"
        assert second["compiles"] == 0
        assert second["disk_hits"] == 1
        assert second["sha"] == first["sha"]


class TestInvalidation:
    def test_corrupted_file_recovers(self, tmp_path, small_fields):
        _run(tmp_path, small_fields)
        path = os.path.join(tmp_path, _cache_files(tmp_path)[0])
        with open(path, "w") as handle:
            handle.write("{ this is not json")
        report, counters = _run(tmp_path, small_fields)
        assert counters["invalidations"] == 1
        assert counters["compiles"] == 1      # re-codegen, not a crash
        assert report.codegen.disposition == "cold-codegen"
        assert report.output is not None

    def test_truncated_file_recovers(self, tmp_path, small_fields):
        first, _ = _run(tmp_path, small_fields)
        path = os.path.join(tmp_path, _cache_files(tmp_path)[0])
        with open(path, "rb+") as handle:
            handle.truncate(os.path.getsize(path) // 2)
        report, counters = _run(tmp_path, small_fields)
        assert counters["invalidations"] == 1
        assert counters["compiles"] == 1
        assert report.output.tobytes() == first.output.tobytes()

    def test_entry_with_broken_payload_recovers(self, tmp_path,
                                                small_fields):
        """A structurally valid file whose entry cannot be rebuilt is
        discarded and regenerated (from_entry failure path)."""
        _run(tmp_path, small_fields)
        path = os.path.join(tmp_path, _cache_files(tmp_path)[0])
        with open(path) as handle:
            payload = json.load(handle)
        payload["entry"]["sweep_source"] = "def _sweep(:\n    syntax error"
        with open(path, "w") as handle:
            json.dump(payload, handle)
        report, counters = _run(tmp_path, small_fields)
        assert counters["invalidations"] == 1
        assert counters["compiles"] == 1
        assert report.codegen.disposition == "cold-codegen"

    def test_codegen_version_bump_invalidates(self, tmp_path,
                                              small_fields, monkeypatch):
        _run(tmp_path, small_fields)
        monkeypatch.setattr(plancache, "CODEGEN_VERSION",
                            plancache.CODEGEN_VERSION + 1)
        report, counters = _run(tmp_path, small_fields)
        assert counters["invalidations"] == 1
        assert counters["compiles"] == 1
        assert report.codegen.disposition == "cold-codegen"

    def test_invalidation_reaches_plancache_info(self, tmp_path,
                                                 small_fields):
        _run(tmp_path, small_fields)
        path = os.path.join(tmp_path, _cache_files(tmp_path)[0])
        with open(path, "w") as handle:
            handle.write("garbage")
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                        backend="compiled",
                                        plan_cache_dir=tmp_path)
            report = engine.execute(vortex.Q_CRITERION, small_fields)
        finally:
            set_registry(previous)
        assert report.cache.invalidations == 1
        assert registry.value(
            "repro_plancache_invalidations_total") == 1


class TestDiskCacheUnit:
    def test_store_and_load_roundtrip(self, tmp_path):
        cache = PlanDiskCache(tmp_path)
        key = ("not", "a", "real", "key")
        entry = {"payload": [1, 2, 3]}
        assert cache.store(key, "tok", entry)
        assert len(cache) == 1
        lookup = cache.load(key, "tok")
        assert isinstance(lookup, DiskLookup)
        assert lookup.status == "hit"
        assert lookup.entry == entry

    def test_token_mismatch_is_invalid_and_unlinks(self, tmp_path):
        cache = PlanDiskCache(tmp_path)
        cache.store("k", "tok-a", {"x": 1})
        assert cache.load("k", "tok-b").status == "invalid"
        assert len(cache) == 0
        assert cache.load("k", "tok-b").status == "miss"

    def test_missing_entry_is_miss(self, tmp_path):
        cache = PlanDiskCache(tmp_path)
        assert cache.load("nothing", "tok").status == "miss"

    def test_unwritable_root_fails_soft(self, tmp_path):
        blocked = tmp_path / "blocked"
        blocked.write_text("a file where the cache dir should be")
        cache = PlanDiskCache(blocked / "plans")
        assert cache.store("k", "tok", {"x": 1}) is False
        assert cache.load("k", "tok").status == "miss"

    def test_non_serializable_entry_fails_soft(self, tmp_path):
        cache = PlanDiskCache(tmp_path)
        assert cache.store("k", "tok", {"x": np.float64(1.5)}) in (
            True, False)  # never raises
