"""The primitive-registry fingerprint: the version token that makes
cached plans — in memory and on disk — self-invalidate when the
primitive library changes."""

import numpy as np

from repro.codegen import codegen_token
from repro.host.engine import DerivedFieldEngine
from repro.primitives.base import (CallStyle, Primitive, ResultKind)
from repro.primitives.registry import default_registry
from repro.strategies import plancache


def _toy_primitive(name="toyprim"):
    return Primitive(
        name=name, arity=1, result_kind=ResultKind.SCALAR,
        call_style=CallStyle.ELEMENTWISE, flops_per_element=1,
        cl_name=f"repro_{name}",
        cl_source="{T} repro_" + name + "({T} a) {{ return a; }}",
        cl_call="repro_" + name + "({a0})",
        numpy_fn=np.asarray)


class TestFingerprint:
    def test_memoized_and_stable(self):
        registry = default_registry()
        first = registry.fingerprint()
        assert registry.fingerprint() is first
        assert default_registry().fingerprint() == first

    def test_register_changes_fingerprint(self):
        registry = default_registry()
        before = registry.fingerprint()
        registry.register(_toy_primitive())
        after = registry.fingerprint()
        assert after != before

    def test_implementation_change_changes_fingerprint(self):
        a, b = default_registry(), default_registry()
        a.register(_toy_primitive())
        prim = _toy_primitive()
        object.__setattr__(prim, "numpy_fn", lambda x: x + 1)
        b.register(prim)
        assert a.fingerprint() != b.fingerprint()


class TestKeysCarryTheFingerprint:
    def test_plan_key_is_populated(self, small_fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        prepared = engine.prepare("a = u + v", small_fields)
        network = prepared.compiled.network
        assert prepared.key.fingerprint == network.registry.fingerprint()

    def test_registry_change_changes_plan_key(self, small_fields):
        registry = default_registry()
        base = DerivedFieldEngine(device="cpu", strategy="fusion",
                                  registry=registry)
        key_before = base.prepare("a = u + v", small_fields).key
        extended = default_registry()
        extended.register(_toy_primitive())
        other = DerivedFieldEngine(device="cpu", strategy="fusion",
                                   registry=extended)
        key_after = other.prepare("a = u + v", small_fields).key
        assert key_before != key_after
        assert key_before.fingerprint != key_after.fingerprint

    def test_codegen_token_tracks_version(self, monkeypatch):
        registry = default_registry()
        token = codegen_token(registry)
        assert registry.fingerprint() in token
        monkeypatch.setattr(plancache, "CODEGEN_VERSION",
                            plancache.CODEGEN_VERSION + 1)
        assert codegen_token(registry) != token
