"""The compiled executor must be observationally identical to the
interpreter it replaces: bitwise-equal outputs, identical Table II event
counts, identical modeled timings, identical Fig 6 memory high-water —
for every paper expression under every paper strategy."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.codegen import CompiledPlan, generate_sweep
from repro.host.engine import DerivedFieldEngine

STRATEGIES = ("roundtrip", "staged", "fusion")

EXTRA_EXPRESSIONS = {
    # Passthrough of a source field.
    "passthrough": "a = u",
    # Constant folding stays at runtime: the literal is inlined.
    "const_add": "a = u + 2.0",
    # A vector (double4) output.
    "vector_out": "g = grad3d(u, dims, x, y, z)",
    # Gradient of a *computed* field (not stackable with source grads).
    "grad_of_computed": ("m = sqrt(u*u + v*v + w*w)\n"
                         "a = vmag(grad3d(m, dims, x, y, z))"),
}


def _reference(strategy, expression, fields):
    """A cold, unpooled, interpreter-backed run: the seed behavior."""
    engine = DerivedFieldEngine(device="cpu", strategy=strategy,
                                backend="vectorized", plan_cache=False,
                                pooling=False)
    return engine.execute(expression, fields)


def _assert_reports_match(compiled_report, reference_report):
    assert compiled_report.output.tobytes() == \
        reference_report.output.tobytes()
    assert compiled_report.output.dtype == reference_report.output.dtype
    assert compiled_report.output.shape == reference_report.output.shape
    assert compiled_report.counts == reference_report.counts
    assert compiled_report.timing.total == \
        pytest.approx(reference_report.timing.total, abs=0, rel=0)
    assert compiled_report.mem_high_water == \
        reference_report.mem_high_water


@pytest.mark.parametrize("strategy", STRATEGIES)
@pytest.mark.parametrize("name", sorted(vortex.EXPRESSIONS))
class TestPaperExpressions:
    def test_bitwise_equal_to_interpreter(self, strategy, name,
                                          small_fields):
        expression = vortex.EXPRESSIONS[name]
        reference = _reference(strategy, expression, small_fields)
        engine = DerivedFieldEngine(device="cpu", strategy=strategy,
                                    backend="compiled")
        cold = engine.execute(expression, small_fields)
        warm = engine.execute(expression, small_fields)
        _assert_reports_match(cold, reference)
        _assert_reports_match(warm, reference)
        assert cold.codegen is not None
        assert cold.codegen.disposition == "cold-codegen"
        assert cold.codegen.compiled
        assert warm.codegen.disposition == "memory-hit"
        assert warm.codegen.backend == "compiled"


@pytest.mark.parametrize("name", sorted(EXTRA_EXPRESSIONS))
def test_extra_shapes_bitwise_equal(name, small_fields):
    expression = EXTRA_EXPRESSIONS[name]
    reference = _reference("fusion", expression, small_fields)
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                backend="compiled")
    cold = engine.execute(expression, small_fields)
    warm = engine.execute(expression, small_fields)
    _assert_reports_match(cold, reference)
    _assert_reports_match(warm, reference)
    assert cold.codegen.compiled and warm.codegen.compiled


def test_default_backend_is_compiled_for_fusion(small_fields):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    assert engine.backend == "compiled"
    report = engine.execute(vortex.Q_CRITERION, small_fields)
    assert report.codegen is not None and report.codegen.compiled


def test_default_backend_downgrades_without_plan_cache():
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                plan_cache=False)
    assert engine.backend == "vectorized"
    explicit = DerivedFieldEngine(device="cpu", strategy="fusion",
                                  plan_cache=False, backend="compiled")
    assert explicit.backend == "vectorized"


def test_float32_fields_stay_float32(small_fields):
    fields = {k: (v.astype(np.float32) if v.dtype == np.float64 else v)
              for k, v in small_fields.items()}
    reference = _reference("fusion", vortex.Q_CRITERION, fields)
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                backend="compiled")
    report = engine.execute(vortex.Q_CRITERION, fields)
    assert report.output.dtype == np.float32
    assert report.output.tobytes() == reference.output.tobytes()


def test_sweep_source_is_inspectable(small_fields):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                backend="compiled")
    prepared = engine.prepare(vortex.Q_CRITERION, small_fields)
    engine.execute_prepared(prepared)
    plan = engine.plan_cache.get(prepared.key)
    assert isinstance(plan, CompiledPlan)
    assert "def _sweep(" in plan.sweep_source
    # Source-gradient fields of one mesh are computed as one stacked
    # axis-derivative sweep (u, v, w share dims/x/y/z).
    assert "_grad3d_stack" in plan.sweep_source
    # The generated OpenCL sources are untouched by codegen.
    assert plan.sweep_source not in plan.generated_sources.values()


def test_generate_sweep_names_every_source(small_fields):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    compiled = engine.compile(vortex.Q_CRITERION)
    sweep = generate_sweep(compiled.network)
    assert len(sweep.params) == len(compiled.network.live_sources())
    # q_criterion lowers entirely to inline operators plus the stacked
    # gradient helper — no generic primitive bindings remain.
    assert sweep.primitive_names == ()
    vmag = generate_sweep(
        engine.compile(vortex.VELOCITY_MAGNITUDE).network)
    assert "sqrt" in vmag.primitive_names
