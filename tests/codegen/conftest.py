"""Shared fixtures for the compiled-executor tests."""

import pytest

from repro.metrics import MetricsRegistry, set_registry


@pytest.fixture
def registry():
    """A fresh default metrics registry; engines built inside the test
    bind to it, and the process-wide one is restored afterwards."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)
