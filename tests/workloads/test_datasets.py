"""Tests for the Table I catalogue and mesh/field construction."""

import numpy as np
import pytest

from repro.workloads import (FULL_DATASET, SubGrid, TABLE1_SUBGRIDS,
                             make_fields, make_mesh, make_shapes,
                             scaled_subgrids)

# Table I verbatim: (nk, cells).
TABLE1_ROWS = [
    (256, 9_437_184), (512, 18_874_368), (768, 28_311_552),
    (1024, 37_748_736), (1280, 47_185_920), (1536, 56_623_104),
    (1792, 66_060_288), (2048, 75_497_472), (2304, 84_934_656),
    (2560, 94_371_840), (2816, 103_809_024), (3072, 113_246_208),
]


class TestTable1:
    def test_twelve_subgrids(self):
        assert len(TABLE1_SUBGRIDS) == 12

    @pytest.mark.parametrize("row,grid", zip(TABLE1_ROWS, TABLE1_SUBGRIDS))
    def test_cell_counts_match_paper(self, row, grid):
        nk, cells = row
        assert grid.dims == (192, 192, nk)
        assert grid.n_cells == cells

    def test_smallest_data_size(self):
        # 9,437,184 cells x 3 float64 components = 216 MiB (the paper's
        # "218 MB" row, within rounding conventions)
        assert TABLE1_SUBGRIDS[0].data_size_bytes() == 226_492_416

    def test_largest_data_size_is_2_5_gib(self):
        gib = TABLE1_SUBGRIDS[-1].data_size_bytes() / 2**30
        assert 2.4 < gib < 2.7  # the paper's "2.6 GB"

    def test_full_dataset_decomposition(self):
        blocks_per_axis = [g // b for g, b in zip(
            FULL_DATASET["global_dims"], FULL_DATASET["block_dims"])]
        n_blocks = np.prod(blocks_per_axis)
        assert n_blocks == FULL_DATASET["n_blocks"] == 3072
        assert FULL_DATASET["n_gpus"] * FULL_DATASET["blocks_per_gpu"] \
            == 3072

    def test_label(self):
        assert TABLE1_SUBGRIDS[0].label() == "192x192x0256"


class TestScaledSubgrids:
    def test_preserves_sweep_length(self):
        assert len(scaled_subgrids(16)) == 12

    def test_monotone_cells(self):
        grids = scaled_subgrids(8)
        cells = [g.n_cells for g in grids]
        assert cells == sorted(cells)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            scaled_subgrids(0)


class TestMeshConstruction:
    def test_make_mesh_shapes(self):
        mesh = make_mesh((4, 5, 6))
        assert mesh["dims"].tolist() == [4, 5, 6]
        assert len(mesh["x"]) == 5
        assert len(mesh["y"]) == 6
        assert len(mesh["z"]) == 7

    def test_coordinates_monotone(self):
        mesh = make_mesh((4, 5, 6), extent=(2.0, 1.0, 3.0))
        for axis in ("x", "y", "z"):
            assert (np.diff(mesh[axis]) > 0).all()
        assert mesh["x"][-1] == 2.0

    def test_make_shapes_matches_fields(self):
        grid = SubGrid(4, 5, 6)
        shapes = make_shapes(grid)
        fields = make_fields(grid)
        for name, spec in shapes.items():
            assert fields[name].shape == spec.shape, name
            assert fields[name].dtype == spec.dtype, name

    def test_shape_bytes_at_paper_scale(self):
        shapes = make_shapes(TABLE1_SUBGRIDS[-1])
        assert shapes["u"].nbytes == 113_246_208 * 8

    def test_make_fields_deterministic(self):
        grid = SubGrid(3, 3, 4)
        a = make_fields(grid, seed=5)
        b = make_fields(grid, seed=5)
        np.testing.assert_array_equal(a["u"], b["u"])
        c = make_fields(grid, seed=6)
        assert np.abs(a["u"] - c["u"]).max() > 0
