"""Tests for the synthetic velocity fields: Taylor-Green analytics and
Rayleigh-Taylor-like structure."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.workloads import (mixing_layer_profile, rt_velocity,
                             taylor_green_fields,
                             taylor_green_q_criterion,
                             taylor_green_velocity,
                             taylor_green_vorticity)


class TestTaylorGreen:
    def test_divergence_free_in_interior(self):
        # du/dx + dv/dy = -a k s s s + a k s s s = 0, w = 0.  The central
        # differences cancel *exactly* at interior cells; only the first-
        # order one-sided boundary layers carry discretization error.
        n = 16
        fields = taylor_green_fields((n, n, n))
        from repro.primitives import grad3d_numpy
        args = [fields[k] for k in ("dims", "x", "y", "z")]
        div = (grad3d_numpy(fields["u"], *args)[:, 0]
               + grad3d_numpy(fields["v"], *args)[:, 1]
               + grad3d_numpy(fields["w"], *args)[:, 2])
        interior = np.abs(div).reshape(n, n, n)[1:-1, 1:-1, 1:-1]
        assert interior.max() < 1e-12

    def test_vorticity_converges_to_analytic(self):
        """Discrete curl converges to the closed form under refinement —
        the end-to-end numerical validation the paper's data could not
        offer."""
        errors = []
        for n in (8, 16, 32):
            fields = taylor_green_fields((n, n, n))
            got = vortex.vorticity_magnitude_reference(
                *[fields[k] for k in
                  ("u", "v", "w", "dims", "x", "y", "z")])
            omega = taylor_green_vorticity(fields["x"], fields["y"],
                                           fields["z"])
            want = np.linalg.norm(omega, axis=1)
            errors.append(np.abs(got - want).max() / want.max())
        assert errors[1] < errors[0]
        assert errors[2] < errors[1]
        assert errors[2] < 0.05

    def test_q_criterion_converges_to_analytic(self):
        errors = []
        for n in (8, 16, 32):
            fields = taylor_green_fields((n, n, n))
            got = vortex.q_criterion_reference(
                *[fields[k] for k in
                  ("u", "v", "w", "dims", "x", "y", "z")])
            want = taylor_green_q_criterion(fields["x"], fields["y"],
                                            fields["z"])
            scale = np.abs(want).max()
            errors.append(np.abs(got - want).max() / scale)
        assert errors[2] < errors[1] < errors[0]
        assert errors[2] < 0.1

    def test_amplitude_scaling(self):
        x = y = z = np.linspace(0, 1, 9)
        u1, v1, _ = taylor_green_velocity(x, y, z, amplitude=1.0)
        u2, v2, _ = taylor_green_velocity(x, y, z, amplitude=2.0)
        np.testing.assert_allclose(u2, 2 * u1)
        np.testing.assert_allclose(v2, 2 * v1)

    def test_w_is_zero(self):
        fields = taylor_green_fields((4, 4, 4))
        np.testing.assert_array_equal(fields["w"], 0.0)


class TestRTField:
    def test_shapes_and_determinism(self):
        x = np.linspace(0, 1, 5)
        y = np.linspace(0, 1, 6)
        z = np.linspace(0, 1, 7)
        u1, v1, w1 = rt_velocity((4, 5, 6), x, y, z, seed=3)
        u2, _, _ = rt_velocity((4, 5, 6), x, y, z, seed=3)
        assert u1.shape == (120,)
        np.testing.assert_array_equal(u1, u2)

    def test_nontrivial_vorticity(self):
        """The synthetic field must exercise the vortex-detection pipeline:
        nonzero, spatially varying vorticity."""
        x = np.linspace(0, 1, 17)
        y = np.linspace(0, 1, 17)
        z = np.linspace(0, 1, 17)
        u, v, w = rt_velocity((16, 16, 16), x, y, z, seed=0)
        wmag = vortex.vorticity_magnitude_reference(
            u, v, w, np.array([16, 16, 16], np.int32), x, y, z)
        assert wmag.max() > 1.0
        assert wmag.std() > 0.1

    def test_mixing_layer_envelope(self):
        z = np.linspace(0, 1, 101)
        profile = mixing_layer_profile(z)
        assert profile[50] == pytest.approx(1.0, abs=1e-3)
        assert profile[0] < 0.01 and profile[-1] < 0.01

    def test_perturbations_concentrated_at_midplane(self):
        x = np.linspace(0, 1, 17)
        u, v, w = rt_velocity((16, 16, 16), x, x, x, seed=1)
        u3 = u.reshape(16, 16, 16)
        edge_energy = (u3[:, :, :2] ** 2).mean()
        mid_energy = (u3[:, :, 7:9] ** 2).mean()
        assert mid_energy > edge_energy

    def test_dtype_respected(self):
        x = np.linspace(0, 1, 5, dtype=np.float32)
        u, _, _ = rt_velocity((4, 4, 4), x, x, x, dtype=np.float32)
        assert u.dtype == np.float32
