"""Tests for the ABC (Beltrami) flow workload."""

import numpy as np
import pytest

from repro.host import derive
from repro.primitives import curl3d_numpy, div3d_numpy
from repro.workloads import abc_fields, abc_q_criterion, abc_velocity


def mesh_args(fields):
    return [fields[k] for k in ("dims", "x", "y", "z")]


class TestBeltramiProperty:
    def test_curl_equals_velocity_second_order(self):
        """curl(V) = V for ABC flow; the discrete curl converges to it at
        second order in the interior."""
        errors = []
        for n in (16, 32):
            fields = abc_fields((n, n, n))
            curl = curl3d_numpy(fields["u"], fields["v"], fields["w"],
                                *mesh_args(fields))
            velocity = np.stack([fields["u"], fields["v"], fields["w"]],
                                axis=1)
            err = np.abs(curl[:, :3] - velocity).max(axis=1)
            errors.append(err.reshape(n, n, n)[1:-1, 1:-1, 1:-1].max())
        assert errors[1] < errors[0] / 3.5  # ~4x per refinement
        assert errors[1] < 0.02

    def test_divergence_free_interior(self):
        n = 16
        fields = abc_fields((n, n, n))
        div = div3d_numpy(fields["u"], fields["v"], fields["w"],
                          *mesh_args(fields))
        interior = np.abs(div).reshape(n, n, n)[1:-1, 1:-1, 1:-1]
        assert interior.max() < 1e-12  # exact cancellation per axis

    def test_expression_vorticity_equals_velocity_magnitude(self):
        """Through the full framework: |curl V| ~= |V| for ABC flow."""
        fields = abc_fields((24, 24, 24))
        wmag = derive("w_mag = vmag(curl3d(u,v,w,dims,x,y,z))",
                      fields)["w_mag"]
        vmag = derive("v_mag = sqrt(u*u + v*v + w*w)", fields)["v_mag"]
        n = 24
        interior = (slice(1, -1),) * 3
        np.testing.assert_allclose(
            wmag.reshape(n, n, n)[interior],
            vmag.reshape(n, n, n)[interior], rtol=0.05)


class TestAnalyticQ:
    def test_q_criterion_converges(self):
        from repro.analysis.vortex import q_criterion_reference
        errors = []
        for n in (12, 24):
            fields = abc_fields((n, n, n))
            got = q_criterion_reference(fields["u"], fields["v"],
                                        fields["w"], *mesh_args(fields))
            want = abc_q_criterion(fields["x"], fields["y"], fields["z"])
            scale = np.abs(want).max()
            err = (np.abs(got - want) / scale).reshape(n, n, n)
            errors.append(err[1:-1, 1:-1, 1:-1].max())
        assert errors[1] < errors[0]
        assert errors[1] < 0.1

    def test_parameters_scale_velocity(self):
        x = np.linspace(0, 2 * np.pi, 9)
        u1, _, _ = abc_velocity(x, x, x, A=1.0, B=0.0, C=0.0)
        u2, _, _ = abc_velocity(x, x, x, A=2.0, B=0.0, C=0.0)
        np.testing.assert_allclose(u2, 2 * u1)

    def test_fields_dict_complete(self):
        fields = abc_fields((4, 5, 6))
        assert set(fields) == {"u", "v", "w", "dims", "x", "y", "z"}
        assert fields["u"].size == 120
        assert fields["x"][-1] == pytest.approx(2 * np.pi)
