"""Unit tests for the lexer generator (repro.lexyacc.lexer)."""

import pytest

from repro.errors import GrammarError, LexError
from repro.lexyacc import LexerSpec, Token, TokenRule, build_lexer


def make_lexer(**kwargs):
    rules = [
        TokenRule("NUMBER", r"\d+(\.\d+)?", float),
        TokenRule("PLUS", r"\+"),
        TokenRule("IDENT", r"[A-Za-z_]\w*", str),
        TokenRule("COMMENT", r"#[^\n]*", lambda _: None),
    ]
    return build_lexer(LexerSpec(rules, **kwargs))


class TestTokenization:
    def test_single_number(self):
        toks = make_lexer().scan("42")
        assert toks == [Token("NUMBER", 42.0, 0, 1)]

    def test_float_conversion(self):
        (tok,) = make_lexer().scan("3.25")
        assert tok.value == 3.25

    def test_sequence(self):
        types = [t.type for t in make_lexer().scan("a + 1")]
        assert types == ["IDENT", "PLUS", "NUMBER"]

    def test_whitespace_ignored(self):
        assert len(make_lexer().scan("  a\t+\r1 ")) == 3

    def test_newlines_tracked(self):
        toks = make_lexer().scan("a\nb\n\nc")
        assert [t.line for t in toks] == [1, 2, 4]

    def test_positions(self):
        toks = make_lexer().scan("ab + cd")
        assert [t.pos for t in toks] == [0, 3, 5]

    def test_empty_input(self):
        assert make_lexer().scan("") == []

    def test_only_whitespace(self):
        assert make_lexer().scan("   \t  ") == []

    def test_action_discards_token(self):
        toks = make_lexer().scan("a # trailing comment")
        assert [t.type for t in toks] == ["IDENT"]

    def test_comment_then_newline(self):
        toks = make_lexer().scan("a # c1\nb")
        assert [t.value for t in toks] == ["a", "b"]
        assert toks[1].line == 2

    def test_identifier_with_underscore_digits(self):
        (tok,) = make_lexer().scan("w_mag2")
        assert tok.value == "w_mag2"

    def test_tokens_is_lazy(self):
        gen = make_lexer().tokens("a + 1")
        assert next(gen).type == "IDENT"


class TestKeywords:
    def test_keyword_promotion(self):
        lexer = make_lexer(keywords={"if": "IF"})
        toks = lexer.scan("if x")
        assert [t.type for t in toks] == ["IF", "IDENT"]

    def test_keyword_prefix_not_promoted(self):
        lexer = make_lexer(keywords={"if": "IF"})
        (tok,) = lexer.scan("iffy")
        assert tok.type == "IDENT"


class TestErrors:
    def test_illegal_character(self):
        with pytest.raises(LexError) as err:
            make_lexer().scan("a $ b")
        assert "$" in str(err.value)
        assert err.value.position == 2

    def test_error_reports_line(self):
        with pytest.raises(LexError) as err:
            make_lexer().scan("a\nb\n$")
        assert err.value.line == 3


class TestSpecValidation:
    def test_empty_rules_rejected(self):
        with pytest.raises(GrammarError):
            build_lexer(LexerSpec([]))

    def test_bad_regex_rejected(self):
        with pytest.raises(GrammarError, match="bad regex"):
            build_lexer(LexerSpec([TokenRule("BAD", r"([")]))

    def test_empty_match_rejected(self):
        with pytest.raises(GrammarError, match="empty"):
            build_lexer(LexerSpec([TokenRule("EMPTY", r"a*")]))

    def test_lowercase_name_rejected(self):
        with pytest.raises(GrammarError, match="UPPER_SNAKE_CASE"):
            build_lexer(LexerSpec([TokenRule("bad", r"a")]))

    def test_rule_order_first_match_wins(self):
        # LE before LT: "<=" lexes as one token
        spec = LexerSpec([TokenRule("LE", r"<="), TokenRule("LT", r"<")])
        toks = build_lexer(spec).scan("<=<")
        assert [t.type for t in toks] == ["LE", "LT"]

    def test_token_names_includes_keywords(self):
        spec = LexerSpec([TokenRule("IDENT", r"[a-z]+")],
                         keywords={"if": "IF"})
        assert spec.token_names() == {"IDENT", "IF"}
