"""Unit tests for LALR(1) table construction against textbook grammars."""

import pytest

from repro.lexyacc import (EOF, Grammar, LRItem, Precedence, Production,
                           build_lalr_table)


def table_for(prods, start, prec=()):
    return build_lalr_table(Grammar(prods, start, prec))


class TestCanonicalDragonGrammar:
    """Dragon-book grammar 4.55: S -> L = R | R; L -> * R | id; R -> L.
    This grammar is LALR(1) but NOT SLR(1) — a good discriminator that the
    lookahead computation is real."""

    def make(self):
        return table_for([
            Production("S", ("L", "=", "R")),
            Production("S", ("R",)),
            Production("L", ("*", "R")),
            Production("L", ("id",)),
            Production("R", ("L",)),
        ], "S")

    def test_no_conflicts(self):
        assert self.make().conflicts == []

    def test_state_count(self):
        # the canonical construction yields 10 LALR states for this grammar
        assert self.make().n_states == 10

    def test_accept_present(self):
        table = self.make()
        accepts = [s for s in range(table.n_states)
                   if table.action[s].get(EOF, ("", 0))[0] == "accept"]
        assert len(accepts) == 1


class TestExpressionGrammar:
    """Unambiguous E -> E + T | T; T -> T * F | F; F -> ( E ) | id."""

    def make(self):
        return table_for([
            Production("E", ("E", "+", "T")),
            Production("E", ("T",)),
            Production("T", ("T", "*", "F")),
            Production("T", ("F",)),
            Production("F", ("(", "E", ")")),
            Production("F", ("id",)),
        ], "E")

    def test_no_conflicts(self):
        table = self.make()
        assert table.conflicts == []
        assert table.resolutions == []

    def test_dragon_state_count(self):
        # the classic result: 12 states for this grammar
        assert self.make().n_states == 12

    def test_goto_filled(self):
        table = self.make()
        assert any("E" in row for row in table.goto)
        assert any("T" in row for row in table.goto)


class TestAmbiguousGrammarResolution:
    def ambiguous(self, prec=()):
        return table_for([
            Production("E", ("E", "+", "E")),
            Production("E", ("E", "*", "E")),
            Production("E", ("id",)),
        ], "E", prec)

    def test_without_precedence_conflicts_recorded(self):
        table = self.ambiguous()
        assert len(table.conflicts) > 0
        assert all(c.kind == "shift/reduce" for c in table.conflicts)

    def test_default_resolution_is_shift(self):
        for conflict in self.ambiguous().conflicts:
            assert "shift" in conflict.resolution

    def test_with_precedence_no_conflicts(self):
        table = self.ambiguous(prec=[Precedence("left", ("+",)),
                                     Precedence("left", ("*",))])
        assert table.conflicts == []
        assert len(table.resolutions) > 0

    def test_nonassoc_removes_action(self):
        table = table_for([
            Production("E", ("E", "<", "E")),
            Production("E", ("id",)),
        ], "E", prec=[Precedence("nonassoc", ("<",))])
        # the state after E < E must have no action on '<'
        resolved = [c for c in table.resolutions if "error" in c.resolution]
        assert resolved


class TestReduceReduce:
    def test_earlier_production_wins(self):
        table = table_for([
            Production("S", ("A",)),
            Production("S", ("B",)),
            Production("A", ("x",)),
            Production("B", ("x",)),
        ], "S")
        rr = [c for c in table.conflicts if c.kind == "reduce/reduce"]
        assert rr
        # production 3 (A -> x) is kept over production 4 (B -> x)
        assert "3" in rr[0].resolution


class TestEpsilonProductions:
    def test_optional_list(self):
        # S -> items; items -> items x | (empty)
        table = table_for([
            Production("S", ("items",)),
            Production("items", ("items", "x")),
            Production("items", ()),
        ], "S")
        assert table.conflicts == []
        # initial state must reduce the empty production on both x and EOF
        reduce_entries = [
            entry for entry in table.action[0].values()
            if entry[0] == "reduce"]
        assert reduce_entries


class TestLRItem:
    def test_describe(self):
        grammar = Grammar([Production("S", ("a", "b"))], "S")
        assert LRItem(1, 1).describe(grammar) == "S -> a . b"

    def test_advance(self):
        assert LRItem(1, 0).advance() == LRItem(1, 1)

    def test_next_symbol_at_end(self):
        grammar = Grammar([Production("S", ("a",))], "S")
        assert LRItem(1, 1).next_symbol(grammar) is None


class TestTableIntrospection:
    def test_expected_tokens_sorted(self):
        table = table_for([Production("S", ("a",)),
                           Production("S", ("b",))], "S")
        assert table.expected_tokens(0) == ["a", "b"]

    def test_describe_state_mentions_items(self):
        table = table_for([Production("S", ("a",))], "S")
        assert "S' -> . S" in table.describe_state(0)
