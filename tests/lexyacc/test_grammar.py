"""Unit tests for grammar objects, NULLABLE and FIRST computation."""

import pytest

from repro.errors import GrammarError
from repro.lexyacc import EOF, Grammar, Precedence, Production


def g(prods, start="S", prec=()):
    return Grammar(prods, start, prec)


class TestConstruction:
    def test_augmented_start(self):
        grammar = g([Production("S", ("A",)), Production("A", ("a",))])
        assert grammar.productions[0].lhs == "S'"
        assert grammar.productions[0].rhs == ("S",)

    def test_terminals_inferred(self):
        grammar = g([Production("S", ("a", "A")), Production("A", ("b",))])
        assert grammar.terminals == {"a", "b", EOF}
        assert grammar.nonterminals == {"S'", "S", "A"}

    def test_empty_grammar_rejected(self):
        with pytest.raises(GrammarError):
            Grammar([], "S")

    def test_missing_start_rejected(self):
        with pytest.raises(GrammarError, match="start"):
            g([Production("A", ("a",))])

    def test_productions_for(self):
        grammar = g([Production("S", ("a",)), Production("S", ("b",))])
        assert grammar.productions_for("S") == [1, 2]
        assert grammar.productions_for("missing") == []

    def test_str_lists_productions(self):
        grammar = g([Production("S", ("a",))])
        assert "S -> a" in str(grammar)


class TestNullable:
    def test_direct_epsilon(self):
        grammar = g([Production("S", ("A", "a")), Production("A", ())])
        assert "A" in grammar.nullable
        assert "S" not in grammar.nullable

    def test_transitive_epsilon(self):
        grammar = g([Production("S", ("A", "B")), Production("A", ()),
                     Production("B", ("A",))])
        assert grammar.nullable >= {"A", "B", "S", "S'"}

    def test_sequence_nullable(self):
        grammar = g([Production("S", ("A", "A")), Production("A", ())])
        assert grammar.sequence_nullable(("A", "A"))
        assert not grammar.sequence_nullable(("A", "a"))


class TestFirst:
    def test_terminal_first_is_itself(self):
        grammar = g([Production("S", ("a",))])
        assert grammar.first["a"] == {"a"}

    def test_nonterminal_first(self):
        grammar = g([Production("S", ("A", "b")), Production("A", ("a",)),
                     Production("A", ())])
        assert grammar.first["S"] == {"a", "b"}

    def test_first_of_sequence_with_lookahead(self):
        grammar = g([Production("S", ("A", "b")), Production("A", ("a",)),
                     Production("A", ())])
        assert grammar.first_of_sequence(("A",), "$x") == {"a", "$x"}
        assert grammar.first_of_sequence(("A", "b"), "$x") == {"a", "b"}


class TestPrecedence:
    def test_bad_assoc_rejected(self):
        with pytest.raises(GrammarError):
            Precedence("sideways", ("PLUS",))

    def test_duplicate_token_rejected(self):
        with pytest.raises(GrammarError, match="two precedence"):
            g([Production("S", ("PLUS",))],
              prec=[Precedence("left", ("PLUS",)),
                    Precedence("right", ("PLUS",))])

    def test_levels_increase(self):
        grammar = g(
            [Production("S", ("PLUS", "TIMES"))],
            prec=[Precedence("left", ("PLUS",)),
                  Precedence("left", ("TIMES",))])
        assert grammar.precedence_of("PLUS") == ("left", 1)
        assert grammar.precedence_of("TIMES") == ("left", 2)
        assert grammar.precedence_of("UNKNOWN") is None

    def test_production_precedence_rightmost_terminal(self):
        prod = Production("E", ("E", "PLUS", "E"))
        grammar = g([prod, Production("E", ("a",))], start="E",
                    prec=[Precedence("left", ("PLUS",))])
        assert grammar.production_precedence(prod) == ("left", 1)

    def test_production_precedence_override(self):
        prod = Production("E", ("MINUS", "E"), prec="UMINUS")
        grammar = g([prod, Production("E", ("a",))], start="E",
                    prec=[Precedence("left", ("MINUS",)),
                          Precedence("right", ("UMINUS",))])
        assert grammar.production_precedence(prod) == ("right", 2)

    def test_undefined_symbol_rejected(self):
        # A symbol on an RHS that is neither produced nor terminal cannot
        # exist by construction (anything not an LHS is a terminal), so
        # verify the inverse: the grammar accepts arbitrary RHS symbols as
        # terminals.
        grammar = g([Production("S", ("mystery",))])
        assert "mystery" in grammar.terminals
