"""Unit tests for the table-driven LR parser runtime."""

import pytest

from repro.errors import ParseError
from repro.lexyacc import (Grammar, LexerSpec, LRParser, Precedence,
                           Production, Token, TokenRule, build_lexer)


def calculator():
    rules = [
        TokenRule("NUMBER", r"\d+(\.\d+)?", float),
        TokenRule("PLUS", r"\+"), TokenRule("MINUS", r"-"),
        TokenRule("TIMES", r"\*"), TokenRule("DIVIDE", r"/"),
        TokenRule("LPAREN", r"\("), TokenRule("RPAREN", r"\)"),
    ]
    lexer = build_lexer(LexerSpec(rules))
    prods = [
        Production("expr", ("expr", "PLUS", "expr"),
                   lambda a, _, b: a + b),
        Production("expr", ("expr", "MINUS", "expr"),
                   lambda a, _, b: a - b),
        Production("expr", ("expr", "TIMES", "expr"),
                   lambda a, _, b: a * b),
        Production("expr", ("expr", "DIVIDE", "expr"),
                   lambda a, _, b: a / b),
        Production("expr", ("MINUS", "expr"), lambda _, a: -a,
                   prec="UMINUS"),
        Production("expr", ("LPAREN", "expr", "RPAREN"),
                   lambda _, a, __: a),
        Production("expr", ("NUMBER",)),
    ]
    prec = [Precedence("left", ("PLUS", "MINUS")),
            Precedence("left", ("TIMES", "DIVIDE")),
            Precedence("right", ("UMINUS",))]
    grammar = Grammar(prods, "expr", prec)
    parser = LRParser(grammar)
    return lexer, parser


LEXER, PARSER = calculator()


def evaluate(text):
    return PARSER.parse(LEXER.tokens(text))


class TestEvaluation:
    @pytest.mark.parametrize("text,expected", [
        ("1", 1.0),
        ("1+2", 3.0),
        ("2*3+4", 10.0),
        ("2+3*4", 14.0),
        ("(2+3)*4", 20.0),
        ("2-3-4", -5.0),          # left associative
        ("12/4/3", 1.0),          # left associative
        ("-5", -5.0),
        ("--5", 5.0),
        ("-(2+3)*4", -20.0),
        ("-2*3", -6.0),           # unary binds tighter than *
        ("2*-3", -6.0),
        ("1+2*3-4/2", 5.0),
        ("((((7))))", 7.0),
    ])
    def test_expression(self, text, expected):
        assert evaluate(text) == expected

    def test_default_action_passes_single_value(self):
        # Production("expr", ("NUMBER",)) has no action: value propagates
        assert evaluate("42") == 42.0


class TestErrors:
    def test_unexpected_token(self):
        with pytest.raises(ParseError, match="syntax error"):
            evaluate("1 + * 2")

    def test_error_carries_token(self):
        with pytest.raises(ParseError) as err:
            evaluate("1 + + 2")
        assert err.value.token is not None

    def test_unexpected_eof(self):
        with pytest.raises(ParseError, match="end of input"):
            evaluate("1 +")

    def test_error_lists_expected(self):
        with pytest.raises(ParseError, match="expected one of"):
            evaluate("1 2")

    def test_empty_token_stream(self):
        with pytest.raises(ParseError):
            PARSER.parse(iter(()))

    def test_trailing_garbage(self):
        with pytest.raises(ParseError):
            evaluate("1 )")


class TestReuse:
    def test_parser_is_reusable(self):
        assert evaluate("1+1") == 2.0
        assert evaluate("2+2") == 4.0

    def test_accepts_manual_tokens(self):
        toks = [Token("NUMBER", 5.0), Token("PLUS", "+"),
                Token("NUMBER", 6.0)]
        assert PARSER.parse(iter(toks)) == 11.0
