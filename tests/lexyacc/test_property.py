"""Property-based tests: the LALR calculator agrees with Python's own
evaluator on randomly generated arithmetic expressions."""

import math

from hypothesis import given, settings, strategies as st

from tests.lexyacc.test_parser import evaluate


@st.composite
def arith_expr(draw, depth=0):
    """Random arithmetic expression string plus its Python value."""
    if depth > 4 or draw(st.booleans()):
        value = draw(st.integers(min_value=0, max_value=50))
        return str(value), float(value)
    kind = draw(st.sampled_from(["+", "-", "*", "paren", "neg"]))
    if kind == "paren":
        text, value = draw(arith_expr(depth + 1))
        return f"({text})", value
    if kind == "neg":
        text, value = draw(arith_expr(depth + 1))
        return f"-({text})", -value
    left_t, left_v = draw(arith_expr(depth + 1))
    right_t, right_v = draw(arith_expr(depth + 1))
    # Parenthesize operands so the generated string's value is structure-
    # independent; precedence/associativity have their own directed tests.
    text = f"({left_t}) {kind} ({right_t})"
    value = {"+": left_v + right_v, "-": left_v - right_v,
             "*": left_v * right_v}[kind]
    return text, value


@given(arith_expr())
@settings(max_examples=200, deadline=None)
def test_parser_matches_python_semantics(case):
    text, expected = case
    got = evaluate(text)
    assert math.isclose(got, expected, rel_tol=1e-12, abs_tol=1e-12)


@given(st.integers(min_value=0, max_value=9), st.integers(1, 9),
       st.integers(1, 9))
def test_left_associativity_of_subtraction(a, b, c):
    assert evaluate(f"{a}-{b}-{c}") == float(a - b - c)


@given(st.integers(0, 9), st.integers(0, 9), st.integers(0, 9))
def test_precedence_mul_over_add(a, b, c):
    assert evaluate(f"{a}+{b}*{c}") == float(a + b * c)
    assert evaluate(f"{a}*{b}+{c}") == float(a * b + c)
