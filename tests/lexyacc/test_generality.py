"""The parser toolkit is a general PLY substitute, not a one-grammar
machine: build a miniature JSON parser with it and round-trip documents.

This doubles as an integration test of lexer keywords, nested
nonterminals, epsilon productions, and list-building actions.
"""

import json

import pytest

from repro.errors import ParseError
from repro.lexyacc import (Grammar, LexerSpec, LRParser, Production,
                           TokenRule, build_lexer)


def make_json_parser():
    rules = [
        TokenRule("STRING", r'"(\\.|[^"\\])*"',
                  lambda s: json.loads(s)),  # reuse escapes for brevity
        TokenRule("NUMBER", r"-?\d+(\.\d+)?([eE][+-]?\d+)?", float),
        TokenRule("IDENT", r"[a-z]+", str),
        TokenRule("LBRACE", r"\{"), TokenRule("RBRACE", r"\}"),
        TokenRule("LBRACKET", r"\["), TokenRule("RBRACKET", r"\]"),
        TokenRule("COLON", r":"), TokenRule("COMMA", r","),
    ]
    lexer = build_lexer(LexerSpec(
        rules, keywords={"true": "TRUE", "false": "FALSE",
                         "null": "NULL"}))
    prods = [
        Production("value", ("STRING",)),
        Production("value", ("NUMBER",)),
        Production("value", ("TRUE",), lambda _: True),
        Production("value", ("FALSE",), lambda _: False),
        Production("value", ("NULL",), lambda _: None),
        Production("value", ("object",)),
        Production("value", ("array",)),

        Production("object", ("LBRACE", "RBRACE"), lambda *_: {}),
        Production("object", ("LBRACE", "members", "RBRACE"),
                   lambda _l, members, _r: dict(members)),
        Production("members", ("pair",), lambda pair: [pair]),
        Production("members", ("members", "COMMA", "pair"),
                   lambda members, _c, pair: members + [pair]),
        Production("pair", ("STRING", "COLON", "value"),
                   lambda key, _c, value: (key, value)),

        Production("array", ("LBRACKET", "RBRACKET"), lambda *_: []),
        Production("array", ("LBRACKET", "elements", "RBRACKET"),
                   lambda _l, elements, _r: elements),
        Production("elements", ("value",), lambda v: [v]),
        Production("elements", ("elements", "COMMA", "value"),
                   lambda elements, _c, v: elements + [v]),
    ]
    grammar = Grammar(prods, "value")
    return lexer, LRParser(grammar)


LEXER, PARSER = make_json_parser()


def loads(text):
    return PARSER.parse(LEXER.tokens(text))


class TestMiniJSON:
    def test_grammar_conflict_free(self):
        assert PARSER.table.conflicts == []

    @pytest.mark.parametrize("doc", [
        "42", '"hello"', "true", "false", "null",
        "[]", "{}", "[1, 2, 3]",
        '{"a": 1}',
        '{"a": {"b": [1, true, null, "x"]}, "c": -2.5e3}',
        '[[[]]]',
        '[{"k": []}, {"k": [0]}]',
    ])
    def test_round_trip_matches_stdlib(self, doc):
        assert loads(doc) == json.loads(doc)

    def test_nested_depth(self):
        doc = "[" * 30 + "1" + "]" * 30
        assert loads(doc) == json.loads(doc)

    def test_syntax_errors(self):
        for bad in ("[1, ]", "{1: 2}", '{"a" 1}', "[1 2]", "{", "]"):
            with pytest.raises(ParseError):
                loads(bad)

    def test_whitespace_insensitive(self):
        assert loads('  { "a" :\n [ 1 ,\t2 ] } ') == {"a": [1.0, 2.0]}
