"""Unit tests for the service's policy pieces: the bounded admission
queue, the least-loaded/affinity scheduler, and the metrics math.

These exercise each component in isolation (stub requests, stub
workers) — no threads, no engines — so policy regressions localize.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.errors import ServiceClosed, ServiceOverloaded
from repro.service import (AdmissionQueue, LatencyStats,
                           LeastLoadedScheduler, percentile)
from repro.strategies.plancache import PlanCache, PlanKey


class StubRequest:
    """Just enough of ServiceRequest for queue tests."""

    def __init__(self, request_id):
        self.id = request_id
        self.expression = "stub"
        self.outcome = None

    def resolve_rejected(self, depth):
        self.outcome = ("rejected", depth)
        return True

    def resolve_cancelled(self):
        self.outcome = ("cancelled",)
        return True

    def resolve_refused(self, error):
        self.outcome = ("refused", type(error).__name__)
        return True


class TestAdmissionQueue:
    def test_fifo_order(self):
        queue = AdmissionQueue(4)
        first, second = StubRequest(1), StubRequest(2)
        assert queue.offer(first) == 1
        assert queue.offer(second) == 2
        assert queue.take(timeout=0) is first
        assert queue.take(timeout=0) is second
        assert queue.take(timeout=0) is None

    def test_overload_rejects_and_resolves(self):
        queue = AdmissionQueue(2)
        queue.offer(StubRequest(1))
        queue.offer(StubRequest(2))
        overflow = StubRequest(3)
        with pytest.raises(ServiceOverloaded) as excinfo:
            queue.offer(overflow)
        assert excinfo.value.depth == 2
        assert overflow.outcome == ("rejected", 2)
        assert len(queue) == 2          # nothing was displaced

    def test_close_returns_leftovers_and_refuses(self):
        queue = AdmissionQueue(4)
        queued = [StubRequest(i) for i in range(3)]
        for request in queued:
            queue.offer(request)
        leftovers = queue.close()
        assert leftovers == queued
        assert len(queue) == 0
        late = StubRequest(99)
        with pytest.raises(ServiceClosed):
            queue.offer(late)
        assert late.outcome == ("refused", "ServiceClosed")

    def test_gauge_sees_every_depth_change(self):
        depths = []
        queue = AdmissionQueue(4, gauge=depths.append)
        queue.offer(StubRequest(1))
        queue.offer(StubRequest(2))
        queue.take(timeout=0)
        queue.close()
        assert depths == [1, 2, 1, 0]

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AdmissionQueue(0)


def make_key() -> PlanKey:
    return PlanKey(signature="sig", strategy=("fusion",),
                   dtype=np.dtype(np.float64), n=64,
                   source_shapes=(((64,), np.dtype(np.float64)),),
                   device=("front", 1), backend="vectorized")


class StubWorker:
    """WorkerView stub: a fixed load and a distinct per-worker device."""

    def __init__(self, index, outstanding):
        self.index = index
        self.outstanding = outstanding

    def device_key(self, key):
        return replace(key, device=(f"dev{self.index}", 1))


class TestLeastLoadedScheduler:
    def test_no_key_goes_least_loaded(self):
        scheduler = LeastLoadedScheduler(PlanCache())
        workers = [StubWorker(0, 3), StubWorker(1, 1), StubWorker(2, 2)]
        decision = scheduler.pick(workers, None)
        assert decision.worker is workers[1]
        assert not decision.affinity_hit

    def test_ties_break_by_index(self):
        scheduler = LeastLoadedScheduler(PlanCache())
        workers = [StubWorker(0, 1), StubWorker(1, 1)]
        assert scheduler.pick(workers, None).worker is workers[0]

    def test_warm_worker_preferred_within_slack(self):
        cache = PlanCache()
        key = make_key()
        workers = [StubWorker(0, 1), StubWorker(1, 2)]
        cache.put(workers[1].device_key(key), object())
        decision = LeastLoadedScheduler(cache, affinity_slack=1).pick(
            workers, key)
        assert decision.worker is workers[1]
        assert decision.affinity_hit

    def test_affinity_bounded_by_slack(self):
        cache = PlanCache()
        key = make_key()
        workers = [StubWorker(0, 0), StubWorker(1, 2)]
        cache.put(workers[1].device_key(key), object())
        decision = LeastLoadedScheduler(cache, affinity_slack=1).pick(
            workers, key)
        assert decision.worker is workers[0]   # warm but 2 > 0 + 1
        assert not decision.affinity_hit

    def test_least_loaded_among_warm(self):
        cache = PlanCache()
        key = make_key()
        workers = [StubWorker(0, 5), StubWorker(1, 1), StubWorker(2, 0)]
        cache.put(workers[0].device_key(key), object())
        cache.put(workers[1].device_key(key), object())
        decision = LeastLoadedScheduler(cache, affinity_slack=1).pick(
            workers, key)
        assert decision.worker is workers[1]
        assert decision.affinity_hit

    def test_affinity_probe_leaves_counters_alone(self):
        cache = PlanCache()
        key = make_key()
        cache.put(key, object())
        workers = [StubWorker(0, 0)]
        LeastLoadedScheduler(cache).pick(workers, make_key())
        assert cache.hits == 0 and cache.misses == 0

    def test_empty_fleet_rejected(self):
        with pytest.raises(ValueError):
            LeastLoadedScheduler(PlanCache()).pick([], None)

    def test_negative_slack_rejected(self):
        with pytest.raises(ValueError):
            LeastLoadedScheduler(PlanCache(), affinity_slack=-1)


class TestLatencyMath:
    def test_percentile_nearest_rank(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 50) == 50.0    # rank ceil(0.5 * 100)
        assert percentile(samples, 100) == 100.0

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_latency_stats_summary(self):
        stats = LatencyStats()
        for value in (0.2, 0.1, 0.4, 0.3):
            stats.record(value)
        summary = stats.summary()
        assert summary["count"] == 4
        assert summary["max_s"] == 0.4
        assert summary["mean_s"] == pytest.approx(0.25)
        assert summary["p50_s"] in (0.2, 0.3)
        assert summary["p99_s"] == 0.4

    def test_reservoir_stays_bounded(self, monkeypatch):
        monkeypatch.setattr("repro.service.metrics.MAX_LATENCY_SAMPLES", 8)
        stats = LatencyStats()
        for i in range(100):
            stats.record(float(i))
        assert stats.count == 100
        assert len(stats._samples) < 16       # thinned, not unbounded
        assert stats.summary()["max_s"] == 99.0
