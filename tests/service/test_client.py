"""The unified futures client API: `ServiceRequest`'s
`concurrent.futures.Future` protocol and the asyncio `ServiceClient`
bridge over it."""

import asyncio
import threading

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.errors import (RequestCancelled, RequestTimedOut,
                          ServiceOverloaded)
from repro.host import DerivedFieldEngine
from repro.service import RequestStatus, ServiceClient, build_service
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(6, 6, 8)


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=7)


def case_inputs(fields, name):
    return {k: fields[k] for k in EXPRESSION_INPUTS[name]}


class TestFutureProtocol:
    def test_lifecycle_flags_served(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        with build_service(("cpu",)) as service:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            handle.result(timeout=30.0)
            assert handle.done()
            assert not handle.cancelled()
            assert not handle.running()
            assert handle.exception() is None
            assert handle.status is RequestStatus.SERVED

    def test_cancel_returns_bool_and_cancelled_flag(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        service = build_service(("cpu",), start=False)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            assert not handle.done()
            assert handle.cancel() is True
            assert handle.cancel_requested
            service.start()
            with pytest.raises(RequestCancelled):
                handle.result(timeout=30.0)
            assert handle.done()
            assert handle.cancelled()
            # Cancelling a finished request cannot succeed anymore.
            assert handle.cancel() is False
        finally:
            service.close()

    def test_exception_returns_service_side_error(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        service = build_service(("cpu",), start=False,
                                default_timeout=0.0)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            service.start()
            error = handle.exception(timeout=30.0)
            assert isinstance(error, RequestTimedOut)
            with pytest.raises(RequestTimedOut):
                handle.result()
        finally:
            service.close()

    def test_exception_timeout_raises_timeout_error(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        service = build_service(("cpu",), start=False)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            with pytest.raises(TimeoutError):
                handle.exception(timeout=0.01)
        finally:
            service.close()

    def test_done_callback_fires_on_resolution(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        fired = threading.Event()
        seen = []
        with build_service(("cpu",)) as service:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            handle.add_done_callback(
                lambda request: (seen.append(request.status),
                                 fired.set()))
            assert fired.wait(timeout=30.0)
        assert seen == [RequestStatus.SERVED]

    def test_done_callback_on_finished_handle_fires_immediately(self,
                                                                fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        with build_service(("cpu",)) as service:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            handle.result(timeout=30.0)
            seen = []
            handle.add_done_callback(seen.append)
            assert seen == [handle]

    def test_callback_exceptions_are_swallowed(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        with build_service(("cpu",)) as service:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            handle.result(timeout=30.0)
            handle.add_done_callback(
                lambda request: (_ for _ in ()).throw(RuntimeError()))
            # Still usable afterwards.
            assert handle.done()


class TestServiceClient:
    def test_submit_awaits_full_report(self, fields):
        inputs = case_inputs(fields, "q_criterion")
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        expected = engine.derive(EXPRESSIONS["q_criterion"], inputs)

        async def go(service):
            report = await ServiceClient(service).submit(
                EXPRESSIONS["q_criterion"], inputs)
            return report

        with build_service(("cpu",)) as service:
            report = asyncio.run(go(service))
        assert np.array_equal(report.output, expected)
        assert report.strategy == "fusion"

    def test_derive_awaits_just_the_array(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")

        async def go(service):
            return await ServiceClient(service).derive(
                EXPRESSIONS["velocity_magnitude"], inputs)

        with build_service(("cpu",)) as service:
            out = asyncio.run(go(service))
        assert isinstance(out, np.ndarray)

    def test_many_requests_one_event_loop(self, fields):
        inputs = case_inputs(fields, "q_criterion")

        async def go(service):
            client = ServiceClient(service)
            futures = client.submit_many(
                [(EXPRESSIONS["q_criterion"], inputs)] * 24)
            return await asyncio.gather(*futures)

        with build_service(("cpu",), queue_depth=32) as service:
            reports = asyncio.run(go(service))
        assert len(reports) == 24
        assert all(r.output is not None for r in reports)

    def test_submit_many_isolates_rejections(self, fields):
        """A rejected submission lands on its own future; later
        submissions in the same call still go through."""
        inputs = case_inputs(fields, "q_criterion")

        async def go(service):
            client = ServiceClient(service)
            futures = client.submit_many(
                [(EXPRESSIONS["q_criterion"], inputs)] * 6)
            service.start()
            return await asyncio.gather(*futures,
                                        return_exceptions=True)

        service = build_service(("cpu",), queue_depth=3, start=False)
        try:
            results = asyncio.run(go(service))
        finally:
            service.close()
        rejected = [r for r in results
                    if isinstance(r, ServiceOverloaded)]
        served = [r for r in results if not isinstance(r, Exception)]
        assert len(rejected) == 3
        assert len(served) == 3

    def test_service_side_timeout_raises_from_await(self, fields):
        inputs = case_inputs(fields, "q_criterion")

        async def go(service):
            client = ServiceClient(service)
            future = client._bridge(
                asyncio.get_running_loop(),
                service.submit(EXPRESSIONS["q_criterion"], inputs))
            service.start()
            with pytest.raises(RequestTimedOut):
                await future

        service = build_service(("cpu",), start=False,
                                default_timeout=0.0)
        try:
            asyncio.run(go(service))
        finally:
            service.close()

    def test_asyncio_cancel_propagates_to_handle(self, fields):
        inputs = case_inputs(fields, "q_criterion")

        async def go(service):
            handle = service.submit(EXPRESSIONS["q_criterion"], inputs)
            future = ServiceClient._bridge(asyncio.get_running_loop(),
                                           handle)
            future.cancel()
            await asyncio.sleep(0)   # let the done callback run
            return handle

        service = build_service(("cpu",), start=False)
        try:
            handle = asyncio.run(go(service))
            assert handle.cancel_requested
            service.start()
            with pytest.raises(RequestCancelled):
                handle.result(timeout=30.0)
        finally:
            service.close()
