"""Targeted tests for the ServiceMetrics math fixed in this change:
the ceil-based nearest-rank percentile, the explicit
``offered == terminal + in_flight`` accounting identity (stressed
under concurrency), and the latency reservoir's thinning behaviour
past its cap."""

import random
import threading

import pytest

from repro.service import LatencyStats, ServiceMetrics, percentile
from repro.service.request import RequestStatus


class TestPercentileNearestRank:
    """rank = ceil(q/100 * N), 1-based — the textbook definition."""

    def test_known_quantiles_of_1_to_100(self):
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 95) == 95.0
        assert percentile(samples, 99) == 99.0
        assert percentile(samples, 100) == 100.0

    def test_even_length_p50_not_biased_low(self):
        # The old round()-based rank took rank round(0.5*4) == 2 but
        # round(0.5*2) == 1 vs ceil == 1... the observable bug: for
        # N=100, round() gave rank 50 -> then +1 indexing returned 51.
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.0
        assert percentile([1.0, 2.0], 50) == 1.0

    def test_small_quantile_clamps_to_first(self):
        samples = [10.0, 20.0, 30.0]
        assert percentile(samples, 0) == 10.0
        assert percentile(samples, 1) == 10.0

    def test_fractional_ranks_round_up(self):
        samples = [1.0, 2.0, 3.0]
        assert percentile(samples, 34) == 2.0    # ceil(1.02) == 2
        assert percentile(samples, 67) == 3.0    # ceil(2.01) == 3

    def test_singleton(self):
        assert percentile([42.0], 50) == 42.0
        assert percentile([42.0], 99) == 42.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class StubRequest:
    """Just enough of ServiceRequest for record_result()."""

    def __init__(self, request_id, status, latency=None):
        self.id = request_id
        self.expression = "stub"
        self.status = status
        self.latency = latency
        self.device = "dev0"


class TestInFlightInvariant:
    def test_arithmetic_identity(self):
        metrics = ServiceMetrics()
        for _ in range(5):
            metrics.record_admitted()
        metrics.record_rejected()
        for i in range(3):
            metrics.record_result(
                StubRequest(i, RequestStatus.SERVED, latency=0.01))
        snapshot = metrics.snapshot()["requests"]
        assert snapshot["submitted"] == 5
        assert snapshot["offered"] == 6          # submitted + rejected
        assert snapshot["resolved"] == 4         # 3 served + 1 rejected
        assert snapshot["in_flight"] == 2
        assert snapshot["offered"] == (snapshot["resolved"]
                                       + snapshot["in_flight"])

    def test_stress_snapshot_never_negative(self):
        """Concurrent admit/resolve with a racing reader: in_flight must
        satisfy the identity and never go negative mid-flight."""
        metrics = ServiceMetrics()
        total = 2000
        workers = 4
        stop = threading.Event()
        violations = []

        def reader():
            while not stop.is_set():
                requests = metrics.snapshot()["requests"]
                in_flight = requests["in_flight"]
                if in_flight < 0:
                    violations.append(requests)
                if requests["offered"] != (requests["resolved"]
                                           + in_flight):
                    violations.append(requests)

        def producer(base):
            statuses = [RequestStatus.SERVED, RequestStatus.FAILED,
                        RequestStatus.TIMED_OUT, RequestStatus.CANCELLED]
            for i in range(total):
                metrics.record_admitted()
                status = statuses[i % len(statuses)]
                latency = 0.001 if status is RequestStatus.SERVED else None
                metrics.record_result(
                    StubRequest(base + i, status, latency=latency))

        readers = [threading.Thread(target=reader) for _ in range(2)]
        producers = [threading.Thread(target=producer, args=(w * total,))
                     for w in range(workers)]
        for t in readers + producers:
            t.start()
        for t in producers:
            t.join()
        stop.set()
        for t in readers:
            t.join()
        assert violations == []
        final = metrics.snapshot()["requests"]
        assert final["submitted"] == workers * total
        assert final["in_flight"] == 0
        assert final["resolved"] == workers * total


class TestReservoirThinning:
    def test_property_over_cap(self):
        """Past MAX_LATENCY_SAMPLES the reservoir halves; count/mean/max
        stay exact and percentiles stay close to the truth."""
        from repro.service.metrics import MAX_LATENCY_SAMPLES

        rng = random.Random(20120101)
        n = MAX_LATENCY_SAMPLES + 40000
        stats = LatencyStats()
        values = [rng.expovariate(10.0) for _ in range(n)]
        for value in values:
            stats.record(value)

        assert stats.count == n                          # exact
        assert len(stats._samples) < MAX_LATENCY_SAMPLES  # bounded
        summary = stats.summary()
        assert summary["max_s"] == max(values)           # exact
        assert summary["mean_s"] == pytest.approx(
            sum(values) / n)                             # exact
        ordered = sorted(values)
        for q, key in ((50, "p50_s"), (95, "p95_s"), (99, "p99_s")):
            true_quantile = percentile(ordered, q)
            assert summary[key] == pytest.approx(true_quantile,
                                                 rel=0.05), \
                f"p{q}: {summary[key]} vs true {true_quantile}"

    def test_thinning_is_uniform_not_prefix_biased(self):
        """A monotone ramp: the thinned reservoir must keep late samples,
        not only the early prefix."""
        import repro.service.metrics as service_metrics
        original = service_metrics.MAX_LATENCY_SAMPLES
        service_metrics.MAX_LATENCY_SAMPLES = 1024
        try:
            stats = LatencyStats()
            n = 10000
            for i in range(n):
                stats.record(float(i))
            kept = stats._samples
            assert len(kept) < 2048
            assert max(kept) > 0.9 * n       # tail survived thinning
            summary = stats.summary()
            assert summary["p50_s"] == pytest.approx(n / 2, rel=0.1)
        finally:
            service_metrics.MAX_LATENCY_SAMPLES = original
