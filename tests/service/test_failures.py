"""Failure-path tests: the service must degrade, not fall over.

Covers the three contractual failure modes end to end:

* admission rejection at a full queue (backpressure, not buffering);
* deadline expiry while still queued (mid-queue timeout checkpoint);
* device OOM during execution (request fails, buffers release, the
  service keeps serving).

Deterministic setups use ``start=False``: requests are staged into the
admission queue while no dispatcher runs, then the service starts (or
the deadline expires) on our schedule.
"""

import dataclasses
import time

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.clsim.device import INTEL_X5660_CPU, MIB
from repro.errors import (CLOutOfMemoryError, RequestTimedOut,
                          ServiceOverloaded)
from repro.service import DerivedFieldService, RequestStatus
from repro.workloads import SubGrid, make_fields


def case_inputs(fields, name):
    return {k: fields[k] for k in EXPRESSION_INPUTS[name]}


class TestAdmissionRejection:
    def test_full_queue_rejects_then_recovers(self):
        fields = make_fields(SubGrid(4, 4, 6), seed=3)
        inputs = case_inputs(fields, "velocity_magnitude")
        service = DerivedFieldService(devices=("cpu",), queue_depth=2,
                                      start=False)
        try:
            admitted = [service.submit(EXPRESSIONS["velocity_magnitude"],
                                       inputs) for _ in range(2)]
            with pytest.raises(ServiceOverloaded) as excinfo:
                service.submit(EXPRESSIONS["velocity_magnitude"], inputs)
            assert excinfo.value.depth == 2

            snapshot = service.snapshot()
            assert snapshot["requests"]["outcomes"]["rejected"] == 1
            assert snapshot["queue"]["depth"] == 2

            # the rejection was load, not poison: start and drain
            service.start()
            for handle in admitted:
                assert handle.result(timeout=10.0).output is not None
        finally:
            service.close()
        snapshot = service.snapshot()
        assert snapshot["requests"]["outcomes"]["served"] == 2
        assert snapshot["requests"]["in_flight"] == 0


class TestDeadlines:
    def test_deadline_expires_mid_queue(self):
        fields = make_fields(SubGrid(4, 4, 6), seed=3)
        inputs = case_inputs(fields, "velocity_magnitude")
        service = DerivedFieldService(devices=("cpu",), start=False)
        try:
            handles = [service.submit(EXPRESSIONS["velocity_magnitude"],
                                      inputs, timeout=0.01)
                       for _ in range(3)]
            time.sleep(0.05)          # deadlines pass while still queued
            service.start()
            for handle in handles:
                with pytest.raises(RequestTimedOut):
                    handle.result(timeout=10.0)
                assert handle.status is RequestStatus.TIMED_OUT
            snapshot = service.snapshot()
            assert snapshot["requests"]["outcomes"]["timed_out"] == 3
            assert snapshot["requests"]["outcomes"]["served"] == 0
        finally:
            service.close()

    def test_default_timeout_applies(self):
        fields = make_fields(SubGrid(4, 4, 6), seed=3)
        inputs = case_inputs(fields, "velocity_magnitude")
        service = DerivedFieldService(devices=("cpu",),
                                      default_timeout=0.01, start=False)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            assert handle.deadline is not None
            time.sleep(0.05)
            service.start()
            with pytest.raises(RequestTimedOut):
                handle.result(timeout=10.0)
        finally:
            service.close()


class TestWorkerOOM:
    def test_oom_fails_request_but_not_service(self):
        tiny = dataclasses.replace(INTEL_X5660_CPU,
                                   global_mem_bytes=1 * MIB)
        big = make_fields(SubGrid(32, 32, 32), seed=5)
        small = make_fields(SubGrid(4, 4, 6), seed=5)
        with DerivedFieldService(devices=(tiny,)) as service:
            doomed = service.submit(EXPRESSIONS["q_criterion"],
                                    case_inputs(big, "q_criterion"))
            with pytest.raises(CLOutOfMemoryError):
                doomed.result(timeout=10.0)
            assert doomed.status is RequestStatus.FAILED
            assert doomed.device == "0:cpu"

            # every buffer the failed execution reserved was released
            env = service.workers[0].engine.environment
            assert env is not None
            assert env.alloc_stats().live_bytes == 0

            # the same worker keeps serving
            output = service.derive(
                EXPRESSIONS["velocity_magnitude"],
                case_inputs(small, "velocity_magnitude"))
            assert np.all(np.isfinite(output))

            snapshot = service.snapshot()
        device = snapshot["devices"]["0:cpu"]
        assert device["failed"] == 1
        assert device["served"] == 1
        outcomes = snapshot["requests"]["outcomes"]
        assert outcomes["failed"] == 1
        assert outcomes["served"] == 1
