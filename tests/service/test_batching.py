"""Micro-batched dispatch: correctness, deadlines, and accounting.

The coalescing dispatcher must be *transparent*: a request served as
member of a batch produces the same ``ExecutionReport`` — bitwise output,
event counts, modeled timing, memory peak — it would have produced served
alone.  Batch composition is made deterministic the same way the bench
does it: build the service stopped, presubmit the backlog, then start.

Also covered here: the deadline-aware cutoff (a linger window never
strands a request past its deadline), and the admission-accounting
regression (``in_flight`` computed from ``offered == terminal +
in_flight`` must never go negative while submissions race terminal
resolutions through the batched path).
"""

import threading

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.errors import RequestTimedOut, ServiceOverloaded
from repro.service import build_service
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(6, 6, 8)
STRATEGIES = ("roundtrip", "staged", "fusion")


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=7)


def case_inputs(fields, name):
    return {k: fields[k] for k in EXPRESSION_INPUTS[name]}


def drain_backlog(fields, *, strategy, max_batch, requests=8,
                  name="q_criterion"):
    """Presubmit ``requests`` identical requests against a stopped
    service, start it, and return the reports in submission order."""
    inputs = case_inputs(fields, name)
    service = build_service(("cpu",), strategy=strategy,
                            max_batch=max_batch, queue_depth=requests,
                            start=False)
    try:
        handles = [service.submit(EXPRESSIONS[name], inputs)
                   for _ in range(requests)]
        service.start()
        reports = [h.result(timeout=30.0) for h in handles]
    finally:
        service.close()
    # Snapshot after close: workers are joined, so outcome counters are
    # final (resolution unblocks result() just before metrics record).
    return reports, service.snapshot()


class TestBatchTransparency:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_batched_reports_identical_to_per_request(self, fields,
                                                      strategy):
        batched, snap_b = drain_backlog(fields, strategy=strategy,
                                        max_batch=8)
        solo, snap_s = drain_backlog(fields, strategy=strategy,
                                     max_batch=1)
        assert snap_b["batching"]["coalesced_launches"] > 0
        assert snap_s["batching"]["coalesced_launches"] == 0
        for member, reference in zip(batched, solo):
            assert np.array_equal(member.output, reference.output)
            assert member.output.dtype == reference.output.dtype
            assert member.counts == reference.counts
            assert member.strategy == reference.strategy
            assert member.timing.host_to_device == \
                pytest.approx(reference.timing.host_to_device)
            assert member.timing.kernel_exec == \
                pytest.approx(reference.timing.kernel_exec)
            assert member.timing.device_to_host == \
                pytest.approx(reference.timing.device_to_host)
            assert member.mem_high_water == reference.mem_high_water
            assert member.generated_sources == \
                reference.generated_sources

    def test_every_member_resolves_served(self, fields):
        reports, snapshot = drain_backlog(fields, strategy="fusion",
                                          max_batch=8, requests=12)
        assert len(reports) == 12
        assert snapshot["requests"]["outcomes"]["served"] == 12
        assert snapshot["requests"]["in_flight"] == 0

    def test_mixed_expressions_batch_only_within_plan(self, fields):
        """Different expressions have different plan keys and must not
        coalesce with each other; everything still serves correctly."""
        service = build_service(("cpu",), strategy="fusion", max_batch=8,
                                queue_depth=32, start=False)
        try:
            handles = []
            for _ in range(4):
                for name in EXPRESSIONS:
                    handles.append(service.submit(
                        EXPRESSIONS[name], case_inputs(fields, name)))
            service.start()
            for handle in handles:
                assert handle.result(timeout=30.0).output is not None
        finally:
            service.close()
        snapshot = service.snapshot()
        assert snapshot["requests"]["outcomes"]["served"] == len(handles)

    def test_modeled_time_amortizes_launch_overhead(self, fields):
        _, snap_b = drain_backlog(fields, strategy="fusion", max_batch=8,
                                  requests=16)
        _, snap_s = drain_backlog(fields, strategy="fusion", max_batch=1,
                                  requests=16)
        batched = snap_b["devices"]["0:cpu"]["modeled_seconds"]
        solo = snap_s["devices"]["0:cpu"]["modeled_seconds"]
        assert batched < solo

    def test_max_batch_bounds_coalescing(self, fields):
        _, snapshot = drain_backlog(fields, strategy="fusion",
                                    max_batch=4, requests=16)
        batching = snapshot["batching"]
        assert batching["coalesced_requests"] <= 16
        assert batching["mean_batch_size"] <= 4.0


class TestDeadlineCutoff:
    def test_expired_members_resolve_timed_out_not_stranded(self, fields):
        """A backlog whose deadlines expire before dispatch: every
        request still resolves (timed out), none hang."""
        inputs = case_inputs(fields, "q_criterion")
        service = build_service(("cpu",), strategy="fusion", max_batch=8,
                                queue_depth=16, start=False,
                                default_timeout=0.0)
        try:
            handles = [service.submit(EXPRESSIONS["q_criterion"], inputs)
                       for _ in range(8)]
            service.start()
            for handle in handles:
                with pytest.raises(RequestTimedOut):
                    handle.result(timeout=30.0)
        finally:
            service.close()
        snapshot = service.snapshot()
        assert snapshot["requests"]["outcomes"]["timed_out"] == 8
        assert snapshot["requests"]["in_flight"] == 0

    def test_linger_window_never_outwaits_a_deadline(self, fields):
        """With a batch window far longer than the request deadline, the
        dispatcher must cut the linger short: requests resolve promptly
        (served or timed out), never stranded behind the window."""
        inputs = case_inputs(fields, "q_criterion")
        service = build_service(("cpu",), strategy="fusion", max_batch=8,
                                batch_window=30.0, queue_depth=16,
                                default_timeout=0.5)
        try:
            handles = [service.submit(EXPRESSIONS["q_criterion"], inputs)
                       for _ in range(3)]
            outcomes = []
            for handle in handles:
                try:
                    handle.result(timeout=10.0)
                    outcomes.append("served")
                except RequestTimedOut:
                    outcomes.append("timed_out")
        finally:
            service.close()
        snapshot = service.snapshot()
        assert len(outcomes) == 3
        assert snapshot["requests"]["in_flight"] == 0

    def test_partial_batch_launches_at_window_end(self, fields):
        """A lone request with a finite window still executes — the
        window is a linger bound, not a minimum batch size."""
        inputs = case_inputs(fields, "q_criterion")
        with build_service(("cpu",), strategy="fusion", max_batch=8,
                           batch_window=0.05) as service:
            report = service.execute(EXPRESSIONS["q_criterion"], inputs)
        assert report.output is not None


class TestAdmissionAccounting:
    def test_in_flight_never_negative_under_racing_submissions(self,
                                                               fields):
        """Satellite regression: the submitted-counter increment happens
        inside the queue lock (``on_admit``), so a snapshot can never
        observe a terminal count for a request whose submission was not
        yet counted — even while batched dispatch races admissions."""
        inputs = case_inputs(fields, "q_criterion")
        service = build_service(("cpu",), strategy="fusion", max_batch=8,
                                queue_depth=4)
        violations = []
        stop = threading.Event()

        def watch():
            while not stop.is_set():
                requests = service.snapshot()["requests"]
                if requests["in_flight"] < 0:
                    violations.append(requests)

        watcher = threading.Thread(target=watch, daemon=True)
        watcher.start()
        try:
            def hammer():
                for _ in range(40):
                    try:
                        service.submit(EXPRESSIONS["q_criterion"],
                                       inputs).result(timeout=30.0)
                    except ServiceOverloaded:
                        pass

            threads = [threading.Thread(target=hammer, daemon=True)
                       for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            stop.set()
            watcher.join(timeout=5.0)
            service.close()
        assert not violations, violations[:3]
        requests = service.snapshot()["requests"]
        assert requests["in_flight"] == 0
        assert requests["offered"] == requests["resolved"]
