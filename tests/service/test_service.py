"""End-to-end tests for :class:`DerivedFieldService`.

The service must produce bitwise-identical results to a plain engine,
resolve every admitted request exactly once, expose a JSON-able metrics
snapshot, and shut down cleanly whether draining or cancelling.
"""

import json

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.errors import (HostInterfaceError, RequestCancelled,
                          ServiceClosed)
from repro.host.engine import DerivedFieldEngine
from repro.service import DerivedFieldService, RequestStatus
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(6, 6, 8)


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=7)


def case_inputs(fields, name):
    return {k: fields[k] for k in EXPRESSION_INPUTS[name]}


class TestCorrectness:
    def test_bitwise_equal_to_engine(self, fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        with DerivedFieldService(devices=("cpu",)) as service:
            for name, expression in EXPRESSIONS.items():
                inputs = case_inputs(fields, name)
                expected = engine.derive(expression, inputs)
                got = service.derive(expression, inputs)
                assert got.dtype == expected.dtype
                assert np.array_equal(got, expected), name

    def test_execute_returns_full_report(self, fields):
        with DerivedFieldService(devices=("cpu",)) as service:
            report = service.execute(EXPRESSIONS["velocity_magnitude"],
                                     case_inputs(fields,
                                                 "velocity_magnitude"))
        assert report.output is not None
        assert report.strategy == "fusion"
        assert report.cache is not None
        assert report.timing.total > 0

    def test_repeated_requests_hit_plan_cache(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        with DerivedFieldService(devices=("cpu",)) as service:
            for _ in range(5):
                service.derive(EXPRESSIONS["velocity_magnitude"], inputs)
            snapshot = service.snapshot()
        cache = snapshot["plan_cache"]
        assert cache["lookups"] == 5
        assert cache["hits"] == 4

    def test_malformed_request_rejected_synchronously(self, fields):
        with DerivedFieldService(devices=("cpu",)) as service:
            with pytest.raises(HostInterfaceError):
                service.submit(EXPRESSIONS["q_criterion"],
                               {"u": fields["u"]})
            # a synchronous rejection never counts as admitted work
            assert service.snapshot()["requests"]["submitted"] == 0


class TestSnapshot:
    def test_snapshot_is_json_serializable(self, fields):
        with DerivedFieldService(devices=("cpu", "gpu")) as service:
            for name in EXPRESSIONS:
                service.derive(EXPRESSIONS[name],
                               case_inputs(fields, name))
            snapshot = service.snapshot()
        round_tripped = json.loads(json.dumps(snapshot))
        assert round_tripped["requests"]["outcomes"]["served"] == 3
        assert set(round_tripped["devices"]) == {"0:cpu", "1:gpu"}
        for stats in round_tripped["latency"].values():
            assert {"count", "mean_s", "max_s", "p50_s", "p95_s",
                    "p99_s"} <= set(stats)
        assert 0.0 <= round_tripped["plan_cache"]["hit_rate"] <= 1.0

    def test_outcomes_account_for_every_request(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        with DerivedFieldService(devices=("cpu",)) as service:
            handles = [service.submit(EXPRESSIONS["velocity_magnitude"],
                                      inputs) for _ in range(8)]
            for handle in handles:
                handle.result()
            snapshot = service.snapshot()
        requests = snapshot["requests"]
        assert requests["submitted"] == 8
        assert requests["resolved"] == 8
        assert requests["in_flight"] == 0
        assert requests["outcomes"]["served"] == 8


class TestLifecycle:
    def test_cancel_before_dispatch(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        service = DerivedFieldService(devices=("cpu",), start=False)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    inputs)
            handle.cancel()
            service.start()
            with pytest.raises(RequestCancelled):
                handle.result(timeout=5.0)
            assert handle.status is RequestStatus.CANCELLED
            assert service.snapshot()["requests"]["outcomes"][
                "cancelled"] == 1
        finally:
            service.close()

    def test_submit_after_close_raises(self, fields):
        service = DerivedFieldService(devices=("cpu",))
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(EXPRESSIONS["velocity_magnitude"],
                           case_inputs(fields, "velocity_magnitude"))

    def test_close_without_drain_cancels_queued(self, fields):
        inputs = case_inputs(fields, "velocity_magnitude")
        service = DerivedFieldService(devices=("cpu",), start=False)
        handles = [service.submit(EXPRESSIONS["velocity_magnitude"],
                                  inputs) for _ in range(3)]
        service.close(drain=False)
        for handle in handles:
            assert handle.done()
            assert handle.status is RequestStatus.CANCELLED
            with pytest.raises(RequestCancelled):
                handle.result()

    def test_close_is_idempotent(self):
        service = DerivedFieldService(devices=("cpu",))
        service.close()
        service.close()

    def test_needs_at_least_one_device(self):
        with pytest.raises(ValueError):
            DerivedFieldService(devices=())


class TestCLIServe:
    def test_serve_smoke(self, capsys):
        from repro.cli import main
        assert main(["serve", "--devices", "cpu,gpu", "--clients", "4",
                     "--requests", "40", "--grid", "6x6x8"]) == 0
        out = capsys.readouterr().out
        assert "dropped=0" in out
        assert "plan cache:" in out
        assert "device[0:cpu]" in out
        assert "device[1:gpu]" in out

    def test_serve_json_output(self, tmp_path, capsys):
        from repro.cli import main
        target = tmp_path / "serve.json"
        assert main(["serve", "--requests", "12", "--clients", "2",
                     "--grid", "4x4x6", "--expressions",
                     "velocity_magnitude", "--json", str(target)]) == 0
        payload = json.loads(target.read_text())
        assert payload["load"]["outcomes"]["served"] == 12
        assert payload["metrics"]["requests"]["submitted"] == 12

    def test_serve_rejects_unknown_device(self):
        from repro.cli import main
        with pytest.raises(SystemExit):
            main(["serve", "--devices", "tpu"])
