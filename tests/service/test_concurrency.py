"""Concurrency stress tests: shared warm state must never change results.

Two layers are stressed:

* a single :class:`DerivedFieldEngine` (shared plan cache AND shared warm
  environment) hammered from many threads — outputs must stay
  bitwise-identical to serial execution and the cache counters must add
  up;
* a two-worker :class:`DerivedFieldService` — plans built by one worker
  must be warm hits for the other (identical device model), again with
  bitwise-identical outputs.
"""

import threading

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.host.engine import DerivedFieldEngine
from repro.service import DerivedFieldService
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(6, 6, 8)
THREADS = 4
ROUNDS = 4


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=11)


@pytest.fixture(scope="module")
def baselines(fields):
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    return {name: engine.derive(EXPRESSIONS[name],
                                {k: fields[k]
                                 for k in EXPRESSION_INPUTS[name]})
            for name in EXPRESSIONS}


def run_threads(worker, count):
    failures = []

    def wrapped(index):
        try:
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - collect, don't die
            failures.append(exc)

    threads = [threading.Thread(target=wrapped, args=(i,))
               for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


class TestSharedEngine:
    def test_stress_bitwise_and_counters(self, fields, baselines):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        names = list(EXPRESSIONS)

        def worker(index):
            for round_no in range(ROUNDS):
                # each thread starts on a different expression so cache
                # misses and hits interleave across threads
                name = names[(index + round_no) % len(names)]
                inputs = {k: fields[k] for k in EXPRESSION_INPUTS[name]}
                output = engine.derive(EXPRESSIONS[name], inputs)
                assert np.array_equal(output, baselines[name]), name

        run_threads(worker, THREADS)

        cache = engine.plan_cache
        assert len(cache) == len(EXPRESSIONS)
        assert cache.hits + cache.misses == THREADS * ROUNDS
        assert cache.evictions == 0
        assert cache.hits >= THREADS * ROUNDS - len(EXPRESSIONS)


class TestServiceCrossWorker:
    def test_two_workers_share_plans(self, fields, baselines):
        names = list(EXPRESSIONS)
        with DerivedFieldService(devices=("cpu", "cpu"),
                                 queue_depth=64) as service:

            def worker(index):
                for round_no in range(ROUNDS):
                    name = names[(index + round_no) % len(names)]
                    inputs = {k: fields[k]
                              for k in EXPRESSION_INPUTS[name]}
                    output = service.derive(EXPRESSIONS[name], inputs)
                    assert np.array_equal(output, baselines[name]), name

            run_threads(worker, THREADS * 2)
            snapshot = service.snapshot()

        total = THREADS * 2 * ROUNDS
        assert snapshot["requests"]["outcomes"]["served"] == total
        assert snapshot["requests"]["in_flight"] == 0
        # both identical-model workers served, and plans built by one
        # were warm for the other: more hits than a single worker could
        # have produced alone is implied by hit_rate with only 3 misses
        cache = snapshot["plan_cache"]
        assert cache["hit_rate"] > 0
        assert cache["lookups"] == total
        assert cache["hits"] >= total - len(EXPRESSIONS) * 2
        assert len(service.plan_cache) <= len(EXPRESSIONS)
        served_by = {name: dev["served"]
                     for name, dev in snapshot["devices"].items()}
        assert set(served_by) == {"0:cpu", "1:cpu"}
        assert sum(served_by.values()) == total

    def test_service_outputs_match_each_other(self, fields):
        # same request through both workers pinned by repetition: every
        # response for one expression must be bitwise identical
        inputs = {k: fields[k]
                  for k in EXPRESSION_INPUTS["q_criterion"]}
        outputs = []
        lock = threading.Lock()
        with DerivedFieldService(devices=("cpu", "cpu")) as service:

            def worker(_index):
                output = service.derive(EXPRESSIONS["q_criterion"],
                                        inputs)
                with lock:
                    outputs.append(output)

            run_threads(worker, 6)
        first = outputs[0]
        for output in outputs[1:]:
            assert np.array_equal(output, first)
