"""SLO-tracker unit tests: rolling p99, outliers, burn rate, health."""

from repro.metrics import MetricsRegistry
from repro.obs import SloTracker


class FakeClock:
    """Controllable monotonic clock: health windows age only when the
    test advances time."""

    def __init__(self):
        self.t = 0.0

    def __call__(self) -> float:
        return self.t

    def tick(self, dt: float = 0.01) -> float:
        self.t += dt
        return self.t


def tracked(registry=None, **kwargs):
    clock = FakeClock()
    return SloTracker(registry, clock=clock, **kwargs), clock


def warm(tracker, clock, expression="q_crit", n=70, latency=0.001):
    """Feed n healthy observations, advancing the clock each time."""
    for _ in range(n):
        tracker.observe(expression, latency, ok=True, now=clock.tick())


class TestOutliers:
    def test_outlier_flagged_after_warmup(self):
        tracker, clock = tracked()
        warm(tracker, clock)
        verdict = tracker.observe("q_crit", 1.0, ok=True,
                                  now=clock.tick())
        assert verdict.outlier
        assert verdict.p99_s is not None
        assert verdict.threshold_s == \
            verdict.p99_s * tracker.outlier_factor

    def test_no_outlier_before_warmup(self):
        tracker, clock = tracked(warmup=64)
        warm(tracker, clock, n=10)
        verdict = tracker.observe("q_crit", 5.0, ok=True,
                                  now=clock.tick())
        assert not verdict.outlier

    def test_normal_latency_not_an_outlier(self):
        tracker, clock = tracked()
        warm(tracker, clock)
        verdict = tracker.observe("q_crit", 0.0012, ok=True,
                                  now=clock.tick())
        assert not verdict.outlier

    def test_p99_tracks_the_window(self):
        tracker, clock = tracked(window=100, refresh_every=1, warmup=2)
        warm(tracker, clock, n=50, latency=0.001)
        summary = tracker.expression_summary()["q_crit"]
        assert abs(summary["p99_s"] - 0.001) < 1e-9

    def test_expressions_tracked_independently(self):
        tracker, clock = tracked()
        warm(tracker, clock, expression="a")
        verdict = tracker.observe("b", 1.0, ok=True, now=clock.tick())
        assert not verdict.outlier          # "b" has no baseline yet


class TestBurnRate:
    def test_errors_burn_the_budget(self):
        tracker, clock = tracked()         # budget 0.1%, limit 2x
        warm(tracker, clock, n=20)
        verdict = tracker.observe("q_crit", 0.01, ok=False,
                                  now=clock.tick())
        assert verdict.error_ratio > 0
        assert verdict.burn_rate == \
            verdict.error_ratio / tracker.error_budget
        assert not tracker.healthy()

    def test_min_volume_gates_health(self):
        tracker, clock = tracked(min_volume=20)
        for _ in range(5):
            tracker.observe("q_crit", 0.01, ok=False, now=clock.tick())
        # Burning hard, but five requests is not enough volume to page.
        assert tracker.healthy()

    def test_time_window_forgets_old_errors(self):
        tracker, clock = tracked(time_window_s=60.0)
        for i in range(30):
            tracker.observe("q_crit", 0.01, ok=(i >= 10),
                            now=clock.tick())
        assert not tracker.healthy()
        # Two minutes later the errors have aged out of the window.
        clock.tick(120.0)
        warm(tracker, clock, n=25)
        summary = tracker.expression_summary()["q_crit"]
        assert summary["window_errors"] == 0
        assert tracker.healthy()

    def test_health_payload_shape(self):
        tracker, clock = tracked()
        warm(tracker, clock, n=30)
        for _ in range(10):
            tracker.observe("q_crit", 0.01, ok=False, now=clock.tick())
        health = tracker.health()
        assert health["healthy"] is False
        assert health["burning"] == ["q_crit"]
        assert health["expressions"]["q_crit"]["burning"] is True
        assert 0 < health["objective"] < 1


class TestMetrics:
    def test_bind_registry_publishes_slo_families(self):
        registry = MetricsRegistry()
        tracker, clock = tracked(registry)
        warm(tracker, clock)
        tracker.observe("q_crit", 1.0, ok=True,
                        now=clock.tick())               # outlier
        tracker.observe("q_crit", 0.01, ok=False,
                        now=clock.tick())               # error
        snapshot = registry.snapshot()
        by_expr = {tuple(sorted(s["labels"].items())): s["value"]
                   for s in snapshot["repro_slo_latency_p99_seconds"]
                   ["samples"]}
        assert (("expression", "q_crit"),) in by_expr
        assert snapshot["repro_slo_latency_outliers_total"]["samples"][0][
            "value"] == 1.0
        assert snapshot["repro_slo_errors_total"]["samples"][0][
            "value"] == 1.0
        assert snapshot["repro_slo_observations_total"]["samples"][0][
            "value"] == 72.0

    def test_healthy_gauge_flips_with_burn(self):
        registry = MetricsRegistry()
        tracker, clock = tracked(registry)
        warm(tracker, clock, n=20)
        assert registry.value("repro_slo_healthy") == 1.0
        for _ in range(10):
            tracker.observe("q_crit", 0.01, ok=False, now=clock.tick())
        assert registry.value("repro_slo_healthy") == 0.0
