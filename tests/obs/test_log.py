"""Structured-logger unit tests: gating, correlation, slices, sinks."""

import io
import json

import pytest

from repro.obs import (LEVELS, NULL_LOGGER, FlightRecorder,
                       StructuredLogger, get_logger, set_logger)


class TestLevels:
    def test_debug_gated_under_default_info(self):
        log = StructuredLogger()
        assert log.debug("engine.execute", device="cpu") is None
        assert log.emitted_total == 0
        assert not log.debug_enabled

    def test_set_level_opens_debug(self):
        log = StructuredLogger()
        log.set_level("debug")
        assert log.debug_enabled
        record = log.debug("engine.execute", device="cpu")
        assert record["level"] == "debug"
        assert record["device"] == "cpu"

    def test_level_ordering_matches_severity(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] \
            < LEVELS["error"]

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger(level="loud")
        with pytest.raises(ValueError):
            StructuredLogger().set_level("loud")

    def test_none_valued_fields_omitted(self):
        record = StructuredLogger().info("x", a=1, b=None)
        assert "b" not in record and record["a"] == 1


class TestCorrelation:
    def test_tracer_stamps_current_span_ids(self):
        log = StructuredLogger()
        recorder = FlightRecorder()
        with recorder.span("request", parent=None) as root:
            record = log.info("worker.execute", tracer=recorder)
        assert record["trace_id"] == root.trace_id
        assert record["span_id"] == root.span_id

    def test_no_current_span_stamps_nothing(self):
        record = StructuredLogger().info("x", tracer=FlightRecorder())
        assert "trace_id" not in record

    def test_slice_for_merges_trace_and_context(self):
        log = StructuredLogger()
        log.info("a", trace_id="t1")
        for i in range(3):
            log.info(f"noise-{i}", trace_id="t2")
        log.info("b", trace_id="t1")
        lines = log.slice_for("t1", context=2)
        events = [r["event"] for r in lines]
        # Both t1 records, plus the tail context, deduplicated ("b" is
        # in both the match set and the context tail) and time-ordered.
        assert events.count("b") == 1
        assert "a" in events and "noise-2" in events
        assert events == sorted(events, key=lambda e: 0)  # arrival order

    def test_slice_for_none_returns_context_only(self):
        log = StructuredLogger()
        for i in range(5):
            log.info(f"e{i}")
        assert [r["event"] for r in log.slice_for(None, context=2)] \
            == ["e3", "e4"]

    def test_tail_filters_by_trace(self):
        log = StructuredLogger()
        log.info("a", trace_id="t1")
        log.info("b", trace_id="t2")
        assert [r["event"] for r in log.tail(trace_id="t2")] == ["b"]


class TestRingAndSink:
    def test_ring_bounded(self):
        log = StructuredLogger(capacity=3)
        for i in range(10):
            log.info(f"e{i}")
        assert [r["event"] for r in log.tail()] == ["e7", "e8", "e9"]
        assert log.emitted_total == 10

    def test_stream_sink_writes_json_lines(self):
        sink = io.StringIO()
        log = StructuredLogger(stream=sink)
        log.info("served", expression="q_crit", latency_s=0.01)
        line = json.loads(sink.getvalue())
        assert line["event"] == "served"
        assert line["expression"] == "q_crit"

    def test_dead_sink_detaches_and_keeps_serving(self):
        class Dead:
            def write(self, text):
                raise OSError("disk full")

            def flush(self):
                pass

        log = StructuredLogger(stream=Dead())
        log.info("first")                   # detaches the sink
        record = log.info("second")         # keeps logging to the ring
        assert record is not None
        assert [r["event"] for r in log.tail()] == ["first", "second"]

    def test_set_stream_attaches_later(self):
        log = StructuredLogger()
        sink = io.StringIO()
        log.set_stream(sink)
        log.info("x")
        assert json.loads(sink.getvalue())["event"] == "x"


class TestProcessDefault:
    def test_null_logger_drops_everything(self):
        assert NULL_LOGGER.error("boom") is None
        assert NULL_LOGGER.tail() == []

    def test_set_logger_swaps_and_restores(self):
        mine = StructuredLogger()
        previous = set_logger(mine)
        try:
            assert get_logger() is mine
        finally:
            assert set_logger(previous) is mine
        assert get_logger() is previous
