"""``repro top`` tests: bucket-quantile math and frame rendering,
driven on synthetic registry snapshots plus one live HTTP poll."""

import io

from repro.metrics import MetricsRegistry, MetricsServer
from repro.obs.top import quantile_from_buckets, render_top, run_top


class TestQuantileFromBuckets:
    def test_interpolates_inside_the_bucket(self):
        # 10 observations uniform in (0, 1]: p50 lands mid-bucket.
        bounds = [1.0, 2.0]
        cumulative = [10, 10, 10]      # ..., then the +Inf count
        assert quantile_from_buckets(bounds, cumulative, 0.5) == 0.5

    def test_spans_buckets_linearly(self):
        bounds = [1.0, 2.0]
        cumulative = [5, 10, 10]
        # rank 7.5 of 10 -> 2.5/5 through the (1, 2] bucket.
        assert quantile_from_buckets(bounds, cumulative, 0.75) == 1.5

    def test_inf_bucket_reports_largest_finite_bound(self):
        bounds = [1.0]
        cumulative = [0, 10]           # everything above the last bound
        assert quantile_from_buckets(bounds, cumulative, 0.5) == 1.0

    def test_no_data_returns_none(self):
        assert quantile_from_buckets([1.0], [], 0.5) is None
        assert quantile_from_buckets([1.0], [0, 0], 0.5) is None

    def test_empty_bucket_run_returns_bound(self):
        bounds = [1.0, 2.0]
        cumulative = [10, 10, 10]
        assert quantile_from_buckets(bounds, cumulative, 1.0) == 1.0


def service_snapshot():
    """A registry snapshot shaped like a serving process's."""
    registry = MetricsRegistry()
    outcomes = registry.counter("repro_service_requests_total", "t",
                                ("outcome",))
    outcomes.labels(outcome="served").inc(9)
    outcomes.labels(outcome="timed_out").inc(1)
    registry.counter("repro_service_requests_submitted_total", "t") \
        .inc(12)
    registry.gauge("repro_service_queue_depth", "t").set(2)
    latency = registry.histogram(
        "repro_service_request_latency_seconds", "t", ("expression",),
        buckets=(0.001, 0.01, 0.1))
    for value in (0.0005, 0.002, 0.005, 0.02):
        latency.labels(expression="q_crit").observe(value)
    registry.gauge("repro_slo_latency_p99_seconds", "t",
                   ("expression",)).labels(expression="q_crit") \
        .set(0.02)
    registry.gauge("repro_slo_error_burn_rate", "t", ("expression",)) \
        .labels(expression="q_crit").set(100.0)
    registry.counter("repro_slo_latency_outliers_total", "t",
                     ("expression",)).labels(expression="q_crit").inc()
    registry.gauge("repro_slo_healthy", "t").set(0.0)
    return registry.snapshot()


class TestRenderTop:
    def test_frame_reads_outcomes_and_slo(self):
        frame = render_top(service_snapshot())
        assert "resolved: 10" in frame
        assert "in-flight: 2" in frame
        assert "served=9" in frame and "timed_out=1" in frame
        assert "expression=q_crit" in frame
        assert "burn=100.00" in frame
        assert "outliers=1" in frame
        assert "health: BURNING" in frame

    def test_latency_quantiles_from_bounds(self):
        frame = render_top(service_snapshot())
        # p50 of (0.0005, 0.002, 0.005, 0.02) interpolated from the
        # (0.001, 0.01] bucket: somewhere in single-digit ms.
        line = next(l for l in frame.splitlines()
                    if "expression=q_crit" in l)
        assert "n=4" in line and "p50=" in line and "p99=" in line

    def test_rate_computed_from_previous_frame(self):
        snapshot = service_snapshot()
        prev = service_snapshot()
        prev["repro_service_requests_total"]["samples"][0]["value"] = 4.0
        frame = render_top(snapshot, prev, interval=5.0)
        assert "(1.0 rps)" in frame

    def test_empty_snapshot_renders_placeholders(self):
        frame = render_top({})
        assert "(none)" in frame
        assert "(no latency histogram)" in frame
        assert "(no SLO data)" in frame


class TestRunTop:
    def test_polls_a_live_metrics_server(self):
        registry = MetricsRegistry()
        registry.counter("repro_service_requests_total", "t",
                         ("outcome",)).labels(outcome="served").inc(3)
        out = io.StringIO()
        with MetricsServer(registry) as server:
            code = run_top(server.url(""), once=True, out=out)
        assert code == 0
        assert "resolved: 3" in out.getvalue()

    def test_unreachable_server_exits_nonzero(self):
        out = io.StringIO()
        code = run_top("http://127.0.0.1:1/metrics.json", once=True,
                       out=out)
        assert code == 1
        assert "cannot reach" in out.getvalue()
