"""Debug-bundle tests: one per trigger, plus the healthy-writes-nothing
and bounded-writer contracts.

End-to-end triggers (failure, deadline-miss, cancellation) go through a
real :class:`DerivedFieldService` with a debug-bundle dir; the verdict-
dependent triggers (codegen-fallback, latency-outlier) drive the
:class:`Observability` manager directly with crafted requests, which
keeps them deterministic without monkeypatching worker engines.
"""

import dataclasses
import json

import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.clsim.device import INTEL_X5660_CPU, MIB
from repro.errors import (CLOutOfMemoryError, RequestCancelled,
                          RequestTimedOut)
from repro.obs import BUNDLE_SCHEMA, BundleWriter, Observability
from repro.service import DerivedFieldService
from repro.workloads import SubGrid, make_fields

BUNDLE_FILES = {"manifest.json", "trace.json", "report.json",
                "plan.json", "metrics.json", "log.jsonl"}


@pytest.fixture(scope="module")
def fields():
    return make_fields(SubGrid(8, 8, 8), seed=0)


def case_inputs(fields, name):
    return {k: fields[k] for k in EXPRESSION_INPUTS[name]}


def bundles_in(root):
    return sorted(p.parent for p in root.glob("*/manifest.json"))


def manifest_of(bundle):
    return json.loads((bundle / "manifest.json").read_text())


class TestServiceTriggers:
    def test_deadline_miss_writes_bundle(self, fields, tmp_path):
        root = tmp_path / "bundles"
        with DerivedFieldService(devices=("cpu",),
                                 debug_bundle_dir=root) as service:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    case_inputs(fields,
                                                "velocity_magnitude"))
            handle.force_deadline_miss()
            with pytest.raises(RequestTimedOut):
                handle.result(timeout=30)
        bundles = bundles_in(root)
        assert len(bundles) == 1
        manifest = manifest_of(bundles[0])
        assert manifest["schema"] == BUNDLE_SCHEMA
        assert manifest["trigger"] == "deadline-miss"
        assert manifest["trace_id"] == handle.trace_id
        assert manifest["status"] == "timed_out"
        assert {p.name for p in bundles[0].iterdir()} == BUNDLE_FILES
        # The report rode along on the forced miss, so the acceptance
        # cross-check holds: trace device lanes == report counters.
        report = json.loads((bundles[0] / "report.json").read_text())
        trace = json.loads((bundles[0] / "trace.json").read_text())
        lanes = {}
        for event in trace["traceEvents"]:
            if event.get("ph") == "X" and event.get("pid", 1) > 1:
                lanes[event["cat"]] = lanes.get(event["cat"], 0) + 1
        assert lanes.get("kernel", 0) == report["counts"]["kernel_execs"]
        assert lanes.get("dev-write", 0) == report["counts"]["dev_writes"]
        assert lanes.get("dev-read", 0) == report["counts"]["dev_reads"]

    def test_failure_writes_bundle(self, tmp_path):
        tiny = dataclasses.replace(INTEL_X5660_CPU,
                                   global_mem_bytes=1 * MIB)
        big = make_fields(SubGrid(32, 32, 32), seed=5)
        root = tmp_path / "bundles"
        with DerivedFieldService(devices=(tiny,),
                                 debug_bundle_dir=root) as service:
            doomed = service.submit(EXPRESSIONS["q_criterion"],
                                    case_inputs(big, "q_criterion"))
            with pytest.raises(CLOutOfMemoryError):
                doomed.result(timeout=30)
        bundles = bundles_in(root)
        assert len(bundles) == 1
        manifest = manifest_of(bundles[0])
        assert manifest["trigger"] == "failure"
        assert manifest["status"] == "failed"
        # No report on a failed execution; the slot is explicit null.
        assert json.loads((bundles[0] / "report.json").read_text()) \
            is None

    def test_cancellation_writes_bundle(self, fields, tmp_path):
        root = tmp_path / "bundles"
        service = DerivedFieldService(devices=("cpu",), start=False,
                                      debug_bundle_dir=root)
        try:
            handle = service.submit(EXPRESSIONS["velocity_magnitude"],
                                    case_inputs(fields,
                                                "velocity_magnitude"))
            handle.cancel()
            service.start()
            with pytest.raises(RequestCancelled):
                handle.result(timeout=30)
        finally:
            service.close()
        bundles = bundles_in(root)
        assert len(bundles) == 1
        assert manifest_of(bundles[0])["trigger"] == "cancellation"

    def test_healthy_requests_write_nothing(self, fields, tmp_path):
        root = tmp_path / "bundles"
        with DerivedFieldService(devices=("cpu",),
                                 debug_bundle_dir=root) as service:
            for _ in range(5):
                service.execute(EXPRESSIONS["velocity_magnitude"],
                                case_inputs(fields,
                                            "velocity_magnitude"),
                                timeout=30)
            stats = service.obs.bundles.stats()
        assert bundles_in(root) == []
        assert stats["written"] == 0 and stats["skipped"] == 0


class FakeRequest:
    """The attribute surface Observability reads — no service import."""

    def __init__(self, recorder, *, status, latency, expression="q_crit",
                 report=None, request_id=1):
        with recorder.span("request", parent=None) as root:
            with recorder.span("worker.execute"):
                pass
        self.trace_id = root.trace_id
        self.status = status                 # plain string duck-types
        self.latency = latency
        self.expression = expression
        self.report = report
        self.device = "0:cpu"
        self.id = request_id


class FakeReport:
    def __init__(self, disposition):
        self.codegen = type("Codegen", (), {"disposition": disposition})()

    def to_json(self):
        return {"codegen": {"disposition": self.codegen.disposition}}


class TestVerdictTriggers:
    def test_codegen_fallback_writes_bundle(self, tmp_path):
        obs = Observability(bundle_dir=tmp_path / "bundles")
        request = FakeRequest(
            obs.recorder, status="served", latency=0.002,
            report=FakeReport("interpreter-fallback"))
        assert obs.on_request_done(request) == "codegen-fallback"
        bundles = bundles_in(tmp_path / "bundles")
        assert len(bundles) == 1
        manifest = manifest_of(bundles[0])
        assert manifest["trigger"] == "codegen-fallback"
        report = json.loads((bundles[0] / "report.json").read_text())
        assert report["codegen"]["disposition"] == "interpreter-fallback"

    def test_latency_outlier_writes_bundle(self, tmp_path):
        obs = Observability(bundle_dir=tmp_path / "bundles")
        for i in range(70):                   # past the SLO warmup
            obs.on_request_done(FakeRequest(
                obs.recorder, status="served", latency=0.001,
                request_id=i))
        assert bundles_in(tmp_path / "bundles") == []
        outlier = FakeRequest(obs.recorder, status="served", latency=1.0,
                              request_id=99)
        assert obs.on_request_done(outlier) == "latency-outlier"
        bundles = bundles_in(tmp_path / "bundles")
        assert len(bundles) == 1
        manifest = manifest_of(bundles[0])
        assert manifest["trigger"] == "latency-outlier"
        assert manifest["trace_id"] == outlier.trace_id
        assert "p99" in manifest["reason"]

    def test_compiled_disposition_is_not_a_fallback(self, tmp_path):
        obs = Observability(bundle_dir=tmp_path / "bundles")
        request = FakeRequest(obs.recorder, status="served",
                              latency=0.002,
                              report=FakeReport("compiled"))
        assert obs.on_request_done(request) is None
        assert bundles_in(tmp_path / "bundles") == []


class TestWriterBounds:
    def test_max_bundles_caps_and_counts_skips(self, tmp_path):
        obs = Observability(bundle_dir=tmp_path / "bundles",
                            max_bundles=2)
        for i in range(5):
            obs.on_request_done(FakeRequest(
                obs.recorder, status="failed", latency=0.001,
                request_id=i))
        stats = obs.bundles.stats()
        assert stats["written"] == 2
        assert stats["skipped"] == 3
        assert len(bundles_in(tmp_path / "bundles")) == 2

    def test_index_reads_manifests_in_order(self, tmp_path):
        obs = Observability(bundle_dir=tmp_path / "bundles")
        for i in range(3):
            obs.on_request_done(FakeRequest(
                obs.recorder, status="failed", latency=0.001,
                request_id=i))
        index = obs.bundles.index()
        assert [m["request_id"] for m in index] == [0, 1, 2]
        assert all(m["schema"] == BUNDLE_SCHEMA for m in index)
        assert all("path" in m for m in index)

    def test_broken_record_never_raises(self, tmp_path):
        writer = BundleWriter(tmp_path / "bundles")
        # A record whose device_digest explodes must degrade to a skip.
        class Broken:
            trace_id = "deadbeef"
            plan = None

            def device_digest(self):
                raise RuntimeError("boom")

        assert writer.write(trigger="failure", record=Broken()) is None
        assert writer.stats()["skipped"] == 1
