"""Flight-recorder unit tests: sealing, bounds, enrichment, retain."""

import pytest

from repro.clsim.events import Event, EventKind
from repro.obs import FlightRecorder


def make_events(n=2):
    kinds = (EventKind.DEV_WRITE, EventKind.KERNEL, EventKind.DEV_READ)
    return tuple(Event(kind=kinds[i % 3], name=f"e{i}", nbytes=64,
                       sim_seconds=1e-5, ts_seconds=i * 1e-5)
                 for i in range(n))


def run_trace(recorder, *, children=1, events=0):
    """One root span with children; returns the trace id."""
    with recorder.span("request", parent=None) as root:
        trace_id = root.trace_id
        for i in range(children):
            with recorder.span(f"child-{i}"):
                pass
        if events:
            recorder.add_device_events("cpu", make_events(events),
                                       anchor=0.0)
    return trace_id


class TestSealing:
    def test_root_finish_seals_a_record(self):
        recorder = FlightRecorder()
        trace_id = run_trace(recorder, children=2, events=3)
        record = recorder.record_for(trace_id)
        assert record is not None
        assert record.trace_id == trace_id
        # Root + two children folded as summaries.
        assert len(record.spans) == 3
        assert sum(len(b.events) for b in record.batches) == 3
        assert recorder.sealed_total == 1
        assert recorder.stats()["open_traces"] == 0

    def test_child_finish_does_not_seal(self):
        recorder = FlightRecorder()
        with recorder.span("request", parent=None) as root:
            with recorder.span("child"):
                pass
            assert recorder.record_for(root.trace_id) is None
            assert recorder.stats()["open_traces"] == 1
        assert recorder.record_for(root.trace_id) is not None

    def test_records_oldest_first_and_by_trace(self):
        recorder = FlightRecorder()
        ids = [run_trace(recorder) for _ in range(3)]
        assert [r.trace_id for r in recorder.records()] == ids
        for trace_id in ids:
            assert recorder.record_for(trace_id).trace_id == trace_id

    def test_untraced_spans_ignored(self):
        recorder = FlightRecorder()
        # NULL-parent spans always mint a trace id, so fake one without.
        assert recorder.record_for(None) is None


class TestBounds:
    def test_ring_capacity_evicts_oldest(self):
        recorder = FlightRecorder(capacity=2)
        ids = [run_trace(recorder) for _ in range(3)]
        records = recorder.records()
        assert len(records) == 2
        assert [r.trace_id for r in records] == ids[1:]
        assert recorder.record_for(ids[0]) is None
        assert recorder.sealed_total == 3

    def test_span_cap_counts_drops(self):
        recorder = FlightRecorder(max_spans_per_trace=2)
        trace_id = run_trace(recorder, children=5)
        record = recorder.record_for(trace_id)
        assert len(record.spans) == 2
        assert record.dropped_spans == 4   # 3 extra children + the root

    def test_device_batch_cap_counts_drops(self):
        recorder = FlightRecorder(max_device_batches_per_trace=1)
        with recorder.span("request", parent=None) as root:
            for _ in range(3):
                recorder.add_device_events("cpu", make_events(1),
                                           anchor=0.0)
        record = recorder.record_for(root.trace_id)
        assert len(record.batches) == 1
        assert record.dropped_batches == 2

    def test_abandoned_traces_bounded(self):
        recorder = FlightRecorder(capacity=1)
        # Open accumulators without ever finishing a root: note_plan on
        # fresh trace ids keeps opening accums; the 4x-capacity bound
        # must evict instead of growing forever.
        for i in range(10):
            with recorder.span("leak", parent=None) as span:
                recorder.add_device_events("cpu", make_events(1),
                                           anchor=0.0)
                # Abandon: drop the span without finishing by breaking
                # out via exception swallowed below.
                span.annotate(leaked=True)
                break
        # Direct accumulation path: open accums via add_device_events
        # with explicit unseen trace ids.
        for i in range(20):
            recorder.add_device_events("cpu", make_events(1),
                                       anchor=0.0, trace_id=f"t{i:04x}")
        stats = recorder.stats()
        assert stats["open_traces"] <= 4 * recorder.capacity
        assert recorder.dropped_traces > 0


class TestEnrichment:
    def test_attach_result_enriches_record(self):
        recorder = FlightRecorder()
        trace_id = run_trace(recorder)
        record = recorder.attach_result(
            trace_id, request_id=7, expression="q_crit",
            status="served", device="0:cpu", latency_s=0.01)
        assert record is recorder.record_for(trace_id)
        summary = record.summary()
        assert summary["request"] == 7
        assert summary["status"] == "served"
        assert summary["latency_s"] == 0.01

    def test_attach_result_unknown_trace_returns_none(self):
        recorder = FlightRecorder()
        assert recorder.attach_result("feedbeef", request_id=1) is None
        assert recorder.attach_result(None) is None

    def test_late_device_events_attach_to_sealed_record(self):
        recorder = FlightRecorder()
        trace_id = run_trace(recorder)
        recorder.add_device_events("gpu", make_events(2), anchor=0.0,
                                   trace_id=trace_id)
        record = recorder.record_for(trace_id)
        assert sum(len(b.events) for b in record.batches) == 2

    def test_note_plan_lands_on_record(self):
        recorder = FlightRecorder()
        with recorder.span("request", parent=None) as root:
            recorder.note_plan(("k",), disposition="memory-hit")
        record = recorder.record_for(root.trace_id)
        assert record.plan is not None
        assert record.plan.disposition == "memory-hit"
        assert record.summary()["plan"]["key"] == "('k',)"

    def test_device_digest_counts_by_category(self):
        recorder = FlightRecorder()
        trace_id = run_trace(recorder, events=3)
        digest = recorder.record_for(trace_id).device_digest()
        lanes = digest["cpu"]
        assert lanes["dev-write"]["count"] == 1
        assert lanes["kernel"]["count"] == 1
        assert lanes["dev-read"]["count"] == 1


class TestRetain:
    def test_default_drops_counters_and_full_lists(self):
        recorder = FlightRecorder()
        run_trace(recorder, children=1)
        recorder.counter("queue_depth", 3.0)
        assert recorder.counters == ()
        assert recorder.spans == ()

    def test_retain_keeps_base_tracer_lists(self):
        recorder = FlightRecorder(retain=True)
        run_trace(recorder, children=1, events=2)
        recorder.counter("queue_depth", 3.0)
        assert len(recorder.spans) == 2
        assert len(recorder.device_spans) == 2
        assert [c.name for c in recorder.counters] == ["queue_depth"]
        # The bounded ring still works alongside.
        assert recorder.stats()["records"] == 1

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)


class TestTraceView:
    def test_view_feeds_chrome_exporter(self):
        from repro.trace import chrome_trace_events

        recorder = FlightRecorder()
        trace_id = run_trace(recorder, children=2, events=3)
        record = recorder.record_for(trace_id)
        events = chrome_trace_events(recorder.trace_view(record))
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["args"].get("trace_id") for e in xs} == {trace_id}
        device = [e for e in xs if e["pid"] > 1]
        assert len(device) == 3
