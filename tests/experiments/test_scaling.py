"""Unit tests for the distributed scaling studies."""

import pytest

from repro.experiments import (format_scaling, strong_scaling,
                               weak_scaling)


class TestStrongScaling:
    def test_makespan_halves_with_doubled_ranks(self):
        points = strong_scaling(rank_counts=(128, 256))
        assert points[1].makespan == pytest.approx(
            points[0].makespan / 2, rel=0.05)

    def test_blocks_per_rank_accounting(self):
        points = strong_scaling(rank_counts=(64, 256))
        assert points[0].blocks_per_rank == 48
        assert points[1].blocks_per_rank == 12
        assert all(p.total_blocks == 3072 for p in points)

    def test_non_divisor_rejected(self):
        with pytest.raises(ValueError, match="divide"):
            strong_scaling(rank_counts=(100,))

    def test_no_rank_fails(self):
        points = strong_scaling(rank_counts=(256,))
        assert points[0].failed_ranks == 0


class TestWeakScaling:
    def test_flat_makespan(self):
        points = weak_scaling(rank_counts=(32, 128), blocks_per_rank=12)
        assert points[1].makespan == pytest.approx(points[0].makespan,
                                                   rel=0.05)

    def test_problem_grows_with_ranks(self):
        points = weak_scaling(rank_counts=(32, 64), blocks_per_rank=4)
        assert points[1].total_blocks == 2 * points[0].total_blocks


class TestFormatting:
    def test_strong_table(self):
        points = strong_scaling(rank_counts=(128, 256))
        table = format_scaling(points, kind="strong")
        assert "strong scaling" in table
        assert "efficiency" in table
        assert len(table.splitlines()) == 4

    def test_weak_table(self):
        points = weak_scaling(rank_counts=(32, 64))
        assert "weak scaling" in format_scaling(points, kind="weak")
