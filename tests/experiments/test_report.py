"""Tests for sweep records and the paper-style report formatting."""

import pytest

from repro.experiments import (EXPR_SHORT, format_fig_series,
                               format_table1, format_table2, run_case,
                               run_sweep)
from repro.workloads import TABLE1_SUBGRIDS


@pytest.fixture(scope="module")
def mini_sweep():
    """A reduced sweep (2 grids) exercising all formatting paths."""
    return run_sweep(grids=TABLE1_SUBGRIDS[:2])


class TestRunCase:
    def test_case_fields(self):
        case = run_case("velocity_magnitude", TABLE1_SUBGRIDS[0], "cpu",
                        "fusion")
        assert case.n_cells == 9_437_184
        assert not case.failed
        assert case.runtime > 0
        assert (case.dev_writes, case.dev_reads,
                case.kernel_execs) == (3, 1, 1)

    def test_reference_case(self):
        case = run_case("q_criterion", TABLE1_SUBGRIDS[0], "gpu",
                        "reference")
        assert case.executor == "reference"
        assert case.kernel_execs == 1

    def test_failed_case_has_no_runtime(self):
        case = run_case("q_criterion", TABLE1_SUBGRIDS[-1], "gpu",
                        "staged")
        assert case.failed
        assert case.runtime is None


class TestFormatting:
    def test_table1_has_all_rows(self):
        table = format_table1()
        assert table.count("192 x 192") == 12
        assert "113,246,208" in table

    def test_table2_nine_rows(self, mini_sweep):
        table = format_table2(mini_sweep)
        # header + separator + 9 strategy rows (reference excluded)
        assert len(table.splitlines()) == 11
        assert "Reference" not in table

    def test_fig_series_runtime(self, mini_sweep):
        panel = format_fig_series(mini_sweep, metric="runtime",
                                  expression="q_criterion")
        assert "Q-Crit" in panel
        assert "cpu/fusion" in panel and "gpu/roundtrip" in panel
        assert len([l for l in panel.splitlines()
                    if l.strip() and l.lstrip()[0].isdigit()]) == 2

    def test_fig_series_memory_marks_failures(self):
        sweep = run_sweep(grids=TABLE1_SUBGRIDS[-1:])
        panel = format_fig_series(sweep, metric="memory",
                                  expression="q_criterion")
        assert "*" in panel          # failed GPU cases flagged
        assert "3.0 GiB" in panel    # the green line

    def test_runtime_panel_marks_failures(self):
        sweep = run_sweep(grids=TABLE1_SUBGRIDS[-1:])
        panel = format_fig_series(sweep, metric="runtime",
                                  expression="q_criterion")
        assert "FAIL" in panel

    def test_short_names(self):
        assert set(EXPR_SHORT.values()) == {"VelMag", "VortMag", "Q-Crit"}
