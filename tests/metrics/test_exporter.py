"""Tests for the metrics exposition endpoints: the JSON dump used by
``derive --metrics`` and the live HTTP server behind
``serve --metrics-port``, including an end-to-end scrape during a
running service."""

import json
import urllib.error
import urllib.request

import pytest

from repro.metrics import MetricsRegistry, MetricsServer, write_metrics_json
from repro.metrics.prometheus import CONTENT_TYPE


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_t_total", "t", ("device",)) \
        .labels(device="cpu").inc(5)
    registry.histogram("repro_t_seconds", "t", buckets=(1.0,)) \
        .observe(0.5)
    return registry


class TestWriteMetricsJson:
    def test_writes_snapshot_and_returns_it(self, registry, tmp_path):
        path = tmp_path / "metrics.json"
        returned = write_metrics_json(str(path), registry)
        on_disk = json.loads(path.read_text())
        assert on_disk == returned == registry.snapshot()
        assert on_disk["repro_t_total"]["samples"][0]["value"] == 5.0


class TestMetricsServer:
    def test_prometheus_endpoint(self, registry):
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(server.url("/metrics")) as reply:
                assert reply.status == 200
                assert reply.headers["Content-Type"] == CONTENT_TYPE
                body = reply.read().decode("utf-8")
        assert "# TYPE repro_t_total counter" in body
        assert 'repro_t_total{device="cpu"} 5' in body
        assert 'repro_t_seconds_bucket{le="+Inf"} 1' in body

    def test_json_endpoint_matches_snapshot(self, registry):
        with MetricsServer(registry) as server:
            with urllib.request.urlopen(
                    server.url("/metrics.json")) as reply:
                assert reply.headers["Content-Type"] == "application/json"
                body = json.loads(reply.read().decode("utf-8"))
        assert body == registry.snapshot()

    def test_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/other"))
            assert excinfo.value.code == 404

    def test_serves_live_state_not_a_cache(self, registry):
        with MetricsServer(registry) as server:
            first = urllib.request.urlopen(
                server.url("/metrics")).read().decode()
            registry.get("repro_t_total").labels(device="cpu").inc()
            second = urllib.request.urlopen(
                server.url("/metrics")).read().decode()
        assert 'repro_t_total{device="cpu"} 5' in first
        assert 'repro_t_total{device="cpu"} 6' in second

    def test_ephemeral_port_and_idempotent_close(self, registry):
        server = MetricsServer(registry)
        assert server.port > 0
        server.start()
        server.start()                      # no-op on a running server
        server.close()
        server.close()                      # idempotent


class TestServeIntegration:
    """The acceptance path: a service on a shared registry, scraped
    over HTTP mid-run (what ``serve --metrics-port`` wires up)."""

    def test_scrape_during_service_run(self):
        from repro.metrics import set_registry
        from repro.service import DerivedFieldService, default_cases, \
            run_load
        from repro.workloads import SubGrid, make_fields
        from tests.metrics.test_prometheus import parse_exposition

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            fields = make_fields(SubGrid(8, 8, 12), seed=0)
            cases = default_cases(fields, ["q_criterion"])
            with DerivedFieldService(devices=("cpu",),
                                     metrics_registry=registry) as service:
                with MetricsServer(registry) as server:
                    run_load(service, cases, clients=2, requests=10)
                    body = urllib.request.urlopen(
                        server.url("/metrics")).read().decode("utf-8")
        finally:
            set_registry(previous)

        families = parse_exposition(body)    # valid exposition text
        # Service, engine, and clsim families share the one endpoint.
        assert "repro_service_requests_submitted_total" in families
        assert "repro_service_requests_total" in families
        assert "repro_engine_execute_total" in families
        assert "repro_clsim_kernel_launches_total" in families
        served = [value for _, labels, value
                  in families["repro_service_requests_total"]["samples"]
                  if labels.get("outcome") == "served"]
        assert served == [10.0]
        submitted, = [value for _, _, value in families[
            "repro_service_requests_submitted_total"]["samples"]]
        assert submitted == 10.0
