"""Round-trip tests for the Prometheus text exposition.

A small parser reads the rendered text back into families/samples and
the tests compare that against the registry's own snapshot — so the
renderer's escaping, HELP/TYPE framing, and histogram expansion are
all checked as one contract instead of string-by-string.
"""

import math
import re

import pytest

from repro.metrics import MetricsRegistry
from repro.metrics.prometheus import CONTENT_TYPE, render_prometheus

SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})? (?P<value>\S+)$")
LABEL_RE = re.compile(r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)='
                      r'"(?P<value>(?:\\.|[^"\\])*)"(?:,|$)')


def _unescape(text):
    return (text.replace(r"\n", "\n").replace(r"\"", '"')
            .replace(r"\\", "\\"))


def parse_exposition(text):
    """Parse exposition text into ``{family: {"help", "type",
    "samples": [(name, labels_dict, float_value)]}}``."""
    families = {}
    current = None
    assert text.endswith("\n"), "exposition must end with a newline"
    for line in text.splitlines():
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            assert name not in families, f"duplicate HELP for {name}"
            current = families.setdefault(
                name, {"help": _unescape(help_text), "type": None,
                       "samples": []})
        elif line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, type_text = rest.partition(" ")
            assert name in families, "TYPE must follow its HELP"
            assert families[name]["type"] is None, f"duplicate TYPE {name}"
            families[name]["type"] = type_text
        else:
            match = SAMPLE_RE.match(line)
            assert match, f"unparseable sample line: {line!r}"
            labels = {m.group("name"): _unescape(m.group("value"))
                      for m in LABEL_RE.finditer(match.group("labels")
                                                 or "")}
            assert current is not None, "sample before any HELP"
            value = (math.inf if match.group("value") == "+Inf"
                     else float(match.group("value")))
            current["samples"].append((match.group("name"), labels,
                                       value))
    return families


def test_content_type_is_exposition_004():
    assert CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"


class TestScalarRoundTrip:
    def test_counter_and_gauge_values_survive(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "count",
                         ("device",)).labels(device="cpu").inc(3)
        registry.gauge("repro_t_bytes", "bytes").set(1.5)
        families = parse_exposition(render_prometheus(registry))
        assert families["repro_t_total"]["type"] == "counter"
        assert families["repro_t_total"]["samples"] == [
            ("repro_t_total", {"device": "cpu"}, 3.0)]
        assert families["repro_t_bytes"]["samples"] == [
            ("repro_t_bytes", {}, 1.5)]

    def test_integral_floats_render_as_integers(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t").inc(7)
        assert "repro_t_total 7\n" in render_prometheus(registry)

    def test_families_are_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "z")
        registry.counter("repro_a_total", "a")
        text = render_prometheus(registry)
        assert text.index("repro_a_total") < text.index("repro_z_total")


class TestEscaping:
    def test_label_values_with_specials_round_trip(self):
        awkward = 'GeForce "GTX"\\460\nrev2'
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t",
                         ("device",)).labels(device=awkward).inc()
        families = parse_exposition(render_prometheus(registry))
        (_, labels, value), = families["repro_t_total"]["samples"]
        assert labels == {"device": awkward}
        assert value == 1.0

    def test_help_with_newline_and_backslash_round_trips(self):
        help_text = "first\\line\nsecond"
        registry = MetricsRegistry()
        registry.counter("repro_t_total", help_text)
        families = parse_exposition(render_prometheus(registry))
        assert families["repro_t_total"]["help"] == help_text
        # The rendered text itself must stay one physical line.
        for line in render_prometheus(registry).splitlines():
            if line.startswith("# HELP"):
                assert "\n" not in line


class TestHistogramExpansion:
    @pytest.fixture
    def families(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_t_seconds", "time", ("expression",),
            buckets=(0.001, 0.01, 0.1))
        child = histogram.labels(expression="q_criterion")
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            child.observe(value)
        return parse_exposition(render_prometheus(registry))

    def test_bucket_sum_count_series(self, families):
        samples = families["repro_t_seconds"]["samples"]
        names = [name for name, _, _ in samples]
        assert names == (["repro_t_seconds_bucket"] * 4
                         + ["repro_t_seconds_sum",
                            "repro_t_seconds_count"])
        assert families["repro_t_seconds"]["type"] == "histogram"

    def test_buckets_cumulative_and_inf_equals_count(self, families):
        samples = families["repro_t_seconds"]["samples"]
        buckets = [(labels["le"], value) for name, labels, value
                   in samples if name.endswith("_bucket")]
        les = [le for le, _ in buckets]
        counts = [count for _, count in buckets]
        assert les == ["0.001", "0.01", "0.1", "+Inf"]
        assert counts == [1, 3, 4, 5]
        assert counts == sorted(counts)       # monotone non-decreasing
        count_value = next(v for name, _, v in samples
                           if name.endswith("_count"))
        assert counts[-1] == count_value == 5

    def test_bucket_le_coexists_with_family_labels(self, families):
        samples = families["repro_t_seconds"]["samples"]
        for name, labels, _ in samples:
            if name.endswith("_bucket"):
                assert labels["expression"] == "q_criterion"
                assert "le" in labels

    def test_sum_matches_observations(self, families):
        samples = families["repro_t_seconds"]["samples"]
        total = next(v for name, _, v in samples
                     if name.endswith("_sum"))
        assert total == pytest.approx(5.0605)


def test_round_trip_matches_snapshot():
    """The parsed exposition agrees with snapshot() family by family."""
    registry = MetricsRegistry()
    registry.counter("repro_a_total", "a", ("device",)) \
        .labels(device="cpu").inc(4)
    registry.gauge("repro_b_bytes", "b").set(12.0)
    registry.histogram("repro_c_seconds", "c", buckets=(1.0,)) \
        .observe(0.5)
    families = parse_exposition(render_prometheus(registry))
    snapshot = registry.snapshot()
    assert set(families) == set(snapshot)
    for name, family in snapshot.items():
        assert families[name]["type"] == family["type"]
        assert families[name]["help"] == family["help"]
    assert families["repro_a_total"]["samples"] == [
        ("repro_a_total", {"device": "cpu"}, 4.0)]
    buckets = {labels["le"]: value for sample_name, labels, value
               in families["repro_c_seconds"]["samples"]
               if sample_name.endswith("_bucket")}
    assert buckets == {"1.0": 1, "+Inf": 1}
    assert buckets == snapshot["repro_c_seconds"]["samples"][0]["buckets"]
