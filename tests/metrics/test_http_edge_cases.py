"""HTTP edge cases for the metrics server: byte-accurate
Content-Length on non-ASCII bodies, JSON 404s, HEAD support, and the
``add_json_route`` status-pair contract."""

import json
import urllib.error
import urllib.request

import pytest

from repro.metrics import MetricsRegistry, MetricsServer


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    # Non-ASCII label value: "Content-Length" must count UTF-8 bytes,
    # not code points, or clients truncate the body.
    registry.counter("repro_t_total", "t", ("device",)) \
        .labels(device="gpu-β (Tesla™)").inc(2)
    return registry


def fetch(url, method="GET"):
    request = urllib.request.Request(url, method=method)
    with urllib.request.urlopen(request, timeout=10) as reply:
        return reply.status, dict(reply.headers), reply.read()


class TestContentLength:
    def test_counts_bytes_not_codepoints(self, registry):
        with MetricsServer(registry) as server:
            status, headers, body = fetch(server.url("/metrics"))
        assert status == 200
        assert int(headers["Content-Length"]) == len(body)
        text = body.decode("utf-8")
        assert "gpu-β (Tesla™)" in text
        assert len(body) > len(text)      # the label is truly non-ASCII

    def test_json_snapshot_content_length(self, registry):
        with MetricsServer(registry) as server:
            status, headers, body = fetch(server.url("/metrics.json"))
        assert int(headers["Content-Length"]) == len(body)
        snapshot = json.loads(body)
        assert snapshot["repro_t_total"]["samples"][0]["labels"][
            "device"] == "gpu-β (Tesla™)"


class TestNotFound:
    def test_404_body_is_json_listing_routes(self, registry):
        with MetricsServer(registry) as server:
            server.add_json_route("/healthz", lambda: {"healthy": True})
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/nope"))
        err = excinfo.value
        assert err.code == 404
        assert err.headers["Content-Type"] == "application/json"
        payload = json.loads(err.read())
        assert payload["path"] == "/nope"
        assert payload["routes"] == ["/healthz", "/metrics",
                                     "/metrics.json"]

    def test_query_string_stripped_before_routing(self, registry):
        with MetricsServer(registry) as server:
            status, _, body = fetch(server.url("/metrics.json?x=1"))
        assert status == 200
        assert json.loads(body)


class TestHead:
    def test_head_matches_get_headers_with_empty_body(self, registry):
        with MetricsServer(registry) as server:
            get_status, get_headers, get_body = \
                fetch(server.url("/metrics"))
            head_status, head_headers, head_body = \
                fetch(server.url("/metrics"), method="HEAD")
        assert head_status == get_status == 200
        assert head_body == b""
        assert head_headers["Content-Length"] \
            == get_headers["Content-Length"] == str(len(get_body))
        assert head_headers["Content-Type"] == get_headers["Content-Type"]

    def test_head_on_unknown_path_is_404(self, registry):
        with MetricsServer(registry) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                fetch(server.url("/nope"), method="HEAD")
        assert excinfo.value.code == 404


class TestJsonRoutes:
    def test_plain_payload_served_with_200(self, registry):
        with MetricsServer(registry) as server:
            server.add_json_route("/readyz", lambda: {"ready": True})
            status, headers, body = fetch(server.url("/readyz"))
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert json.loads(body) == {"ready": True}

    def test_status_pair_controls_the_response_code(self, registry):
        with MetricsServer(registry) as server:
            server.add_json_route(
                "/healthz", lambda: (503, {"healthy": False}))
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/healthz"))
        err = excinfo.value
        assert err.code == 503
        assert json.loads(err.read()) == {"healthy": False}

    def test_broken_provider_returns_500_json(self, registry):
        def boom():
            raise RuntimeError("route exploded")

        with MetricsServer(registry) as server:
            server.add_json_route("/debugz", boom)
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(server.url("/debugz"))
            # The listener survives a broken route.
            status, _, _ = fetch(server.url("/metrics.json"))
        err = excinfo.value
        assert err.code == 500
        payload = json.loads(err.read())
        assert payload["error"] == "RuntimeError"
        assert status == 200

    def test_route_path_must_be_absolute(self, registry):
        server = MetricsServer(registry)
        try:
            with pytest.raises(ValueError):
                server.add_json_route("healthz", lambda: {})
        finally:
            server.close()

    def test_routes_property_lists_mounts(self, registry):
        server = MetricsServer(registry)
        try:
            server.add_json_route("/healthz", lambda: {})
            assert server.routes == ("/healthz", "/metrics",
                                     "/metrics.json")
        finally:
            server.close()
