"""Tests for the benchmark-regression gate (``benchmarks/regress.py``)
and the snapshot validator (``benchmarks/validate_metrics.py``)."""

import json
import pathlib
import sys

import pytest

BENCHMARKS = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
if str(BENCHMARKS) not in sys.path:
    sys.path.insert(0, str(BENCHMARKS))

import regress            # noqa: E402
import validate_metrics   # noqa: E402

FAST_ARGS = ["--rounds", "2", "--requests", "8", "--clients", "2"]


class TestDiffGate:
    def _artifact(self, modeled, peak, wall):
        return {"cases": {"case.a": {"modeled_s": modeled,
                                     "peak_device_bytes": peak,
                                     "wall_s": wall}}}

    def test_clean_diff_passes(self):
        previous = self._artifact(1.0, 1000, 0.5)
        current = self._artifact(1.1, 1000, 0.55)
        hard, soft = regress.diff_gate(previous, current, 0.15)
        assert hard == [] and soft == []

    def test_modeled_regression_is_hard(self):
        hard, soft = regress.diff_gate(self._artifact(1.0, 1000, 0.5),
                                       self._artifact(1.2, 1000, 0.5),
                                       0.15)
        assert len(hard) == 1 and "modeled_s" in hard[0]
        assert soft == []

    def test_peak_bytes_regression_is_hard(self):
        hard, _ = regress.diff_gate(self._artifact(1.0, 1000, 0.5),
                                    self._artifact(1.0, 1300, 0.5),
                                    0.15)
        assert len(hard) == 1 and "peak_device_bytes" in hard[0]

    def test_wall_regression_is_soft(self):
        hard, soft = regress.diff_gate(self._artifact(1.0, 1000, 0.5),
                                       self._artifact(1.0, 1000, 0.9),
                                       0.15)
        assert hard == []
        assert len(soft) == 1 and "wall_s" in soft[0]

    def test_new_case_and_missing_metric_skipped(self):
        previous = {"cases": {}}
        current = self._artifact(99.0, 9999, 9.0)
        assert regress.diff_gate(previous, current, 0.15) == ([], [])
        previous = {"cases": {"case.a": {"modeled_s": None}}}
        assert regress.diff_gate(previous, current, 0.15) == ([], [])

    def test_improvement_never_fails(self):
        hard, soft = regress.diff_gate(self._artifact(1.0, 1000, 0.5),
                                       self._artifact(0.1, 100, 0.05),
                                       0.15)
        assert hard == [] and soft == []


class TestTrajectory:
    def test_numbering_and_ordering(self, tmp_path):
        for n in (3, 1, 10):
            (tmp_path / f"BENCH_{n}.json").write_text("{}")
        (tmp_path / "bench_cache.json").write_text("{}")   # ignored
        points = regress.trajectory(tmp_path)
        assert [n for n, _ in points] == [1, 3, 10]

    def test_empty_or_missing_dir(self, tmp_path):
        assert regress.trajectory(tmp_path / "absent") == []
        assert regress.trajectory(tmp_path) == []


class TestEndToEnd:
    def test_first_point_then_synthetic_slowdown_fails(self, tmp_path):
        """The acceptance demonstration: BENCH_1.json is produced, a
        clean overhead check passes (<=1%), and a synthetic 20%
        slowdown exits nonzero against it."""
        results = tmp_path / "results"
        argv = ["--results-dir", str(results)] + FAST_ARGS
        assert regress.main(argv + ["--check-overhead", "1.0"]) == 0

        artifact = json.loads((results / "BENCH_1.json").read_text())
        assert artifact["seq"] == 1
        assert artifact["registry_overhead"]["fraction"] <= 0.01
        case_names = set(artifact["cases"])
        assert {"cache.q_criterion.fusion", "service.q_criterion",
                "fig5.q_criterion.gpu.fusion"} <= case_names
        fusion = artifact["cases"]["cache.q_criterion.fusion"]
        assert fusion["wall_s"] > 0 and fusion["modeled_s"] > 0
        assert fusion["peak_device_bytes"] > 0
        assert fusion["events"] == {"dev_writes": 7, "dev_reads": 1,
                                    "kernel_execs": 1}

        assert regress.main(argv + ["--synthetic-slowdown", "0.2"]) == 1
        assert (results / "BENCH_2.json").exists()


class TestValidateMetrics:
    def _metered_snapshot(self):
        from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
        from repro.host.engine import DerivedFieldEngine
        from repro.metrics import MetricsRegistry, set_registry
        from repro.workloads import SubGrid, make_fields

        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            engine = DerivedFieldEngine(device="gpu", strategy="fusion")
            fields = make_fields(SubGrid(8, 8, 12), seed=0)
            inputs = {k: fields[k]
                      for k in EXPRESSION_INPUTS["q_criterion"]}
            compiled = engine.compile(EXPRESSIONS["q_criterion"])
            engine.execute(compiled, inputs)
        finally:
            set_registry(previous)
        return registry.snapshot()

    def test_metered_run_snapshot_is_valid(self):
        assert validate_metrics.validate(self._metered_snapshot()) == []

    def test_missing_required_family_reported(self):
        snapshot = self._metered_snapshot()
        del snapshot["repro_clsim_peak_bytes"]
        errors = validate_metrics.validate(snapshot)
        assert any("repro_clsim_peak_bytes" in e for e in errors)

    def test_bad_shapes_reported(self):
        snapshot = self._metered_snapshot()
        snapshot["repro_clsim_peak_bytes"]["type"] = "wat"
        snapshot["repro_engine_execute_duration_seconds"]["samples"][0][
            "buckets"]["+Inf"] = -1
        errors = validate_metrics.validate(snapshot)
        assert any("bad type" in e for e in errors)
        assert any("+Inf bucket != count" in e for e in errors)

    def test_empty_snapshot_invalid(self):
        assert validate_metrics.validate({}) != []
        assert validate_metrics.validate([]) != []

    def test_cli_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "metrics.json"
        path.write_text(json.dumps(self._metered_snapshot()))
        assert validate_metrics.main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out
