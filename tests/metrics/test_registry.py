"""Unit tests for the metrics registry core: instrument semantics,
label children, get-or-create registration, thread safety, and the
null twin / default-registry plumbing."""

import math
import threading

import pytest

from repro.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                           NULL_REGISTRY, exponential_buckets,
                           get_registry, set_registry)


class TestExponentialBuckets:
    def test_geometric_growth(self):
        assert exponential_buckets(1.0, 2.0, 4) == (1.0, 2.0, 4.0, 8.0)

    @pytest.mark.parametrize("start,factor,count",
                             [(0, 2, 3), (-1, 2, 3), (1, 1.0, 3),
                              (1, 0.5, 3), (1, 2, 0)])
    def test_bad_arguments(self, start, factor, count):
        with pytest.raises(ValueError):
            exponential_buckets(start, factor, count)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = MetricsRegistry().counter("repro_t_total", "t")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_increment_rejected(self):
        counter = MetricsRegistry().counter("repro_t_total", "t")
        with pytest.raises(ValueError):
            counter.inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("repro_t_bytes", "t")
        gauge.set(10.0)
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 13.0

    def test_set_max_is_high_water(self):
        gauge = MetricsRegistry().gauge("repro_t_bytes", "t")
        gauge.set_max(7.0)
        gauge.set_max(3.0)          # below: no effect
        assert gauge.value == 7.0
        gauge.set_max(9.0)
        assert gauge.value == 9.0


class TestHistogram:
    def test_count_sum_and_cumulative(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_seconds", "t", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(556.5)
        # A value equal to a bound lands in that bound's bucket.
        assert histogram.cumulative() == [
            (1.0, 2), (10.0, 3), (100.0, 4), (math.inf, 5)]

    def test_buckets_sorted_and_deduplicated(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_seconds", "t", buckets=(10.0, 1.0))
        assert histogram.buckets == (1.0, 10.0)
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_dup_seconds", "t",
                                        buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("repro_none_seconds", "t",
                                        buckets=())

    def test_explicit_inf_bound_is_collapsed(self):
        histogram = MetricsRegistry().histogram(
            "repro_t_seconds", "t", buckets=(1.0, math.inf))
        assert histogram.buckets == (1.0,)
        histogram.observe(99.0)
        assert histogram.cumulative() == [(1.0, 0), (math.inf, 1)]


class TestLabels:
    def test_children_are_independent_and_cached(self):
        counter = MetricsRegistry().counter("repro_t_total", "t",
                                            ("device",))
        cpu = counter.labels(device="cpu")
        gpu = counter.labels(device="gpu")
        cpu.inc(3)
        assert counter.labels(device="cpu") is cpu
        assert cpu.value == 3.0 and gpu.value == 0.0

    def test_wrong_label_set_rejected(self):
        counter = MetricsRegistry().counter("repro_t_total", "t",
                                            ("device",))
        with pytest.raises(ValueError):
            counter.labels(host="x")
        with pytest.raises(ValueError):
            counter.labels(device="cpu", extra="y")

    def test_labeled_family_has_no_default_value(self):
        counter = MetricsRegistry().counter("repro_t_total", "t",
                                            ("device",))
        with pytest.raises(ValueError):
            counter.value

    def test_unlabeled_family_forwards_updates(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t").inc()
        registry.gauge("repro_t_bytes", "t").set_max(4.0)
        registry.histogram("repro_t_seconds", "t").observe(0.1)
        assert registry.value("repro_t_total") == 1.0
        assert registry.value("repro_t_bytes") == 4.0
        assert registry.get("repro_t_seconds").count == 1

    def test_bad_label_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("repro_t_total", "t", ("0bad",))


class TestRegistration:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        first = registry.counter("repro_t_total", "t", ("device",))
        again = registry.counter("repro_t_total", "ignored", ("device",))
        assert again is first

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t")
        with pytest.raises(ValueError):
            registry.gauge("repro_t_total", "t")

    def test_labelnames_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "t", ("device",))
        with pytest.raises(ValueError):
            registry.counter("repro_t_total", "t", ("host",))

    def test_bad_metric_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("0bad name", "t")

    def test_collect_is_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("repro_z_total", "t")
        registry.counter("repro_a_total", "t")
        assert [m.name for m in registry.collect()] == [
            "repro_a_total", "repro_z_total"]


class TestSnapshot:
    def test_scalar_and_histogram_shapes(self):
        registry = MetricsRegistry()
        registry.counter("repro_t_total", "count it",
                         ("device",)).labels(device="cpu").inc(2)
        registry.histogram("repro_t_seconds", "time it",
                           buckets=(1.0,)).observe(0.5)
        snapshot = registry.snapshot()
        family = snapshot["repro_t_total"]
        assert family["type"] == "counter"
        assert family["help"] == "count it"
        assert family["samples"] == [
            {"labels": {"device": "cpu"}, "value": 2.0}]
        histogram = snapshot["repro_t_seconds"]["samples"][0]
        assert histogram["count"] == 1
        assert histogram["sum"] == 0.5
        assert histogram["buckets"] == {"1.0": 1, "+Inf": 1}

    def test_value_reads(self):
        registry = MetricsRegistry()
        assert registry.value("repro_absent_total") == 0.0
        registry.counter("repro_t_total", "t",
                         ("device",)).labels(device="cpu").inc()
        assert registry.value("repro_t_total", device="cpu") == 1.0
        assert registry.value("repro_t_total", device="gpu") == 0.0
        with pytest.raises(ValueError):
            registry.value("repro_t_total")    # labels required


class TestThreadSafety:
    def test_concurrent_counter_increments(self):
        counter = MetricsRegistry().counter("repro_t_total", "t")
        threads = [threading.Thread(
            target=lambda: [counter.inc() for _ in range(5000)])
            for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8 * 5000

    def test_concurrent_histogram_observes(self):
        histogram = MetricsRegistry().histogram("repro_t_seconds", "t",
                                                buckets=(0.5,))
        threads = [threading.Thread(
            target=lambda: [histogram.observe(0.25) for _ in range(3000)])
            for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert histogram.count == 18000
        assert histogram.cumulative() == [(0.5, 18000), (math.inf, 18000)]

    def test_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        results = []

        def register():
            results.append(registry.counter("repro_t_total", "t"))

        threads = [threading.Thread(target=register) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(metric is results[0] for metric in results)


class TestNullRegistry:
    def test_full_api_is_noop(self):
        instrument = NULL_REGISTRY.counter("repro_t_total", "t")
        instrument.inc()
        instrument.labels(device="cpu").observe(1.0)
        instrument.set(5.0)
        instrument.set_max(5.0)
        instrument.dec()
        assert instrument.value == 0.0
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.collect() == []
        assert NULL_REGISTRY.value("repro_t_total", device="cpu") == 0.0


class TestDefaultRegistry:
    def test_set_registry_swaps_and_returns_previous(self):
        original = get_registry()
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert previous is original
            assert get_registry() is fresh
        finally:
            set_registry(original)
        assert get_registry() is original


def test_metric_classes_exported():
    assert Counter.TYPE == "counter"
    assert Gauge.TYPE == "gauge"
    assert Histogram.TYPE == "histogram"
