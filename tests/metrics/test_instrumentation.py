"""Acceptance tests for the subsystem instrumentation: the registry's
paper-facing families must agree exactly with the per-run reports the
``clsim`` layer already produces — the per-device peak-bytes gauge with
the Fig 6 high-water mark, and the transfer/kernel counters with the
Table II event counts, for all three strategies."""

import pytest

from repro.analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from repro.host.engine import DerivedFieldEngine
from repro.metrics import MetricsRegistry, set_registry
from repro.workloads import SubGrid, make_fields

# (Dev-W, Dev-R, K-Exe) for q_criterion, verbatim from Table II.
TABLE_II_QCRIT = {
    "roundtrip": (123, 57, 57),
    "staged": (7, 1, 67),
    "fusion": (7, 1, 1),
}


@pytest.fixture
def registry():
    """A fresh default registry; engines built inside the test bind to
    it, and the process-wide one is restored afterwards."""
    registry = MetricsRegistry()
    previous = set_registry(registry)
    yield registry
    set_registry(previous)


@pytest.fixture
def inputs():
    fields = make_fields(SubGrid(8, 8, 12), seed=0)
    return {k: fields[k] for k in EXPRESSION_INPUTS["q_criterion"]}


def warm_run(registry, inputs, strategy, device="gpu", backend=None):
    """Cold + warm q_criterion execute; returns (engine, warm report)."""
    engine = DerivedFieldEngine(device=device, strategy=strategy,
                                backend=backend)
    compiled = engine.compile(EXPRESSIONS["q_criterion"])
    engine.execute(compiled, inputs)
    report = engine.execute(compiled, inputs)
    assert report.cache is not None and report.cache.hit
    return engine, report


@pytest.mark.parametrize("strategy", sorted(TABLE_II_QCRIT))
class TestPaperFamilies:
    def test_peak_bytes_gauge_is_fig6_high_water(self, registry, inputs,
                                                 strategy):
        engine, report = warm_run(registry, inputs, strategy)
        device = engine.device_spec.name
        assert registry.value("repro_clsim_peak_bytes",
                              device=device) == report.mem_high_water
        assert report.mem_high_water > 0

    def test_event_counters_are_table2_counts(self, registry, inputs,
                                              strategy):
        engine, report = warm_run(registry, inputs, strategy)
        device = engine.device_spec.name
        writes, reads, kernels = TABLE_II_QCRIT[strategy]
        assert report.counts.as_row() == (writes, reads, kernels)
        # Counters are cumulative over the cold + warm runs; each run
        # contributes identical structural counts.
        assert registry.value("repro_clsim_transfers_total",
                              device=device,
                              direction="write") == 2 * writes
        assert registry.value("repro_clsim_transfers_total",
                              device=device,
                              direction="read") == 2 * reads
        assert registry.value("repro_clsim_kernel_launches_total",
                              device=device) == 2 * kernels

    def test_transfer_bytes_accumulate(self, registry, inputs,
                                       strategy):
        engine, report = warm_run(registry, inputs, strategy)
        device = engine.device_spec.name
        written = registry.value("repro_clsim_transfer_bytes_total",
                                 device=device, direction="write")
        read = registry.value("repro_clsim_transfer_bytes_total",
                              device=device, direction="read")
        assert written > 0
        # Every strategy reads the final result back once per run;
        # roundtrip reads every intermediate as well.
        result_bytes = 2 * report.output.nbytes
        if strategy == "roundtrip":
            assert read > result_bytes
        else:
            assert read == result_bytes


class TestEnginePhaseFamilies:
    def test_execute_counters_split_by_cache_disposition(self, registry,
                                                         inputs):
        warm_run(registry, inputs, "fusion")
        assert registry.value("repro_engine_execute_total",
                              cache="miss") == 1
        assert registry.value("repro_engine_execute_total",
                              cache="hit") == 1
        assert registry.value("repro_engine_execute_total",
                              cache="uncached") == 0
        histogram = registry.get("repro_engine_execute_duration_seconds")
        assert histogram.labels(cache="miss").count == 1
        assert histogram.labels(cache="hit").count == 1

    def test_compile_counted_once_for_cached_expression(self, registry,
                                                        inputs):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        engine.compile(EXPRESSIONS["q_criterion"])
        engine.compile(EXPRESSIONS["q_criterion"])   # expression-cache hit
        assert registry.value("repro_engine_compile_total") == 1
        assert registry.get(
            "repro_engine_compile_duration_seconds").count == 1

    def test_prepare_counted(self, registry, inputs):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        engine.prepare(EXPRESSIONS["q_criterion"], inputs)
        assert registry.value("repro_engine_prepare_total") == 1


class TestCacheAndPoolFamilies:
    def test_plancache_counters_accumulate(self, registry, inputs):
        warm_run(registry, inputs, "fusion")
        assert registry.value("repro_plancache_misses_total") == 1
        assert registry.value("repro_plancache_hits_total") == 1

    def test_pool_reuse_on_warm_run(self, registry, inputs):
        # Pinned to the interpreter backend: compiled plans never touch
        # device buffers, so only interpreter runs exercise the pool.
        engine, _ = warm_run(registry, inputs, "fusion",
                             backend="vectorized")
        device = engine.device_spec.name
        # The warm run acquires every buffer from the pool.
        assert registry.value("repro_clsim_pool_hits_total",
                              device=device) > 0
        assert registry.value("repro_clsim_pool_reused_bytes_total",
                              device=device) > 0

    def test_allocated_bytes_returns_to_pool_level(self, registry,
                                                   inputs):
        engine, _ = warm_run(registry, inputs, "fusion")
        device = engine.device_spec.name
        allocated = registry.value("repro_clsim_allocated_bytes",
                                   device=device)
        peak = registry.value("repro_clsim_peak_bytes", device=device)
        assert 0 <= allocated <= peak


def test_dry_run_events_are_counted(registry):
    """The observer hook covers the dry-run shape path too."""
    engine = DerivedFieldEngine(device="gpu", strategy="fusion",
                                dry_run=True)
    from repro.strategies.bindings import ArraySpec
    import numpy as np
    fields = make_fields(SubGrid(8, 8, 12), seed=0)
    shapes = {k: ArraySpec(fields[k].shape, np.dtype(fields[k].dtype))
              for k in EXPRESSION_INPUTS["q_criterion"]}
    compiled = engine.compile(EXPRESSIONS["q_criterion"])
    report = engine.execute(compiled, shapes)
    device = engine.device_spec.name
    assert registry.value("repro_clsim_kernel_launches_total",
                          device=device) == report.counts.kernel_execs
    assert registry.value("repro_clsim_transfers_total", device=device,
                          direction="write") == report.counts.dev_writes
