"""Headline paper-reproduction assertions: the shape of every evaluation
result (Sections V-A through V-D) must hold in the simulated system.

These run the full-paper-scale sweeps through the dry-run planner, so they
exercise exactly the code paths the benchmark harness reports from.
"""

import numpy as np
import pytest

from repro.analysis.vortex import EXPRESSIONS
from repro.clsim import GIB, NVIDIA_M2050_GPU
from repro.experiments import gpu_success_rate, run_sweep
from repro.workloads import TABLE1_SUBGRIDS


@pytest.fixture(scope="module")
def sweep():
    return run_sweep()


def series(sweep, expression, device, executor):
    rows = [r for r in sweep
            if (r.expression, r.device, r.executor)
            == (expression, device, executor)]
    return sorted(rows, key=lambda r: r.n_cells)


class TestFig5Runtime:
    def test_cpu_completes_all_cases(self, sweep):
        assert all(not r.failed for r in sweep if r.device == "cpu")

    def test_gpu_completes_about_106_of_144(self, sweep):
        ok, total = gpu_success_rate(sweep)
        assert total == 144
        # paper: 106 (73%); exact count depends on buffer padding, ghost
        # conventions, and driver reservations we do not model — the
        # study's conclusion holds for any close value
        assert 95 <= ok <= 115

    @pytest.mark.parametrize("expression", list(EXPRESSIONS))
    @pytest.mark.parametrize("device", ["cpu", "gpu"])
    def test_strategy_runtime_ordering(self, sweep, expression, device):
        """fusion < staged < roundtrip wherever all three completed."""
        fusion = series(sweep, expression, device, "fusion")
        staged = series(sweep, expression, device, "staged")
        rtrip = series(sweep, expression, device, "roundtrip")
        compared = 0
        for f, s, r in zip(fusion, staged, rtrip):
            if f.failed or s.failed or r.failed:
                continue
            assert f.runtime < s.runtime < r.runtime
            compared += 1
        assert compared > 0

    @pytest.mark.parametrize("expression", list(EXPRESSIONS))
    def test_fusion_competitive_with_reference(self, sweep, expression):
        """Fig 5's money result: fusion approaches the hand-written
        kernel (within 15% modeled runtime on the GPU)."""
        fusion = series(sweep, expression, "gpu", "fusion")
        ref = series(sweep, expression, "gpu", "reference")
        for f, r in zip(fusion, ref):
            if f.failed or r.failed:
                continue
            assert f.runtime <= r.runtime * 1.15

    def test_gpu_faster_or_on_par_with_cpu(self, sweep):
        """Paper: 'The GPU ran faster or on-par with the CPU for all test
        cases that the GPU executed successfully.'"""
        for expression in EXPRESSIONS:
            for executor in ("roundtrip", "staged", "fusion", "reference"):
                cpu = series(sweep, expression, "cpu", executor)
                gpu = series(sweep, expression, "gpu", executor)
                for c, g in zip(cpu, gpu):
                    if g.failed:
                        continue
                    assert g.runtime <= c.runtime * 1.05

    def test_runtime_grows_with_data_size(self, sweep):
        for expression in EXPRESSIONS:
            rows = [r for r in series(sweep, expression, "cpu", "fusion")]
            runtimes = [r.runtime for r in rows]
            assert runtimes == sorted(runtimes)

    def test_roundtrip_dominated_by_transfers(self, sweep):
        """Section V-D: roundtrip's runtime is dominated by host-device
        traffic."""
        from repro.experiments.sweep import _plan_case
        result = _plan_case("q_criterion", TABLE1_SUBGRIDS[0], "gpu",
                            "roundtrip")
        timing = result.timing
        transfers = timing.host_to_device + timing.device_to_host
        assert transfers > 2 * timing.kernel_exec


class TestFig6Memory:
    def test_memory_grows_linearly(self, sweep):
        rows = series(sweep, "q_criterion", "cpu", "fusion")
        mems = np.array([r.mem_high_water for r in rows], dtype=float)
        cells = np.array([r.n_cells for r in rows], dtype=float)
        ratio = mems / cells
        assert ratio.std() / ratio.mean() < 0.01

    def test_staged_has_steepest_slope(self, sweep):
        for expression in ("vorticity_magnitude", "q_criterion"):
            by_executor = {
                executor: series(sweep, expression, "cpu", executor)[-1]
                for executor in ("roundtrip", "staged", "fusion")}
            assert by_executor["staged"].mem_high_water \
                > by_executor["roundtrip"].mem_high_water \
                > by_executor["fusion"].mem_high_water

    def test_roundtrip_least_memory_for_velmag(self, sweep):
        rows = {executor: series(sweep, "velocity_magnitude", "cpu",
                                 executor)[-1]
                for executor in ("roundtrip", "staged", "fusion",
                                 "reference")}
        least = min(rows.values(), key=lambda r: r.mem_high_water)
        assert least.executor == "roundtrip"

    def test_fusion_matches_reference_memory(self, sweep):
        """'Both fusion and the OpenCL reference kernel showed the same
        memory usage.'"""
        for expression in EXPRESSIONS:
            fusion = series(sweep, expression, "cpu", "fusion")
            ref = series(sweep, expression, "cpu", "reference")
            for f, r in zip(fusion, ref):
                assert f.mem_high_water == r.mem_high_water

    def test_failures_exactly_at_3gib_line(self, sweep):
        """A GPU case fails iff the CPU twin's high-water mark (the true
        requirement) exceeds the M2050's global memory."""
        limit = NVIDIA_M2050_GPU.global_mem_bytes
        for gpu_row in (r for r in sweep if r.device == "gpu"):
            cpu_row = next(
                r for r in sweep
                if (r.expression, r.executor, r.grid, r.device)
                == (gpu_row.expression, gpu_row.executor, gpu_row.grid,
                    "cpu"))
            assert gpu_row.failed == (cpu_row.mem_high_water > limit)


class TestTable2Integration:
    def test_counts_constant_across_sizes_and_devices(self, sweep):
        """Table II counts are size- and device-independent (failed GPU
        cases abort mid-execution, so only completed cases count)."""
        for expression in EXPRESSIONS:
            for executor in ("roundtrip", "staged", "fusion"):
                triples = {(r.dev_writes, r.dev_reads, r.kernel_execs)
                           for r in sweep
                           if (r.expression, r.executor)
                           == (expression, executor) and not r.failed}
                assert len(triples) == 1


class TestSectionVD:
    def test_cpu_staged_beats_available_gpu_roundtrip(self, sweep):
        """'the CPU using staged was faster than the available GPU
        roundtrip option' — at sizes where GPU staged failed."""
        found = False
        for expression in ("vorticity_magnitude", "q_criterion"):
            gpu_staged = series(sweep, expression, "gpu", "staged")
            gpu_rtrip = series(sweep, expression, "gpu", "roundtrip")
            cpu_staged = series(sweep, expression, "cpu", "staged")
            for gs, gr, cs in zip(gpu_staged, gpu_rtrip, cpu_staged):
                if gs.failed and not gr.failed:
                    assert cs.runtime < gr.runtime
                    found = True
        assert found
