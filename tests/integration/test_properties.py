"""Cross-cutting property-based suites (hypothesis) on system invariants
that span modules: CSE semantics, chunking reassembly, MPI collectives,
timing/memory accounting, and the trace export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clsim import CLEnvironment, Event, EventKind, EventLog
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.host import DerivedFieldEngine
from repro.par import run_world
from repro.strategies import FusionStrategy
from repro.strategies.chunking import (assemble, chunk_bindings,
                                       discover_mesh, plan_chunks)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


# --- CSE ---------------------------------------------------------------------

@st.composite
def small_programs(draw):
    ops = ["+", "-", "*"]
    terms = ["u", "v", "u", "v"]
    n = draw(st.integers(2, 6))
    expr = draw(st.sampled_from(terms))
    for _ in range(n):
        op = draw(st.sampled_from(ops))
        term = draw(st.sampled_from(terms))
        expr = f"({expr} {op} {term})"
    return f"a = {expr} + {expr}"


@given(small_programs())
@settings(max_examples=40, deadline=None)
def test_cse_is_idempotent(text):
    spec, _ = lower(parse(text))
    once = eliminate_common_subexpressions(spec)
    twice = eliminate_common_subexpressions(once)
    assert len(twice) == len(once)
    assert [n.signature() for n in twice.nodes] \
        == [n.signature() for n in once.nodes]


@given(small_programs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_cse_preserves_semantics(text, seed):
    rng = np.random.default_rng(seed)
    fields = {"u": rng.standard_normal(16),
              "v": rng.standard_normal(16)}
    with_cse = DerivedFieldEngine(cse=True).derive(text, fields)
    without = DerivedFieldEngine(cse=False).derive(text, fields)
    np.testing.assert_allclose(with_cse, without, rtol=1e-12, atol=1e-12)


@given(small_programs())
@settings(max_examples=40, deadline=None)
def test_cse_never_grows_the_network(text):
    spec, _ = lower(parse(text))
    optimized = eliminate_common_subexpressions(spec)
    assert len(optimized) <= len(spec)
    # and the output survives
    assert Network(optimized).output_ids()


# --- chunking ----------------------------------------------------------------

@given(st.integers(2, 24), st.integers(2, 6), st.integers(2, 6),
       st.integers(1, 8), st.integers(0, 2),
       st.integers(0, 2**31 - 1))
@settings(max_examples=60, deadline=None)
def test_chunk_assemble_identity(ni, nj, nk, n_chunks, halo, seed):
    """Slicing any mesh into slabs (any count, any halo) and reassembling
    the owned regions is the identity."""
    rng = np.random.default_rng(seed)
    n = ni * nj * nk
    bindings = {
        "f": rng.standard_normal(n),
        "dims": np.array([ni, nj, nk], np.int32),
        "x": np.linspace(0, 1, ni + 1),
        "y": np.linspace(0, 1, nj + 1),
        "z": np.linspace(0, 1, nk + 1),
    }
    layout = discover_mesh(bindings, n)
    chunks = plan_chunks(layout, n_chunks, halo)
    pieces = [(c, chunk_bindings(bindings, layout, c)["f"])
              for c in chunks]
    np.testing.assert_array_equal(assemble(pieces, layout), bindings["f"])


# --- MPI collectives ----------------------------------------------------------

@given(st.lists(st.integers(-1000, 1000), min_size=1, max_size=6))
@settings(max_examples=30, deadline=None)
def test_allreduce_equals_serial_reduction(values):
    results = run_world(len(values),
                        lambda comm: comm.allreduce(values[comm.rank]))
    assert results == [sum(values)] * len(values)


@given(st.lists(finite, min_size=1, max_size=5))
@settings(max_examples=30, deadline=None)
def test_allgather_is_identical_everywhere(values):
    results = run_world(len(values),
                        lambda comm: comm.allgather(values[comm.rank]))
    assert all(r == values for r in results)


# --- accounting invariants ------------------------------------------------------

@given(st.integers(4, 64), st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_memory_returns_to_zero_after_execution(n, seed):
    """Every strategy must release every buffer: no leaks for any input."""
    rng = np.random.default_rng(seed)
    fields = {"u": rng.standard_normal(n), "v": rng.standard_normal(n)}
    spec, _ = lower(parse("a = u * v + u"))
    net = Network(eliminate_common_subexpressions(spec))
    for strategy_name in ("roundtrip", "staged", "fusion"):
        from repro.strategies import get_strategy
        env = CLEnvironment("gpu")
        get_strategy(strategy_name).execute(net, fields, env)
        assert env.mem_in_use == 0, strategy_name


@given(st.lists(
    st.tuples(st.sampled_from(list(EventKind)),
              st.integers(0, 10**6),
              st.floats(0, 1, allow_nan=False)),
    max_size=20))
def test_chrome_trace_is_gapless_and_ordered(entries):
    log = EventLog()
    for kind, nbytes, seconds in entries:
        log.record(Event(kind, "e", nbytes, seconds))
    trace = log.to_chrome_trace()
    assert len(trace) == len(entries)
    # Gapless in-order queue: each event starts where its predecessor
    # ended.  Offsets are stamped in seconds and exported in µs, so the
    # comparison is exact up to that unit conversion's rounding.
    cursor = 0.0
    for item in trace:
        assert item["ts"] == pytest.approx(cursor, rel=1e-9, abs=1e-6)
        cursor = item["ts"] + item["dur"]
    total = log.sim_time() * 1e6
    assert cursor == pytest.approx(total, rel=1e-9, abs=1e-6)
