"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestDerive:
    def test_named_expression(self, capsys):
        assert main(["derive", "velocity_magnitude",
                     "--grid", "6x6x6"]) == 0
        out = capsys.readouterr().out
        assert "derived 'v_mag'" in out
        assert "Dev-W=3 Dev-R=1 K-Exe=1" in out

    def test_inline_expression(self, capsys):
        assert main(["derive", "a = u + v", "--grid", "4x4x4",
                     "--strategy", "roundtrip"]) == 0
        assert "derived 'a'" in capsys.readouterr().out

    def test_show_kernels(self, capsys):
        assert main(["derive", "a = sqrt(abs(u))", "--grid", "4x4x4",
                     "--show-kernels"]) == 0
        assert "__kernel" in capsys.readouterr().out

    def test_bad_grid(self):
        with pytest.raises(SystemExit):
            main(["derive", "a = u", "--grid", "banana"])

    def test_strategy_choices(self, capsys):
        for strategy in ("staged", "streaming", "multi-device"):
            assert main(["derive", "q_criterion", "--grid", "6x6x8",
                         "--strategy", strategy,
                         "--device", "gpu"]) == 0


class TestPlan:
    def test_failing_case_exits_nonzero(self, capsys):
        code = main(["plan", "q_criterion", "--table1-row", "12",
                     "--device", "gpu", "--strategy", "staged"])
        assert code == 1
        assert "FAILED" in capsys.readouterr().out

    def test_passing_case(self, capsys):
        code = main(["plan", "velocity_magnitude", "--table1-row", "1",
                     "--device", "gpu", "--strategy", "fusion"])
        assert code == 0
        out = capsys.readouterr().out
        assert "modeled runtime" in out
        assert "Dev-W=3" in out

    def test_custom_grid(self, capsys):
        assert main(["plan", "vorticity_magnitude",
                     "--grid", "64x64x64"]) == 0

    def test_inline_expression_rejected(self):
        with pytest.raises(SystemExit):
            main(["plan", "a = u + v"])


class TestRender:
    def test_writes_ppm(self, tmp_path, capsys):
        target = tmp_path / "out.ppm"
        assert main(["render", "velocity_magnitude", "--grid", "8x8x8",
                     "--output", str(target)]) == 0
        data = target.read_bytes()
        assert data.startswith(b"P6\n8 8\n255\n")
        assert len(data) == len(b"P6\n8 8\n255\n") + 8 * 8 * 3


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_repro_error_maps_to_exit_2(self, capsys):
        # an expression referencing a filter that does not exist
        code = main(["derive", "a = frobnicate(u)", "--grid", "4x4x4"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestCheck:
    def test_bit_exact_expression(self, capsys):
        assert main(["check", "q_criterion", "--grid", "4x5x6"]) == 0
        assert "bit-exact" in capsys.readouterr().out

    def test_all_strategies_check_clean(self, capsys):
        for strategy in ("roundtrip", "staged", "fusion"):
            assert main(["check", "vorticity_magnitude",
                         "--grid", "4x4x4", "--strategy", strategy]) == 0


class TestTrace:
    def test_writes_chrome_trace(self, tmp_path, capsys):
        import json
        target = tmp_path / "trace.json"
        assert main(["derive", "velocity_magnitude", "--grid", "4x4x4",
                     "--trace", str(target)]) == 0
        events = json.loads(target.read_text())["traceEvents"]
        device = [e for e in events if e["ph"] == "X" and e["pid"] > 1]
        by_cat = {}
        for e in device:
            by_cat[e["cat"]] = by_cat.get(e["cat"], 0) + 1
        # 3 writes + 1 kernel + 1 read (fusion, Table II).
        assert by_cat == {"dev-write": 3, "kernel": 1, "dev-read": 1}
        host = {e["name"] for e in events
                if e["ph"] == "X" and e["pid"] == 1}
        assert {"engine.compile", "engine.execute", "plan.launch"} <= host

    def test_profile_prints_phase_table(self, tmp_path, capsys):
        assert main(["derive", "velocity_magnitude", "--grid", "4x4x4",
                     "--profile"]) == 0
        out = capsys.readouterr().out
        assert "engine.execute" in out
        assert "device lanes (modeled)" in out
