"""Tests for the miniature VisIt host: datasets, ghost zones, contracts,
pipeline caching, the Python Expression filter, and rendering."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.errors import HostInterfaceError
from repro.host.visitsim import (BlockExtent, Contract, GlobalArrayReader,
                                 Pipeline, PythonExpressionFilter,
                                 RectilinearDataset, colormap, decompose,
                                 extract_block, pseudocolor)


@pytest.fixture
def global_ds(small_fields, small_grid):
    return RectilinearDataset(
        x=small_fields["x"], y=small_fields["y"], z=small_fields["z"],
        cell_fields={"u": small_fields["u"], "v": small_fields["v"],
                     "w": small_fields["w"]})


class TestDataset:
    def test_dims_from_coords(self, global_ds, small_grid):
        assert global_ds.dims == small_grid.dims
        assert global_ds.n_cells == small_grid.n_cells

    def test_field_access(self, global_ds):
        assert global_ds.field("u").shape == (global_ds.n_cells,)
        assert global_ds.field3d("u").shape == global_ds.dims

    def test_missing_field_rejected(self, global_ds):
        with pytest.raises(HostInterfaceError, match="no cell field"):
            global_ds.field("pressure")

    def test_add_field_size_checked(self, global_ds):
        with pytest.raises(HostInterfaceError, match="values"):
            global_ds.add_field("bad", np.zeros(3))

    def test_mesh_arrays(self, global_ds):
        mesh = global_ds.mesh_arrays()
        assert mesh["dims"].tolist() == list(global_ds.dims)
        assert len(mesh["x"]) == global_ds.dims[0] + 1

    def test_with_fields_copies(self, global_ds):
        out = global_ds.with_fields({"q": np.zeros(global_ds.n_cells)})
        assert "q" in out.cell_fields and "q" not in global_ds.cell_fields


class TestDecomposition:
    def test_decompose_counts(self):
        blocks = decompose((8, 8, 12), (4, 4, 6))
        assert len(blocks) == 8
        assert all(b.n_cells == 96 for b in blocks)

    def test_uneven_decomposition_rejected(self):
        with pytest.raises(HostInterfaceError, match="evenly"):
            decompose((10, 8, 8), (4, 4, 4))

    def test_blocks_tile_domain(self):
        blocks = decompose((4, 4, 4), (2, 2, 2))
        covered = np.zeros((4, 4, 4), dtype=int)
        for b in blocks:
            (i, j, k), (bi, bj, bk) = b.lo, b.dims
            covered[i:i + bi, j:j + bj, k:k + bk] += 1
        assert (covered == 1).all()


class TestGhostZones:
    def test_interior_block_gets_ghost_on_all_faces(self, small_fields):
        ds = RectilinearDataset(
            x=np.linspace(0, 1, 7), y=np.linspace(0, 1, 7),
            z=np.linspace(0, 1, 7),
            cell_fields={"f": np.arange(216.0)})
        block = extract_block(ds, BlockExtent((2, 2, 2), (2, 2, 2)),
                              ghost_width=1)
        assert block.ghost_lo == (1, 1, 1)
        assert block.ghost_hi == (1, 1, 1)
        assert block.dims == (4, 4, 4)

    def test_corner_block_truncates_ghost(self):
        ds = RectilinearDataset(
            x=np.linspace(0, 1, 5), y=np.linspace(0, 1, 5),
            z=np.linspace(0, 1, 5),
            cell_fields={"f": np.arange(64.0)})
        block = extract_block(ds, BlockExtent((0, 0, 0), (2, 2, 2)),
                              ghost_width=1)
        assert block.ghost_lo == (0, 0, 0)
        assert block.ghost_hi == (1, 1, 1)

    def test_ghost_values_match_neighbours(self):
        ds = RectilinearDataset(
            x=np.linspace(0, 1, 5), y=np.linspace(0, 1, 5),
            z=np.linspace(0, 1, 5),
            cell_fields={"f": np.arange(64.0)})
        block = extract_block(ds, BlockExtent((2, 0, 0), (2, 4, 4)),
                              ghost_width=1)
        np.testing.assert_array_equal(
            block.field3d("f")[0], ds.field3d("f")[1])

    def test_strip_ghost_restores_interior(self):
        ds = RectilinearDataset(
            x=np.linspace(0, 1, 7), y=np.linspace(0, 1, 7),
            z=np.linspace(0, 1, 7),
            cell_fields={"f": np.arange(216.0)})
        extent = BlockExtent((2, 2, 2), (2, 2, 2))
        block = extract_block(ds, extent, ghost_width=1).strip_ghost()
        assert block.dims == (2, 2, 2)
        np.testing.assert_array_equal(
            block.field3d("f"),
            ds.field3d("f")[2:4, 2:4, 2:4])

    def test_strip_ghost_noop_without_ghost(self, global_ds):
        assert global_ds.strip_ghost() is global_ds


class TestContracts:
    def test_merge(self):
        a = Contract(fields=frozenset({"u"}), ghost_zones=False)
        b = Contract(fields=frozenset({"v"}), ghost_zones=True,
                     ghost_width=1)
        merged = a.merge(b)
        assert merged.fields == {"u", "v"}
        assert merged.ghost_zones and merged.ghost_width == 1

    def test_expression_filter_requests_ghost_for_gradients(self):
        assert PythonExpressionFilter(
            vortex.Q_CRITERION).contract().ghost_zones

    def test_no_ghost_for_pointwise_expressions(self):
        contract = PythonExpressionFilter(
            vortex.VELOCITY_MAGNITUDE).contract()
        assert not contract.ghost_zones
        assert contract.fields == {"u", "v", "w"}


class TestPipeline:
    def make(self, global_ds, expression=vortex.VELOCITY_MAGNITUDE,
             extent=None):
        reader = GlobalArrayReader(lambda t: global_ds, extent=extent)
        return Pipeline(reader, [PythonExpressionFilter(expression)])

    def test_executes_and_attaches_field(self, global_ds):
        pipe = self.make(global_ds)
        result = pipe.execute(0)
        expected = vortex.velocity_magnitude_reference(
            global_ds.field("u"), global_ds.field("v"),
            global_ds.field("w"))
        np.testing.assert_allclose(result.field("v_mag"), expected)

    def test_execution_cached_per_timestep(self, global_ds):
        pipe = self.make(global_ds)
        pipe.execute(0)
        pipe.execute(0)
        assert pipe.executions == 1
        pipe.execute(1)
        assert pipe.executions == 2

    def test_invalidate_forces_reexecution(self, global_ds):
        pipe = self.make(global_ds)
        pipe.execute(0)
        pipe.invalidate()
        pipe.execute(0)
        assert pipe.executions == 2

    def test_missing_field_surfaces_cleanly(self, global_ds):
        del global_ds.cell_fields["w"]
        pipe = self.make(global_ds)
        with pytest.raises(HostInterfaceError, match="cannot supply"):
            pipe.execute(0)

    def test_block_pipeline_matches_global(self, global_ds):
        """Ghosted block execution of Q-criterion equals the global
        computation on the block's interior — the Fig 7 correctness
        property."""
        extent = BlockExtent((0, 0, 0), (3, 7, 8))
        pipe = self.make(global_ds, vortex.Q_CRITERION, extent)
        result = pipe.execute(0).strip_ghost()
        full = vortex.q_criterion_reference(
            global_ds.field("u"), global_ds.field("v"),
            global_ds.field("w"),
            np.asarray(global_ds.dims, np.int32),
            global_ds.x, global_ds.y, global_ds.z)
        np.testing.assert_allclose(
            result.field3d("q_crit"),
            full.reshape(global_ds.dims)[0:3], rtol=1e-12, atol=1e-12)


class TestRender:
    def test_colormap_bounds(self):
        rgb = colormap(np.array([0.0, 0.5, 1.0]))
        assert rgb.dtype == np.uint8
        assert rgb.shape == (3, 3)

    def test_colormap_clips(self):
        rgb = colormap(np.array([-1.0, 2.0]))
        np.testing.assert_array_equal(rgb[0], colormap(np.zeros(1))[0])
        np.testing.assert_array_equal(rgb[1], colormap(np.ones(1))[0])

    def test_pseudocolor_shapes(self, global_ds):
        for axis, shape in [(0, (7, 8)), (1, (6, 8)), (2, (6, 7))]:
            img = pseudocolor(global_ds, "u", axis=axis)
            assert img.shape == shape + (3,)

    def test_pseudocolor_bad_axis(self, global_ds):
        with pytest.raises(HostInterfaceError):
            pseudocolor(global_ds, "u", axis=3)

    def test_pseudocolor_bad_index(self, global_ds):
        with pytest.raises(HostInterfaceError, match="out of range"):
            pseudocolor(global_ds, "u", axis=2, index=99)

    def test_render_through_pipeline_reuses_execution(self, global_ds):
        reader = GlobalArrayReader(lambda t: global_ds)
        pipe = Pipeline(reader,
                        [PythonExpressionFilter(vortex.VELOCITY_MAGNITUDE)])
        pipe.render(0, field="v_mag", axis=0)
        pipe.render(0, field="v_mag", axis=1)
        assert pipe.executions == 1


class TestNaNRendering:
    from repro.host.visitsim import ThresholdFilter  # noqa: PLC0415

    def test_colormap_maps_nan_to_floor(self):
        rgb = colormap(np.array([np.nan, 0.0, 1.0]))
        np.testing.assert_array_equal(rgb[0], rgb[1])

    def test_pseudocolor_of_thresholded_field(self, global_ds):
        masked = self.ThresholdFilter("u", lower=0.0).execute(global_ds)
        img = pseudocolor(masked, "u", axis=2)
        assert img.dtype == np.uint8

    def test_all_nan_plane_renders_floor(self, global_ds):
        masked = self.ThresholdFilter("u", lower=1e9).execute(global_ds)
        img = pseudocolor(masked, "u", axis=2)
        assert (img == img[0, 0]).all()
