"""Tests for the extra pipeline operators (threshold, slice, statistics)."""

import numpy as np
import pytest

from repro.analysis.vortex import Q_CRITERION
from repro.errors import HostInterfaceError
from repro.host.visitsim import (GlobalArrayReader, Pipeline,
                                 PythonExpressionFilter,
                                 RectilinearDataset, SliceFilter,
                                 StatisticsFilter, ThresholdFilter)
from repro.workloads import SubGrid, make_fields


@pytest.fixture
def dataset(small_fields):
    return RectilinearDataset(
        x=small_fields["x"], y=small_fields["y"], z=small_fields["z"],
        cell_fields={"u": small_fields["u"], "v": small_fields["v"],
                     "w": small_fields["w"]})


class TestThreshold:
    def test_masks_out_of_range(self, dataset):
        out = ThresholdFilter("u", lower=0.0).execute(dataset)
        u = out.field("u")
        original = dataset.field("u")
        assert np.isnan(u[original < 0]).all()
        np.testing.assert_array_equal(u[original >= 0],
                                      original[original >= 0])

    def test_custom_fill_and_targets(self, dataset):
        out = ThresholdFilter("u", lower=0.0, fill=-999.0,
                              apply_to=("v",)).execute(dataset)
        v = out.field("v")
        assert (v[dataset.field("u") < 0] == -999.0).all()
        # u itself untouched when apply_to excludes it
        np.testing.assert_array_equal(out.field("u"), dataset.field("u"))

    def test_source_dataset_unmodified(self, dataset):
        before = dataset.field("u").copy()
        ThresholdFilter("u", lower=0.0).execute(dataset)
        np.testing.assert_array_equal(dataset.field("u"), before)

    def test_empty_range_rejected(self):
        with pytest.raises(HostInterfaceError, match="empty"):
            ThresholdFilter("u", lower=1.0, upper=0.0)

    def test_contract_requests_field(self):
        assert ThresholdFilter("q").contract().fields == {"q"}


class TestSlice:
    def test_slab_extraction(self, dataset):
        out = SliceFilter(axis=2, index=3, width=2).execute(dataset)
        ni, nj, _ = dataset.dims
        assert out.dims == (ni, nj, 2)
        np.testing.assert_array_equal(
            out.field3d("u"), dataset.field3d("u")[:, :, 3:5])
        np.testing.assert_array_equal(out.z, dataset.z[3:6])

    def test_width_clipped_at_end(self, dataset):
        nk = dataset.dims[2]
        out = SliceFilter(axis=2, index=nk - 1, width=5).execute(dataset)
        assert out.dims[2] == 1

    def test_bad_axis_and_index(self, dataset):
        with pytest.raises(HostInterfaceError):
            SliceFilter(axis=5, index=0)
        with pytest.raises(HostInterfaceError, match="out of range"):
            SliceFilter(axis=0, index=99).execute(dataset)


class TestStatistics:
    def test_records_history(self, dataset):
        stats = StatisticsFilter("u", "v")
        stats.execute(dataset)
        stats.execute(dataset)
        assert len(stats.history) == 2
        snapshot = stats.history[0]
        assert set(snapshot) == {"u", "v"}
        u = dataset.field("u")
        assert snapshot["u"].minimum == pytest.approx(u.min())
        assert snapshot["u"].positive_fraction == pytest.approx(
            (u > 0).mean())

    def test_ignores_nan(self, dataset):
        masked = ThresholdFilter("u", lower=0.0).execute(dataset)
        stats = StatisticsFilter("u")
        stats.execute(masked)
        assert stats.history[0]["u"].minimum >= 0.0

    def test_all_nan_rejected(self, dataset):
        masked = ThresholdFilter("u", lower=1e9).execute(dataset)
        with pytest.raises(HostInterfaceError, match="finite"):
            StatisticsFilter("u").execute(masked)


class TestComposedPipeline:
    def test_vortex_extraction_pipeline(self, small_fields, dataset):
        """The full analysis chain: derive Q, threshold to vortex cores,
        query statistics, slice for rendering."""
        stats = StatisticsFilter("q_crit")
        pipeline = Pipeline(
            GlobalArrayReader(lambda t: dataset),
            [PythonExpressionFilter(Q_CRITERION),
             ThresholdFilter("q_crit", lower=0.0),
             stats,
             SliceFilter(axis=2, index=2)])
        result = pipeline.execute(0)
        assert result.dims[2] == 1
        q = result.field("q_crit")
        finite = q[np.isfinite(q)]
        assert (finite >= 0).all()          # threshold applied
        assert stats.history[0]["q_crit"].positive_fraction >= 0.99
        # merged contract carried the ghost request upstream
        assert pipeline.contract().ghost_zones
