"""Unit tests for DerivedFieldEngine and the in-situ derive() interface."""

import numpy as np
import pytest

import repro
from repro.analysis import vortex
from repro.errors import HostInterfaceError
from repro.host import DerivedFieldEngine, derive, derive_report


class TestDerive:
    def test_returns_named_result(self, small_fields):
        out = derive("v2 = u * u", {"u": small_fields["u"]})
        assert set(out) == {"v2"}
        np.testing.assert_allclose(out["v2"], small_fields["u"] ** 2)

    def test_top_level_reexport(self, small_fields):
        out = repro.derive("v2 = u + u", {"u": small_fields["u"]})
        np.testing.assert_allclose(out["v2"], 2 * small_fields["u"])

    def test_strategy_and_device_selection(self, small_fields):
        for strategy in ("roundtrip", "staged", "fusion"):
            for device in ("cpu", "gpu"):
                out = derive(vortex.VELOCITY_MAGNITUDE, small_fields,
                             strategy=strategy, device=device)
                assert out["v_mag"].shape == small_fields["u"].shape

    def test_report_contains_instrumentation(self, small_fields):
        report = derive_report(vortex.VELOCITY_MAGNITUDE, small_fields,
                               strategy="fusion")
        assert report.counts.as_row() == (3, 1, 1)
        assert report.timing.total > 0
        assert report.mem_high_water > 0
        assert report.generated_sources

    def test_extra_fields_ignored(self, small_fields):
        out = derive("a = u * 2.0", small_fields)  # v, w, mesh unused
        np.testing.assert_allclose(out["a"], 2 * small_fields["u"])


class TestEngine:
    def test_compile_caches(self):
        engine = DerivedFieldEngine()
        c1 = engine.compile("a = u * u")
        c2 = engine.compile("a = u * u")
        assert c1 is c2

    def test_cache_respects_options(self):
        engine = DerivedFieldEngine()
        c1 = engine.compile("a = u * u")
        engine.commutative_cse = True
        c2 = engine.compile("a = u * u")
        assert c1 is not c2

    def test_required_inputs(self):
        engine = DerivedFieldEngine()
        compiled = engine.compile(vortex.VORTICITY_MAGNITUDE)
        assert set(compiled.required_inputs) == \
            {"u", "v", "w", "dims", "x", "y", "z"}

    def test_missing_fields_rejected(self, small_fields):
        engine = DerivedFieldEngine()
        with pytest.raises(HostInterfaceError, match="needs host fields"):
            engine.execute(vortex.VORTICITY_MAGNITUDE,
                           {"u": small_fields["u"]})

    def test_definition_script_round_trips(self):
        engine = DerivedFieldEngine()
        compiled = engine.compile("a = sqrt(u * u)")
        script = compiled.definition_script()
        assert "add_filter('sqrt'" in script or \
            'add_filter("sqrt"' in script

    def test_cse_disabled(self, small_fields):
        fast = DerivedFieldEngine(strategy="roundtrip")
        slow = DerivedFieldEngine(strategy="roundtrip", cse=False)
        text = "a = (u * v) + (u * v)"
        fast_report = fast.execute(text, small_fields)
        slow_report = slow.execute(text, small_fields)
        assert slow_report.counts.kernel_execs > \
            fast_report.counts.kernel_execs
        np.testing.assert_allclose(fast_report.output, slow_report.output)

    def test_dry_run_engine_plans(self, small_fields):
        from repro.strategies import ArraySpec
        engine = DerivedFieldEngine(device="gpu", strategy="fusion",
                                    dry_run=True)
        shapes = {k: ArraySpec(v.shape, v.dtype)
                  for k, v in small_fields.items()}
        report = engine.execute(vortex.Q_CRITERION, shapes)
        assert report.output is None
        assert report.counts.as_row() == (7, 1, 1)

    def test_dry_run_derive_rejected(self):
        engine = DerivedFieldEngine(dry_run=True)
        with pytest.raises(HostInterfaceError, match="dry_run"):
            engine.derive("a = u", {"u": np.ones(4)})

    def test_reexecution_per_timestep(self, small_fields, rng):
        """The in-situ pattern: compile once, execute per time step."""
        engine = DerivedFieldEngine()
        compiled = engine.compile("a = u * u")
        for _ in range(3):
            u = rng.standard_normal(64)
            out = engine.derive(compiled, {"u": u})
            np.testing.assert_allclose(out, u * u)

    def test_custom_strategy_instance(self, small_fields):
        from repro.strategies import FusionStrategy
        engine = DerivedFieldEngine(strategy=FusionStrategy())
        out = engine.derive("a = u + v",
                            {"u": small_fields["u"],
                             "v": small_fields["v"]})
        np.testing.assert_allclose(
            out, small_fields["u"] + small_fields["v"])
