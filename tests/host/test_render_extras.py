"""Tests for PPM output and the core facade / error hierarchy."""

import numpy as np
import pytest

from repro.errors import (CLError, CLOutOfMemoryError, ExpressionError,
                          HostInterfaceError, LexError, NetworkError,
                          ParseError, ReproError, StrategyError)
from repro.host.visitsim import save_ppm


class TestSavePPM:
    def test_round_trip(self, tmp_path):
        image = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        path = tmp_path / "img.ppm"
        save_ppm(image, path)
        data = path.read_bytes()
        header = b"P6\n3 2\n255\n"
        assert data.startswith(header)
        np.testing.assert_array_equal(
            np.frombuffer(data[len(header):], np.uint8).reshape(2, 3, 3),
            image)

    def test_bad_shape_rejected(self, tmp_path):
        with pytest.raises(HostInterfaceError):
            save_ppm(np.zeros((4, 4), np.uint8), tmp_path / "x.ppm")

    def test_bad_dtype_rejected(self, tmp_path):
        with pytest.raises(HostInterfaceError):
            save_ppm(np.zeros((4, 4, 3)), tmp_path / "x.ppm")


class TestCoreFacade:
    def test_facade_exports(self):
        from repro import core
        assert callable(core.derive)
        assert callable(core.parse)
        assert core.DEFAULT_REGISTRY is not None

    def test_facade_derive_works(self):
        from repro.core import derive
        out = derive("a = u * u", {"u": np.arange(3.0)})
        np.testing.assert_array_equal(out["a"], [0.0, 1.0, 4.0])

    def test_top_level_lazy_attributes(self):
        import repro
        assert callable(repro.derive)
        assert repro.DerivedFieldEngine is not None
        with pytest.raises(AttributeError):
            repro.nonexistent_thing


class TestErrorHierarchy:
    @pytest.mark.parametrize("exc", [
        ExpressionError, LexError, ParseError, NetworkError, CLError,
        CLOutOfMemoryError, StrategyError, HostInterfaceError])
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_lex_error_carries_position(self):
        err = LexError("bad", position=5, line=2)
        assert (err.position, err.line) == (5, 2)

    def test_oom_carries_sizes(self):
        err = CLOutOfMemoryError("full", requested=100, available=10)
        assert err.requested == 100 and err.available == 10

    def test_single_except_catches_everything(self):
        import repro
        try:
            repro.derive("a = ", {"u": np.ones(2)})
        except ReproError:
            pass  # ParseError caught through the base class
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")
