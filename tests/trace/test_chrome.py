"""Tests for the Chrome trace-event exporter."""

import json

from repro.clsim.events import Event, EventKind
from repro.trace import Tracer, chrome_trace_events, write_chrome_trace


def traced_run():
    """A small deterministic trace: host spans on a fake clock, one device
    lane, one counter."""
    ticks = iter(x * 0.001 for x in range(100))
    tracer = Tracer(clock=lambda: next(ticks))
    with tracer.span("engine.execute", category="engine") as root:
        with tracer.span("plan.launch", category="engine"):
            pass
        tracer.counter("queue_depth", 2)
    events = [
        Event(EventKind.DEV_WRITE, "u", 64, 1e-4, ts_seconds=0.0),
        Event(EventKind.KERNEL, "k_add", 64, 2e-4, ts_seconds=1e-4),
        Event(EventKind.DEV_READ, "out", 64, 1e-4, ts_seconds=3e-4),
    ]
    tracer.add_device_events("Test GPU", events, anchor=0.002,
                             lane="MainThread", trace_id=root.trace_id)
    return tracer, root


class TestChromeExport:
    def test_event_shapes(self):
        tracer, _ = traced_run()
        for event in chrome_trace_events(tracer):
            assert set(event) >= {"name", "ph", "ts", "pid", "tid"}
            if event["ph"] == "X":
                assert event["dur"] >= 0.0
            assert event["ts"] >= 0.0

    def test_metadata_first_then_sorted_ts(self):
        tracer, _ = traced_run()
        events = chrome_trace_events(tracer)
        phs = [e["ph"] for e in events]
        first_data = phs.index(next(p for p in phs if p != "M"))
        assert all(p == "M" for p in phs[:first_data])
        data = events[first_data:]
        assert all(data[i]["ts"] <= data[i + 1]["ts"]
                   for i in range(len(data) - 1))

    def test_host_and_device_pids_separate(self):
        tracer, _ = traced_run()
        events = chrome_trace_events(tracer)
        host = [e for e in events if e["ph"] == "X" and e["pid"] == 1]
        device = [e for e in events if e["ph"] == "X" and e["pid"] == 2]
        assert {e["name"] for e in host} == {"engine.execute", "plan.launch"}
        assert {e["name"] for e in device} == {"u", "k_add", "out"}
        names = {e["args"]["name"] for e in events
                 if e["ph"] == "M" and e["name"] == "process_name"}
        assert names == {"host", "device: Test GPU"}

    def test_one_tid_per_category_lane(self):
        tracer, _ = traced_run()
        events = chrome_trace_events(tracer)
        lanes = {e["args"]["name"]: (e["pid"], e["tid"]) for e in events
                 if e["ph"] == "M" and e["name"] == "thread_name"
                 and e["pid"] == 2}
        assert set(lanes) == {"MainThread/dev-write", "MainThread/kernel",
                              "MainThread/dev-read"}
        assert len({tid for _, tid in lanes.values()}) == 3

    def test_trace_id_joins_host_and_device_events(self):
        tracer, root = traced_run()
        events = chrome_trace_events(tracer)
        ids = {e["args"].get("trace_id") for e in events if e["ph"] == "X"}
        assert ids == {root.trace_id}

    def test_counter_event(self):
        tracer, _ = traced_run()
        counters = [e for e in chrome_trace_events(tracer)
                    if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "queue_depth"
        assert counters[0]["args"] == {"value": 2.0}

    def test_write_round_trips_json(self, tmp_path):
        tracer, _ = traced_run()
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, path)
        data = json.loads(path.read_text())
        assert set(data) == {"traceEvents", "displayTimeUnit"}
        assert len(data["traceEvents"]) == count
        assert count == len(chrome_trace_events(tracer))

    def test_empty_tracer_exports_host_meta_only(self):
        events = chrome_trace_events(Tracer())
        assert [e["ph"] for e in events] == ["M"]

    def test_nonjson_attrs_coerced(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s", weird=object()):
            pass
        write_chrome_trace(tracer, tmp_path / "t.json")   # must not raise
