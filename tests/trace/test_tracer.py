"""Tests for the span tracer core: nesting, ids, threads, null tracer."""

import threading

import pytest

from repro.clsim.events import Event, EventKind
from repro.trace import NULL_TRACER, NullTracer, Span, Tracer


class TestSpanTree:
    def test_root_span_mints_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as span:
            assert span.trace_id
            assert span.parent_id is None

    def test_children_inherit_trace_id(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
                with tracer.span("grandchild") as grand:
                    assert grand.trace_id == root.trace_id
                    assert grand.parent_id == child.span_id

    def test_sibling_roots_get_distinct_trace_ids(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_parent_none_forces_new_root(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            span = tracer.span("detached", parent=None)
            assert span.parent_id is None
            assert span.trace_id != outer.trace_id

    def test_explicit_cross_thread_parent(self):
        tracer = Tracer()
        root = tracer.span("request", parent=None).start()
        result = {}

        def worker():
            with tracer.span("execute", parent=root) as span:
                result["trace_id"] = span.trace_id
                result["parent_id"] = span.parent_id

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        root.finish()
        assert result["trace_id"] == root.trace_id
        assert result["parent_id"] == root.span_id

    def test_span_ids_unique(self):
        tracer = Tracer()
        ids = set()
        for _ in range(100):
            with tracer.span("s") as span:
                ids.add(span.span_id)
        assert len(ids) == 100

    def test_current_tracks_thread_local_stack(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_threads_nest_independently(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        seen = {}

        def worker(name):
            with tracer.span(name) as span:
                barrier.wait()
                seen[name] = tracer.current() is span
                barrier.wait()

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in ("t1", "t2")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"t1": True, "t2": True}


class TestSpanLifecycle:
    def test_recorded_only_on_finish(self):
        tracer = Tracer()
        span = tracer.span("open").start()
        assert tracer.spans == ()
        span.finish()
        assert [s.name for s in tracer.spans] == ["open"]

    def test_finish_idempotent(self):
        tracer = Tracer()
        span = tracer.span("once").start()
        span.finish()
        end = span.end_time
        span.finish()
        assert span.end_time == end
        assert len(tracer.spans) == 1

    def test_unstarted_finish_records_nothing(self):
        tracer = Tracer()
        tracer.span("never").finish()
        assert tracer.spans == ()

    def test_duration_nonnegative_and_monotonic_clock(self):
        tracer = Tracer()
        with tracer.span("timed") as span:
            pass
        assert span.end_time >= span.start_time
        assert span.duration >= 0.0

    def test_annotate_merges_attrs(self):
        tracer = Tracer()
        with tracer.span("s", device="cpu") as span:
            span.annotate(hit=True)
        assert span.attrs == {"device": "cpu", "hit": True}

    def test_exception_still_finishes_span(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert [s.name for s in tracer.spans] == ["boom"]
        assert tracer.current() is None


class TestCountersAndDeviceSpans:
    def test_counter_samples(self):
        tracer = Tracer()
        tracer.counter("queue_depth", 3)
        tracer.counter("queue_depth", 1)
        values = [(c.name, c.value) for c in tracer.counters]
        assert values == [("queue_depth", 3.0), ("queue_depth", 1.0)]

    def test_add_device_events_bridges_model_timeline(self):
        tracer = Tracer()
        events = [
            Event(EventKind.DEV_WRITE, "u", 64, 1e-4, ts_seconds=0.0),
            Event(EventKind.KERNEL, "k_add", 64, 2e-4, ts_seconds=1e-4),
        ]
        n = tracer.add_device_events("gpu0", events, anchor=10.0,
                                     lane="worker-1")
        assert n == 2
        write, kernel = tracer.device_spans
        assert write.device == "gpu0"
        assert write.lane == "worker-1/dev-write"
        assert write.start == pytest.approx(10.0)
        assert kernel.lane == "worker-1/kernel"
        assert kernel.start == pytest.approx(10.0 + 1e-4)
        assert kernel.duration == pytest.approx(2e-4)

    def test_device_events_inherit_current_trace_id(self):
        tracer = Tracer()
        events = [Event(EventKind.KERNEL, "k", 8, 1e-5, ts_seconds=0.0)]
        with tracer.span("run") as span:
            tracer.add_device_events("cpu", events, anchor=0.0)
        assert tracer.device_spans[0].trace_id == span.trace_id

    def test_clear_resets_all_records(self):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        tracer.counter("g", 1)
        tracer.clear()
        assert tracer.spans == ()
        assert tracer.device_spans == ()
        assert tracer.counters == ()


class TestNullTracer:
    def test_singleton_disabled(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)
        assert isinstance(NULL_TRACER, Tracer)   # substitutable everywhere

    def test_span_is_shared_noop_handle(self):
        a = NULL_TRACER.span("x", category="engine", attr=1)
        b = NULL_TRACER.span("y")
        assert a is b
        with a as span:
            span.annotate(k=2)
            span.finish()
        assert a.duration == 0.0

    def test_records_nothing(self):
        NULL_TRACER.counter("g", 5)
        events = [Event(EventKind.KERNEL, "k", 8, 1e-5, ts_seconds=0.0)]
        assert NULL_TRACER.add_device_events("cpu", events) == 0
        assert NULL_TRACER.spans == ()
        assert NULL_TRACER.device_spans == ()
        assert NULL_TRACER.counters == ()
        assert NULL_TRACER.current() is None
