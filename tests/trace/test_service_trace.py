"""End-to-end tracing acceptance: engine phases, device lanes that match
the execution report, and trace ids surfaced through the service."""

import pytest

from repro.analysis.vortex import EXPRESSIONS
from repro.host.engine import DerivedFieldEngine
from repro.service import DerivedFieldService
from repro.trace import Tracer, chrome_trace_events
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(8, 8, 8)


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=0)


def inputs_for(engine, text, fields):
    compiled = engine.compile(text)
    return compiled, {k: fields[k] for k in compiled.required_inputs}


class TestEngineTracing:
    def test_compile_and_execute_phases_recorded(self, fields):
        tracer = Tracer()
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    tracer=tracer)
        compiled, inputs = inputs_for(engine, EXPRESSIONS["q_criterion"],
                                      fields)
        engine.execute(compiled, inputs)
        names = {s.name for s in tracer.spans}
        assert {"engine.compile", "parse", "lower", "optimize",
                "engine.execute", "plan.lookup", "plan.launch"} <= names

    def test_device_lane_counts_match_report(self, fields):
        tracer = Tracer()
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    tracer=tracer)
        compiled, inputs = inputs_for(engine, EXPRESSIONS["q_criterion"],
                                      fields)
        report = engine.execute(compiled, inputs)
        by_cat = {}
        for dspan in tracer.device_spans:
            by_cat[dspan.category] = by_cat.get(dspan.category, 0) + 1
        assert by_cat.get("kernel", 0) == report.counts.kernel_execs
        assert by_cat.get("dev-write", 0) == report.counts.dev_writes
        assert by_cat.get("dev-read", 0) == report.counts.dev_reads

    def test_warm_execution_marks_cache_hit(self, fields):
        tracer = Tracer()
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    tracer=tracer)
        compiled, inputs = inputs_for(engine, EXPRESSIONS["q_criterion"],
                                      fields)
        engine.execute(compiled, inputs)
        engine.execute(compiled, inputs)
        execs = [s for s in tracer.spans if s.name == "engine.execute"]
        assert [s.attrs.get("cache_hit") for s in execs] == [False, True]

    def test_pool_counters_sampled(self, fields):
        tracer = Tracer()
        engine = DerivedFieldEngine(device="cpu", strategy="fusion",
                                    tracer=tracer)
        compiled, inputs = inputs_for(engine, "a = u + v", fields)
        engine.execute(compiled, inputs)
        assert {"pooled_bytes", "live_bytes"} <= \
            {c.name for c in tracer.counters}

    def test_null_tracer_default_records_nothing(self, fields):
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        compiled, inputs = inputs_for(engine, "a = u * v", fields)
        report = engine.execute(compiled, inputs)
        assert report.output is not None
        assert engine.tracer.spans == ()
        assert engine.tracer.enabled is False


class TestServiceTracing:
    def test_traced_request_end_to_end(self, fields):
        """The acceptance criterion: one traced service request yields a
        Chrome export with engine-phase spans and device lanes whose event
        counts equal the run's report counters, and its trace id shows up
        in the metrics snapshot."""
        tracer = Tracer()
        with DerivedFieldService(devices=("cpu",), strategy="fusion",
                                 tracer=tracer) as service:
            request = service.submit(EXPRESSIONS["q_criterion"], fields)
            report = request.result(timeout=30)
            snapshot = service.snapshot()

        assert request.trace_id
        # 1. trace id surfaced in the metrics snapshot.
        recent = snapshot["traces"]["recent"]
        assert snapshot["traces"]["recorded"] == 1
        assert [t["trace_id"] for t in recent] == [request.trace_id]
        assert recent[0]["request"] == request.id
        assert recent[0]["status"] == "served"

        events = chrome_trace_events(tracer)
        xs = [e for e in events if e["ph"] == "X"
              and e["args"].get("trace_id") == request.trace_id]
        assert xs, "no events joined to the request's trace id"
        # 2. engine-phase spans present on the request's trace.
        names = {e["name"] for e in xs}
        assert {"request", "queue.wait", "worker.execute",
                "engine.execute", "plan.launch"} <= names
        # 3. device-lane counts equal the execution report's counters.
        device = [e for e in xs if e["pid"] > 1]
        counted = {}
        for e in device:
            counted[e["cat"]] = counted.get(e["cat"], 0) + 1
        assert counted["kernel"] == report.counts.kernel_execs
        assert counted["dev-write"] == report.counts.dev_writes
        assert counted["dev-read"] == report.counts.dev_reads

    def test_requests_get_distinct_trace_ids(self, fields):
        tracer = Tracer()
        with DerivedFieldService(devices=("cpu",), strategy="fusion",
                                 tracer=tracer) as service:
            first = service.submit("a = u + v", fields)
            second = service.submit("a = u * w", fields)
            first.result(timeout=30)
            second.result(timeout=30)
        assert first.trace_id and second.trace_id
        assert first.trace_id != second.trace_id

    def test_queue_depth_counter_sampled(self, fields):
        tracer = Tracer()
        with DerivedFieldService(devices=("cpu",), strategy="fusion",
                                 tracer=tracer) as service:
            service.execute("a = u + v", fields, timeout=30)
        assert any(c.name == "queue_depth" for c in tracer.counters)

    def test_default_service_records_trace_ids_passively(self, fields):
        # The always-on flight recorder is the default tracer: even
        # without --trace-dir, every request carries a trace id and the
        # snapshot keeps trace records (DESIGN.md §12).
        with DerivedFieldService(devices=("cpu",), strategy="fusion") \
                as service:
            request = service.submit("a = u + v", fields)
            request.result(timeout=30)
            snapshot = service.snapshot()
        assert request.trace_id is not None
        assert snapshot["traces"]["recorded"] == 1
        assert snapshot["traces"]["recent"][0]["trace_id"] \
            == request.trace_id

    def test_obs_disabled_service_snapshot_has_no_trace_records(
            self, fields):
        with DerivedFieldService(devices=("cpu",), strategy="fusion",
                                 obs=False) as service:
            request = service.submit("a = u + v", fields)
            request.result(timeout=30)
            snapshot = service.snapshot()
        assert request.trace_id is None
        assert snapshot["traces"] == {"recorded": 0, "recent": []}

    def test_request_root_span_finishes_with_status(self, fields):
        tracer = Tracer()
        with DerivedFieldService(devices=("cpu",), strategy="fusion",
                                 tracer=tracer) as service:
            service.execute("a = u + v", fields, timeout=30)
        roots = [s for s in tracer.spans if s.name == "request"]
        assert len(roots) == 1
        assert roots[0].attrs["status"] == "served"
        assert roots[0].end_time is not None
