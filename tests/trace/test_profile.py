"""Tests for the text-profile exporter (self/total aggregation)."""

import pytest

from repro.clsim.events import Event, EventKind
from repro.trace import Tracer, aggregate_profile, format_profile


def fake_clock(ticks):
    it = iter(ticks)
    return lambda: next(it)


class TestAggregateProfile:
    def test_self_time_excludes_children(self):
        # root: 0 -> 10; child: 1 -> 4 (3s) — child finishes first.
        tracer = Tracer(clock=fake_clock([0.0, 0.0, 1.0, 4.0, 10.0]))
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        stats = {s.path: s for s in aggregate_profile(tracer)}
        assert stats[("root",)].total == pytest.approx(10.0)
        assert stats[("root",)].self_time == pytest.approx(7.0)
        assert stats[("root", "child")].self_time == pytest.approx(3.0)

    def test_same_name_under_different_parents_stays_distinct(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("step"):
                pass
        with tracer.span("b"):
            with tracer.span("step"):
                pass
        paths = {s.path for s in aggregate_profile(tracer)}
        assert ("a", "step") in paths
        assert ("b", "step") in paths

    def test_repeat_calls_aggregate(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("phase"):
                pass
        (entry,) = aggregate_profile(tracer)
        assert entry.count == 3

    def test_depth_first_parent_before_children(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        paths = [s.path for s in aggregate_profile(tracer)]
        assert paths.index(("outer",)) < paths.index(("outer", "inner"))


class TestFormatProfile:
    def test_empty(self):
        assert "(no spans recorded)" in format_profile(Tracer())

    def test_table_lists_phases_indented(self):
        tracer = Tracer()
        with tracer.span("engine.execute"):
            with tracer.span("plan.launch"):
                pass
        text = format_profile(tracer)
        assert "engine.execute" in text
        assert "  plan.launch" in text
        assert "%total" in text

    def test_device_lane_summary(self):
        tracer = Tracer()
        events = [
            Event(EventKind.KERNEL, "k_a", 100, 1e-3, ts_seconds=0.0),
            Event(EventKind.KERNEL, "k_b", 100, 2e-3, ts_seconds=1e-3),
            Event(EventKind.DEV_READ, "out", 400, 1e-3, ts_seconds=3e-3),
        ]
        tracer.add_device_events("dev0", events, anchor=0.0)
        text = format_profile(tracer)
        assert "device lanes (modeled)" in text
        assert "dev0 / kernel" in text
        assert "dev0 / dev-read" in text
