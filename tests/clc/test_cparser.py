"""Unit tests for the OpenCL C lexer/parser."""

import pytest

from repro.clc import clc_diagnostics, parse_clc
from repro.clc import ast
from repro.errors import ParseError


def parse_one(body: str, signature="inline double f(const double a)"):
    unit = parse_clc(f"{signature}\n{{ {body} }}")
    return unit.functions[0]


class TestFunctions:
    def test_inline_helper(self):
        fn = parse_one("return a;")
        assert not fn.is_kernel
        assert fn.return_type.base == "double"
        assert fn.params[0].name == "a"
        assert fn.params[0].type.const

    def test_kernel(self):
        unit = parse_clc(
            "__kernel void k(__global const double* u,\n"
            "                __global double* out)\n"
            "{ out[0] = u[0]; }")
        fn = unit.functions[0]
        assert fn.is_kernel
        assert fn.params[0].type.pointer
        assert fn.params[0].type.is_global
        assert fn.params[0].type.const
        assert not fn.params[1].type.const

    def test_empty_params(self):
        unit = parse_clc("inline int f() { return 1; }")
        assert unit.functions[0].params == ()

    def test_multiple_functions(self):
        unit = parse_clc(
            "inline double a() { return 1.0; }\n"
            "inline double b() { return a(); }")
        assert [f.name for f in unit.functions] == ["a", "b"]
        assert unit.function("b").name == "b"

    def test_comments_and_pragma_stripped(self):
        unit = parse_clc(
            "#pragma OPENCL EXTENSION cl_khr_fp64 : enable\n"
            "/* block\n comment */\n"
            "// line comment\n"
            "inline int f() { return 0; }")
        assert unit.functions[0].name == "f"


class TestStatements:
    def test_declaration_with_init(self):
        fn = parse_one("const double t = a * 2.0; return t;")
        decl = fn.body.statements[0]
        assert isinstance(decl, ast.Declaration)
        assert decl.type.const
        assert decl.declarators[0].name == "t"

    def test_multi_declarator(self):
        fn = parse_one("int i, j, k; return a;")
        decl = fn.body.statements[0]
        assert [d.name for d in decl.declarators] == ["i", "j", "k"]

    def test_if_else(self):
        fn = parse_one("if (a > 0.0) { return a; } else { return -a; }")
        stmt = fn.body.statements[0]
        assert isinstance(stmt, ast.If)
        assert stmt.otherwise is not None

    def test_dangling_else_binds_inner(self):
        fn = parse_one(
            "if (a > 0.0) if (a > 1.0) return 2.0; else return 1.0;"
            " return 0.0;")
        outer = fn.body.statements[0]
        assert outer.otherwise is None
        assert outer.then.otherwise is not None

    def test_assignment_statement(self):
        fn = parse_one("double t; t = a; return t;")
        assert isinstance(fn.body.statements[1], ast.Assign)

    def test_return_void(self):
        unit = parse_clc("inline void f() { return; }")
        assert unit.functions[0].body.statements[0].value is None


class TestExpressions:
    def expr_of(self, text):
        fn = parse_one(f"return {text};")
        return fn.body.statements[0].value

    def test_precedence(self):
        expr = self.expr_of("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_ternary(self):
        expr = self.expr_of("a > 0.0 ? 1.0 : 2.0")
        assert isinstance(expr, ast.Ternary)

    def test_cast(self):
        expr = self.expr_of("(int)a")
        assert isinstance(expr, ast.Cast)
        assert expr.type.base == "int"

    def test_cast_of_parenthesized(self):
        expr = self.expr_of("(long)(a + 1.0)")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.operand, ast.Binary)

    def test_vector_constructor(self):
        expr = self.expr_of("(double4)(a, 1.0, 2.0, 0.0)")
        assert isinstance(expr, ast.VectorConstruct)
        assert len(expr.components) == 4

    def test_member_access(self):
        expr = self.expr_of("a.s2")
        assert isinstance(expr, ast.Member)
        assert expr.name == "s2"

    def test_index_chain(self):
        expr = self.expr_of("a[0]")
        assert isinstance(expr, ast.Index)

    def test_address_of_and_deref(self):
        fn = parse_one("int i; f2(&i); *p = 1; return a;",
                       signature="inline double g(const double a, "
                                 "int* p)")
        call = fn.body.statements[1].expr
        assert isinstance(call.args[0], ast.AddressOf)
        assert isinstance(fn.body.statements[2].target, ast.Deref)

    def test_modulo_and_integer_literals(self):
        expr = self.expr_of("7 % 3")
        assert expr.op == "%"

    def test_float_literal_forms(self):
        for text, value in [("0.5", 0.5), ("1e3", 1000.0),
                            ("2.5f", 2.5), (".25", 0.25)]:
            assert self.expr_of(text) == ast.FloatLit(value)

    def test_syntax_error(self):
        with pytest.raises(ParseError):
            parse_clc("inline double f( { return 1; }")


class TestDiagnostics:
    def test_only_the_documented_conflict(self):
        diag = clc_diagnostics()
        # the classic cast-vs-parenthesized shift/reduce, resolved to
        # shift (correct C); everything else is conflict-free
        assert len(diag["conflicts"]) == 1
        assert diag["conflicts"][0].token == "RPAREN"
