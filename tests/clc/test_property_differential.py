"""Property-based differential testing: for randomly generated
expressions, the fused OpenCL kernel executed by the interpreter equals
the NumPy execution."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clc import Interpreter, parse_clc
from repro.host import DerivedFieldEngine

N = 12


@st.composite
def pointwise_exprs(draw, depth=0):
    if depth >= 3 or draw(st.booleans()):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            return draw(st.sampled_from(["u", "v"]))
        if choice == 1:
            return repr(round(draw(st.floats(-3, 3, allow_nan=False)), 2))
        return f"abs({draw(st.sampled_from(['u', 'v']))})"
    kind = draw(st.sampled_from(["+", "-", "*", "min", "max", "if"]))
    a = draw(pointwise_exprs(depth + 1))
    b = draw(pointwise_exprs(depth + 1))
    if kind in "+-*":
        return f"({a} {kind} {b})"
    if kind == "if":
        c = draw(pointwise_exprs(depth + 1))
        return f"(if ({c} > 0.0) then ({a}) else ({b}))"
    return f"{kind}({a}, {b})"


@given(pointwise_exprs(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_generated_kernel_differential(expr, seed):
    rng = np.random.default_rng(seed)
    fields = {"u": rng.standard_normal(N), "v": rng.standard_normal(N)}
    text = f"result = {expr} + 0.0 * u"
    engine = DerivedFieldEngine(device="cpu", strategy="fusion")
    compiled = engine.compile(text)
    inputs = {k: fields[k] for k in compiled.required_inputs}
    report = engine.execute(compiled, inputs)
    (source,) = report.generated_sources.values()

    from repro.strategies import plan_stages
    (stage,), _ = plan_stages(compiled.network)
    out = np.zeros(N)
    interp = Interpreter(parse_clc(source))
    interp.run_kernel("k_fused_s0",
                      [*(inputs[r] for r in stage.reads), out], N)
    np.testing.assert_allclose(out, report.output, rtol=1e-12,
                               atol=1e-12,
                               err_msg=f"program: {text}\n{source}")
