"""Differential testing: the generated OpenCL C, executed by the
interpreter, must compute exactly what the NumPy executors compute.

This is the strongest evidence the code generators emit *real* kernels:
every path — single-primitive wrappers, the hand-written reference
kernels, and the fusion generator's output for all three paper
expressions — is executed both ways and compared.
"""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clc import Interpreter, parse_clc
from repro.host import DerivedFieldEngine, derive_report
from repro.primitives import (ADD, DECOMPOSE, GRAD3D, MULT, SELECT, SQRT,
                              grad3d_numpy)
from repro.strategies.kernelgen import (ARRAY, CONST_BUF, KernelCache,
                                        VECTOR)
from repro.workloads import SubGrid, make_fields

GRID = SubGrid(4, 5, 6)
N = GRID.n_cells


@pytest.fixture(scope="module")
def fields():
    return make_fields(GRID, seed=33)


def run_clc(source, kernel_name, args, n):
    interp = Interpreter(parse_clc(source))
    interp.run_kernel(kernel_name, list(args), n)


class TestSinglePrimitiveKernels:
    def test_elementwise_add(self, fields):
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(ADD, [ARRAY, ARRAY])
        out = np.zeros(N)
        run_clc(kernel.source, kernel.name,
                [fields["u"], fields["v"], out], N)
        np.testing.assert_array_equal(out, fields["u"] + fields["v"])

    def test_const_buffer_broadcast(self, fields):
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(MULT, [CONST_BUF, ARRAY])
        const = np.array([0.5])
        out = np.zeros(N)
        run_clc(kernel.source, kernel.name, [const, fields["u"], out], N)
        np.testing.assert_array_equal(out, 0.5 * fields["u"])

    def test_sqrt(self, fields):
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(SQRT, [ARRAY])
        squares = fields["u"] ** 2
        out = np.zeros(N)
        run_clc(kernel.source, kernel.name, [squares, out], N)
        np.testing.assert_allclose(out, np.abs(fields["u"]), rtol=1e-15)

    def test_select(self, fields):
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(SELECT, [ARRAY, ARRAY, ARRAY])
        cond = (fields["u"] > 0).astype(np.float64)
        out = np.zeros(N)
        run_clc(kernel.source, kernel.name,
                [cond, fields["v"], fields["w"], out], N)
        np.testing.assert_array_equal(
            out, np.where(cond != 0, fields["v"], fields["w"]))

    def test_fill(self):
        cache = KernelCache(np.float64)
        kernel = cache.fill_kernel()
        out = np.zeros(1)
        run_clc(kernel.source, kernel.name, [3.25, out], 1)
        assert out[0] == 3.25

    def test_gradient_kernel(self, fields):
        """The 70-line stencil kernel, work-item by work-item, against the
        vectorized NumPy gradient."""
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(GRAD3D, [ARRAY] * 5)
        out = np.zeros((N, 4))
        run_clc(kernel.source, kernel.name,
                [fields["u"], fields["dims"], fields["x"], fields["y"],
                 fields["z"], out], N)
        expected = grad3d_numpy(fields["u"], fields["dims"], fields["x"],
                                fields["y"], fields["z"])
        np.testing.assert_allclose(out, expected, rtol=1e-14, atol=1e-14)

    def test_decompose_kernel(self, fields):
        cache = KernelCache(np.float64)
        kernel = cache.primitive_kernel(DECOMPOSE, [VECTOR], component=2)
        vectors = grad3d_numpy(fields["u"], fields["dims"], fields["x"],
                               fields["y"], fields["z"])
        out = np.zeros(N)
        run_clc(kernel.source, kernel.name, [vectors, 2, out], N)
        np.testing.assert_array_equal(out, vectors[:, 2])


class TestFusedKernels:
    @pytest.mark.parametrize("name", list(vortex.EXPRESSIONS))
    def test_fused_kernel_matches_numpy_execution(self, name, fields):
        """Execute the fusion generator's OpenCL C for each paper
        expression and compare with the framework's own output."""
        from repro.strategies import FusionStrategy, plan_stages
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        compiled = engine.compile(vortex.EXPRESSIONS[name])
        inputs = {k: fields[k] for k in compiled.required_inputs}
        report = engine.execute(compiled, inputs)

        strategy = FusionStrategy()
        bindings, n, dtype = strategy.prepare(compiled.network, inputs)
        (stage,), _ = plan_stages(compiled.network)
        (source,) = report.generated_sources.values()

        args = [inputs[node_id] if node_id in inputs
                else pytest.fail(f"unexpected read {node_id}")
                for node_id in stage.reads]
        out = np.zeros(n)
        kernel_name = f"k_fused_s{stage.index}"
        run_clc(source, kernel_name, [*args, out], n)
        np.testing.assert_allclose(out, report.output, rtol=1e-13,
                                   atol=1e-13)

    def test_fused_kernel_with_constants_and_select(self, fields):
        text = "a = if (u > 0.0) then (0.5 * u) else (u * u)"
        engine = DerivedFieldEngine(device="cpu", strategy="fusion")
        report = engine.execute(text, {"u": fields["u"]})
        (source,) = report.generated_sources.values()
        out = np.zeros(N)
        run_clc(source, "k_fused_s0", [fields["u"], out], N)
        np.testing.assert_allclose(out, report.output, rtol=1e-15)


class TestReferenceKernels:
    @pytest.mark.parametrize("name", list(vortex.EXPRESSIONS))
    def test_reference_kernel_matches_numpy(self, name, fields):
        report = derive_report(vortex.EXPRESSIONS[name],
                               {k: fields[k]
                                for k in vortex.EXPRESSION_INPUTS[name]})
        from repro.strategies import ReferenceKernel
        from repro.clsim import CLEnvironment
        inputs = {k: fields[k] for k in vortex.EXPRESSION_INPUTS[name]}
        ref_report = ReferenceKernel(name).execute(
            inputs, CLEnvironment("cpu"))
        (source,) = ref_report.generated_sources.values()
        out = np.zeros(N)
        args = [inputs[k] for k in vortex.EXPRESSION_INPUTS[name]]
        run_clc(source, f"ref_{name}", [*args, out], N)
        np.testing.assert_allclose(out, ref_report.output, rtol=1e-13,
                                   atol=1e-13)
