"""Unit tests for the OpenCL C interpreter semantics."""

import numpy as np
import pytest

from repro.clc import CLCError, Interpreter, parse_clc


def interp_of(source):
    return Interpreter(parse_clc(source))


def call(source, name, *args):
    return interp_of(source).call(name, args)


class TestScalars:
    def test_arithmetic(self):
        src = "inline double f(const double a, const double b)\n" \
              "{ return (a + b) * (a - b) / b; }"
        assert call(src, "f", 3.0, 2.0) == pytest.approx(2.5)

    def test_integer_division_truncates(self):
        src = "inline int f(const int a, const int b) { return a / b; }"
        assert call(src, "f", 7, 2) == 3

    def test_modulo(self):
        src = "inline int f(const int a, const int b) { return a % b; }"
        assert call(src, "f", 7, 3) == 1

    def test_comparisons_produce_ints(self):
        src = "inline int f(const double a) { return a > 0.0; }"
        assert call(src, "f", 1.0) == 1
        assert call(src, "f", -1.0) == 0

    def test_logical_ops_short_circuit(self):
        src = ("inline int f(const int a)\n"
               "{ return a != 0 && 10 / a > 1; }")
        assert call(src, "f", 0) == 0  # no ZeroDivisionError
        assert call(src, "f", 4) == 1

    def test_ternary(self):
        src = ("inline double f(const double a)\n"
               "{ return a > 0.0 ? a : -a; }")
        assert call(src, "f", -4.0) == 4.0

    def test_float_cast_narrows(self):
        src = "inline float f(const double a) { return (float)a; }"
        result = call(src, "f", 0.1)
        assert result == np.float32(0.1)

    def test_builtins(self):
        src = ("inline double f(const double a)\n"
               "{ return sqrt(a) + fabs(-a) + fmin(a, 1.0)"
               " + fmax(a, 10.0) + pow(a, 2.0); }")
        a = 4.0
        assert call(src, "f", a) == pytest.approx(
            2.0 + 4.0 + 1.0 + 10.0 + 16.0)

    def test_nested_calls_and_recursion_free_helpers(self):
        src = ("inline double twice(const double a) { return 2.0 * a; }\n"
               "inline double f(const double a)"
               " { return twice(twice(a)); }")
        assert call(src, "f", 3.0) == 12.0


class TestVectors:
    def test_constructor_and_members(self):
        src = ("inline double f(const double a)\n"
               "{\n"
               "    const double4 v = (double4)(a, 2.0 * a, 0.0, 1.0);\n"
               "    return v.s0 + v.s1 + v.s3;\n"
               "}")
        assert call(src, "f", 1.0) == 4.0

    def test_xyzw_aliases(self):
        src = ("inline double f(const double a)\n"
               "{ const double4 v = (double4)(a, a, a, a);"
               " return v.x + v.w; }")
        assert call(src, "f", 2.0) == 4.0

    def test_member_assignment(self):
        src = ("inline double f(const double a)\n"
               "{ double4 v; v.s2 = a; return v.s2 + v.s0; }")
        assert call(src, "f", 5.0) == 5.0

    def test_wrong_component_count_rejected(self):
        src = ("inline double f(const double a)\n"
               "{ const double4 v = (double4)(a, a); return v.s0; }")
        with pytest.raises(CLCError, match="components"):
            call(src, "f", 1.0)

    def test_unknown_component_rejected(self):
        src = ("inline double f(const double a)\n"
               "{ const double4 v = (double4)(a,a,a,a); return v.s9; }")
        with pytest.raises(CLCError, match="component"):
            call(src, "f", 1.0)


class TestPointers:
    def test_global_buffer_indexing(self):
        src = ("__kernel void k(__global const double* in,\n"
               "                __global double* out)\n"
               "{ const size_t gid = get_global_id(0);"
               "  out[gid] = in[gid] * 2.0; }")
        data = np.arange(3.0)
        out = np.zeros(3)
        interp_of(src).run_kernel("k", [data, out], 3)
        np.testing.assert_array_equal(out, [0.0, 2.0, 4.0])

    def test_pointer_arithmetic(self):
        src = ("inline double f(__global const double* p)\n"
               "{ return (p + 2)[0] + p[1]; }")
        from repro.clc import GlobalBuffer
        data = np.array([1.0, 10.0, 100.0])
        assert interp_of(src).call("f", [GlobalBuffer(data)]) == 110.0

    def test_out_params_via_address_of(self):
        src = ("inline void split(const int v, int* lo, int* hi)\n"
               "{ *lo = v % 10; *hi = v / 10; }\n"
               "__kernel void k(__global int* out)\n"
               "{ int lo, hi; split(47, &lo, &hi);"
               "  out[0] = lo; out[1] = hi; }")
        out = np.zeros(2, np.int64)
        interp_of(src).run_kernel("k", [out], 1)
        assert out.tolist() == [7, 4]

    def test_deref_non_pointer_rejected(self):
        src = "inline double f(const double a) { return *a; }"
        with pytest.raises(CLCError, match="non-pointer"):
            call(src, "f", 1.0)


class TestControlFlow:
    def test_early_return(self):
        src = ("inline double f(const double a)\n"
               "{ if (a < 0.0) { return 0.0; } return a; }")
        assert call(src, "f", -1.0) == 0.0
        assert call(src, "f", 2.0) == 2.0

    def test_else_chains(self):
        src = ("inline int f(const int a)\n"
               "{ if (a == 0) return 10;\n"
               "  if (a == 1) return 11;\n"
               "  return 12; }")
        assert [call(src, "f", i) for i in range(3)] == [10, 11, 12]

    def test_get_global_id_per_item(self):
        src = ("__kernel void k(__global double* out)\n"
               "{ const size_t gid = get_global_id(0);"
               "  out[gid] = (double)gid * 10.0; }")
        out = np.zeros(4)
        interp_of(src).run_kernel("k", [out], 4)
        np.testing.assert_array_equal(out, [0.0, 10.0, 20.0, 30.0])


class TestErrors:
    def test_unknown_kernel(self):
        with pytest.raises(CLCError, match="no kernel"):
            interp_of("inline int f() { return 1; }").run_kernel(
                "f", [], 1)

    def test_wrong_arg_count(self):
        src = "__kernel void k(__global double* out) { out[0] = 1.0; }"
        with pytest.raises(CLCError, match="arguments"):
            interp_of(src).run_kernel("k", [], 1)

    def test_undefined_variable(self):
        src = "inline double f() { return ghost; }"
        with pytest.raises(CLCError, match="undefined variable"):
            call(src, "f")

    def test_undefined_function(self):
        src = "inline double f() { return mystery(1.0); }"
        with pytest.raises(CLCError, match="undefined function"):
            call(src, "f")

    def test_array_expected(self):
        src = "__kernel void k(__global double* out) { out[0] = 1.0; }"
        with pytest.raises(CLCError, match="array"):
            interp_of(src).run_kernel("k", [3.0], 1)
