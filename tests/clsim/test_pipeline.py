"""Unit tests for the modeled event-stream transforms
(:mod:`repro.clsim.pipeline`): batch coalescing, transfer/compute
overlap, and the makespan helper."""

import pytest

from repro.clsim.device import NVIDIA_M2050_GPU
from repro.clsim.events import Event, EventKind, EventLog
from repro.clsim.perfmodel import transfer_seconds
from repro.clsim.pipeline import coalesce_events, makespan, overlap_events

DEVICE = NVIDIA_M2050_GPU


def stream(nbytes=8192, kernel_s=1e-3, tag="a"):
    """One plan capture: two uploads, a kernel, a readback."""
    up = transfer_seconds(nbytes, DEVICE)
    return [
        Event(EventKind.DEV_WRITE, f"u.{tag}", nbytes, up),
        Event(EventKind.DEV_WRITE, f"v.{tag}", nbytes, up),
        Event(EventKind.KERNEL, f"k.{tag}", 0,
              DEVICE.kernel_launch_overhead + kernel_s),
        Event(EventKind.DEV_READ, f"out.{tag}", nbytes, up),
    ]


class TestMakespan:
    def test_empty_stream(self):
        assert makespan([]) == 0.0

    def test_unstamped_events_anchor_at_zero(self):
        assert makespan([Event(EventKind.KERNEL, "k", 0, 2.5)]) == 2.5

    def test_latest_completion_wins(self):
        events = [Event(EventKind.KERNEL, "k", 0, 1.0, ts_seconds=0.0),
                  Event(EventKind.DEV_READ, "r", 8, 0.5, ts_seconds=3.0)]
        assert makespan(events) == 3.5


class TestCoalesce:
    def test_empty_and_singleton(self):
        assert coalesce_events([], DEVICE) == []
        solo = coalesce_events([stream()], DEVICE)
        assert [e.name for e in solo] == ["u.a", "v.a", "k.a", "out.a"]
        assert all(e.ts_seconds is None for e in solo)

    def test_transfers_pay_latency_once(self):
        batch = 4
        merged = coalesce_events([stream(tag=str(i)) for i in range(batch)],
                                 DEVICE)
        upload = merged[0]
        assert upload.kind is EventKind.DEV_WRITE
        assert upload.nbytes == batch * 8192
        # One DMA over the stacked payload: a single link latency.
        assert upload.sim_seconds == pytest.approx(
            transfer_seconds(batch * 8192, DEVICE))
        assert upload.sim_seconds < batch * transfer_seconds(8192, DEVICE)

    def test_kernel_pays_launch_overhead_once(self):
        batch = 3
        merged = coalesce_events([stream(tag=str(i)) for i in range(batch)],
                                 DEVICE)
        kernel = merged[2]
        solo_kernel = stream()[2]
        assert kernel.sim_seconds == pytest.approx(
            batch * solo_kernel.sim_seconds
            - (batch - 1) * DEVICE.kernel_launch_overhead)

    def test_build_happens_once(self):
        base = stream()
        build = Event(EventKind.BUILD, "prog", 100, 0.25)
        merged = coalesce_events([[build] + base, [build] + base], DEVICE)
        assert merged[0].kind is EventKind.BUILD
        assert merged[0].sim_seconds == 0.25
        assert merged[0].nbytes == 100

    def test_names_carry_batch_width(self):
        merged = coalesce_events([stream(), stream(tag="b")], DEVICE)
        assert merged[2].name == "k.a[x2]"

    def test_accepts_event_logs(self):
        log = EventLog()
        for event in stream():
            log.record(event)
        merged = coalesce_events([log, stream(tag="b")], DEVICE)
        assert len(merged) == 4

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError, match="different shapes"):
            coalesce_events([stream(), stream()[:-1]], DEVICE)

    def test_rejects_mismatched_kinds(self):
        other = stream()
        other[1], other[2] = other[2], other[1]
        with pytest.raises(ValueError, match="mismatched event kinds"):
            coalesce_events([stream(), other], DEVICE)


class TestOverlap:
    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError, match="depth"):
            overlap_events([stream()], depth=0)

    def test_single_chunk_is_serial(self):
        events = overlap_events([stream()], depth=2)
        serial = sum(e.sim_seconds for e in stream())
        assert makespan(events) == pytest.approx(serial)

    def test_durations_and_totals_invariant(self):
        chunks = [stream(tag=str(i)) for i in range(4)]
        events = overlap_events(chunks, depth=2)
        assert sorted(e.sim_seconds for e in events) == sorted(
            e.sim_seconds for chunk in chunks for e in chunk)
        assert sorted(e.name for e in events) == sorted(
            e.name for chunk in chunks for e in chunk)

    def test_overlap_beats_serial(self):
        chunks = [stream(tag=str(i)) for i in range(4)]
        serial = sum(e.sim_seconds for chunk in chunks for e in chunk)
        assert makespan(overlap_events(chunks, depth=2)) < serial

    def test_depth_one_is_fully_serial(self):
        chunks = [stream(tag=str(i)) for i in range(4)]
        serial = sum(e.sim_seconds for chunk in chunks for e in chunk)
        assert makespan(overlap_events(chunks, depth=1)) == \
            pytest.approx(serial)

    def test_next_upload_overlaps_current_compute(self):
        chunks = [stream(tag="0"), stream(tag="1")]
        events = {e.name: e for e in overlap_events(chunks, depth=2)}
        kernel0 = events["k.0"]
        upload1 = events["u.1"]
        assert upload1.ts_seconds < kernel0.ts_seconds + \
            kernel0.sim_seconds

    def test_lanes_never_double_book(self):
        lanes = {EventKind.DEV_WRITE: "h2d", EventKind.KERNEL: "compute",
                 EventKind.BUILD: "compute", EventKind.DEV_READ: "d2h"}
        events = overlap_events([stream(tag=str(i)) for i in range(5)],
                                depth=3)
        free = {"h2d": 0.0, "compute": 0.0, "d2h": 0.0}
        for event in events:        # sorted by start time
            lane = lanes[event.kind]
            assert event.ts_seconds >= free[lane] - 1e-15
            free[lane] = event.ts_seconds + event.sim_seconds

    def test_residency_bound_gates_chunk_start(self):
        chunks = [stream(tag=str(i)) for i in range(3)]
        deep = {e.name: e for e in overlap_events(chunks, depth=3)}
        shallow = {e.name: e for e in overlap_events(chunks, depth=1)}
        # With depth 1, chunk 1 cannot start before chunk 0 finished.
        chunk0_end = max(shallow[f"{n}.0"].ts_seconds
                        + shallow[f"{n}.0"].sim_seconds
                        for n in ("u", "v", "k", "out"))
        assert shallow["u.1"].ts_seconds >= chunk0_end - 1e-15
        assert deep["u.1"].ts_seconds < shallow["u.1"].ts_seconds

    def test_replays_into_log_preserving_timeline(self):
        events = overlap_events([stream(tag=str(i)) for i in range(3)],
                                depth=2)
        log = EventLog()
        for event in events:
            log.record(event)
        assert [e.ts_seconds for e in log.events] == \
            [e.ts_seconds for e in events]
