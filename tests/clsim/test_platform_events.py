"""Tests for platform enumeration and the event log."""

import pytest

from repro.clsim import (Event, EventKind, EventLog, find_device,
                        get_platforms)
from repro.clsim.device import DeviceType
from repro.errors import CLError


class TestPlatforms:
    def test_two_platforms(self):
        platforms = get_platforms()
        assert len(platforms) == 2
        names = {p.vendor for p in platforms}
        assert any("Intel" in n for n in names)
        assert any("NVIDIA" in n for n in names)

    def test_edge_node_has_two_gpus(self):
        nvidia = next(p for p in get_platforms() if "NVIDIA" in p.vendor)
        assert len(nvidia.devices) == 2

    def test_opencl_11(self):
        assert all("OpenCL 1.1" in p.version for p in get_platforms())

    def test_find_device_by_string(self):
        assert find_device("cpu").device_type is DeviceType.CPU
        assert find_device("GPU").device_type is DeviceType.GPU

    def test_find_device_by_enum(self):
        assert find_device(DeviceType.GPU).name.startswith("NVIDIA")

    def test_unknown_kind(self):
        with pytest.raises(CLError, match="unknown device"):
            find_device("fpga")


class TestEventLog:
    def make_log(self):
        log = EventLog()
        log.record(Event(EventKind.DEV_WRITE, "u", 100, 1.0))
        log.record(Event(EventKind.DEV_WRITE, "v", 200, 2.0))
        log.record(Event(EventKind.KERNEL, "k", 300, 4.0, 0.5))
        log.record(Event(EventKind.DEV_READ, "out", 100, 8.0))
        return log

    def test_counts(self):
        counts = self.make_log().counts()
        assert counts.as_row() == (2, 1, 1)

    def test_count_single_kind(self):
        assert self.make_log().count(EventKind.DEV_WRITE) == 2

    def test_sim_time_total_and_filtered(self):
        log = self.make_log()
        assert log.sim_time() == 15.0
        assert log.sim_time([EventKind.DEV_WRITE]) == 3.0
        assert log.sim_time([EventKind.KERNEL, EventKind.DEV_READ]) == 12.0

    def test_wall_time(self):
        assert self.make_log().wall_time() == 0.5

    def test_bytes_moved(self):
        log = self.make_log()
        assert log.bytes_moved(EventKind.DEV_WRITE) == 300
        assert log.bytes_moved(EventKind.DEV_READ) == 100

    def test_breakdown(self):
        breakdown = self.make_log().breakdown()
        assert breakdown == {"dev-write": 3.0, "kernel": 4.0,
                             "dev-read": 8.0}

    def test_clear(self):
        log = self.make_log()
        log.clear()
        assert log.counts().as_row() == (0, 0, 0)
