"""Unit tests for the command queue, profiling events, and environment."""

import numpy as np
import pytest

from repro.clsim import (CLEnvironment, Event, EventKind, Kernel,
                         KernelCost, Program)
from repro.errors import CLBuildError, CLInvalidOperation, CLError


@pytest.fixture
def env():
    return CLEnvironment("cpu")


def square_kernel():
    return Kernel("sq", "__kernel void sq() {}",
                  executor=lambda x: x * x)


class TestTransfers:
    def test_write_records_event(self, env):
        env.upload(np.zeros(16), "a")
        assert env.event_counts().dev_writes == 1
        assert env.queue.log.bytes_moved(EventKind.DEV_WRITE) == 128

    def test_read_returns_copy(self, env):
        buf = env.upload(np.arange(4.0), "a")
        out = env.queue.enqueue_read_buffer(buf)
        out[0] = 77.0
        assert buf.get_data()[0] == 0.0
        assert env.event_counts().dev_reads == 1

    def test_transfer_time_positive_and_monotone(self, env):
        small = env.upload(np.zeros(10), "s")
        big = env.upload(np.zeros(100000), "b")
        events = env.queue.log.events
        assert 0 < events[0].sim_seconds < events[1].sim_seconds


class TestKernels:
    def test_kernel_executes_and_stores(self, env):
        buf = env.upload(np.arange(4.0), "in")
        out = env.create_buffer(32, "out")
        env.queue.enqueue_kernel(square_kernel(), [buf], out,
                                 KernelCost(64, 4))
        np.testing.assert_array_equal(out.get_data(), [0, 1, 4, 9])
        assert env.event_counts().kernel_execs == 1

    def test_scalar_args_passed_by_value(self, env):
        out = env.create_buffer(8, "out")
        k = Kernel("fill", "", executor=lambda v: np.full(1, v))
        env.queue.enqueue_kernel(k, [3.5], out, KernelCost(8, 0))
        assert out.get_data()[0] == 3.5

    def test_output_size_mismatch_rejected(self, env):
        buf = env.upload(np.arange(4.0), "in")
        out = env.create_buffer(8, "out")  # too small
        with pytest.raises(CLInvalidOperation, match="B"):
            env.queue.enqueue_kernel(square_kernel(), [buf], out,
                                     KernelCost(0, 0))

    def test_multiple_outputs(self, env):
        buf = env.upload(np.arange(4.0), "in")
        out1 = env.create_buffer(32, "o1")
        out2 = env.create_buffer(32, "o2")
        k = Kernel("two", "", executor=lambda x: (x + 1, x - 1))
        env.queue.enqueue_kernel(k, [buf], [out1, out2], KernelCost(0, 0))
        np.testing.assert_array_equal(out1.get_data(), [1, 2, 3, 4])
        np.testing.assert_array_equal(out2.get_data(), [-1, 0, 1, 2])

    def test_output_count_mismatch_rejected(self, env):
        buf = env.upload(np.arange(4.0), "in")
        out = env.create_buffer(32, "o")
        k = Kernel("two", "", executor=lambda x: (x, x))
        with pytest.raises(CLInvalidOperation, match="outputs"):
            env.queue.enqueue_kernel(k, [buf], out, KernelCost(0, 0))

    def test_kernel_wall_time_recorded(self, env):
        buf = env.upload(np.zeros(1000), "in")
        out = env.create_buffer(8000, "out")
        env.queue.enqueue_kernel(square_kernel(), [buf], out,
                                 KernelCost(0, 0))
        kernel_events = [e for e in env.queue.log.events
                         if e.kind is EventKind.KERNEL]
        assert kernel_events[0].wall_seconds > 0


class TestDryRun:
    def test_dry_kernel_skips_executor(self):
        env = CLEnvironment("cpu", dry_run=True)
        buf = env.upload_shape(64, "in")
        out = env.create_buffer(64, "out")
        boom = Kernel("boom", "", executor=lambda x: 1 / 0)
        env.queue.enqueue_kernel(boom, [buf], out, KernelCost(128, 8))
        assert env.event_counts().kernel_execs == 1

    def test_dry_read_returns_none(self):
        env = CLEnvironment("cpu", dry_run=True)
        buf = env.upload_shape(64, "in")
        assert env.queue.enqueue_read_buffer(buf) is None

    def test_dry_and_live_events_identical(self):
        def run(env):
            buf = (env.upload_shape(64, "a") if env.dry_run
                   else env.upload(np.zeros(8), "a"))
            out = env.create_buffer(64, "o")
            env.queue.enqueue_kernel(square_kernel(), [buf], out,
                                     KernelCost(128, 8))
            env.queue.enqueue_read_buffer(out)
            return env.event_counts(), env.timing().total, \
                env.mem_high_water

        live = run(CLEnvironment("gpu"))
        dry = run(CLEnvironment("gpu", dry_run=True))
        assert live == dry


class TestEnvironment:
    def test_device_selection(self):
        assert CLEnvironment("cpu").device.device_type.value == "cpu"
        assert CLEnvironment("gpu").device.device_type.value == "gpu"

    def test_unknown_device_rejected(self):
        with pytest.raises(CLError, match="unknown device"):
            CLEnvironment("tpu")

    def test_timing_breakdown_sums_to_total(self, env):
        buf = env.upload(np.zeros(64), "a")
        out = env.create_buffer(512, "o")
        env.queue.enqueue_kernel(square_kernel(), [buf], out,
                                 KernelCost(1024, 64))
        env.queue.enqueue_read_buffer(out)
        timing = env.timing()
        assert timing.total == pytest.approx(
            timing.host_to_device + timing.kernel_exec
            + timing.device_to_host)

    def test_build_excluded_from_total(self, env):
        program = Program("__kernel void k() {}")
        program.add_kernel(Kernel("k", ""))
        env.queue.build_program(program)
        assert env.timing().total == 0
        assert env.timing().build > 0

    def test_reset_instrumentation(self, env):
        buf = env.upload(np.zeros(8), "a")
        env.reset_instrumentation()
        assert env.event_counts().dev_writes == 0
        assert env.mem_high_water == env.mem_in_use

    def test_breakdown_keys(self, env):
        env.upload(np.zeros(8), "a")
        assert "dev-write" in env.queue.log.breakdown()


class TestProgram:
    def test_duplicate_kernel_rejected(self):
        program = Program("src")
        program.add_kernel(Kernel("k", ""))
        with pytest.raises(CLBuildError, match="duplicate"):
            program.add_kernel(Kernel("k", ""))

    def test_missing_kernel_lookup(self):
        with pytest.raises(CLBuildError, match="no kernel"):
            Program("src").kernel("nope")

    def test_build_marks_built(self, env):
        program = Program("line1\nline2")
        env.queue.build_program(program)
        assert program.built
        assert program.source_lines == 2
