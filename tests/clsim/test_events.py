"""Tests for the event layer: queue-timeline stamping and per-strategy
event categorization on the paper's q_criterion workload."""

import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment
from repro.clsim.events import Event, EventCounts, EventKind, EventLog
from repro.dataflow import Network
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.strategies import get_strategy

# Table II, q_criterion row: (Dev-W, Dev-R, K-Exe) per strategy.
Q_CRITERION_COUNTS = {
    "roundtrip": (123, 57, 57),
    "staged": (7, 1, 67),
    "fusion": (7, 1, 1),
}


def q_criterion_log(strategy, fields):
    spec, _ = lower(parse(vortex.EXPRESSIONS["q_criterion"]))
    net = Network(eliminate_common_subexpressions(spec))
    bindings = {k: fields[k] for k in net.live_sources()}
    env = CLEnvironment("cpu")
    report = get_strategy(strategy).execute(net, bindings, env)
    return env.queue.log, report


class TestTimestampStamping:
    def test_record_stamps_queue_cursor(self):
        log = EventLog()
        log.record(Event(EventKind.DEV_WRITE, "u", 64, 1e-4))
        log.record(Event(EventKind.KERNEL, "k", 64, 2e-4))
        log.record(Event(EventKind.DEV_READ, "out", 64, 1e-4))
        stamps = [e.ts_seconds for e in log.events]
        assert stamps == pytest.approx([0.0, 1e-4, 3e-4])

    def test_events_laid_back_to_back(self):
        """In-order queue: each event starts where its predecessor ended."""
        log = EventLog()
        for seconds in (1e-4, 5e-5, 2e-4):
            log.record(Event(EventKind.KERNEL, "k", 0, seconds))
        for prev, event in zip(log.events, log.events[1:]):
            assert event.ts_seconds == pytest.approx(
                prev.ts_seconds + prev.sim_seconds)

    def test_prestamped_event_preserved_and_advances_cursor(self):
        log = EventLog()
        log.record(Event(EventKind.KERNEL, "k", 0, 1e-4, ts_seconds=0.5))
        assert log.events[0].ts_seconds == 0.5
        assert log.cursor == pytest.approx(0.5 + 1e-4)

    def test_clear_resets_cursor(self):
        log = EventLog()
        log.record(Event(EventKind.KERNEL, "k", 0, 1e-4))
        log.clear()
        assert log.cursor == 0.0
        log.record(Event(EventKind.KERNEL, "k", 0, 1e-4))
        assert log.events[0].ts_seconds == 0.0

    @pytest.mark.parametrize("strategy", sorted(Q_CRITERION_COUNTS))
    def test_timestamps_monotonic_per_queue(self, strategy, small_fields):
        log, _ = q_criterion_log(strategy, small_fields)
        stamps = [e.ts_seconds for e in log.events]
        assert all(s is not None for s in stamps)
        assert stamps == sorted(stamps)

    @pytest.mark.parametrize("strategy", sorted(Q_CRITERION_COUNTS))
    def test_chrome_trace_uses_stamped_offsets(self, strategy,
                                               small_fields):
        log, _ = q_criterion_log(strategy, small_fields)
        trace = log.to_chrome_trace()
        assert len(trace) == len(log.events)
        for entry, event in zip(trace, log.events):
            assert entry["ts"] == pytest.approx(event.ts_seconds * 1e6)
            assert entry["dur"] == pytest.approx(event.sim_seconds * 1e6)


class TestCategorization:
    @pytest.mark.parametrize("strategy", sorted(Q_CRITERION_COUNTS))
    def test_q_criterion_counts_match_table2(self, strategy, small_fields):
        log, report = q_criterion_log(strategy, small_fields)
        expected = EventCounts(*Q_CRITERION_COUNTS[strategy])
        assert log.counts() == expected
        assert report.counts == expected          # report mirrors the log

    @pytest.mark.parametrize("strategy", sorted(Q_CRITERION_COUNTS))
    def test_per_kind_counts_sum_to_log(self, strategy, small_fields):
        log, _ = q_criterion_log(strategy, small_fields)
        by_kind = sum(log.count(kind) for kind in EventKind)
        assert by_kind == len(log.events)
