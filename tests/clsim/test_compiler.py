"""Unit tests for OpenCL C source assembly and structural validation."""

import pytest

from repro.clsim import KernelSourceBuilder, validate_source
from repro.clsim.compiler import PREAMBLE
from repro.errors import CLBuildError


class TestValidateSource:
    def test_valid_kernel(self):
        src = ("__kernel void k(__global const double* a, "
               "__global double* out) "
               "{ const size_t gid = get_global_id(0); out[gid] = a[gid]; }")
        assert validate_source(src) == ["k"]

    def test_multiple_kernels(self):
        src = ("__kernel void a(__global double* x) { x[0] = 1; }\n"
               "__kernel void b(__global double* y) { y[0] = 2; }")
        assert validate_source(src) == ["a", "b"]

    def test_unbalanced_braces(self):
        with pytest.raises(CLBuildError, match="unbalanced"):
            validate_source("__kernel void k() { ")

    def test_unbalanced_parens(self):
        with pytest.raises(CLBuildError, match="unbalanced"):
            validate_source("__kernel void k(( ) {}")

    def test_no_kernel_entry(self):
        with pytest.raises(CLBuildError, match="no __kernel"):
            validate_source("inline double f(double a) { return a; }")

    def test_unused_parameter_rejected(self):
        src = ("__kernel void k(__global const double* unused, "
               "__global double* out) { out[0] = 1.0; }")
        with pytest.raises(CLBuildError, match="never used"):
            validate_source(src)

    def test_helpers_do_not_confuse_validation(self):
        src = ("inline double h(double v) { return v * 2.0; }\n"
               "__kernel void k(__global double* out) "
               "{ out[0] = h(1.0); }")
        assert validate_source(src) == ["k"]


class TestKernelSourceBuilder:
    def build(self):
        builder = KernelSourceBuilder("k_test")
        builder.add_helper("dfg_add",
                           "inline double dfg_add(const double a, "
                           "const double b)\n{ return a + b; }")
        builder.add_global_param("double", "u")
        builder.add_global_param("double", "v")
        builder.add_global_param("double", "out", const=False)
        builder.add_statement(
            "const double t = dfg_add(u[gid], v[gid]);")
        builder.add_statement("out[gid] = t;")
        return builder

    def test_renders_valid_source(self):
        source = self.build().render()
        assert validate_source(source) == ["k_test"]
        assert source.startswith(PREAMBLE)

    def test_helper_deduplication(self):
        builder = self.build()
        builder.add_helper("dfg_add", "/* duplicate */")
        assert builder.render().count("inline double dfg_add") == 1

    def test_gid_declared(self):
        assert "get_global_id(0)" in self.build().render()

    def test_value_param(self):
        builder = KernelSourceBuilder("k_v")
        builder.add_value_param("double", "scale")
        builder.add_global_param("double", "out", const=False)
        builder.add_statement("out[gid] = scale;")
        source = builder.render()
        assert "const double scale" in source
        assert validate_source(source) == ["k_v"]

    def test_const_qualifier_control(self):
        builder = KernelSourceBuilder("k_c")
        builder.add_global_param("double", "a")
        builder.add_global_param("double", "b", const=False)
        builder.add_statement("b[gid] = a[gid];")
        source = builder.render()
        assert "__global const double* a" in source
        assert "__global double* b" in source
