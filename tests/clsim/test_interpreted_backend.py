"""Tests for the interpreted execution backend: kernels running from
their generated OpenCL C source through the full strategy machinery."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.clsim import CLEnvironment
from repro.errors import CLError
from repro.host import DerivedFieldEngine
from repro.workloads import SubGrid, make_fields


@pytest.fixture(scope="module")
def fields():
    return make_fields(SubGrid(4, 5, 6), seed=17)


def engines(strategy):
    return (DerivedFieldEngine(strategy=strategy),
            DerivedFieldEngine(strategy=strategy, backend="interpreted"))


class TestBackendEquivalence:
    @pytest.mark.parametrize("strategy", ["roundtrip", "staged", "fusion"])
    @pytest.mark.parametrize("name", list(vortex.EXPRESSIONS))
    def test_bit_exact_across_backends(self, strategy, name, fields):
        """Vectorized NumPy and per-work-item interpreted OpenCL perform
        the same IEEE double operations in the same order — outputs must
        be bit-identical."""
        inputs = {k: fields[k] for k in vortex.EXPRESSION_INPUTS[name]}
        fast, slow = engines(strategy)
        np.testing.assert_array_equal(
            fast.derive(vortex.EXPRESSIONS[name], inputs),
            slow.derive(vortex.EXPRESSIONS[name], inputs))

    def test_mesh_operators_interpreted(self, fields):
        text = "a = div3d(u, v, w, dims, x, y, z)"
        fast, slow = engines("fusion")
        np.testing.assert_array_equal(fast.derive(text, fields),
                                      slow.derive(text, fields))

    def test_curl_interpreted(self, fields):
        text = "a = vmag(curl3d(u, v, w, dims, x, y, z))"
        fast, slow = engines("staged")
        np.testing.assert_allclose(fast.derive(text, fields),
                                   slow.derive(text, fields), rtol=1e-15)

    def test_event_accounting_identical(self, fields):
        inputs = {k: fields[k]
                  for k in vortex.EXPRESSION_INPUTS["q_criterion"]}
        fast, slow = engines("staged")
        fast_report = fast.execute(vortex.Q_CRITERION, inputs)
        slow_report = slow.execute(vortex.Q_CRITERION, inputs)
        assert fast_report.counts == slow_report.counts
        assert fast_report.mem_high_water == slow_report.mem_high_water
        # modeled time is backend-independent; wall time is not
        assert fast_report.timing.total == slow_report.timing.total
        assert slow_report.timing.wall > fast_report.timing.wall

    def test_multistage_fusion_interpreted(self, fields):
        text = "t = u * u\na = grad3d(t, dims, x, y, z)[1]"
        fast, slow = engines("fusion")
        np.testing.assert_array_equal(fast.derive(text, fields),
                                      slow.derive(text, fields))


class TestBackendSelection:
    def test_unknown_backend_rejected(self):
        with pytest.raises(CLError, match="backend"):
            CLEnvironmenti = CLEnvironment("cpu", backend="jit")

    def test_sourceless_kernels_fall_back(self):
        """Kernels without source (hand-built test kernels) still run via
        their NumPy executor under the interpreted backend."""
        from repro.clsim import Kernel, KernelCost
        env = CLEnvironment("cpu", backend="interpreted")
        buf = env.upload(np.arange(4.0), "in")
        out = env.create_buffer(32, "out")
        kernel = Kernel("sq", "", executor=lambda x: x * x)
        env.queue.enqueue_kernel(kernel, [buf], out, KernelCost(0, 0))
        np.testing.assert_array_equal(out.get_data(), [0, 1, 4, 9])
