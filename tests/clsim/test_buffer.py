"""Unit tests for device buffers and the tracking allocator."""

import numpy as np
import pytest

from repro.clsim import Allocator, Buffer, INTEL_X5660_CPU, NVIDIA_M2050_GPU
from repro.errors import CLInvalidOperation, CLOutOfMemoryError


@pytest.fixture
def allocator():
    return Allocator(NVIDIA_M2050_GPU)


class TestAllocator:
    def test_reserve_and_release(self, allocator):
        allocator.reserve(1000)
        assert allocator.current_bytes == 1000
        allocator.release(1000)
        assert allocator.current_bytes == 0

    def test_peak_tracks_high_water(self, allocator):
        allocator.reserve(1000)
        allocator.reserve(500)
        allocator.release(1000)
        allocator.reserve(200)
        assert allocator.peak_bytes == 1500
        assert allocator.current_bytes == 700

    def test_oom_at_capacity(self, allocator):
        limit = NVIDIA_M2050_GPU.global_mem_bytes
        allocator.reserve(limit)
        with pytest.raises(CLOutOfMemoryError) as err:
            allocator.reserve(1)
        assert err.value.requested == 1
        assert err.value.available == 0

    def test_oom_preserves_state(self, allocator):
        limit = NVIDIA_M2050_GPU.global_mem_bytes
        allocator.reserve(limit - 10)
        with pytest.raises(CLOutOfMemoryError):
            allocator.reserve(100)
        assert allocator.current_bytes == limit - 10

    def test_exact_fit_allowed(self, allocator):
        allocator.reserve(NVIDIA_M2050_GPU.global_mem_bytes)
        assert allocator.available_bytes == 0

    def test_negative_allocation_rejected(self, allocator):
        with pytest.raises(CLInvalidOperation):
            allocator.reserve(-5)

    def test_over_release_rejected(self, allocator):
        allocator.reserve(10)
        with pytest.raises(CLInvalidOperation):
            allocator.release(20)

    def test_reset_peak(self, allocator):
        allocator.reserve(100)
        allocator.release(100)
        allocator.reset_peak()
        assert allocator.peak_bytes == 0

    def test_cpu_has_96_gib(self):
        assert Allocator(INTEL_X5660_CPU).device.global_mem_bytes \
            == 96 * 2**30


class TestBuffer:
    def test_write_read_round_trip(self, allocator):
        data = np.arange(8, dtype=np.float64)
        buf = Buffer(allocator, data.nbytes, label="t")
        buf.set_data(data)
        np.testing.assert_array_equal(buf.get_data(), data)

    def test_device_copy_not_view(self, allocator):
        data = np.arange(4, dtype=np.float64)
        buf = Buffer(allocator, data.nbytes)
        buf.set_data(data)
        data[0] = 99.0
        assert buf.get_data()[0] == 0.0

    def test_size_mismatch_rejected(self, allocator):
        buf = Buffer(allocator, 64)
        with pytest.raises(CLInvalidOperation, match="B"):
            buf.set_data(np.zeros(4, dtype=np.float32))

    def test_read_before_write_rejected(self, allocator):
        buf = Buffer(allocator, 8)
        with pytest.raises(CLInvalidOperation, match="before any write"):
            buf.get_data()

    def test_release_returns_memory(self, allocator):
        buf = Buffer(allocator, 128)
        assert allocator.current_bytes == 128
        buf.release()
        assert allocator.current_bytes == 0
        assert buf.released

    def test_release_idempotent(self, allocator):
        buf = Buffer(allocator, 128)
        buf.release()
        buf.release()
        assert allocator.current_bytes == 0

    def test_use_after_release_rejected(self, allocator):
        buf = Buffer(allocator, 8)
        buf.release()
        with pytest.raises(CLInvalidOperation, match="released"):
            buf.set_data(np.zeros(1))

    def test_dry_buffer_skips_data(self, allocator):
        buf = Buffer(allocator, 8, dry=True)
        buf.set_data(np.zeros(1))  # accepted but not stored
        assert buf.data is None
        with pytest.raises(CLInvalidOperation, match="dry"):
            buf.get_data()

    def test_dry_buffer_still_counts_memory(self, allocator):
        Buffer(allocator, 4096, dry=True)
        assert allocator.peak_bytes == 4096

    def test_repr_states(self, allocator):
        buf = Buffer(allocator, 8, label="x")
        assert "live" in repr(buf)
        buf.release()
        assert "released" in repr(buf)


class TestSizeClass:
    def test_minimum_class(self):
        from repro.clsim.buffer import size_class
        assert size_class(1) == 64
        assert size_class(64) == 64

    def test_power_of_two_rounding(self):
        from repro.clsim.buffer import size_class
        assert size_class(65) == 128
        assert size_class(128) == 128
        assert size_class(129) == 256
        assert size_class(1000) == 1024


class TestBufferPool:
    @pytest.fixture
    def pool(self, allocator):
        from repro.clsim.buffer import BufferPool
        return BufferPool(allocator)

    def test_miss_then_hit(self, allocator, pool):
        assert pool.acquire(100) is None          # cold: nothing parked
        buf = Buffer(allocator, 100, capacity=pool.capacity_for(100),
                     pool=pool)
        buf.release()                              # parks 128 B
        assert pool.pooled_bytes == 128
        recycled = pool.acquire(100)
        assert recycled is not None
        assert pool.pooled_bytes == 0
        assert (pool.hits, pool.misses) == (1, 1)

    def test_pooled_release_keeps_bytes_reserved(self, allocator, pool):
        buf = Buffer(allocator, 100, capacity=pool.capacity_for(100),
                     pool=pool)
        buf.release()
        # Parked, not returned: the device still holds the reservation.
        assert allocator.current_bytes == 128
        assert pool.trim() == 128
        assert allocator.current_bytes == 0

    def test_reuse_never_aliases_previous_data(self, allocator, pool):
        data = np.arange(16, dtype=np.float64)
        buf = Buffer(allocator, data.nbytes,
                     capacity=pool.capacity_for(data.nbytes), pool=pool)
        buf.set_data(data)
        device_copy = buf.data
        buf.release()
        recycled = pool.acquire(data.nbytes)
        # A recycled buffer starts empty: only the byte reservation is
        # reused, never storage, so stale values cannot leak through.
        assert recycled.data is None
        fresh = np.full(16, 7.0)
        recycled.set_data(fresh)
        assert recycled.data is not device_copy
        np.testing.assert_array_equal(device_copy, data)

    def test_reuse_counts_as_reused_allocation(self, allocator, pool):
        Buffer(allocator, 50, capacity=pool.capacity_for(50),
               pool=pool).release()
        pool.acquire(50)
        stats = allocator.stats(pool)
        assert stats.total_allocations == 1
        assert stats.reused_allocations == 1
        assert stats.pool_returns == 1

    def test_different_class_misses(self, allocator, pool):
        Buffer(allocator, 64, capacity=pool.capacity_for(64),
               pool=pool).release()
        assert pool.acquire(300) is None           # 512-class, not 64

    def test_unpooled_accounting_unchanged(self, allocator):
        """Cold-path buffers (no pool) reserve exactly nbytes — the
        paper's Fig 6 accounting is untouched by the pool's existence."""
        buf = Buffer(allocator, 100)
        assert buf.capacity == 100
        assert allocator.current_bytes == 100
        buf.release()
        assert allocator.current_bytes == 0
