"""Unit tests for device buffers and the tracking allocator."""

import numpy as np
import pytest

from repro.clsim import Allocator, Buffer, INTEL_X5660_CPU, NVIDIA_M2050_GPU
from repro.errors import CLInvalidOperation, CLOutOfMemoryError


@pytest.fixture
def allocator():
    return Allocator(NVIDIA_M2050_GPU)


class TestAllocator:
    def test_reserve_and_release(self, allocator):
        allocator.reserve(1000)
        assert allocator.current_bytes == 1000
        allocator.release(1000)
        assert allocator.current_bytes == 0

    def test_peak_tracks_high_water(self, allocator):
        allocator.reserve(1000)
        allocator.reserve(500)
        allocator.release(1000)
        allocator.reserve(200)
        assert allocator.peak_bytes == 1500
        assert allocator.current_bytes == 700

    def test_oom_at_capacity(self, allocator):
        limit = NVIDIA_M2050_GPU.global_mem_bytes
        allocator.reserve(limit)
        with pytest.raises(CLOutOfMemoryError) as err:
            allocator.reserve(1)
        assert err.value.requested == 1
        assert err.value.available == 0

    def test_oom_preserves_state(self, allocator):
        limit = NVIDIA_M2050_GPU.global_mem_bytes
        allocator.reserve(limit - 10)
        with pytest.raises(CLOutOfMemoryError):
            allocator.reserve(100)
        assert allocator.current_bytes == limit - 10

    def test_exact_fit_allowed(self, allocator):
        allocator.reserve(NVIDIA_M2050_GPU.global_mem_bytes)
        assert allocator.available_bytes == 0

    def test_negative_allocation_rejected(self, allocator):
        with pytest.raises(CLInvalidOperation):
            allocator.reserve(-5)

    def test_over_release_rejected(self, allocator):
        allocator.reserve(10)
        with pytest.raises(CLInvalidOperation):
            allocator.release(20)

    def test_reset_peak(self, allocator):
        allocator.reserve(100)
        allocator.release(100)
        allocator.reset_peak()
        assert allocator.peak_bytes == 0

    def test_cpu_has_96_gib(self):
        assert Allocator(INTEL_X5660_CPU).device.global_mem_bytes \
            == 96 * 2**30


class TestBuffer:
    def test_write_read_round_trip(self, allocator):
        data = np.arange(8, dtype=np.float64)
        buf = Buffer(allocator, data.nbytes, label="t")
        buf.set_data(data)
        np.testing.assert_array_equal(buf.get_data(), data)

    def test_device_copy_not_view(self, allocator):
        data = np.arange(4, dtype=np.float64)
        buf = Buffer(allocator, data.nbytes)
        buf.set_data(data)
        data[0] = 99.0
        assert buf.get_data()[0] == 0.0

    def test_size_mismatch_rejected(self, allocator):
        buf = Buffer(allocator, 64)
        with pytest.raises(CLInvalidOperation, match="B"):
            buf.set_data(np.zeros(4, dtype=np.float32))

    def test_read_before_write_rejected(self, allocator):
        buf = Buffer(allocator, 8)
        with pytest.raises(CLInvalidOperation, match="before any write"):
            buf.get_data()

    def test_release_returns_memory(self, allocator):
        buf = Buffer(allocator, 128)
        assert allocator.current_bytes == 128
        buf.release()
        assert allocator.current_bytes == 0
        assert buf.released

    def test_release_idempotent(self, allocator):
        buf = Buffer(allocator, 128)
        buf.release()
        buf.release()
        assert allocator.current_bytes == 0

    def test_use_after_release_rejected(self, allocator):
        buf = Buffer(allocator, 8)
        buf.release()
        with pytest.raises(CLInvalidOperation, match="released"):
            buf.set_data(np.zeros(1))

    def test_dry_buffer_skips_data(self, allocator):
        buf = Buffer(allocator, 8, dry=True)
        buf.set_data(np.zeros(1))  # accepted but not stored
        assert buf.data is None
        with pytest.raises(CLInvalidOperation, match="dry"):
            buf.get_data()

    def test_dry_buffer_still_counts_memory(self, allocator):
        Buffer(allocator, 4096, dry=True)
        assert allocator.peak_bytes == 4096

    def test_repr_states(self, allocator):
        buf = Buffer(allocator, 8, label="x")
        assert "live" in repr(buf)
        buf.release()
        assert "released" in repr(buf)
