"""Unit tests for the analytic device performance model."""

import pytest

from repro.clsim import (INTEL_X5660_CPU, KernelCost, NVIDIA_M2050_GPU,
                         build_seconds, kernel_seconds, transfer_seconds)

CPU, GPU = INTEL_X5660_CPU, NVIDIA_M2050_GPU
MB = 10**6


class TestTransfers:
    def test_latency_floor(self):
        assert transfer_seconds(0, GPU) == GPU.link_latency

    def test_linear_in_bytes(self):
        t1 = transfer_seconds(100 * MB, GPU) - GPU.link_latency
        t2 = transfer_seconds(200 * MB, GPU) - GPU.link_latency
        assert t2 == pytest.approx(2 * t1)

    def test_pcie_rate(self):
        t = transfer_seconds(550 * MB, GPU)
        assert t == pytest.approx(0.1, rel=0.01)  # 5.5 GB/s


class TestKernels:
    def test_launch_overhead_floor(self):
        assert kernel_seconds(KernelCost(0, 0), GPU) \
            == GPU.kernel_launch_overhead

    def test_memory_bound_kernel(self):
        cost = KernelCost(global_bytes=1200 * MB, flops=1)
        assert kernel_seconds(cost, GPU) == pytest.approx(
            GPU.kernel_launch_overhead + 0.01, rel=0.01)  # 120 GB/s

    def test_compute_bound_kernel(self):
        cost = KernelCost(global_bytes=8, flops=4 * 10**9, itemsize=8)
        assert kernel_seconds(cost, GPU) == pytest.approx(
            GPU.kernel_launch_overhead + 0.01, rel=0.01)  # 400 GF/s fp64

    def test_roofline_takes_max(self):
        mem = KernelCost(global_bytes=1200 * MB, flops=1)
        both = KernelCost(global_bytes=1200 * MB, flops=4 * 10**9)
        assert kernel_seconds(both, GPU) >= kernel_seconds(mem, GPU)

    def test_fp32_faster_than_fp64(self):
        flops = 10**10
        t64 = kernel_seconds(KernelCost(8, flops, itemsize=8), GPU)
        t32 = kernel_seconds(KernelCost(8, flops, itemsize=4), GPU)
        assert t32 < t64

    def test_gpu_kernel_faster_than_cpu(self):
        cost = KernelCost(global_bytes=1000 * MB, flops=10**9)
        assert kernel_seconds(cost, GPU) < kernel_seconds(cost, CPU)

    def test_register_spill_penalty(self):
        base = KernelCost(global_bytes=100 * MB, flops=0,
                          register_words=GPU.registers_per_work_item)
        spilled = KernelCost(global_bytes=100 * MB, flops=0,
                             register_words=4 * GPU.registers_per_work_item)
        assert kernel_seconds(spilled, GPU) > kernel_seconds(base, GPU)

    def test_cost_addition(self):
        total = KernelCost(100, 10, 4) + KernelCost(50, 5, 8)
        assert total.global_bytes == 150
        assert total.flops == 15
        assert total.register_words == 8


class TestBuild:
    def test_scales_with_kernels_and_lines(self):
        assert build_seconds(2, 100, GPU) > build_seconds(1, 100, GPU)
        assert build_seconds(1, 1000, GPU) > build_seconds(1, 10, GPU)


class TestDeviceSpecs:
    def test_m2050_capacity_is_3_gib(self):
        assert GPU.global_mem_bytes == 3 * 2**30

    def test_cpu_completes_everything_gpu_cannot(self):
        # the paper's fundamental asymmetry
        assert CPU.global_mem_bytes > 30 * GPU.global_mem_bytes

    def test_fits(self):
        assert GPU.fits(GPU.global_mem_bytes)
        assert not GPU.fits(GPU.global_mem_bytes + 1)

    def test_flops_selector(self):
        assert GPU.flops(8) == GPU.flops_fp64
        assert GPU.flops(4) == GPU.flops_fp32
