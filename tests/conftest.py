"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import SubGrid, make_fields, make_mesh


@pytest.fixture(scope="session")
def small_grid() -> SubGrid:
    return SubGrid(6, 7, 8)


@pytest.fixture(scope="session")
def small_fields(small_grid):
    """Deterministic synthetic fields on a 6x7x8 grid (u,v,w,dims,x,y,z)."""
    return make_fields(small_grid, seed=7)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_mesh(small_grid):
    return make_mesh(small_grid.dims)
