"""Tests for block/rank assignment and the distributed driver (Fig 7)."""

import numpy as np
import pytest

from repro.analysis import vortex
from repro.errors import MPIError
from repro.host.visitsim import RectilinearDataset, decompose
from repro.par import (assign_blocks, plan_distributed, run_distributed)


@pytest.fixture
def global_ds(small_fields):
    return RectilinearDataset(
        x=small_fields["x"], y=small_fields["y"], z=small_fields["z"],
        cell_fields={"u": small_fields["u"], "v": small_fields["v"],
                     "w": small_fields["w"]})


class TestAssignment:
    def test_round_robin_even_share(self):
        blocks = decompose((8, 8, 8), (2, 2, 2))  # 64 blocks
        assignments = assign_blocks(blocks, 16)
        assert all(a.n_blocks == 4 for a in assignments)

    def test_device_and_node_binding(self):
        blocks = decompose((4, 4, 4), (2, 2, 2))
        assignments = assign_blocks(blocks, 4, devices_per_node=2)
        assert [a.node for a in assignments] == [0, 0, 1, 1]
        assert [a.device_index for a in assignments] == [0, 1, 0, 1]

    def test_paper_configuration(self):
        """3072 blocks over 256 ranks / 128 nodes: 12 blocks per GPU."""
        blocks = decompose((3072, 3072, 3072), (192, 192, 256))
        assert len(blocks) == 3072
        assignments = assign_blocks(blocks, 256, devices_per_node=2)
        assert all(a.n_blocks == 12 for a in assignments)
        assert assignments[-1].node == 127

    def test_invalid_counts_rejected(self):
        with pytest.raises(MPIError):
            assign_blocks([], 0)


class TestDistributedRun:
    def test_matches_global_computation(self, global_ds, small_fields):
        """The headline correctness property: ghosted distributed
        execution reproduces the single-grid global result exactly."""
        result = run_distributed(
            vortex.Q_CRITERION, global_ds, block_dims=(3, 7, 4),
            n_ranks=4, strategy="fusion", device="gpu")
        expected = vortex.q_criterion_reference(
            *[small_fields[k] for k in
              ("u", "v", "w", "dims", "x", "y", "z")])
        np.testing.assert_allclose(result.field, expected, rtol=1e-12,
                                   atol=1e-12)

    def test_without_ghost_boundaries_differ(self, global_ds,
                                             small_fields):
        """Dropping ghost generation corrupts seam gradients — evidence the
        ghost machinery is doing real work."""
        result = run_distributed(
            vortex.Q_CRITERION, global_ds, block_dims=(3, 7, 4),
            n_ranks=2, ghost_width=0, strategy="fusion", device="cpu")
        expected = vortex.q_criterion_reference(
            *[small_fields[k] for k in
              ("u", "v", "w", "dims", "x", "y", "z")])
        assert np.abs(result.field - expected).max() > 1e-8

    def test_statistics_allreduced(self, global_ds):
        result = run_distributed(
            vortex.VELOCITY_MAGNITUDE, global_ds, block_dims=(3, 7, 4),
            n_ranks=4, strategy="staged", device="cpu")
        assert result.field_min == pytest.approx(result.field.min())
        assert result.field_max == pytest.approx(result.field.max())
        assert result.field_sum == pytest.approx(result.field.sum(),
                                                 rel=1e-12)

    def test_per_rank_stats(self, global_ds):
        result = run_distributed(
            vortex.VELOCITY_MAGNITUDE, global_ds, block_dims=(3, 7, 4),
            n_ranks=4, strategy="fusion", device="gpu")
        assert result.n_ranks == 4
        total_cells = sum(s.n_cells for s in result.rank_stats)
        assert total_cells == global_ds.n_cells
        # fusion: one kernel per block
        for stats in result.rank_stats:
            assert stats.kernel_execs == stats.n_blocks

    def test_too_many_ranks_rejected(self, global_ds):
        with pytest.raises(MPIError, match="reduce ranks"):
            run_distributed(vortex.VELOCITY_MAGNITUDE, global_ds,
                            block_dims=(6, 7, 8), n_ranks=2)


class TestDistributedPlan:
    def test_full_paper_scale(self):
        """Fig 7's configuration planned end to end: every one of the 256
        GPUs fits its 12 ghosted sub-grids comfortably in 3 GiB."""
        plans = plan_distributed(
            vortex.Q_CRITERION, global_dims=(3072, 3072, 3072),
            block_dims=(192, 192, 256), n_ranks=256, strategy="fusion",
            device="gpu")
        assert len(plans) == 256
        assert all(not p.failed for p in plans)
        assert max(p.mem_high_water for p in plans) < 3 * 2**30
        # every plan used the fusion single-kernel path
        assert all(p.counts.kernel_execs == 1 for p in plans)

    def test_reduced_scale_plan(self):
        plans = plan_distributed(
            vortex.VORTICITY_MAGNITUDE, global_dims=(8, 8, 8),
            block_dims=(4, 4, 4), n_ranks=4, strategy="staged",
            device="cpu")
        assert len(plans) == 4
        assert all(p.counts.kernel_execs == 18 for p in plans)


class TestOutOfCoreDistributed:
    def test_store_backed_run_matches_global(self, tmp_path, global_ds,
                                             small_fields):
        """Bricks + disk-assembled ghosts + simulated MPI reproduce the
        single-device global result exactly, with no global arrays in any
        rank."""
        from repro.io import write_decomposed, DecomposedReader
        from repro.par import run_distributed_from_store

        write_decomposed(global_ds, (3, 7, 4), tmp_path / "bricks")
        store = DecomposedReader(tmp_path / "bricks")
        result = run_distributed_from_store(
            vortex.Q_CRITERION, store, n_ranks=4, strategy="fusion",
            device="gpu")
        expected = vortex.q_criterion_reference(
            *[small_fields[k] for k in
              ("u", "v", "w", "dims", "x", "y", "z")])
        np.testing.assert_allclose(result.field, expected, rtol=1e-12,
                                   atol=1e-12)
        assert result.n_ranks == 4

    def test_too_many_ranks_rejected(self, tmp_path, global_ds):
        from repro.io import write_decomposed, DecomposedReader
        from repro.par import run_distributed_from_store

        write_decomposed(global_ds, (6, 7, 8), tmp_path / "bricks")
        store = DecomposedReader(tmp_path / "bricks")
        with pytest.raises(MPIError, match="reduce ranks"):
            run_distributed_from_store(vortex.VELOCITY_MAGNITUDE, store,
                                       n_ranks=5)
