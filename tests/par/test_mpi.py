"""Unit tests for the simulated MPI world."""

import pytest

from repro.errors import MPIError
from repro.par import World, run_world


class TestPointToPoint:
    def test_send_recv(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("hello", dest=1)
                return None
            return comm.recv(source=0)

        assert run_world(2, body) == [None, "hello"]

    def test_ring_exchange(self):
        def body(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        assert run_world(4, body) == [3, 0, 1, 2]

    def test_tags_separate_channels(self):
        def body(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_world(2, body)[1] == ("a", "b")

    def test_sendrecv(self):
        def body(comm):
            other = 1 - comm.rank
            return comm.sendrecv(comm.rank * 10, dest=other, source=other)

        assert run_world(2, body) == [10, 0]

    def test_bad_rank_rejected(self):
        def body(comm):
            comm.send("x", dest=5)

        with pytest.raises(MPIError, match="out of range"):
            run_world(2, body)

    def test_recv_timeout_surfaces_deadlock(self):
        def body(comm):
            if comm.rank == 1:
                return comm.recv(source=0, timeout=0.05)

        with pytest.raises(MPIError, match="timed out"):
            run_world(2, body)


class TestCollectives:
    def test_allreduce_sum(self):
        assert run_world(4, lambda c: c.allreduce(c.rank + 1)) == [10] * 4

    def test_allreduce_custom_op(self):
        assert run_world(4, lambda c: c.allreduce(c.rank, max)) == [3] * 4

    def test_allgather(self):
        assert run_world(3, lambda c: c.allgather(c.rank ** 2)) \
            == [[0, 1, 4]] * 3

    def test_gather_only_root(self):
        results = run_world(3, lambda c: c.gather(c.rank, root=1))
        assert results[0] is None
        assert results[1] == [0, 1, 2]
        assert results[2] is None

    def test_bcast(self):
        def body(comm):
            value = "payload" if comm.rank == 2 else None
            return comm.bcast(value, root=2)

        assert run_world(3, body) == ["payload"] * 3

    def test_scatter(self):
        def body(comm):
            values = [10, 20, 30] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        assert run_world(3, body) == [10, 20, 30]

    def test_scatter_wrong_length_rejected(self):
        def body(comm):
            values = [1] if comm.rank == 0 else None
            return comm.scatter(values, root=0)

        with pytest.raises(MPIError, match="exactly"):
            run_world(2, body)

    def test_consecutive_collectives(self):
        def body(comm):
            a = comm.allreduce(1)
            b = comm.allreduce(2)
            comm.barrier()
            return (a, b)

        assert run_world(3, body) == [(3, 6)] * 3

    def test_single_rank_world(self):
        assert run_world(1, lambda c: c.allreduce(5)) == [5]


class TestWorld:
    def test_zero_ranks_rejected(self):
        with pytest.raises(MPIError):
            World(0)

    def test_exception_propagates(self):
        def body(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.barrier()

        with pytest.raises(ValueError, match="rank 1 exploded"):
            run_world(2, body)

    def test_extra_args_passed(self):
        assert run_world(2, lambda c, k: c.rank * k, 7) == [0, 7]
