"""Unit tests for network validation, scheduling, refcounts, and kinds."""

import pytest

from repro.dataflow import Network, NetworkSpec
from repro.errors import NetworkError, PrimitiveError
from repro.primitives import ResultKind


def simple_spec():
    spec = NetworkSpec()
    u, v = spec.add_source("u"), spec.add_source("v")
    t = spec.add_filter("mult", [u, v])
    out = spec.add_filter("sqrt", [t])
    spec.set_output(out)
    return spec, (u, v, t, out)


class TestValidation:
    def test_valid_network_builds(self):
        spec, _ = simple_spec()
        assert Network(spec).n_filters() == 2

    def test_no_output_rejected(self):
        spec = NetworkSpec()
        spec.add_source("u")
        with pytest.raises(NetworkError, match="no output"):
            Network(spec)

    def test_unknown_filter_rejected(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f = spec.add_filter("made_up", [u])
        spec.set_output(f)
        with pytest.raises(PrimitiveError, match="unknown primitive"):
            Network(spec)

    def test_arity_mismatch_rejected(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f = spec.add_filter("add", [u])  # add wants 2 inputs
        spec.set_output(f)
        with pytest.raises(NetworkError, match="arity"):
            Network(spec)

    def test_decompose_of_scalar_rejected(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        d = spec.add_filter("decompose", [u], params={"component": 0})
        spec.set_output(d)
        with pytest.raises(NetworkError, match="non-vector"):
            Network(spec)

    def test_cycle_rejected(self):
        spec, (u, v, t, out) = simple_spec()
        # force a cycle by tampering with a frozen node's inputs
        import dataclasses
        node = spec.node(t)
        spec.nodes[spec.nodes.index(node)] = dataclasses.replace(
            node, inputs=(u, out))
        spec._by_id[t] = spec.nodes[-2]
        with pytest.raises(NetworkError, match="cycle"):
            Network(spec)


class TestScheduling:
    def test_schedule_respects_dependencies(self):
        spec, (u, v, t, out) = simple_spec()
        order = [n.id for n in Network(spec).schedule()]
        assert order.index(t) > order.index(u)
        assert order.index(t) > order.index(v)
        assert order.index(out) > order.index(t)

    def test_dead_nodes_pruned(self):
        spec, (u, v, t, out) = simple_spec()
        dead = spec.add_filter("neg", [u])  # never consumed
        net = Network(spec)
        assert dead not in [n.id for n in net.schedule()]

    def test_dead_source_pruned(self):
        spec, _ = simple_spec()
        spec.add_source("unused")
        net = Network(spec)
        assert "unused" not in net.live_sources()

    def test_len_counts_live_nodes(self):
        spec, _ = simple_spec()
        assert len(Network(spec)) == 4


class TestRefcounts:
    def test_single_consumers(self):
        spec, (u, v, t, out) = simple_spec()
        counts = Network(spec).refcounts()
        assert counts[u] == 1 and counts[v] == 1 and counts[t] == 1
        assert counts[out] == 1  # the output sink counts as a consumer

    def test_shared_intermediate(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        t = spec.add_filter("sqrt", [u])
        a = spec.add_filter("add", [t, t])
        spec.set_output(a)
        counts = Network(spec).refcounts()
        assert counts[t] == 2

    def test_refcounts_returns_copy(self):
        spec, (u, *_ ) = simple_spec()
        net = Network(spec)
        counts = net.refcounts()
        counts[u] = 99
        assert net.refcounts()[u] == 1


class TestKinds:
    def test_scalar_default(self):
        spec, (u, v, t, out) = simple_spec()
        net = Network(spec)
        assert net.kind_of(u) is ResultKind.SCALAR
        assert net.kind_of(out) is ResultKind.SCALAR

    def test_gradient_is_vector(self):
        spec = NetworkSpec()
        names = [spec.add_source(n) for n in ("u", "dims", "x", "y", "z")]
        g = spec.add_filter("grad3d", names)
        d = spec.add_filter("decompose", [g], params={"component": 0})
        spec.set_output(d)
        net = Network(spec)
        assert net.kind_of(g) is ResultKind.VECTOR
        assert net.kind_of(d) is ResultKind.SCALAR

    def test_source_kind_override(self):
        spec = NetworkSpec()
        vel = spec.add_source("vel")
        d = spec.add_filter("decompose", [vel], params={"component": 1})
        spec.set_output(d)
        net = Network(spec, source_kinds={"vel": ResultKind.VECTOR})
        assert net.kind_of(vel) is ResultKind.VECTOR

    def test_output_ids(self):
        spec, (_, _, _, out) = simple_spec()
        assert Network(spec).output_ids() == [out]
