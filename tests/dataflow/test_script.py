"""Tests for the inspectable network-definition script (Section III-B1)."""

from repro.dataflow import Network, NetworkSpec, render_script
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.analysis.vortex import VORTICITY_MAGNITUDE


def rebuild(script: str) -> NetworkSpec:
    namespace: dict = {}
    exec(compile(script, "<network-script>", "exec"), namespace)
    return namespace["net"]


class TestRenderScript:
    def test_script_is_runnable_and_equivalent(self):
        spec, _ = lower(parse("a = sqrt(u*u + v*v)"))
        spec = eliminate_common_subexpressions(spec)
        net = rebuild(render_script(spec))
        assert [n.signature() for n in net.nodes] == \
            [n.signature() for n in spec.nodes]
        assert net.outputs == spec.outputs
        assert net.aliases == spec.aliases

    def test_paper_expression_round_trips(self):
        spec, _ = lower(parse(VORTICITY_MAGNITUDE))
        spec = eliminate_common_subexpressions(spec)
        net = rebuild(render_script(spec))
        # the rebuilt spec produces a valid, equally-sized network
        assert Network(net).n_filters() == Network(spec).n_filters()

    def test_script_mentions_api_calls(self):
        spec, _ = lower(parse("a = 0.5 * u"))
        script = render_script(spec)
        assert "add_source('u')" in script or 'add_source("u")' in script
        assert "add_const" in script
        assert "set_output" in script

    def test_params_rendered(self):
        spec, _ = lower(parse("a = grad3d(u,dims,x,y,z)[1]"))
        script = render_script(spec)
        assert "component" in script
        rebuilt = rebuild(script)
        decomposes = [n for n in rebuilt.nodes if n.filter == "decompose"]
        assert decomposes[0].param("component") == 1
