"""Tests for DOT rendering of networks (Fig 4)."""

from repro.analysis.vortex import VORTICITY_MAGNITUDE
from repro.dataflow import render_dot
from repro.expr import eliminate_common_subexpressions, lower, parse


def spec_for(text):
    spec, _ = lower(parse(text))
    return eliminate_common_subexpressions(spec)


class TestRenderDot:
    def test_basic_structure(self):
        dot = render_dot(spec_for("a = u + 0.5"))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"u"' in dot
        assert "diamond" in dot        # the constant
        assert '"derived field"' in dot

    def test_balanced_braces_and_quotes(self):
        dot = render_dot(spec_for(VORTICITY_MAGNITUDE))
        assert dot.count("{") == dot.count("}")
        assert dot.count('"') % 2 == 0

    def test_edges_match_inputs(self):
        spec = spec_for("a = u * v")
        dot = render_dot(spec)
        node_id = spec.outputs[0]
        assert f'"u" -> "{node_id}"' in dot
        assert f'"v" -> "{node_id}"' in dot

    def test_user_names_attached(self):
        dot = render_dot(spec_for("speed = sqrt(u*u)"))
        assert "speed" in dot

    def test_output_highlighted(self):
        dot = render_dot(spec_for("a = u + v"))
        assert "#ffd9d9" in dot

    def test_decompose_shows_component(self):
        dot = render_dot(spec_for("a = grad3d(u,dims,x,y,z)[2]"))
        assert "decompose[2]" in dot

    def test_graph_name_escaped(self):
        dot = render_dot(spec_for("a = u"), graph_name='we"ird')
        assert 'digraph "we\\"ird"' in dot
