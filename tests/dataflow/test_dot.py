"""Tests for DOT rendering of networks (Fig 4)."""

from repro.analysis.vortex import VORTICITY_MAGNITUDE
from repro.dataflow import render_dot
from repro.expr import eliminate_common_subexpressions, lower, parse
from repro.trace import DeviceSpan


def spec_for(text):
    spec, _ = lower(parse(text))
    return eliminate_common_subexpressions(spec)


def kernel_span(name, seconds):
    return DeviceSpan(device="dev", lane="t/kernel", name=name,
                      category="kernel", start=0.0, duration=seconds)


class TestRenderDot:
    def test_basic_structure(self):
        dot = render_dot(spec_for("a = u + 0.5"))
        assert dot.startswith("digraph")
        assert dot.rstrip().endswith("}")
        assert '"u"' in dot
        assert "diamond" in dot        # the constant
        assert '"derived field"' in dot

    def test_balanced_braces_and_quotes(self):
        dot = render_dot(spec_for(VORTICITY_MAGNITUDE))
        assert dot.count("{") == dot.count("}")
        assert dot.count('"') % 2 == 0

    def test_edges_match_inputs(self):
        spec = spec_for("a = u * v")
        dot = render_dot(spec)
        node_id = spec.outputs[0]
        assert f'"u" -> "{node_id}"' in dot
        assert f'"v" -> "{node_id}"' in dot

    def test_user_names_attached(self):
        dot = render_dot(spec_for("speed = sqrt(u*u)"))
        assert "speed" in dot

    def test_output_highlighted(self):
        dot = render_dot(spec_for("a = u + v"))
        assert "#ffd9d9" in dot

    def test_decompose_shows_component(self):
        dot = render_dot(spec_for("a = grad3d(u,dims,x,y,z)[2]"))
        assert "decompose[2]" in dot

    def test_graph_name_escaped(self):
        dot = render_dot(spec_for("a = u"), graph_name='we"ird')
        assert 'digraph "we\\"ird"' in dot


class TestTraceAnnotation:
    def test_no_trace_no_timings(self):
        assert "ms" not in render_dot(spec_for("a = u * v"))

    def test_filter_annotated_with_kernel_time(self):
        spans = [kernel_span("k_mult_bb", 0.002)]
        dot = render_dot(spec_for("a = u * v"), trace=spans)
        assert "mult\\na\\n2.000 ms" in dot

    def test_multiple_launches_aggregate_with_count(self):
        spans = [kernel_span("k_mult_bb", 0.001),
                 kernel_span("k_mult_bb", 0.003)]
        dot = render_dot(spec_for("a = u * v"), trace=spans)
        assert "mult\\na\\n4.000 ms (2 launches)" in dot

    def test_unmatched_kernels_ignored(self):
        spans = [kernel_span("k_multiply_bb", 0.002)]   # not k_mult/k_mult_*
        dot = render_dot(spec_for("a = u * v"), trace=spans)
        assert "ms" not in dot

    def test_transfer_spans_ignored(self):
        spans = [DeviceSpan(device="dev", lane="t/dev-write", name="u",
                            category="dev-write", start=0.0, duration=1.0)]
        assert "ms" not in render_dot(spec_for("a = u * v"), trace=spans)

    def test_fused_kernels_reported_on_graph_label(self):
        spans = [kernel_span("k_fused_s0", 0.005)]
        dot = render_dot(spec_for("a = u * v"), trace=spans)
        assert 'label="fused kernels: k_fused_s0: 5.000 ms"' in dot
        assert "labelloc=b;" in dot

    def test_annotated_from_real_traced_run(self, small_fields):
        """End to end: trace a roundtrip execution, feed the tracer to
        render_dot, and the hot filter boxes carry timings."""
        from repro.host.engine import DerivedFieldEngine
        from repro.trace import Tracer

        tracer = Tracer()
        engine = DerivedFieldEngine(device="cpu", strategy="roundtrip",
                                    tracer=tracer)
        compiled = engine.compile(VORTICITY_MAGNITUDE)
        inputs = {k: small_fields[k] for k in compiled.required_inputs}
        engine.execute(compiled, inputs)
        dot = render_dot(compiled.network.spec, trace=tracer)
        assert "ms" in dot
        assert dot.count("{") == dot.count("}")
        assert dot.count('"') % 2 == 0
