"""Unit tests for the network specification / create-and-connect API."""

import pytest

from repro.dataflow import NetworkSpec
from repro.dataflow.spec import CONST, SOURCE
from repro.errors import NetworkError


class TestConstruction:
    def test_add_source(self):
        spec = NetworkSpec()
        assert spec.add_source("u") == "u"
        assert spec.node("u").filter == SOURCE

    def test_add_source_idempotent(self):
        spec = NetworkSpec()
        assert spec.add_source("u") == spec.add_source("u")
        assert len(spec) == 1

    def test_add_const_pools(self):
        spec = NetworkSpec()
        assert spec.add_const(0.5) == spec.add_const(0.5)
        assert spec.add_const(0.5) != spec.add_const(0.25)

    def test_const_pooling_distinguishes_int_float(self):
        spec = NetworkSpec()
        # repr-keyed pooling: 1 and 1.0 are distinct literal spellings
        assert spec.add_const(1) != spec.add_const(1.0)

    def test_add_filter_generic_names(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f1 = spec.add_filter("sqrt", [u])
        f2 = spec.add_filter("sqrt", [f1])
        assert f1 != f2
        assert f1.startswith("op") and f2.startswith("op")

    def test_filter_unknown_input_rejected(self):
        spec = NetworkSpec()
        with pytest.raises(NetworkError, match="unknown node"):
            spec.add_filter("sqrt", ["ghost"])

    def test_params_stored_sorted(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        node_id = spec.add_filter("decompose", [u],
                                  params={"component": 1})
        assert spec.node(node_id).param("component") == 1
        assert spec.node(node_id).param("missing", 42) == 42

    def test_duplicate_node_id_rejected(self):
        spec = NetworkSpec()
        spec.add_source("u")
        with pytest.raises(NetworkError, match="duplicate"):
            spec._append(spec.node("u"))


class TestAliasesAndOutputs:
    def test_alias_and_resolve(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f = spec.add_filter("sqrt", [u])
        spec.alias("root_u", f)
        assert spec.resolve("root_u") == f
        assert spec.resolve(f) == f

    def test_alias_unknown_target_rejected(self):
        spec = NetworkSpec()
        with pytest.raises(NetworkError):
            spec.alias("name", "op9999")

    def test_resolve_unknown_rejected(self):
        spec = NetworkSpec()
        with pytest.raises(NetworkError):
            spec.resolve("nope")

    def test_set_output_resolves_alias(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f = spec.add_filter("sqrt", [u])
        spec.alias("r", f)
        spec.set_output("r")
        assert spec.outputs == [f]

    def test_set_output_idempotent(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        spec.set_output(u)
        spec.set_output(u)
        assert spec.outputs == [u]


class TestSignatures:
    def test_signature_identity(self):
        spec = NetworkSpec()
        u, v = spec.add_source("u"), spec.add_source("v")
        a = spec.add_filter("add", [u, v])
        b = spec.add_filter("add", [u, v])
        assert spec.node(a).signature() == spec.node(b).signature()

    def test_signature_differs_on_params(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        a = spec.add_filter("decompose", [u], params={"component": 0})
        b = spec.add_filter("decompose", [u], params={"component": 1})
        assert spec.node(a).signature() != spec.node(b).signature()


class TestRewrite:
    def test_rewrite_drops_and_remaps(self):
        spec = NetworkSpec()
        u, v = spec.add_source("u"), spec.add_source("v")
        a = spec.add_filter("add", [u, v])
        b = spec.add_filter("add", [u, v])   # duplicate
        top = spec.add_filter("mult", [a, b])
        spec.set_output(top)
        out = spec.rewrite(keep=[u, v, a, top], replacement={b: a})
        assert len(out) == 4
        assert out.node(top).inputs == (a, a)
        assert out.outputs == [top]

    def test_rewrite_preserves_const_pool(self):
        spec = NetworkSpec()
        c = spec.add_const(2.0)
        u = spec.add_source("u")
        f = spec.add_filter("mult", [c, u])
        spec.set_output(f)
        out = spec.rewrite(keep=[c, u, f], replacement={})
        assert out.add_const(2.0) == c  # pool survived

    def test_rewrite_keeps_surviving_aliases(self):
        spec = NetworkSpec()
        u = spec.add_source("u")
        f = spec.add_filter("sqrt", [u])
        spec.alias("r", f)
        spec.set_output(f)
        out = spec.rewrite(keep=[u, f], replacement={})
        assert out.resolve("r") == f
