"""Regex-table lexer generator, modelled on PLY's ``lex`` module.

The paper builds its expression front-end with PLY; PLY is not available
offline, so this module provides the same capability from scratch.  A lexer
is described by a :class:`LexerSpec`: an ordered list of token rules (name,
regex, optional action), a set of keywords promoted from identifiers, and
characters to ignore.  :func:`build_lexer` compiles the spec into a single
alternation regex with named groups — the same technique PLY uses — and
returns a :class:`Lexer` that yields :class:`Token` objects.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence

from ..errors import GrammarError, LexError

__all__ = ["Token", "TokenRule", "LexerSpec", "Lexer", "build_lexer"]


@dataclass(frozen=True)
class Token:
    """A single lexeme.

    ``type`` is the terminal name used by the grammar, ``value`` the
    (possibly converted) lexeme, ``pos`` the character offset and ``line``
    the 1-based line number — both used for error reporting.
    """

    type: str
    value: object
    pos: int = 0
    line: int = 1

    def __repr__(self) -> str:  # compact, test-friendly
        return f"Token({self.type}, {self.value!r})"


@dataclass(frozen=True)
class TokenRule:
    """One lexing rule.

    ``action`` may convert the matched text (e.g. ``float``); returning
    ``None`` from an action discards the token (comments, whitespace runs).
    """

    name: str
    pattern: str
    action: Optional[Callable[[str], object]] = None


@dataclass
class LexerSpec:
    """Declarative description of a lexer.

    Rules are tried in order; the first (not longest) match wins, exactly as
    in PLY's function-rule ordering.  Put longer literals before their
    prefixes (``<=`` before ``<``).
    """

    rules: Sequence[TokenRule]
    keywords: dict[str, str] = field(default_factory=dict)
    identifier_rule: str = "IDENT"
    ignore: str = " \t\r"

    def token_names(self) -> set[str]:
        names = {r.name for r in self.rules}
        names.update(self.keywords.values())
        return names


class Lexer:
    """A compiled lexer.  Use :meth:`tokens` to scan a string."""

    def __init__(self, spec: LexerSpec, master: "re.Pattern[str]",
                 group_to_rule: dict[str, TokenRule]):
        self._spec = spec
        self._master = master
        self._group_to_rule = group_to_rule

    def tokens(self, text: str) -> Iterator[Token]:
        """Yield tokens for ``text``; raise :class:`LexError` on bad input."""
        spec = self._spec
        pos = 0
        line = 1
        n = len(text)
        while pos < n:
            ch = text[pos]
            if ch in spec.ignore:
                pos += 1
                continue
            if ch == "\n":
                line += 1
                pos += 1
                continue
            m = self._master.match(text, pos)
            if m is None:
                raise LexError(
                    f"illegal character {ch!r} at line {line}", pos, line)
            rule = self._group_to_rule[m.lastgroup]  # type: ignore[index]
            lexeme = m.group()
            value: object = lexeme
            if rule.action is not None:
                value = rule.action(lexeme)
            if value is not None:
                tok_type = rule.name
                if rule.name == spec.identifier_rule:
                    tok_type = spec.keywords.get(str(value), rule.name)
                yield Token(tok_type, value, pos, line)
            line += lexeme.count("\n")
            pos = m.end()

    def scan(self, text: str) -> list[Token]:
        """Eagerly tokenize ``text`` into a list."""
        return list(self.tokens(text))


def build_lexer(spec: LexerSpec) -> Lexer:
    """Compile ``spec`` into a :class:`Lexer`.

    Raises :class:`GrammarError` for duplicate rule names, invalid regexes,
    or rules that can match the empty string (which would loop forever).
    """
    if not spec.rules:
        raise GrammarError("lexer spec has no rules")
    group_to_rule: dict[str, TokenRule] = {}
    parts: list[str] = []
    for i, rule in enumerate(spec.rules):
        if not re.fullmatch(r"[A-Z_][A-Z0-9_]*", rule.name):
            raise GrammarError(
                f"token name {rule.name!r} must be UPPER_SNAKE_CASE")
        group = f"g{i}"
        try:
            compiled = re.compile(rule.pattern)
        except re.error as exc:
            raise GrammarError(
                f"bad regex for token {rule.name}: {exc}") from exc
        if compiled.match(""):
            raise GrammarError(
                f"token {rule.name} regex matches the empty string")
        group_to_rule[group] = rule
        parts.append(f"(?P<{group}>{rule.pattern})")
    master = re.compile("|".join(parts))
    return Lexer(spec, master, group_to_rule)
