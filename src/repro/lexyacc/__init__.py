"""A from-scratch lex/yacc substitute (the paper uses PLY).

Public surface:

* :class:`~repro.lexyacc.lexer.LexerSpec` / :func:`~repro.lexyacc.lexer.build_lexer`
  — regex-table lexer generator.
* :class:`~repro.lexyacc.grammar.Grammar` / :class:`~repro.lexyacc.grammar.Production`
  / :class:`~repro.lexyacc.grammar.Precedence` — grammar definition.
* :func:`~repro.lexyacc.lr.build_lalr_table` — LALR(1) table construction.
* :class:`~repro.lexyacc.parser.LRParser` — table-driven shift/reduce parser.
"""

from .grammar import EOF, EPSILON, Grammar, Precedence, Production
from .lexer import Lexer, LexerSpec, Token, TokenRule, build_lexer
from .lr import Conflict, LRItem, ParseTable, build_lalr_table
from .parser import LRParser

__all__ = [
    "EOF", "EPSILON", "Grammar", "Precedence", "Production",
    "Lexer", "LexerSpec", "Token", "TokenRule", "build_lexer",
    "Conflict", "LRItem", "ParseTable", "build_lalr_table",
    "LRParser",
]
