"""Table-driven shift/reduce parser executing an LALR(1) :class:`ParseTable`.

This is the runtime half of the PLY substitute: it walks the token stream,
maintains the state and semantic-value stacks, and invokes production
actions on reduce.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..errors import ParseError
from .grammar import EOF, Grammar
from .lexer import Token
from .lr import ParseTable, build_lalr_table

__all__ = ["LRParser"]


class LRParser:
    """An LALR(1) parser bound to a grammar.

    Build once, reuse for many inputs — table construction is the expensive
    step, parsing is linear in the token count.
    """

    def __init__(self, grammar: Grammar, table: Optional[ParseTable] = None):
        self.grammar = grammar
        self.table = table if table is not None else build_lalr_table(grammar)

    def parse(self, tokens: Iterable[Token]) -> object:
        """Parse a token stream and return the start symbol's semantic value.

        Raises :class:`ParseError` with the offending token and the set of
        expected terminals on a syntax error.
        """
        table = self.table
        productions = self.grammar.productions
        states: list[int] = [0]
        values: list[object] = []
        stream = iter(tokens)
        token = next(stream, None)
        while True:
            lookahead = token.type if token is not None else EOF
            entry = table.action[states[-1]].get(lookahead)
            if entry is None:
                expected = ", ".join(table.expected_tokens(states[-1]))
                if token is None:
                    raise ParseError(
                        f"unexpected end of input; expected one of: {expected}")
                raise ParseError(
                    f"syntax error at {token.value!r} (line {token.line}); "
                    f"expected one of: {expected}", token)
            op, target = entry
            if op == "shift":
                states.append(target)
                values.append(token.value if token is not None else None)
                token = next(stream, None)
            elif op == "reduce":
                prod = productions[target]
                n = len(prod.rhs)
                if n:
                    args = values[-n:]
                    del states[-n:]
                    del values[-n:]
                else:
                    args = []
                result = prod.action(*args) if prod.action else (
                    args[0] if args else None)
                goto_state = table.goto[states[-1]].get(prod.lhs)
                if goto_state is None:  # pragma: no cover - table invariant
                    raise ParseError(
                        f"internal: no goto for {prod.lhs} in state {states[-1]}")
                states.append(goto_state)
                values.append(result)
            else:  # accept
                return values[-1] if values else None
