"""LALR(1) parse-table construction.

The paper's front-end uses PLY, which implements Look-Ahead LR(1) parsing.
This module rebuilds that machinery: the LR(0) canonical collection, LALR(1)
lookahead computation by spontaneous generation and propagation (the
dragon-book Algorithm 4.63, the same approach PLY uses), and ACTION/GOTO
table construction with yacc-style precedence-based conflict resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import GrammarError
from .grammar import EOF, Grammar, Production

__all__ = ["LRItem", "ParseTable", "Conflict", "build_lalr_table"]

# Dummy lookahead used during spontaneous/propagated lookahead discovery.
_HASH = "#"


@dataclass(frozen=True, order=True)
class LRItem:
    """An LR(0) item: production index and dot position."""

    prod: int
    dot: int

    def next_symbol(self, grammar: Grammar) -> Optional[str]:
        rhs = grammar.productions[self.prod].rhs
        return rhs[self.dot] if self.dot < len(rhs) else None

    def advance(self) -> "LRItem":
        return LRItem(self.prod, self.dot + 1)

    def describe(self, grammar: Grammar) -> str:
        p = grammar.productions[self.prod]
        rhs = list(p.rhs)
        rhs.insert(self.dot, ".")
        return f"{p.lhs} -> {' '.join(rhs)}"


@dataclass(frozen=True)
class Conflict:
    """A table conflict and how it was resolved."""

    state: int
    token: str
    kind: str          # "shift/reduce" or "reduce/reduce"
    resolution: str    # human-readable description


@dataclass
class ParseTable:
    """ACTION/GOTO tables plus the grammar they were built from.

    ``action[state][token]`` is ``("shift", state)``, ``("reduce", prod)``,
    or ``("accept", 0)``.  ``goto[state][nonterminal]`` is a state index.
    """

    grammar: Grammar
    action: list[dict[str, tuple[str, int]]]
    goto: list[dict[str, int]]
    conflicts: list[Conflict] = field(default_factory=list)
    resolutions: list[Conflict] = field(default_factory=list)
    state_items: list[frozenset[LRItem]] = field(default_factory=list)

    @property
    def n_states(self) -> int:
        return len(self.action)

    def expected_tokens(self, state: int) -> list[str]:
        """Terminals with an entry in the given state, for error messages."""
        return sorted(self.action[state])

    def describe_state(self, state: int) -> str:
        items = sorted(self.state_items[state])
        return "\n".join(i.describe(self.grammar) for i in items)


def _lr0_closure(grammar: Grammar, items: frozenset[LRItem]) -> frozenset[LRItem]:
    closure = set(items)
    stack = list(items)
    while stack:
        item = stack.pop()
        symbol = item.next_symbol(grammar)
        if symbol is None or grammar.is_terminal(symbol):
            continue
        for prod_idx in grammar.productions_for(symbol):
            new = LRItem(prod_idx, 0)
            if new not in closure:
                closure.add(new)
                stack.append(new)
    return frozenset(closure)


def _lr0_goto(grammar: Grammar, items: frozenset[LRItem],
              symbol: str) -> frozenset[LRItem]:
    moved = {i.advance() for i in items if i.next_symbol(grammar) == symbol}
    return _lr0_closure(grammar, frozenset(moved)) if moved else frozenset()


def _kernel(grammar: Grammar, items: frozenset[LRItem]) -> frozenset[LRItem]:
    return frozenset(i for i in items if i.dot > 0 or i.prod == 0)


def _canonical_collection(grammar: Grammar):
    """BFS over LR(0) item sets.  Returns (states, transitions) where states
    are closed item sets and transitions maps (state, symbol) -> state."""
    start = _lr0_closure(grammar, frozenset({LRItem(0, 0)}))
    states: list[frozenset[LRItem]] = [start]
    index: dict[frozenset[LRItem], int] = {start: 0}
    transitions: dict[tuple[int, str], int] = {}
    work = [0]
    while work:
        i = work.pop()
        symbols = sorted({s for it in states[i]
                          if (s := it.next_symbol(grammar)) is not None})
        for symbol in symbols:
            target = _lr0_goto(grammar, states[i], symbol)
            if not target:
                continue
            j = index.get(target)
            if j is None:
                j = len(states)
                states.append(target)
                index[target] = j
                work.append(j)
            transitions[(i, symbol)] = j
    return states, transitions


def _lr1_closure(grammar: Grammar,
                 seed: set[tuple[LRItem, str]]) -> set[tuple[LRItem, str]]:
    """Closure over LR(1) items (item, lookahead)."""
    closure = set(seed)
    stack = list(seed)
    while stack:
        item, lookahead = stack.pop()
        symbol = item.next_symbol(grammar)
        if symbol is None or grammar.is_terminal(symbol):
            continue
        beta = grammar.productions[item.prod].rhs[item.dot + 1:]
        lookaheads = grammar.first_of_sequence(beta, lookahead)
        for prod_idx in grammar.productions_for(symbol):
            for la in lookaheads:
                new = (LRItem(prod_idx, 0), la)
                if new not in closure:
                    closure.add(new)
                    stack.append(new)
    return closure


def _compute_lookaheads(grammar: Grammar, states, transitions):
    """Spontaneous generation + propagation of LALR(1) lookaheads for kernel
    items (dragon-book Algorithm 4.63)."""
    kernels = [_kernel(grammar, s) for s in states]
    lookaheads: dict[tuple[int, LRItem], set[str]] = {
        (i, item): set() for i, k in enumerate(kernels) for item in k}
    lookaheads[(0, LRItem(0, 0))].add(EOF)
    propagate: dict[tuple[int, LRItem], set[tuple[int, LRItem]]] = {
        key: set() for key in lookaheads}

    for i, kernel in enumerate(kernels):
        for kitem in kernel:
            closure = _lr1_closure(grammar, {(kitem, _HASH)})
            for item, la in closure:
                symbol = item.next_symbol(grammar)
                if symbol is None:
                    continue
                j = transitions.get((i, symbol))
                if j is None:
                    continue
                target = (j, item.advance())
                if la == _HASH:
                    propagate[(i, kitem)].add(target)
                else:
                    lookaheads[target].add(la)

    changed = True
    while changed:
        changed = False
        for source, targets in propagate.items():
            las = lookaheads[source]
            if not las:
                continue
            for target in targets:
                before = len(lookaheads[target])
                lookaheads[target] |= las
                if len(lookaheads[target]) != before:
                    changed = True
    return kernels, lookaheads


def _resolve_shift_reduce(grammar: Grammar, token: str, prod: Production):
    """Return ('shift'|'reduce'|'error', description) per yacc rules."""
    tok_prec = grammar.precedence_of(token)
    prod_prec = grammar.production_precedence(prod)
    if tok_prec is None or prod_prec is None:
        return "shift", "unresolved: defaulted to shift"
    if prod_prec[1] > tok_prec[1]:
        return "reduce", "production has higher precedence"
    if prod_prec[1] < tok_prec[1]:
        return "shift", "token has higher precedence"
    assoc = tok_prec[0]
    if assoc == "left":
        return "reduce", "equal precedence, left-associative"
    if assoc == "right":
        return "shift", "equal precedence, right-associative"
    return "error", "equal precedence, nonassociative"


def build_lalr_table(grammar: Grammar) -> ParseTable:
    """Construct the LALR(1) ACTION/GOTO tables for ``grammar``.

    Shift/reduce conflicts are resolved with precedence declarations when
    available (defaulting to shift, as yacc does); reduce/reduce conflicts
    pick the earlier production.  All resolutions are recorded on the
    returned table's ``conflicts`` list so callers can assert a grammar is
    conflict-free.
    """
    states, transitions = _canonical_collection(grammar)
    kernels, lookaheads = _compute_lookaheads(grammar, states, transitions)

    action: list[dict[str, tuple[str, int]]] = [dict() for _ in states]
    goto: list[dict[str, int]] = [dict() for _ in states]
    conflicts: list[Conflict] = []
    resolutions: list[Conflict] = []

    for (i, symbol), j in transitions.items():
        if grammar.is_terminal(symbol):
            action[i][symbol] = ("shift", j)
        else:
            goto[i][symbol] = j

    for i, kernel in enumerate(kernels):
        # LR(1) closure of the kernel with its computed lookaheads gives the
        # complete items (dot at end) that trigger reductions in state i.
        seed = {(item, la) for item in kernel
                for la in lookaheads[(i, item)]}
        for item, la in _lr1_closure(grammar, seed):
            if item.next_symbol(grammar) is not None:
                continue
            if item.prod == 0:
                if la == EOF:
                    action[i][EOF] = ("accept", 0)
                continue
            existing = action[i].get(la)
            if existing is None:
                action[i][la] = ("reduce", item.prod)
            elif existing[0] == "shift":
                choice, why = _resolve_shift_reduce(
                    grammar, la, grammar.productions[item.prod])
                if choice == "reduce":
                    action[i][la] = ("reduce", item.prod)
                elif choice == "error":
                    del action[i][la]
                record = Conflict(i, la, "shift/reduce", f"{choice} ({why})")
                # Precedence-resolved decisions are intended grammar design
                # (yacc does not warn about them); only defaulted ones count
                # as real conflicts.
                if why.startswith("unresolved"):
                    conflicts.append(record)
                else:
                    resolutions.append(record)
            elif existing[0] == "reduce" and existing[1] != item.prod:
                keep = min(existing[1], item.prod)
                action[i][la] = ("reduce", keep)
                conflicts.append(Conflict(
                    i, la, "reduce/reduce",
                    f"kept earlier production {keep}"))

    return ParseTable(grammar, action, goto, conflicts, resolutions, states)
