"""Context-free grammar objects for the LALR(1) parser generator.

A :class:`Grammar` is a list of :class:`Production` rules plus a start
symbol.  Terminals are whatever symbols never appear on a left-hand side.
The class computes the NULLABLE set and FIRST sets needed for LALR(1) table
construction, and supports precedence/associativity declarations used to
resolve shift/reduce conflicts the same way yacc and PLY do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Callable, Iterable, Optional, Sequence

from ..errors import GrammarError

__all__ = ["Production", "Precedence", "Grammar", "EOF", "EPSILON"]

EOF = "$end"
EPSILON = "<empty>"


@dataclass(frozen=True)
class Production:
    """``lhs -> rhs`` with an optional semantic ``action``.

    The action receives one positional argument per RHS symbol (the token
    value for terminals, the action result for nonterminals) and returns
    the semantic value of the LHS.  ``prec`` optionally overrides the
    production's precedence terminal (yacc's ``%prec``).
    """

    lhs: str
    rhs: tuple[str, ...]
    action: Optional[Callable[..., object]] = None
    prec: Optional[str] = None

    def __str__(self) -> str:
        rhs = " ".join(self.rhs) if self.rhs else EPSILON
        return f"{self.lhs} -> {rhs}"


@dataclass(frozen=True)
class Precedence:
    """One precedence level: ('left'|'right'|'nonassoc', terminals...)."""

    assoc: str
    tokens: tuple[str, ...]

    def __post_init__(self):
        if self.assoc not in ("left", "right", "nonassoc"):
            raise GrammarError(f"bad associativity {self.assoc!r}")


class Grammar:
    """An augmented context-free grammar.

    ``productions[0]`` is always the synthetic start production
    ``S' -> start`` added here, matching the textbook LALR construction.
    """

    def __init__(self, productions: Sequence[Production], start: str,
                 precedence: Sequence[Precedence] = ()):
        if not productions:
            raise GrammarError("grammar has no productions")
        self.start = start
        aug = Production("S'", (start,))
        self.productions: list[Production] = [aug, *productions]
        self.nonterminals: set[str] = {p.lhs for p in self.productions}
        rhs_symbols = {s for p in self.productions for s in p.rhs}
        self.terminals: set[str] = (rhs_symbols - self.nonterminals) | {EOF}
        if start not in self.nonterminals:
            raise GrammarError(f"start symbol {start!r} has no productions")
        undefined = {
            s for p in self.productions for s in p.rhs
            if s not in self.nonterminals and s not in self.terminals}
        if undefined:
            raise GrammarError(f"undefined symbols: {sorted(undefined)}")
        self._prods_for: dict[str, list[int]] = {}
        for i, p in enumerate(self.productions):
            self._prods_for.setdefault(p.lhs, []).append(i)
        self._prec_of: dict[str, tuple[str, int]] = {}
        for level, decl in enumerate(precedence, start=1):
            for tok in decl.tokens:
                if tok in self._prec_of:
                    raise GrammarError(
                        f"token {tok} appears in two precedence levels")
                self._prec_of[tok] = (decl.assoc, level)
        self.nullable: frozenset[str] = self._compute_nullable()
        self.first: dict[str, frozenset[str]] = self._compute_first()

    # -- structure ---------------------------------------------------------

    def productions_for(self, nonterminal: str) -> list[int]:
        """Indices of productions with the given LHS."""
        return self._prods_for.get(nonterminal, [])

    def is_terminal(self, symbol: str) -> bool:
        return symbol in self.terminals

    def precedence_of(self, terminal: str) -> Optional[tuple[str, int]]:
        """(assoc, level) of a terminal, or None if undeclared."""
        return self._prec_of.get(terminal)

    def production_precedence(self, prod: Production) -> Optional[tuple[str, int]]:
        """Precedence of a production: its %prec token, else its rightmost
        terminal — the yacc rule."""
        if prod.prec is not None:
            return self._prec_of.get(prod.prec)
        for symbol in reversed(prod.rhs):
            if self.is_terminal(symbol):
                return self._prec_of.get(symbol)
        return None

    # -- NULLABLE / FIRST ----------------------------------------------------

    def _compute_nullable(self) -> frozenset[str]:
        nullable: set[str] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                if p.lhs in nullable:
                    continue
                if all(s in nullable for s in p.rhs):
                    nullable.add(p.lhs)
                    changed = True
        return frozenset(nullable)

    def _compute_first(self) -> dict[str, frozenset[str]]:
        first: dict[str, set[str]] = {t: {t} for t in self.terminals}
        for nt in self.nonterminals:
            first[nt] = set()
        changed = True
        while changed:
            changed = False
            for p in self.productions:
                target = first[p.lhs]
                before = len(target)
                for symbol in p.rhs:
                    target |= first[symbol]
                    if symbol not in self.nullable:
                        break
                if len(target) != before:
                    changed = True
        return {k: frozenset(v) for k, v in first.items()}

    def first_of_sequence(self, symbols: Iterable[str],
                          lookahead: Optional[str] = None) -> frozenset[str]:
        """FIRST of a symbol string, optionally followed by a lookahead
        terminal (used when closing LR(1) items)."""
        out: set[str] = set()
        for symbol in symbols:
            out |= self.first[symbol]
            if symbol not in self.nullable:
                return frozenset(out)
        if lookahead is not None:
            out.add(lookahead)
        return frozenset(out)

    def sequence_nullable(self, symbols: Iterable[str]) -> bool:
        return all(s in self.nullable for s in symbols)

    def __str__(self) -> str:
        return "\n".join(f"{i}: {p}" for i, p in enumerate(self.productions))
