"""Exception hierarchy shared across the framework.

Every subsystem raises exceptions derived from :class:`ReproError` so host
applications embedding the framework in situ can catch one base class.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all framework errors."""


class ExpressionError(ReproError):
    """Problem with a user expression (lexing, parsing, or lowering)."""


class LexError(ExpressionError):
    """Illegal character or token in an expression."""

    def __init__(self, message: str, position: int = -1, line: int = -1):
        super().__init__(message)
        self.position = position
        self.line = line


class ParseError(ExpressionError):
    """Syntax error while parsing an expression."""

    def __init__(self, message: str, token=None):
        super().__init__(message)
        self.token = token


class GrammarError(ReproError):
    """A grammar definition handed to the parser generator is invalid."""


class LoweringError(ExpressionError):
    """The expression parsed, but could not be turned into a network."""


class NetworkError(ReproError):
    """Invalid dataflow network (cycle, missing input, unknown filter...)."""


class PrimitiveError(ReproError):
    """A derived-field primitive is misused or misdefined."""


class CLError(ReproError):
    """Base class for the simulated OpenCL runtime."""


class CLOutOfMemoryError(CLError):
    """Device global memory exhausted (mirrors CL_MEM_OBJECT_ALLOCATION_FAILURE)."""

    def __init__(self, message: str, requested: int = 0, available: int = 0):
        super().__init__(message)
        self.requested = requested
        self.available = available


class CLBuildError(CLError):
    """Simulated kernel compilation failed."""


class CLInvalidOperation(CLError):
    """Operation on a released/invalid CL object."""


class StrategyError(ReproError):
    """An execution strategy could not execute the network."""


class CodegenError(ReproError):
    """The compiled executor backend could not lower a network."""


class HostInterfaceError(ReproError):
    """Bad inputs handed to the in-situ host interface."""


class ServiceError(ReproError):
    """Base class for the derived-field service layer."""


class ServiceOverloaded(ServiceError):
    """Admission queue at capacity; the request was rejected (backpressure)."""

    def __init__(self, message: str, depth: int = 0):
        super().__init__(message)
        self.depth = depth


class ServiceClosed(ServiceError):
    """The service is shut down (or shutting down) and takes no new work."""


class RequestTimedOut(ServiceError):
    """A request's deadline expired before it could be served."""


class RequestCancelled(ServiceError):
    """A request was cancelled by the client before it ran."""


class MPIError(ReproError):
    """Error in the simulated MPI layer."""
