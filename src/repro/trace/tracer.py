"""The span tracer: end-to-end timing attribution for one execution stack.

The paper's evaluation attributes runtime to kernels vs. transfers (Fig 5,
Table II); the rest of the repo grew layers the paper never had — plan
caches, buffer pools, a concurrent service — whose costs the aggregate
counters cannot attribute.  :class:`Tracer` records a *span tree*: every
instrumented phase (parse, lower, plan, launch, queue wait, worker
execution) opens a :meth:`Tracer.span` context manager that captures
monotonic start/end times, a unique span id, and the id of the enclosing
span on the same thread.  Root spans mint a fresh *trace id*; children
inherit it, so one service request's phases — crossing the admission queue
into a worker thread — share a single id that is surfaced in metrics
snapshots and request results.

Three record kinds come out of a tracer:

* **host spans** — wall-clock phases from instrumented Python code;
* **device spans** — the simulated device timeline, bridged from
  :class:`~repro.clsim.events.EventLog` entries with their *modeled*
  durations, anchored at the wall-clock instant the launch began
  (:meth:`add_device_events`); one lane per event category per caller;
* **counters** — sampled gauges (admission-queue depth, pooled bytes)
  that exporters render as counter tracks.

Thread safety: record lists append under one lock; the span stack is
thread-local, so concurrent workers nest independently.  Cross-thread
parentage is explicit — pass ``parent=span``.

:class:`NullTracer` is the default everywhere.  Its :meth:`span` returns
one shared no-op handle and records nothing, keeping the instrumented hot
paths within noise of un-instrumented code.
"""

from __future__ import annotations

import itertools
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = ["CounterSample", "DeviceSpan", "NULL_TRACER", "NullTracer",
           "Span", "Tracer"]

# Sentinel: "parent not given — use the calling thread's current span".
_CURRENT = object()


@dataclass(frozen=True)
class DeviceSpan:
    """One simulated device event on the trace timeline.

    ``start`` is in the tracer's wall clock (anchor + the event's modeled
    queue offset) and ``duration`` is the event's *modeled* seconds — the
    device lanes show what the performance model attributes, laid out at
    the instant the launch actually ran.
    """

    device: str
    lane: str          # "<caller lane>/<event category>"
    name: str
    category: str      # EventKind value: kernel / dev-write / dev-read / build
    start: float
    duration: float
    nbytes: int = 0
    trace_id: Optional[str] = None


@dataclass(frozen=True)
class CounterSample:
    """One sampled gauge value (queue depth, pooled bytes, ...)."""

    name: str
    value: float
    ts: float


class Span:
    """One timed phase.  Use as a context manager for same-thread nesting
    (``with tracer.span("parse"):``) or :meth:`start`/:meth:`finish` for
    spans that cross threads (a service request's root span).  Recording
    happens at :meth:`finish`; finish is idempotent."""

    __slots__ = ("tracer", "trace_id", "span_id", "parent_id", "name",
                 "category", "attrs", "thread", "start_time", "end_time",
                 "_attached")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: int,
                 parent_id: Optional[int], name: str, category: str,
                 attrs: dict):
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.attrs = attrs
        self.thread = threading.current_thread().name
        self.start_time: Optional[float] = None
        self.end_time: Optional[float] = None
        self._attached = False

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "Span":
        if self.start_time is None:
            self.thread = threading.current_thread().name
            self.start_time = self.tracer.now()
        return self

    def finish(self) -> None:
        if self.end_time is not None or self.start_time is None:
            return
        self.end_time = self.tracer.now()
        self.tracer._record(self)

    def annotate(self, **attrs) -> None:
        """Attach attributes after creation (e.g. cache hit/miss)."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    def __enter__(self) -> "Span":
        self.start()
        self.tracer._push(self)
        self._attached = True
        return self

    def __exit__(self, *exc_info) -> None:
        if self._attached:
            self.tracer._pop(self)
            self._attached = False
        self.finish()

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"trace={self.trace_id})")


class Tracer:
    """Thread-safe span/counter/device-event recorder (module docstring)."""

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self.epoch = clock()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._device_spans: list[DeviceSpan] = []
        self._counters: list[CounterSample] = []
        self._ids = itertools.count(1)
        self._tls = threading.local()

    # -- clock ---------------------------------------------------------------

    def now(self) -> float:
        return self._clock()

    # -- span API ------------------------------------------------------------

    def span(self, name: str, *, category: str = "host",
             parent=_CURRENT, **attrs) -> Span:
        """Create a span.  ``parent`` defaults to the calling thread's
        current span; pass an explicit span for cross-thread parentage, or
        ``None`` to force a new root (fresh trace id)."""
        if parent is _CURRENT:
            parent = self.current()
        if parent is not None and parent.trace_id is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
        else:
            trace_id = uuid.uuid4().hex[:16]
            parent_id = None
        return Span(self, trace_id, next(self._ids), parent_id,
                    name, category, attrs)

    def current(self) -> Optional[Span]:
        """The calling thread's innermost open span, if any."""
        stack = getattr(self._tls, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = getattr(self._tls, "stack", None)
        if stack and stack[-1] is span:
            stack.pop()
        elif stack and span in stack:   # defensive: out-of-order exit
            stack.remove(span)

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    # -- counters ------------------------------------------------------------

    def counter(self, name: str, value: float) -> None:
        sample = CounterSample(name, float(value), self.now())
        with self._lock:
            self._counters.append(sample)

    # -- plan annotations ----------------------------------------------------

    def note_plan(self, key, plan=None, disposition: Optional[str] = None,
                  ) -> None:
        """Attach the executable plan the current trace ran to the trace.

        A no-op on the base tracer; the flight recorder
        (:class:`repro.obs.FlightRecorder`) overrides this to retain the
        plan key, cache disposition, and generated sweep source for
        debug bundles.  The engine calls it once per keyed execution."""

    # -- device-lane bridging -----------------------------------------------

    def add_device_events(self, device: str, events: Iterable, *,
                          anchor: Optional[float] = None, lane: str = "",
                          trace_id: Optional[str] = None) -> int:
        """Bridge :class:`~repro.clsim.events.Event` records into device
        lanes.  Each event lands at ``anchor + event.ts_seconds`` with its
        modeled duration; ``lane`` (usually the worker/thread name)
        prefixes the per-category lane so concurrent executions on the
        same device model stay distinguishable.  Returns the number of
        spans added."""
        if anchor is None:
            anchor = self.now()
        if trace_id is None:
            span = self.current()
            trace_id = span.trace_id if span is not None else None
        added = []
        for event in events:
            category = event.kind.value
            added.append(DeviceSpan(
                device=device,
                lane=f"{lane}/{category}" if lane else category,
                name=event.name or category,
                category=category,
                start=anchor + (event.ts_seconds or 0.0),
                duration=event.sim_seconds,
                nbytes=event.nbytes,
                trace_id=trace_id,
            ))
        with self._lock:
            self._device_spans.extend(added)
        return len(added)

    # -- read side (exporters) ----------------------------------------------

    @property
    def spans(self) -> "tuple[Span, ...]":
        """Finished host spans, in completion order."""
        with self._lock:
            return tuple(self._spans)

    @property
    def device_spans(self) -> "tuple[DeviceSpan, ...]":
        with self._lock:
            return tuple(self._device_spans)

    @property
    def counters(self) -> "tuple[CounterSample, ...]":
        with self._lock:
            return tuple(self._counters)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self._device_spans.clear()
            self._counters.clear()


class _NullSpan:
    """The shared do-nothing span handle (one instance per process)."""

    __slots__ = ()
    trace_id = None
    span_id = 0
    parent_id = None
    name = ""
    category = "null"
    attrs: dict = {}
    start_time = None
    end_time = None
    duration = 0.0

    def start(self) -> "_NullSpan":
        return self

    def finish(self) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer(Tracer):
    """Zero-overhead default: records nothing, allocates nothing per call."""

    enabled = False

    def __init__(self):  # deliberately no state
        pass

    def now(self) -> float:
        return 0.0

    def span(self, name: str, *, category: str = "host",
             parent=_CURRENT, **attrs) -> _NullSpan:  # type: ignore[override]
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def counter(self, name: str, value: float) -> None:
        pass

    def add_device_events(self, device, events, *, anchor=None, lane="",
                          trace_id=None) -> int:
        return 0

    @property
    def spans(self) -> tuple:
        return ()

    @property
    def device_spans(self) -> tuple:
        return ()

    @property
    def counters(self) -> tuple:
        return ()

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
