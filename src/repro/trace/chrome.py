"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Lays one :class:`~repro.trace.Tracer`'s records out in the Trace Event
Format:

* **pid 1** is the host process; each Python thread that opened spans
  gets its own tid, named via thread-name metadata;
* **one pid per simulated device** (2, 3, ... in first-appearance order),
  named after the device; within a device, **one tid per lane** — the
  bridged event lanes are ``<worker or strategy>/<category>``, so kernel
  executions and transfers land on separate, countable tracks;
* **counter events** (``ph: "C"``) for the sampled gauges — admission
  queue depth and pooled bytes;
* metadata events (``ph: "M"``) name every process and thread.

Timestamps are microseconds relative to the earliest record, sorted
ascending (metadata first), which is what the CI trace-smoke validator
checks.  Span/trace ids ride along in ``args`` so a device lane can be
joined back to the request that produced it.
"""

from __future__ import annotations

import json
from typing import Union

from .tracer import Tracer

__all__ = ["chrome_trace_events", "write_chrome_trace"]


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace_events(tracer: Tracer) -> list[dict]:
    """Render every record as Chrome trace-event dicts (sorted by ts)."""
    spans = tracer.spans
    device_spans = tracer.device_spans
    counters = tracer.counters

    starts = ([s.start_time for s in spans if s.start_time is not None]
              + [d.start for d in device_spans]
              + [c.ts for c in counters])
    epoch = min(starts) if starts else 0.0

    def us(t: float) -> float:
        return max((t - epoch) * 1e6, 0.0)

    HOST_PID = 1
    events: list[dict] = []
    meta: list[dict] = [{
        "name": "process_name", "ph": "M", "ts": 0.0,
        "pid": HOST_PID, "tid": 0, "args": {"name": "host"},
    }]

    # Host spans: one tid per thread name.
    host_tids: dict[str, int] = {}
    for span in spans:
        tid = host_tids.get(span.thread)
        if tid is None:
            tid = host_tids[span.thread] = len(host_tids) + 1
            meta.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                         "pid": HOST_PID, "tid": tid,
                         "args": {"name": span.thread}})
        args = {"trace_id": span.trace_id, "span_id": span.span_id}
        if span.parent_id is not None:
            args["parent_id"] = span.parent_id
        for key, value in span.attrs.items():
            args[key] = _jsonable(value)
        events.append({
            "name": span.name, "cat": span.category, "ph": "X",
            "ts": us(span.start_time), "dur": span.duration * 1e6,
            "pid": HOST_PID, "tid": tid, "args": args,
        })

    # Device lanes: one pid per device, one tid per lane.
    device_pids: dict[str, int] = {}
    lane_tids: dict[tuple[str, str], int] = {}
    for dspan in device_spans:
        pid = device_pids.get(dspan.device)
        if pid is None:
            pid = device_pids[dspan.device] = HOST_PID + 1 + len(device_pids)
            meta.append({"name": "process_name", "ph": "M", "ts": 0.0,
                         "pid": pid, "tid": 0,
                         "args": {"name": f"device: {dspan.device}"}})
        tid = lane_tids.get((dspan.device, dspan.lane))
        if tid is None:
            tid = lane_tids[(dspan.device, dspan.lane)] = 1 + sum(
                1 for key in lane_tids if key[0] == dspan.device)
            meta.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                         "pid": pid, "tid": tid,
                         "args": {"name": dspan.lane}})
        args = {"bytes": dspan.nbytes, "modeled_seconds": dspan.duration}
        if dspan.trace_id is not None:
            args["trace_id"] = dspan.trace_id
        events.append({
            "name": dspan.name, "cat": dspan.category, "ph": "X",
            "ts": us(dspan.start), "dur": dspan.duration * 1e6,
            "pid": pid, "tid": tid, "args": args,
        })

    for sample in counters:
        events.append({
            "name": sample.name, "cat": "counter", "ph": "C",
            "ts": us(sample.ts), "pid": HOST_PID, "tid": 0,
            "args": {"value": sample.value},
        })

    events.sort(key=lambda e: e["ts"])
    return meta + events


def write_chrome_trace(tracer: Tracer, path: Union[str, "object"]) -> int:
    """Write ``{"traceEvents": [...]}`` JSON; returns the event count."""
    events = chrome_trace_events(tracer)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(events)
