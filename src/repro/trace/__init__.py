"""`repro.trace`: end-to-end tracing & profiling (DESIGN.md §8).

* :class:`Tracer` / :class:`Span` — thread-safe span tree over a
  monotonic clock, with counters and device-event bridging;
* :class:`NullTracer` / :data:`NULL_TRACER` — the zero-overhead default
  every layer holds when tracing is off;
* :func:`chrome_trace_events` / :func:`write_chrome_trace` — Chrome
  trace-event JSON export (one pid per simulated device, one tid per
  worker/strategy lane, counter tracks for queue depth and pooled bytes);
* :func:`format_profile` — per-phase self/total text table plus the
  modeled device-lane summary.
"""

from .chrome import chrome_trace_events, write_chrome_trace
from .profile import aggregate_profile, format_profile
from .tracer import (CounterSample, DeviceSpan, NULL_TRACER, NullTracer,
                     Span, Tracer)

__all__ = [
    "CounterSample", "DeviceSpan", "NULL_TRACER", "NullTracer", "Span",
    "Tracer", "aggregate_profile", "chrome_trace_events", "format_profile",
    "write_chrome_trace",
]
