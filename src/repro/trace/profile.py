"""Human-readable text profile of a trace: per-phase self/total times.

``chrome://tracing`` answers "what happened when"; this module answers the
terminal question "where did the time go".  Spans aggregate by their
*path* — the chain of span names from the root — so the same phase name
under different parents (e.g. ``plan.build`` under two strategies) stays
distinct.  For every path the table reports call count, total (inclusive)
time, self time (total minus child totals), and share of the traced
wall-clock.  A second section totals the bridged device lanes: modeled
seconds and bytes per device per event category — the Fig 5 / Table II
attribution for exactly the traced run.
"""

from __future__ import annotations

from typing import Optional

from .tracer import Span, Tracer

__all__ = ["aggregate_profile", "format_profile"]


class _PathStats:
    __slots__ = ("path", "count", "total", "self_time")

    def __init__(self, path: tuple[str, ...]):
        self.path = path
        self.count = 0
        self.total = 0.0
        self.self_time = 0.0


def aggregate_profile(tracer: Tracer) -> "list[_PathStats]":
    """Aggregate finished spans by root→leaf name path, depth-first in
    descending total-time order."""
    spans = tracer.spans
    by_id: dict[int, Span] = {s.span_id: s for s in spans}
    children_time: dict[int, float] = {}
    for span in spans:
        if span.parent_id is not None:
            children_time[span.parent_id] = (
                children_time.get(span.parent_id, 0.0) + span.duration)

    def path_of(span: Span) -> tuple[str, ...]:
        names: list[str] = []
        node: Optional[Span] = span
        seen = set()
        while node is not None and node.span_id not in seen:
            seen.add(node.span_id)
            names.append(node.name)
            node = by_id.get(node.parent_id) \
                if node.parent_id is not None else None
        return tuple(reversed(names))

    stats: dict[tuple[str, ...], _PathStats] = {}
    for span in spans:
        path = path_of(span)
        entry = stats.get(path)
        if entry is None:
            entry = stats[path] = _PathStats(path)
        entry.count += 1
        entry.total += span.duration
        entry.self_time += max(
            span.duration - children_time.get(span.span_id, 0.0), 0.0)

    # Depth-first ordering: parents before children, siblings by total.
    ordered: list[_PathStats] = []

    def emit(prefix: tuple[str, ...]) -> None:
        level = [s for s in stats.values()
                 if s.path[:-1] == prefix and len(s.path) == len(prefix) + 1]
        for entry in sorted(level, key=lambda s: -s.total):
            ordered.append(entry)
            emit(entry.path)

    emit(())
    return ordered


def format_profile(tracer: Tracer) -> str:
    """Render the per-phase table plus the device-lane summary."""
    rows = aggregate_profile(tracer)
    lines = ["phase                                     calls"
             "   total(ms)    self(ms)   %total"]
    traced = sum(r.total for r in rows if len(r.path) == 1) or 1e-12
    if not rows:
        lines.append("  (no spans recorded)")
    for entry in rows:
        indent = "  " * (len(entry.path) - 1)
        name = indent + entry.path[-1]
        lines.append(f"{name:<40} {entry.count:6d}  {entry.total * 1e3:10.3f}"
                     f"  {entry.self_time * 1e3:10.3f}"
                     f"  {100.0 * entry.total / traced:6.1f}%")

    device_spans = tracer.device_spans
    if device_spans:
        lines.append("")
        lines.append("device lanes (modeled)                   events"
                     "  modeled(ms)       bytes")
        agg: dict[tuple[str, str], list] = {}
        for dspan in device_spans:
            entry = agg.setdefault((dspan.device, dspan.category),
                                   [0, 0.0, 0])
            entry[0] += 1
            entry[1] += dspan.duration
            entry[2] += dspan.nbytes
        for (device, category), (count, seconds, nbytes) in sorted(
                agg.items()):
            label = f"{device} / {category}"
            lines.append(f"{label:<40} {count:6d}  {seconds * 1e3:11.3f}"
                         f"  {nbytes:10d}")
    return "\n".join(lines)
