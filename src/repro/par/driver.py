"""Distributed-memory parallel execution driver (the Fig 7 experiment).

Each rank owns a set of sub-grids, binds one simulated device, and runs the
framework in situ exactly as the single-device path does — the kernels are
embarrassingly parallel; what the distributed test adds (and what this
driver exercises) is ghost-data generation at block seams, multiple target
devices per node, multiple sub-grid chunks per device, and embedding in a
larger pipeline.

Two modes:

* :func:`run_distributed` — live execution over a (small) global dataset,
  reassembling the global derived field and allreducing statistics through
  the simulated MPI layer;
* :func:`plan_distributed` — full-paper-scale dry run (3072 blocks, 256
  devices) through the planner, producing per-rank event counts, modeled
  times, and memory peaks without any element data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..clsim.device import DeviceType
from ..clsim.environment import CLEnvironment
from ..errors import MPIError
from ..host.engine import DerivedFieldEngine
from ..host.visitsim.dataset import RectilinearDataset
from ..host.visitsim.ghost import BlockExtent, decompose, extract_block
from ..host.visitsim.pyexpr import PythonExpressionFilter
from ..strategies import get_strategy
from ..strategies.bindings import ArraySpec
from ..strategies.planner import PlanResult, plan
from .decomp import RankAssignment, assign_blocks
from .mpi import Comm, World

__all__ = ["DistributedResult", "run_distributed",
           "run_distributed_from_store", "plan_distributed", "RankStats"]


@dataclass(frozen=True)
class RankStats:
    """Per-rank execution accounting."""

    rank: int
    device_index: int
    n_blocks: int
    n_cells: int
    kernel_execs: int
    dev_writes: int
    dev_reads: int
    sim_seconds: float
    mem_high_water: int


@dataclass
class DistributedResult:
    """Reassembled output + global statistics + per-rank accounting."""

    field: Optional[np.ndarray]        # flat global derived field
    global_dims: tuple[int, int, int]
    field_min: float
    field_max: float
    field_sum: float
    rank_stats: list[RankStats]

    @property
    def n_ranks(self) -> int:
        return len(self.rank_stats)


def _rank_body(comm: Comm, global_ds: RectilinearDataset,
               assignments: list[RankAssignment], expression: str,
               strategy: str, device: str, ghost_width: Optional[int]):
    """What each MPI task runs: its blocks, in situ, on its device."""
    mine = assignments[comm.rank]
    engine = DerivedFieldEngine(device=device, strategy=strategy)
    expr_filter = PythonExpressionFilter(expression, engine=engine)
    # None = honour the expression's contract (the normal in-situ path);
    # an explicit width overrides it (0 disables ghosts, for ablation).
    width = (expr_filter.contract().ghost_width if ghost_width is None
             else ghost_width)

    pieces: list[tuple[BlockExtent, np.ndarray]] = []
    counts = {"k": 0, "w": 0, "r": 0}
    sim_seconds = 0.0
    mem_peak = 0
    n_cells = 0
    local_min, local_max, local_sum = np.inf, -np.inf, 0.0
    for extent in mine.blocks:
        block = extract_block(global_ds, extent, ghost_width=width)
        bindings = dict(block.mesh_arrays())
        for name in expr_filter.compiled.required_inputs:
            if name not in bindings:
                bindings[name] = block.field(name)
        report = engine.execute(expr_filter.compiled, bindings)
        derived = block.with_fields(
            {expr_filter.output_name: report.output}).strip_ghost()
        values = derived.field(expr_filter.output_name)
        pieces.append((extent, values))
        counts["k"] += report.counts.kernel_execs
        counts["w"] += report.counts.dev_writes
        counts["r"] += report.counts.dev_reads
        sim_seconds += report.timing.total
        mem_peak = max(mem_peak, report.mem_high_water)
        n_cells += extent.n_cells
        if values.size:
            local_min = min(local_min, float(values.min()))
            local_max = max(local_max, float(values.max()))
            local_sum += float(values.sum())

    field_min = comm.allreduce(local_min, min)
    field_max = comm.allreduce(local_max, max)
    field_sum = comm.allreduce(local_sum)
    stats = RankStats(
        rank=comm.rank, device_index=mine.device_index,
        n_blocks=mine.n_blocks, n_cells=n_cells,
        kernel_execs=counts["k"], dev_writes=counts["w"],
        dev_reads=counts["r"], sim_seconds=sim_seconds,
        mem_high_water=mem_peak)
    return pieces, stats, (field_min, field_max, field_sum)


def run_distributed(expression: str, global_ds: RectilinearDataset, *,
                    block_dims: tuple[int, int, int], n_ranks: int,
                    strategy: str = "fusion", device: str = "gpu",
                    devices_per_node: int = 2,
                    ghost_width: Optional[int] = None) -> DistributedResult:
    """Execute ``expression`` over a decomposed global dataset."""
    blocks = decompose(global_ds.dims, block_dims)
    if n_ranks > len(blocks):
        raise MPIError(
            f"{n_ranks} ranks for {len(blocks)} blocks; reduce ranks")
    assignments = assign_blocks(blocks, n_ranks,
                                devices_per_node=devices_per_node)
    world = World(n_ranks)
    rank_results = world.run(_rank_body, global_ds, assignments,
                             expression, strategy, device, ghost_width)

    output = np.empty(global_ds.n_cells, dtype=np.float64)
    output3d = output.reshape(global_ds.dims)
    for pieces, _stats, _reduced in rank_results:
        for extent, values in pieces:
            (i0, j0, k0), (bi, bj, bk) = extent.lo, extent.dims
            output3d[i0:i0 + bi, j0:j0 + bj, k0:k0 + bk] = \
                values.reshape(bi, bj, bk)
    field_min, field_max, field_sum = rank_results[0][2]
    return DistributedResult(
        field=output,
        global_dims=global_ds.dims,
        field_min=field_min, field_max=field_max, field_sum=field_sum,
        rank_stats=[stats for _p, stats, _r in rank_results],
    )


def _rank_body_store(comm: Comm, store, assignments, expression: str,
                     strategy: str, device: str,
                     ghost_width: Optional[int]):
    """Out-of-core rank body: blocks (and their ghost layers) come from a
    :class:`~repro.io.decomposed.DecomposedReader` instead of a global
    in-memory dataset — no rank ever holds more than one ghosted brick."""
    mine = assignments[comm.rank]
    engine = DerivedFieldEngine(device=device, strategy=strategy)
    expr_filter = PythonExpressionFilter(expression, engine=engine)
    width = (expr_filter.contract().ghost_width if ghost_width is None
             else ghost_width)

    extents = store.extents()
    pieces: list[tuple[BlockExtent, np.ndarray]] = []
    counts = {"k": 0, "w": 0, "r": 0}
    sim_seconds = 0.0
    mem_peak = 0
    n_cells = 0
    local_min, local_max, local_sum = np.inf, -np.inf, 0.0
    for block_index in mine.blocks:
        extent = extents[block_index]
        block = store.read_block(block_index, ghost_width=width)
        bindings = dict(block.mesh_arrays())
        for name in expr_filter.compiled.required_inputs:
            if name not in bindings:
                bindings[name] = block.field(name)
        report = engine.execute(expr_filter.compiled, bindings)
        derived = block.with_fields(
            {expr_filter.output_name: report.output}).strip_ghost()
        values = derived.field(expr_filter.output_name)
        pieces.append((extent, values))
        counts["k"] += report.counts.kernel_execs
        counts["w"] += report.counts.dev_writes
        counts["r"] += report.counts.dev_reads
        sim_seconds += report.timing.total
        mem_peak = max(mem_peak, report.mem_high_water)
        n_cells += extent.n_cells
        if values.size:
            local_min = min(local_min, float(values.min()))
            local_max = max(local_max, float(values.max()))
            local_sum += float(values.sum())

    field_min = comm.allreduce(local_min, min)
    field_max = comm.allreduce(local_max, max)
    field_sum = comm.allreduce(local_sum)
    stats = RankStats(
        rank=comm.rank, device_index=mine.device_index,
        n_blocks=mine.n_blocks, n_cells=n_cells,
        kernel_execs=counts["k"], dev_writes=counts["w"],
        dev_reads=counts["r"], sim_seconds=sim_seconds,
        mem_high_water=mem_peak)
    return pieces, stats, (field_min, field_max, field_sum)


def run_distributed_from_store(expression: str, store, *, n_ranks: int,
                               strategy: str = "fusion",
                               device: str = "gpu",
                               devices_per_node: int = 2,
                               ghost_width: Optional[int] = None,
                               ) -> DistributedResult:
    """Out-of-core variant of :func:`run_distributed`: each rank reads its
    bricks (with disk-assembled ghosts) from a
    :class:`~repro.io.decomposed.DecomposedReader`."""
    extents = store.extents()
    if n_ranks > len(extents):
        raise MPIError(
            f"{n_ranks} ranks for {len(extents)} blocks; reduce ranks")
    # assign by block *index* so ranks address the store directly
    index_assignments = assign_blocks(list(range(len(extents))), n_ranks,
                                      devices_per_node=devices_per_node)
    world = World(n_ranks)
    rank_results = world.run(_rank_body_store, store, index_assignments,
                             expression, strategy, device, ghost_width)

    global_dims = store.global_dims
    n_total = global_dims[0] * global_dims[1] * global_dims[2]
    output = np.empty(n_total, dtype=np.float64)
    output3d = output.reshape(global_dims)
    for pieces, _stats, _reduced in rank_results:
        for extent, values in pieces:
            (i0, j0, k0), (bi, bj, bk) = extent.lo, extent.dims
            output3d[i0:i0 + bi, j0:j0 + bj, k0:k0 + bk] = \
                values.reshape(bi, bj, bk)
    field_min, field_max, field_sum = rank_results[0][2]
    return DistributedResult(
        field=output,
        global_dims=global_dims,
        field_min=field_min, field_max=field_max, field_sum=field_sum,
        rank_stats=[stats for _p, stats, _r in rank_results],
    )


def plan_distributed(expression: str, *,
                     global_dims: tuple[int, int, int],
                     block_dims: tuple[int, int, int], n_ranks: int,
                     strategy: str = "fusion", device: str = "gpu",
                     devices_per_node: int = 2, ghost_width: int = 1,
                     dtype=np.float64) -> list[PlanResult]:
    """Full-scale dry-run: plan every rank's first block (all blocks are
    identically sized, so one plan per rank characterizes the run) and
    scale by its block count.

    Returns one :class:`PlanResult` per rank.
    """
    from ..expr import parse  # lazy: only needed for input discovery
    blocks = decompose(global_dims, block_dims)
    assignments = assign_blocks(blocks, n_ranks,
                                devices_per_node=devices_per_node)
    engine = DerivedFieldEngine(device=device, strategy=strategy,
                                dry_run=True)
    compiled = engine.compile(expression)
    dtype = np.dtype(dtype)

    results: list[PlanResult] = []
    for assignment in assignments:
        if not assignment.blocks:
            continue
        # Ghosted block shape: interior faces gain ghost_width layers.
        extent = assignment.blocks[0]
        dims = []
        for axis in range(3):
            lo_g = ghost_width if extent.lo[axis] > 0 else 0
            hi_g = ghost_width if extent.hi[axis] < global_dims[axis] else 0
            dims.append(extent.dims[axis] + lo_g + hi_g)
        ni, nj, nk = dims
        n = ni * nj * nk
        shapes = {
            "u": ArraySpec((n,), dtype), "v": ArraySpec((n,), dtype),
            "w": ArraySpec((n,), dtype),
            "dims": ArraySpec((3,), np.dtype(np.int32)),
            "x": ArraySpec((ni + 1,), dtype),
            "y": ArraySpec((nj + 1,), dtype),
            "z": ArraySpec((nk + 1,), dtype),
        }
        shapes = {k: v for k, v in shapes.items()
                  if k in compiled.required_inputs}
        results.append(plan(get_strategy(strategy), shapes, device,
                            network=compiled.network))
    return results
