"""Distributed-memory layer: simulated MPI world, block/rank assignment,
and the distributed execution driver for the Fig 7 experiment."""

from .decomp import RankAssignment, assign_blocks
from .driver import (DistributedResult, RankStats, plan_distributed,
                     run_distributed, run_distributed_from_store)
from .mpi import Comm, World, run_world

__all__ = ["RankAssignment", "assign_blocks", "DistributedResult",
           "RankStats", "plan_distributed", "run_distributed",
           "run_distributed_from_store",
           "Comm", "World", "run_world"]
