"""In-process simulated MPI.

The paper's distributed test runs the framework inside VisIt's engine with
one Python interpreter per MPI task.  mpi4py and a real launcher are not
available here, so this module provides a small message-passing world whose
ranks run as threads: point-to-point ``send``/``recv`` over per-edge
mailboxes, plus the collectives the distributed driver needs (``barrier``,
``bcast``, ``scatter``, ``gather``, ``allreduce``, ``allgather``).

Semantics follow MPI where it matters for correctness testing: sends are
buffered (non-blocking), receives block, collectives synchronize all ranks
and must be called by every rank in the same order.
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional, Sequence

from ..errors import MPIError

__all__ = ["Comm", "World", "run_world"]


class _CollectiveState:
    """Shared slots + reusable barrier for collective operations."""

    def __init__(self, size: int):
        self.barrier = threading.Barrier(size)
        self.slots: list[Any] = [None] * size


class Comm:
    """One rank's communicator handle."""

    def __init__(self, rank: int, size: int, world: "World"):
        self.rank = rank
        self.size = size
        self._world = world

    # -- point to point -----------------------------------------------------

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send (never blocks)."""
        self._check_rank(dest)
        self._world.mailbox(self.rank, dest, tag).put(obj)

    def recv(self, source: int, tag: int = 0,
             timeout: Optional[float] = 30.0) -> Any:
        """Blocking receive; times out to surface deadlocks in tests."""
        self._check_rank(source)
        try:
            return self._world.mailbox(source, self.rank, tag).get(
                timeout=timeout)
        except queue.Empty:
            raise MPIError(
                f"rank {self.rank} timed out receiving from {source} "
                f"(tag {tag})") from None

    def sendrecv(self, obj: Any, dest: int, source: int,
                 tag: int = 0) -> Any:
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    # -- collectives -------------------------------------------------------------

    def barrier(self) -> None:
        self._world.collective.barrier.wait()

    def _exchange(self, value: Any) -> list[Any]:
        state = self._world.collective
        state.slots[self.rank] = value
        state.barrier.wait()
        snapshot = list(state.slots)
        state.barrier.wait()
        return snapshot

    def allgather(self, value: Any) -> list[Any]:
        return self._exchange(value)

    def gather(self, value: Any, root: int = 0) -> Optional[list[Any]]:
        snapshot = self._exchange(value)
        return snapshot if self.rank == root else None

    def bcast(self, value: Any, root: int = 0) -> Any:
        return self._exchange(value if self.rank == root else None)[root]

    def scatter(self, values: Optional[Sequence[Any]],
                root: int = 0) -> Any:
        if self.rank == root:
            if values is None or len(values) != self.size:
                raise MPIError(
                    f"scatter root needs exactly {self.size} values")
        chunks = self._exchange(list(values) if self.rank == root else None)
        return chunks[root][self.rank]

    def allreduce(self, value: Any,
                  op: Callable[[Any, Any], Any] = lambda a, b: a + b) -> Any:
        snapshot = self._exchange(value)
        result = snapshot[0]
        for item in snapshot[1:]:
            result = op(result, item)
        return result

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise MPIError(f"rank {rank} out of range 0..{self.size - 1}")


class World:
    """A set of ranks executing one function concurrently."""

    def __init__(self, size: int):
        if size < 1:
            raise MPIError("world size must be >= 1")
        self.size = size
        self._mailboxes: dict[tuple[int, int, int], queue.Queue] = {}
        self._mail_lock = threading.Lock()
        self.collective = _CollectiveState(size)

    def mailbox(self, src: int, dst: int, tag: int) -> queue.Queue:
        key = (src, dst, tag)
        box = self._mailboxes.get(key)
        if box is None:
            with self._mail_lock:
                box = self._mailboxes.setdefault(key, queue.Queue())
        return box

    def run(self, fn: Callable[..., Any], *args: Any,
            timeout: Optional[float] = 120.0) -> list[Any]:
        """Run ``fn(comm, *args)`` on every rank; returns per-rank results.

        The first rank exception (if any) is re-raised in the caller.
        """
        results: list[Any] = [None] * self.size
        errors: list[Optional[BaseException]] = [None] * self.size

        def target(rank: int) -> None:
            comm = Comm(rank, self.size, self)
            try:
                results[rank] = fn(comm, *args)
            except BaseException as exc:  # noqa: BLE001 - reraised below
                errors[rank] = exc
                self.collective.barrier.abort()

        threads = [threading.Thread(target=target, args=(rank,),
                                    name=f"mpi-rank-{rank}", daemon=True)
                   for rank in range(self.size)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=timeout)
            if thread.is_alive():
                raise MPIError(f"{thread.name} did not finish (deadlock?)")
        for rank, exc in enumerate(errors):
            if exc is not None:
                if isinstance(exc, threading.BrokenBarrierError):
                    continue  # secondary failure caused by another rank
                raise exc
        return results


def run_world(size: int, fn: Callable[..., Any], *args: Any) -> list[Any]:
    """Convenience: build a world, run, return per-rank results."""
    return World(size).run(fn, *args)
