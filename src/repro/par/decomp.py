"""Rank/device assignment for the distributed evaluation.

Fig 7's configuration: 128 nodes x 2 GPUs = 256 MPI tasks, each bound to
one GPU, each processing 12 of the 3072 sub-grids.  :func:`assign_blocks`
generalizes this: blocks are dealt round-robin so every rank gets an even
share, and each rank records its node and local device index.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MPIError
from ..host.visitsim.ghost import BlockExtent

__all__ = ["RankAssignment", "assign_blocks"]


@dataclass(frozen=True)
class RankAssignment:
    """Which blocks a rank owns and which device it binds."""

    rank: int
    node: int
    device_index: int  # local device on the node (0 or 1 on Edge)
    blocks: tuple[BlockExtent, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def assign_blocks(blocks: list[BlockExtent], n_ranks: int,
                  devices_per_node: int = 2) -> list[RankAssignment]:
    """Deal blocks round-robin across ranks; bind ranks to node devices."""
    if n_ranks < 1:
        raise MPIError("need at least one rank")
    if devices_per_node < 1:
        raise MPIError("need at least one device per node")
    per_rank: list[list[BlockExtent]] = [[] for _ in range(n_ranks)]
    for i, block in enumerate(blocks):
        per_rank[i % n_ranks].append(block)
    return [
        RankAssignment(
            rank=rank,
            node=rank // devices_per_node,
            device_index=rank % devices_per_node,
            blocks=tuple(per_rank[rank]),
        )
        for rank in range(n_ranks)
    ]
