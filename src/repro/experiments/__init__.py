"""Evaluation sweeps and paper-style reporting shared by the benchmark
harness, examples, and tests."""

from .report import (EXPR_SHORT, format_fig_series, format_table1,
                     format_table2)
from .scaling import (ScalingPoint, format_scaling, strong_scaling,
                      weak_scaling)
from .sweep import (CaseResult, DEVICES, EXECUTORS, gpu_success_rate,
                    run_case, run_sweep)

__all__ = ["CaseResult", "DEVICES", "EXECUTORS", "run_case", "run_sweep",
           "gpu_success_rate", "EXPR_SHORT", "format_fig_series",
           "format_table1", "format_table2",
           "ScalingPoint", "format_scaling", "strong_scaling",
           "weak_scaling"]
