"""Distributed scaling studies — the paper's third future-work item
(Section VI: "a comprehensive performance study of our framework in a
distributed-memory parallel setting").

Built on the per-rank planner: every configuration is characterized by its
slowest rank (the makespan), since the computation is embarrassingly
parallel and the paper's decomposition gives every rank identically-sized
blocks.

* **Strong scaling** — the full 3072-block data set on growing GPU counts:
  blocks per GPU shrink, makespan drops, efficiency stays near 1 until
  per-rank fixed costs (kernel launches, transfer latencies) dominate.
* **Weak scaling** — a fixed number of blocks per GPU on growing GPU
  counts: makespan should stay flat.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..analysis.vortex import EXPRESSIONS
from ..par.driver import plan_distributed
from ..workloads.datasets import FULL_DATASET

__all__ = ["ScalingPoint", "strong_scaling", "weak_scaling",
           "format_scaling"]


@dataclass(frozen=True)
class ScalingPoint:
    """One configuration of a scaling study."""

    n_ranks: int
    blocks_per_rank: int
    makespan: float           # modeled seconds for the slowest rank
    mem_per_rank: int         # peak device bytes on any rank
    failed_ranks: int

    @property
    def total_blocks(self) -> int:
        return self.n_ranks * self.blocks_per_rank


def _plan_point(expression: str, n_ranks: int, n_blocks: int, *,
                strategy: str, device: str) -> ScalingPoint:
    blocks_per_rank = n_blocks // n_ranks
    # The planner characterizes one (identical) block per rank; the rank
    # time is blocks_per_rank sequential block executions.
    plans = plan_distributed(
        EXPRESSIONS[expression],
        global_dims=FULL_DATASET["global_dims"],
        block_dims=FULL_DATASET["block_dims"],
        n_ranks=n_ranks, strategy=strategy, device=device,
        devices_per_node=2)
    failed = sum(1 for p in plans if p.failed)
    ok = [p for p in plans if not p.failed]
    per_block = max((p.timing.total for p in ok), default=float("inf"))
    return ScalingPoint(
        n_ranks=n_ranks,
        blocks_per_rank=blocks_per_rank,
        makespan=per_block * blocks_per_rank,
        mem_per_rank=max((p.mem_high_water for p in plans), default=0),
        failed_ranks=failed)


def strong_scaling(expression: str = "q_criterion",
                   rank_counts: Iterable[int] = (32, 64, 128, 256, 512,
                                                 1024),
                   *, strategy: str = "fusion",
                   device: str = "gpu") -> list[ScalingPoint]:
    """Fixed problem (the paper's 3072 blocks), growing device counts.

    Rank counts must divide 3072 so blocks stay balanced, as in Fig 7.
    """
    n_blocks = FULL_DATASET["n_blocks"]
    points = []
    for n_ranks in rank_counts:
        if n_blocks % n_ranks != 0:
            raise ValueError(
                f"{n_ranks} ranks do not divide {n_blocks} blocks")
        points.append(_plan_point(expression, n_ranks, n_blocks,
                                  strategy=strategy, device=device))
    return points


def weak_scaling(expression: str = "q_criterion",
                 rank_counts: Iterable[int] = (32, 64, 128, 256, 512),
                 blocks_per_rank: int = 12, *, strategy: str = "fusion",
                 device: str = "gpu") -> list[ScalingPoint]:
    """Fixed blocks per device, growing device counts (growing problem)."""
    points = []
    for n_ranks in rank_counts:
        points.append(_plan_point(
            expression, n_ranks, n_ranks * blocks_per_rank,
            strategy=strategy, device=device))
    return points


def format_scaling(points: list[ScalingPoint], *, kind: str) -> str:
    """Render a study as a table with speedup/efficiency columns."""
    base = points[0]
    lines = [f"== {kind} scaling (modeled, per-rank makespan) ==",
             f"{'ranks':>6} {'blk/rank':>8} {'makespan s':>11} "
             f"{'speedup':>8} {'efficiency':>11} {'mem/rank GiB':>13}"]
    for point in points:
        if kind == "strong":
            speedup = base.makespan / point.makespan
            efficiency = speedup / (point.n_ranks / base.n_ranks)
        else:
            speedup = base.makespan / point.makespan
            efficiency = base.makespan / point.makespan
        lines.append(
            f"{point.n_ranks:>6} {point.blocks_per_rank:>8} "
            f"{point.makespan:>11.3f} {speedup:>8.2f} "
            f"{efficiency:>11.2f} "
            f"{point.mem_per_rank / 2**30:>13.3f}")
    return "\n".join(lines)
