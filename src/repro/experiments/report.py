"""Paper-style table and series formatting for the evaluation sweeps."""

from __future__ import annotations

from typing import Iterable

from ..analysis.vortex import EXPRESSIONS
from ..clsim.device import GIB, NVIDIA_M2050_GPU
from ..workloads.datasets import SubGrid, TABLE1_SUBGRIDS
from .sweep import CaseResult

__all__ = ["format_table1", "format_table2", "format_fig_series",
           "EXPR_SHORT"]

EXPR_SHORT = {
    "velocity_magnitude": "VelMag",
    "vorticity_magnitude": "VortMag",
    "q_criterion": "Q-Crit",
}


def format_table1(grids: Iterable[SubGrid] = TABLE1_SUBGRIDS) -> str:
    """Render Table I (sub-grid catalogue)."""
    lines = [f"{'Sub-grid Dimensions':>22} | {'# of Cells':>12} | "
             f"{'Data Size':>10}"]
    lines.append("-" * len(lines[0]))
    for grid in grids:
        mib = grid.data_size_bytes() / 2**20
        size = f"{mib:,.0f} MiB" if mib < 1024 else f"{mib / 1024:.1f} GiB"
        lines.append(
            f"{grid.ni} x {grid.nj} x {grid.nk:>4}".rjust(22)
            + f" | {grid.n_cells:>12,} | {size:>10}")
    return "\n".join(lines)


def format_table2(results: list[CaseResult]) -> str:
    """Render Table II (Dev-W / Dev-R / K-Exe per expression x strategy)."""
    lines = [f"{'Expression':<10} {'Strategy':<10} "
             f"{'Dev-W':>6} {'Dev-R':>6} {'K-Exe':>6}"]
    lines.append("-" * len(lines[0]))
    seen = set()
    for result in results:
        key = (result.expression, result.executor)
        if key in seen or result.executor == "reference":
            continue
        seen.add(key)
        lines.append(
            f"{EXPR_SHORT[result.expression]:<10} "
            f"{result.executor.capitalize():<10} "
            f"{result.dev_writes:>6} {result.dev_reads:>6} "
            f"{result.kernel_execs:>6}")
    return "\n".join(lines)


def format_fig_series(results: list[CaseResult], *, metric: str,
                      expression: str) -> str:
    """Render one Fig 5 (metric='runtime') or Fig 6 (metric='memory')
    panel: series per (device, executor) over the 12 grid sizes."""
    rows = [r for r in results if r.expression == expression]
    grids = sorted({r.grid for r in rows}, key=lambda g: g.n_cells)
    series = sorted({(r.device, r.executor) for r in rows})
    header = f"{'cells (M)':>10}" + "".join(
        f"  {dev}/{ex:<10}"[:16].ljust(16) for dev, ex in series)
    lines = [f"== {EXPR_SHORT[expression]}: "
             f"{'runtime (s, modeled)' if metric == 'runtime' else 'device memory (GiB)'} ==",
             header]
    gpu_limit_drawn = False
    for grid in grids:
        cells = f"{grid.n_cells / 1e6:>10.1f}"
        cols = []
        for dev, ex in series:
            match = next(r for r in rows
                         if r.grid == grid and (r.device, r.executor)
                         == (dev, ex))
            if metric == "runtime":
                value = "FAIL" if match.failed else f"{match.runtime:.3f}"
            else:
                value = f"{match.mem_high_water / GIB:.3f}" + (
                    "*" if match.failed else "")
            cols.append(f"  {value:<14}")
        lines.append(cells + "".join(cols))
    if metric == "memory":
        lines.append(f"(GPU global memory limit: "
                     f"{NVIDIA_M2050_GPU.global_mem_bytes / GIB:.1f} GiB; "
                     "'*' = GPU case failed)")
    return "\n".join(lines)
