"""The paper's evaluation sweeps (Section IV-D / V).

One *case* is (expression, sub-grid, device, executor) where executor is a
strategy or the reference kernel — 3 x 12 x 2 x 4 = 288 cases, of which
the paper plots the 144 per-device runtime points of Fig 5 and the memory
points of Fig 6.  Full-paper-scale cases run through the dry-run planner:
exact event counts and memory, modeled durations.

Records are plain dataclasses so benchmarks, examples, and tests can share
one sweep implementation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Union

from ..analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from ..clsim.device import NVIDIA_M2050_GPU
from ..host.engine import DerivedFieldEngine
from ..strategies import ReferenceKernel, get_strategy
from ..strategies.planner import PlanResult, plan
from ..workloads.datasets import SubGrid, TABLE1_SUBGRIDS, make_shapes

__all__ = ["CaseResult", "run_case", "run_sweep", "EXECUTORS", "DEVICES",
           "gpu_success_rate"]

EXECUTORS = ("roundtrip", "staged", "fusion", "reference")
DEVICES = ("cpu", "gpu")


@dataclass(frozen=True)
class CaseResult:
    """One point of Fig 5 / Fig 6."""

    expression: str
    grid: SubGrid
    device: str
    executor: str
    failed: bool
    runtime: Optional[float]       # modeled seconds (Fig 5 y-axis)
    mem_high_water: int            # bytes (Fig 6 y-axis)
    dev_writes: int
    dev_reads: int
    kernel_execs: int

    @property
    def n_cells(self) -> int:
        return self.grid.n_cells


def _plan_case(expression: str, grid: SubGrid, device: str,
               executor: str) -> PlanResult:
    shapes = {name: spec for name, spec in make_shapes(grid).items()
              if name in EXPRESSION_INPUTS[expression]}
    if executor == "reference":
        return plan(ReferenceKernel(expression), shapes, device)
    engine = DerivedFieldEngine(device=device, strategy=executor,
                                dry_run=True)
    compiled = engine.compile(EXPRESSIONS[expression])
    return plan(get_strategy(executor), shapes, device,
                network=compiled.network)


def run_case(expression: str, grid: SubGrid, device: str,
             executor: str) -> CaseResult:
    """Plan one evaluation case at full scale."""
    result = _plan_case(expression, grid, device, executor)
    return CaseResult(
        expression=expression,
        grid=grid,
        device=device,
        executor=executor,
        failed=result.failed,
        runtime=result.runtime,
        mem_high_water=result.mem_high_water,
        dev_writes=result.counts.dev_writes,
        dev_reads=result.counts.dev_reads,
        kernel_execs=result.counts.kernel_execs,
    )


def run_sweep(expressions: Iterable[str] = tuple(EXPRESSIONS),
              grids: Iterable[SubGrid] = TABLE1_SUBGRIDS,
              devices: Iterable[str] = DEVICES,
              executors: Iterable[str] = EXECUTORS) -> list[CaseResult]:
    """The full evaluation sweep (planned, full paper scale)."""
    return [run_case(e, g, d, x)
            for e in expressions for d in devices
            for x in executors for g in grids]


def gpu_success_rate(results: list[CaseResult]) -> tuple[int, int]:
    """(completed, attempted) GPU cases — the paper reports 106 of 144."""
    gpu = [r for r in results if r.device == "gpu"]
    return sum(1 for r in gpu if not r.failed), len(gpu)
