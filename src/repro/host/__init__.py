"""Host interface (Section III-D): the in-situ :func:`derive` entry point,
the caching :class:`DerivedFieldEngine`, and the VisIt-like host simulator
(:mod:`repro.host.visitsim`)."""

from .engine import CompiledExpression, DerivedFieldEngine
from .interface import derive, derive_report

__all__ = ["CompiledExpression", "DerivedFieldEngine", "derive",
           "derive_report"]
