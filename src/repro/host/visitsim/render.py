"""Pseudocolor rendering of a dataset slice (the Fig 7 visualization).

A real VisIt render is out of scope; what matters to the evaluation is
that a derived field round-trips back into the host and can be consumed by
subsequent rendering steps without recomputation.  We emit an RGB image of
an axis-aligned slice through a perceptually-ordered ramp.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...errors import HostInterfaceError
from .dataset import RectilinearDataset

__all__ = ["pseudocolor", "colormap", "save_ppm"]

# A compact viridis-like ramp (anchor RGB points, interpolated linearly).
_ANCHORS = np.array([
    [0.267, 0.005, 0.329],
    [0.283, 0.141, 0.458],
    [0.254, 0.265, 0.530],
    [0.207, 0.372, 0.553],
    [0.164, 0.471, 0.558],
    [0.128, 0.567, 0.551],
    [0.135, 0.659, 0.518],
    [0.267, 0.749, 0.441],
    [0.478, 0.821, 0.318],
    [0.741, 0.873, 0.150],
    [0.993, 0.906, 0.144],
])


def colormap(values: np.ndarray) -> np.ndarray:
    """Map values in [0, 1] to (n, 3) uint8 RGB.

    NaNs (thresholded-away cells) map to the colormap floor, the way
    masked cells render in VisIt."""
    values = np.asarray(values, dtype=np.float64)
    values = np.where(np.isnan(values), 0.0, values)
    values = np.clip(values, 0.0, 1.0)
    positions = values * (len(_ANCHORS) - 1)
    low = np.floor(positions).astype(int)
    high = np.minimum(low + 1, len(_ANCHORS) - 1)
    t = (positions - low)[..., None]
    rgb = _ANCHORS[low] * (1.0 - t) + _ANCHORS[high] * t
    return (rgb * 255.0 + 0.5).astype(np.uint8)


def save_ppm(image: np.ndarray, path) -> None:
    """Write an (h, w, 3) uint8 image as binary PPM (P6) — viewable by any
    image tool, no imaging library required."""
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] != 3 or image.dtype != np.uint8:
        raise HostInterfaceError(
            f"expected (h, w, 3) uint8 image, got {image.shape} "
            f"{image.dtype}")
    height, width, _ = image.shape
    with open(path, "wb") as handle:
        handle.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        handle.write(image.tobytes())


def pseudocolor(dataset: RectilinearDataset, field: str, *, axis: int = 2,
                index: Optional[int] = None,
                vmin: Optional[float] = None,
                vmax: Optional[float] = None) -> np.ndarray:
    """Render one slice of a cell field as an RGB uint8 image."""
    if not 0 <= axis <= 2:
        raise HostInterfaceError(f"axis must be 0..2, got {axis}")
    volume = dataset.field3d(field)
    if index is None:
        index = volume.shape[axis] // 2
    if not 0 <= index < volume.shape[axis]:
        raise HostInterfaceError(
            f"slice index {index} out of range for axis {axis} "
            f"(size {volume.shape[axis]})")
    plane = np.take(volume, index, axis=axis)
    finite = plane[np.isfinite(plane)]
    if finite.size == 0:
        return colormap(np.zeros_like(plane))
    lo = float(finite.min()) if vmin is None else vmin
    hi = float(finite.max()) if vmax is None else vmax
    span = hi - lo if hi > lo else 1.0
    return colormap((plane - lo) / span)
