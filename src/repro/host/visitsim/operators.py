"""Additional pipeline operators for the miniature VisIt host.

The paper embeds the derived-field framework "into a larger analysis
pipeline"; these stages make the larger pipeline real.  Each follows the
same contract/execute protocol as
:class:`~repro.host.visitsim.pyexpr.PythonExpressionFilter`, so they
compose freely around it:

* :class:`ThresholdFilter` — mask a field outside a value range (VisIt's
  Threshold operator; pairs with Q > 0 vortex extraction);
* :class:`SliceFilter` — extract one axis-aligned cell slab, shrinking
  everything downstream;
* :class:`StatisticsFilter` — attach summary statistics as a side channel
  (VisIt's Query mechanism, in miniature).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ...errors import HostInterfaceError
from .contracts import Contract
from .dataset import RectilinearDataset

__all__ = ["ThresholdFilter", "SliceFilter", "StatisticsFilter",
           "FieldStatistics"]


class ThresholdFilter:
    """Replace out-of-range values of one cell field.

    Cells with ``field`` outside ``[lower, upper]`` have every listed
    output field set to ``fill`` (NaN by default, which renders as the
    colormap floor) — the masking form of VisIt's Threshold, which keeps
    the rectilinear mesh intact.
    """

    def __init__(self, field_name: str, *, lower: float = -np.inf,
                 upper: float = np.inf, fill: float = np.nan,
                 apply_to: Optional[tuple[str, ...]] = None):
        if lower > upper:
            raise HostInterfaceError(
                f"threshold range is empty: [{lower}, {upper}]")
        self.field_name = field_name
        self.lower = lower
        self.upper = upper
        self.fill = fill
        self.apply_to = apply_to

    def contract(self) -> Contract:
        return Contract(fields=frozenset({self.field_name}))

    def execute(self, dataset: RectilinearDataset) -> RectilinearDataset:
        values = dataset.field(self.field_name)
        keep = (values >= self.lower) & (values <= self.upper)
        targets = self.apply_to or (self.field_name,)
        updates = {}
        for name in targets:
            masked = dataset.field(name).astype(np.float64, copy=True)
            masked[~keep] = self.fill
            updates[name] = masked
        return dataset.with_fields(updates)


class SliceFilter:
    """Restrict the dataset to one slab of cells along an axis."""

    def __init__(self, axis: int, index: int, width: int = 1):
        if not 0 <= axis <= 2:
            raise HostInterfaceError(f"axis must be 0..2, got {axis}")
        if width < 1:
            raise HostInterfaceError("slab width must be >= 1")
        self.axis = axis
        self.index = index
        self.width = width

    def contract(self) -> Contract:
        return Contract()

    def execute(self, dataset: RectilinearDataset) -> RectilinearDataset:
        n = dataset.dims[self.axis]
        if not 0 <= self.index < n:
            raise HostInterfaceError(
                f"slice index {self.index} out of range for axis "
                f"{self.axis} (size {n})")
        stop = min(self.index + self.width, n)
        cell_slice = [slice(None)] * 3
        cell_slice[self.axis] = slice(self.index, stop)
        coords = [dataset.x, dataset.y, dataset.z]
        coords[self.axis] = coords[self.axis][self.index:stop + 1]
        out = RectilinearDataset(x=coords[0], y=coords[1], z=coords[2])
        for name in dataset.cell_fields:
            out.cell_fields[name] = np.ascontiguousarray(
                dataset.field3d(name)[tuple(cell_slice)]).reshape(-1)
        return out


@dataclass(frozen=True)
class FieldStatistics:
    """Summary of one field over one execution."""

    name: str
    minimum: float
    maximum: float
    mean: float
    positive_fraction: float


class StatisticsFilter:
    """Pass-through stage recording per-field statistics (VisIt Query)."""

    def __init__(self, *field_names: str):
        self.field_names = field_names
        self.history: list[dict[str, FieldStatistics]] = []

    def contract(self) -> Contract:
        return Contract(fields=frozenset(self.field_names))

    def execute(self, dataset: RectilinearDataset) -> RectilinearDataset:
        snapshot = {}
        for name in self.field_names or dataset.cell_fields:
            values = dataset.field(name)
            finite = values[np.isfinite(values)]
            if finite.size == 0:
                raise HostInterfaceError(
                    f"field {name!r} has no finite values to summarize")
            snapshot[name] = FieldStatistics(
                name=name,
                minimum=float(finite.min()),
                maximum=float(finite.max()),
                mean=float(finite.mean()),
                positive_fraction=float((finite > 0).mean()))
        self.history.append(snapshot)
        return dataset
