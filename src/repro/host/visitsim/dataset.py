"""Rectilinear dataset objects for the miniature VisIt-like host.

A :class:`RectilinearDataset` is the unit the pipeline passes between
stages: point coordinates, cell-centered fields, and ghost-zone metadata.
Ghost cells are extra layers duplicated from neighbouring blocks so
stencil operations (the gradient) are correct at block seams; per-face
ghost widths are zero at physical domain boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

import numpy as np

from ...errors import HostInterfaceError

__all__ = ["RectilinearDataset"]


@dataclass
class RectilinearDataset:
    """One rectilinear block with cell-centered fields."""

    x: np.ndarray
    y: np.ndarray
    z: np.ndarray
    cell_fields: dict[str, np.ndarray] = field(default_factory=dict)
    # ghost layers per axis at the (low, high) face
    ghost_lo: tuple[int, int, int] = (0, 0, 0)
    ghost_hi: tuple[int, int, int] = (0, 0, 0)

    @property
    def dims(self) -> tuple[int, int, int]:
        """Cell dimensions (including any ghost layers)."""
        return (len(self.x) - 1, len(self.y) - 1, len(self.z) - 1)

    @property
    def n_cells(self) -> int:
        ni, nj, nk = self.dims
        return ni * nj * nk

    @property
    def has_ghost(self) -> bool:
        return any(self.ghost_lo) or any(self.ghost_hi)

    def mesh_arrays(self) -> dict[str, np.ndarray]:
        """Host-binding mesh arrays (dims, x, y, z)."""
        return {
            "dims": np.asarray(self.dims, dtype=np.int32),
            "x": np.asarray(self.x), "y": np.asarray(self.y),
            "z": np.asarray(self.z),
        }

    def field3d(self, name: str) -> np.ndarray:
        """A field reshaped to (ni, nj, nk), as a view when possible."""
        return self.field(name).reshape(self.dims)

    def field(self, name: str) -> np.ndarray:
        try:
            return self.cell_fields[name]
        except KeyError:
            raise HostInterfaceError(
                f"dataset has no cell field {name!r}; "
                f"fields: {sorted(self.cell_fields)}") from None

    def add_field(self, name: str, values: np.ndarray) -> None:
        values = np.asarray(values)
        if values.size != self.n_cells:
            raise HostInterfaceError(
                f"field {name!r} has {values.size} values for "
                f"{self.n_cells} cells")
        self.cell_fields[name] = values.reshape(-1)

    def strip_ghost(self) -> "RectilinearDataset":
        """Drop ghost layers, returning the interior block."""
        if not self.has_ghost:
            return self
        (gl0, gl1, gl2), (gh0, gh1, gh2) = self.ghost_lo, self.ghost_hi
        ni, nj, nk = self.dims

        def span(g_lo, g_hi, n):
            return slice(g_lo, n - g_hi if g_hi else None)

        si, sj, sk = (span(gl0, gh0, ni), span(gl1, gh1, nj),
                      span(gl2, gh2, nk))
        # point coordinate slices are one longer on the high side
        def pspan(g_lo, g_hi, n_pts):
            return slice(g_lo, n_pts - g_hi if g_hi else None)

        out = RectilinearDataset(
            x=self.x[pspan(gl0, gh0, len(self.x))],
            y=self.y[pspan(gl1, gh1, len(self.y))],
            z=self.z[pspan(gl2, gh2, len(self.z))],
        )
        for name, values in self.cell_fields.items():
            out.cell_fields[name] = np.ascontiguousarray(
                values.reshape(ni, nj, nk)[si, sj, sk]).reshape(-1)
        return out

    def with_fields(self, fields: Mapping[str, np.ndarray]
                    ) -> "RectilinearDataset":
        """Copy with additional cell fields."""
        merged = dict(self.cell_fields)
        merged.update({k: np.asarray(v).reshape(-1)
                       for k, v in fields.items()})
        return replace(self, cell_fields=merged)
