"""Domain decomposition and ghost-zone generation.

Section IV-D3: *"our framework explicitly requests ghost data generation
from VisIt. To fulfill this request ... VisIt will duplicate and exchange a
stencil of cells around each sub-grid (i.e. 'ghost data'). The data passed
to our framework will be the sub-grids with these ghost cells, allowing the
gradient primitives to compute the proper values on the boundaries of all
sub-grids."*

Here the "exchange" is an extraction from the global arrays (the host owns
the whole time step in the simulator); the produced blocks carry per-face
ghost widths that are zero at physical domain boundaries, exactly as
VisIt's ghost stencils are.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import HostInterfaceError
from .dataset import RectilinearDataset

__all__ = ["BlockExtent", "decompose", "extract_block"]


@dataclass(frozen=True)
class BlockExtent:
    """One block of a decomposed global grid, in global cell indices."""

    lo: tuple[int, int, int]
    dims: tuple[int, int, int]

    @property
    def hi(self) -> tuple[int, int, int]:
        return tuple(l + d for l, d in zip(self.lo, self.dims))

    @property
    def n_cells(self) -> int:
        ni, nj, nk = self.dims
        return ni * nj * nk


def decompose(global_dims: tuple[int, int, int],
              block_dims: tuple[int, int, int]) -> list[BlockExtent]:
    """Split a global cell grid into blocks (global dims must divide
    evenly, as the paper's 3072^3 / 192x192x256 decomposition does)."""
    for g, b in zip(global_dims, block_dims):
        if g % b != 0:
            raise HostInterfaceError(
                f"block dims {block_dims} do not evenly divide global "
                f"dims {global_dims}")
    counts = [g // b for g, b in zip(global_dims, block_dims)]
    blocks = []
    for i in range(counts[0]):
        for j in range(counts[1]):
            for k in range(counts[2]):
                blocks.append(BlockExtent(
                    (i * block_dims[0], j * block_dims[1],
                     k * block_dims[2]),
                    block_dims))
    return blocks


def extract_block(global_ds: RectilinearDataset, extent: BlockExtent,
                  ghost_width: int = 0) -> RectilinearDataset:
    """Extract one block, widened by up to ``ghost_width`` ghost layers
    where neighbouring cells exist."""
    gdims = global_ds.dims
    lo = list(extent.lo)
    hi = list(extent.hi)
    ghost_lo = [0, 0, 0]
    ghost_hi = [0, 0, 0]
    for axis in range(3):
        g_lo = min(ghost_width, lo[axis])
        g_hi = min(ghost_width, gdims[axis] - hi[axis])
        lo[axis] -= g_lo
        hi[axis] += g_hi
        ghost_lo[axis] = g_lo
        ghost_hi[axis] = g_hi

    out = RectilinearDataset(
        x=np.ascontiguousarray(global_ds.x[lo[0]:hi[0] + 1]),
        y=np.ascontiguousarray(global_ds.y[lo[1]:hi[1] + 1]),
        z=np.ascontiguousarray(global_ds.z[lo[2]:hi[2] + 1]),
        ghost_lo=tuple(ghost_lo),
        ghost_hi=tuple(ghost_hi),
    )
    region = (slice(lo[0], hi[0]), slice(lo[1], hi[1]), slice(lo[2], hi[2]))
    for name, values in global_ds.cell_fields.items():
        out.cell_fields[name] = np.ascontiguousarray(
            values.reshape(gdims)[region]).reshape(-1)
    return out
