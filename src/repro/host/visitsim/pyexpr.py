"""The custom "VisIt Python Expression" that embeds our framework.

Section III-D: *"To call our framework from within VisIt, we wrote a custom
VisIt Python Expression ... a Python filter that processes Python-wrapped
instances of VTK data sets from a VisIt pipeline to create a new mesh
field."*  Here the VTK dataset is a
:class:`~repro.host.visitsim.dataset.RectilinearDataset`; its field arrays
are handed to the engine as NumPy objects with zero copies on the way in.
"""

from __future__ import annotations

from typing import Optional

from ...primitives.base import CallStyle
from ..engine import CompiledExpression, DerivedFieldEngine
from .contracts import Contract
from .dataset import RectilinearDataset

__all__ = ["PythonExpressionFilter"]

_MESH_NAMES = frozenset({"dims", "x", "y", "z"})


class PythonExpressionFilter:
    """A pipeline stage computing one derived field via the framework."""

    def __init__(self, expression: str,
                 engine: Optional[DerivedFieldEngine] = None,
                 output_name: Optional[str] = None):
        self.engine = engine if engine is not None else DerivedFieldEngine()
        self.compiled: CompiledExpression = self.engine.compile(expression)
        self.output_name = output_name or self.compiled.result_name

    # -- pipeline protocol -------------------------------------------------------

    def contract(self) -> Contract:
        """Request the input fields — and ghost zones if the network uses
        any stencil (global-access) primitive, i.e. the gradient."""
        needs_ghost = any(
            node.filter not in ("source", "const")
            and self.compiled.network.registry.get(node.filter).call_style
            is CallStyle.GLOBAL
            for node in self.compiled.network.schedule())
        wanted = frozenset(self.compiled.required_inputs) - _MESH_NAMES
        return Contract(fields=wanted, ghost_zones=needs_ghost,
                        ghost_width=1 if needs_ghost else 0)

    def provides(self) -> frozenset[str]:
        """The derived field this stage adds, satisfying downstream
        contract requests during pipeline negotiation."""
        return frozenset({self.output_name})

    def execute(self, dataset: RectilinearDataset) -> RectilinearDataset:
        """Compute the derived field and attach it to the dataset.

        When the dataset carries ghost cells the derived field is computed
        over the ghosted block (so gradients are right at seams) and the
        returned dataset keeps the ghost metadata — stripping is the
        pipeline sink's job, as in VisIt.
        """
        bindings = dict(dataset.mesh_arrays())
        for name in self.compiled.required_inputs:
            if name not in _MESH_NAMES:
                bindings[name] = dataset.field(name)
        derived = self.engine.derive(self.compiled, bindings)
        out = dataset.with_fields({self.output_name: derived})
        return out
