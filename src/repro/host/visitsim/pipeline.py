"""The miniature VisIt pipeline.

Models the host-application behaviour the paper relies on: a reader at the
top, filters in the middle, a render sink at the bottom; contracts flow
bottom-up before execution; and *"once the pipeline is constructed and our
framework computes the user's expression, each subsequent rendering step
reuses the resulting mesh. The pipeline is executed only once per time
step ... and it is executed again if the data set changes, such as when a
different time step is loaded."*
"""

from __future__ import annotations

from typing import Callable, Optional, Protocol, Sequence

from ...errors import HostInterfaceError
from .contracts import Contract
from .dataset import RectilinearDataset
from .ghost import BlockExtent, extract_block

__all__ = ["Reader", "GlobalArrayReader", "Pipeline", "PipelineStage"]


class PipelineStage(Protocol):
    """Anything with a contract() and an execute(dataset)."""

    def contract(self) -> Contract: ...

    def execute(self, dataset: RectilinearDataset) -> RectilinearDataset: ...


class Reader:
    """Base reader: produces the dataset for a time step, honouring the
    merged downstream contract (fields + ghost zones)."""

    def read(self, timestep: int,
             contract: Contract) -> RectilinearDataset:  # pragma: no cover
        raise NotImplementedError


class GlobalArrayReader(Reader):
    """Reads one block of a global in-memory dataset per time step.

    ``loader(timestep)`` supplies the global dataset (cached per step);
    ``extent=None`` reads the whole domain.  Ghost generation happens here
    when the contract requests it — the reader plays VisIt's role of
    duplicating the stencil around the block.
    """

    def __init__(self, loader: Callable[[int], RectilinearDataset],
                 extent: Optional[BlockExtent] = None):
        self.loader = loader
        self.extent = extent
        self._cache: dict[int, RectilinearDataset] = {}

    def read(self, timestep: int, contract: Contract) -> RectilinearDataset:
        global_ds = self._cache.get(timestep)
        if global_ds is None:
            global_ds = self.loader(timestep)
            self._cache[timestep] = global_ds
        missing = contract.fields - set(global_ds.cell_fields)
        if missing:
            raise HostInterfaceError(
                f"reader cannot supply fields {sorted(missing)}")
        if self.extent is None:
            return global_ds
        width = contract.ghost_width if contract.ghost_zones else 0
        return extract_block(global_ds, self.extent, ghost_width=width)


class Pipeline:
    """reader -> stages -> (optional render sink)."""

    def __init__(self, reader: Reader, stages: Sequence[PipelineStage]):
        self.reader = reader
        self.stages = list(stages)
        self._result_cache: dict[int, RectilinearDataset] = {}
        self.executions = 0

    def contract(self) -> Contract:
        """Negotiate the upstream contract bottom-up.

        Fields *produced* by a stage (its ``provides()``) satisfy the
        requests of everything downstream of it, so only truly-external
        fields reach the reader — VisIt's contract resolution."""
        wanted: frozenset[str] = frozenset()
        ghost_zones = False
        ghost_width = 0
        for stage in reversed(self.stages):
            provides = getattr(stage, "provides", None)
            if provides is not None:
                wanted = wanted - frozenset(provides())
            request = stage.contract()
            wanted = wanted | request.fields
            ghost_zones = ghost_zones or request.ghost_zones
            ghost_width = max(ghost_width, request.ghost_width)
        return Contract(fields=wanted, ghost_zones=ghost_zones,
                        ghost_width=ghost_width)

    def execute(self, timestep: int = 0) -> RectilinearDataset:
        """Run the pipeline for a time step; cached until the step changes."""
        cached = self._result_cache.get(timestep)
        if cached is not None:
            return cached
        dataset = self.reader.read(timestep, self.contract())
        for stage in self.stages:
            dataset = stage.execute(dataset)
        self.executions += 1
        self._result_cache[timestep] = dataset
        return dataset

    def render(self, timestep: int = 0, *, field: str,
               axis: int = 2, index: Optional[int] = None):
        """Pseudocolor render; re-rendering reuses the executed mesh."""
        from .render import pseudocolor

        dataset = self.execute(timestep).strip_ghost()
        return pseudocolor(dataset, field, axis=axis, index=index)

    def invalidate(self, timestep: Optional[int] = None) -> None:
        """Drop cached results (the data set changed)."""
        if timestep is None:
            self._result_cache.clear()
        else:
            self._result_cache.pop(timestep, None)
