"""Contract system of the miniature VisIt host.

VisIt's contract-based design (Childs et al. 2005) lets downstream pipeline
stages declare what they need from upstream before execution — the
mechanism our framework uses to *"explicitly request ghost data
generation"*.  A :class:`Contract` accumulates bottom-up through the
pipeline; the reader honours the merged result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Contract"]


@dataclass(frozen=True)
class Contract:
    """Upstream requirements declared by a pipeline stage."""

    fields: frozenset[str] = frozenset()
    ghost_zones: bool = False
    ghost_width: int = 0

    def merge(self, other: "Contract") -> "Contract":
        return Contract(
            fields=self.fields | other.fields,
            ghost_zones=self.ghost_zones or other.ghost_zones,
            ghost_width=max(self.ghost_width, other.ghost_width),
        )
