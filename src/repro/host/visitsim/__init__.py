"""Miniature VisIt-like host application (the paper's in-situ harness):
contracts, rectilinear datasets, ghost-zone generation, a pipeline with
per-time-step caching, the Python Expression filter embedding the
framework, and a pseudocolor render sink."""

from .contracts import Contract
from .dataset import RectilinearDataset
from .ghost import BlockExtent, decompose, extract_block
from .pipeline import GlobalArrayReader, Pipeline, PipelineStage, Reader
from .operators import (FieldStatistics, SliceFilter, StatisticsFilter,
                        ThresholdFilter)
from .pyexpr import PythonExpressionFilter
from .render import colormap, pseudocolor, save_ppm

__all__ = [
    "Contract", "RectilinearDataset", "BlockExtent", "decompose",
    "extract_block", "GlobalArrayReader", "Pipeline", "PipelineStage",
    "Reader", "PythonExpressionFilter", "colormap", "pseudocolor",
    "save_ppm", "ThresholdFilter", "SliceFilter", "StatisticsFilter",
    "FieldStatistics",
]
