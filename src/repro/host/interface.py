"""The in-situ host interface (Section III-D).

*"The host application provides both the user's expression and NumPy
objects for the input data arrays. Our framework processes the expression,
executes the operations, and returns the resulting data array with the
field representing the user's expression."*

:func:`derive` is that one-call surface.  Hosts wanting expression caching
across time steps or instrumented reports should hold a
:class:`~repro.host.engine.DerivedFieldEngine` instead.
"""

from __future__ import annotations

from typing import Mapping, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..strategies import ExecutionReport, ExecutionStrategy
from .engine import DerivedFieldEngine

__all__ = ["derive", "derive_report"]


def derive(expression: str, fields: Mapping[str, np.ndarray], *,
           strategy: Union[str, ExecutionStrategy] = "fusion",
           device: Union[str, DeviceType, DeviceSpec] = "cpu",
           ) -> dict[str, np.ndarray]:
    """Compute a derived field from an expression and host arrays.

    Returns ``{result_name: array}`` so call sites read naturally:

    >>> import numpy as np
    >>> out = derive("v2 = u * u", {"u": np.arange(4.0)})
    >>> out["v2"]
    array([0., 1., 4., 9.])
    """
    engine = DerivedFieldEngine(device=device, strategy=strategy)
    compiled = engine.compile(expression)
    return {compiled.result_name: engine.derive(compiled, fields)}


def derive_report(expression: str, fields: Mapping[str, np.ndarray], *,
                  strategy: Union[str, ExecutionStrategy] = "fusion",
                  device: Union[str, DeviceType, DeviceSpec] = "cpu",
                  ) -> ExecutionReport:
    """Like :func:`derive` but returns the full instrumented report
    (output, event counts, timing breakdown, memory high-water mark,
    generated OpenCL sources)."""
    engine = DerivedFieldEngine(device=device, strategy=strategy)
    return engine.execute(expression, fields)
