"""The derived-field engine: parse -> lower -> optimize -> execute.

:class:`DerivedFieldEngine` is the orchestration object a host application
holds onto.  Compiling an expression (parse + lower + CSE + network
validation) happens once; the compiled form is cached and re-executed for
each new time step's arrays, matching the paper's in-situ usage where *"the
pipeline is executed only once per time step ... and it is executed again
if the data set changes."*

The engine extends that amortization down through execution.  On top of
the expression cache it keeps an LRU :class:`~repro.strategies.plancache.
PlanCache` of :class:`~repro.strategies.plancache.ExecutablePlan` objects —
planned stages, generated + validated OpenCL C, compiled kernels, buffer
sizes — and a persistent pooled
:class:`~repro.clsim.environment.CLEnvironment` whose buffer pool recycles
device reservations between runs.  A warm ``execute()`` therefore only
binds the new arrays, launches, and reads back.  Cold and warm runs share
one code path (``build_plan`` + ``plan.run``), so a warm run's output,
event counts, and modeled timings are identical to a cold run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..clsim.environment import CLEnvironment
from ..dataflow.network import Network
from ..dataflow.script import render_script
from ..errors import HostInterfaceError
from ..expr.lower import lower
from ..expr.optimize import eliminate_common_subexpressions
from ..expr.parser import parse
from ..primitives.base import PrimitiveRegistry, ResultKind
from ..strategies import ExecutionReport, ExecutionStrategy, get_strategy
from ..strategies.bindings import ArraySpec, BindingInput
from ..strategies.plancache import PlanCache, plan_key

__all__ = ["CompiledExpression", "DerivedFieldEngine"]


@dataclass(frozen=True)
class CompiledExpression:
    """A parsed, lowered, optimized, validated expression."""

    text: str
    result_name: str
    network: Network

    @property
    def required_inputs(self) -> list[str]:
        return self.network.live_sources()

    def definition_script(self) -> str:
        """The inspectable Python script of network-API calls."""
        return render_script(self.network.spec)


class DerivedFieldEngine:
    """Compile and execute derived-field expressions on a simulated device.

    Parameters mirror the paper's knobs: the target device ('cpu'/'gpu'),
    the execution strategy ('roundtrip'/'staged'/'fusion'), whether the
    limited CSE pass runs, and optionally the stronger commutative CSE
    extension.

    ``plan_cache`` controls the warm-execution layer: ``True`` (default)
    builds an LRU of executable plans, an ``int`` sets its capacity, a
    :class:`PlanCache` instance is shared as-is, and ``False`` disables
    caching entirely (every run re-plans, like the seed implementation).
    ``pooling`` controls whether the persistent warm environment recycles
    released device-buffer reservations.  Dry-run engines and strategies
    without ``build_plan`` (streaming, multi-device) always take the
    uncached fresh-environment path.
    """

    def __init__(self, device: Union[str, DeviceType, DeviceSpec] = "cpu",
                 strategy: Union[str, ExecutionStrategy] = "fusion", *,
                 registry: Optional[PrimitiveRegistry] = None,
                 cse: bool = True, commutative_cse: bool = False,
                 dry_run: bool = False, backend: str = "vectorized",
                 plan_cache: Union[bool, int, PlanCache] = True,
                 pooling: bool = True):
        self.device = device
        self.strategy = (get_strategy(strategy)
                         if isinstance(strategy, str) else strategy)
        self.registry = registry
        self.cse = cse
        self.commutative_cse = commutative_cse
        self.dry_run = dry_run
        self.backend = backend
        self.pooling = pooling
        if plan_cache is True:
            self.plan_cache: Optional[PlanCache] = PlanCache()
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        elif plan_cache:
            self.plan_cache = PlanCache(int(plan_cache))
        else:
            self.plan_cache = None
        self._cache: dict[tuple, CompiledExpression] = {}
        self._env: Optional[CLEnvironment] = None

    # -- compilation -----------------------------------------------------------

    def compile(self, expression: str,
                known_fields: Optional[Mapping[str, ResultKind]] = None,
                ) -> CompiledExpression:
        """Parse, lower, optimize, and validate an expression (cached)."""
        key = (expression, self.cse, self.commutative_cse,
               tuple(sorted(known_fields.items())) if known_fields else None)
        compiled = self._cache.get(key)
        if compiled is not None:
            return compiled
        program = parse(expression)
        spec, source_kinds = lower(program, registry=self.registry,
                                   known_fields=known_fields)
        if self.cse:
            spec = eliminate_common_subexpressions(
                spec, commutative=self.commutative_cse,
                registry=self.registry)
        network = Network(spec, registry=self.registry,
                          source_kinds=source_kinds)
        compiled = CompiledExpression(expression, program.result_name,
                                      network)
        self._cache[key] = compiled
        return compiled

    # -- execution ----------------------------------------------------------------

    @property
    def environment(self) -> Optional[CLEnvironment]:
        """The persistent warm-path environment (None before first use or
        on engines that always take the fresh-environment path)."""
        return self._env

    def _warm_environment(self) -> CLEnvironment:
        if self._env is None:
            self._env = CLEnvironment(self.device, backend=self.backend,
                                      pooling=self.pooling)
        return self._env

    def execute(self, expression: Union[str, CompiledExpression],
                fields: Mapping[str, BindingInput]) -> ExecutionReport:
        """Run an expression over host arrays; returns the full report.

        With the plan cache enabled, execution reuses a persistent
        environment whose instrumentation resets per run, so event counts,
        timings, and the memory high-water mark still describe exactly one
        run; the report's ``cache``/``alloc`` fields carry the warm-layer
        counters.  Otherwise a fresh environment is created per execution.
        """
        compiled = (expression if isinstance(expression, CompiledExpression)
                    else self.compile(expression))
        missing = [name for name in compiled.required_inputs
                   if name not in fields]
        if missing:
            raise HostInterfaceError(
                f"expression {compiled.result_name!r} needs host fields "
                f"{missing}; got {sorted(fields)}")

        strategy = self.strategy
        if (self.plan_cache is None or self.dry_run
                or not hasattr(strategy, "build_plan")):
            env = CLEnvironment(self.device, dry_run=self.dry_run,
                                backend=self.backend)
            report = strategy.execute(compiled.network, fields, env)
            report.alloc = env.alloc_stats()
            return report

        env = self._warm_environment()
        env.reset_instrumentation()
        bindings, n, dtype = strategy._prepare(compiled.network, fields)
        key, sources = plan_key(compiled.network, strategy, bindings,
                                n, dtype, env.device, self.backend)
        plan = self.plan_cache.get(key)
        hit = plan is not None
        if plan is None:
            plan = strategy.build_plan(compiled.network, bindings, n, dtype)
            self.plan_cache.put(key, plan)
        report = plan.run(plan.rebind(bindings, sources), env)
        report.cache = self.plan_cache.info(hit)
        report.alloc = env.alloc_stats()
        return report

    def derive(self, expression: Union[str, CompiledExpression],
               fields: Mapping[str, np.ndarray]) -> np.ndarray:
        """Execute and return just the derived field array."""
        if self.dry_run:
            raise HostInterfaceError(
                "derive() needs real arrays; this engine is dry_run=True")
        report = self.execute(expression, fields)
        assert report.output is not None
        return report.output
