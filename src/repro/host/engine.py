"""The derived-field engine: parse -> lower -> optimize -> execute.

:class:`DerivedFieldEngine` is the orchestration object a host application
holds onto.  Compiling an expression (parse + lower + CSE + network
validation) happens once; the compiled form is cached and re-executed for
each new time step's arrays, matching the paper's in-situ usage where *"the
pipeline is executed only once per time step ... and it is executed again
if the data set changes."*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..clsim.environment import CLEnvironment
from ..dataflow.network import Network
from ..dataflow.script import render_script
from ..errors import HostInterfaceError
from ..expr.lower import lower
from ..expr.optimize import eliminate_common_subexpressions
from ..expr.parser import parse
from ..primitives.base import PrimitiveRegistry, ResultKind
from ..strategies import ExecutionReport, ExecutionStrategy, get_strategy
from ..strategies.bindings import ArraySpec, BindingInput

__all__ = ["CompiledExpression", "DerivedFieldEngine"]


@dataclass(frozen=True)
class CompiledExpression:
    """A parsed, lowered, optimized, validated expression."""

    text: str
    result_name: str
    network: Network

    @property
    def required_inputs(self) -> list[str]:
        return self.network.live_sources()

    def definition_script(self) -> str:
        """The inspectable Python script of network-API calls."""
        return render_script(self.network.spec)


class DerivedFieldEngine:
    """Compile and execute derived-field expressions on a simulated device.

    Parameters mirror the paper's knobs: the target device ('cpu'/'gpu'),
    the execution strategy ('roundtrip'/'staged'/'fusion'), whether the
    limited CSE pass runs, and optionally the stronger commutative CSE
    extension.
    """

    def __init__(self, device: Union[str, DeviceType, DeviceSpec] = "cpu",
                 strategy: Union[str, ExecutionStrategy] = "fusion", *,
                 registry: Optional[PrimitiveRegistry] = None,
                 cse: bool = True, commutative_cse: bool = False,
                 dry_run: bool = False, backend: str = "vectorized"):
        self.device = device
        self.strategy = (get_strategy(strategy)
                         if isinstance(strategy, str) else strategy)
        self.registry = registry
        self.cse = cse
        self.commutative_cse = commutative_cse
        self.dry_run = dry_run
        self.backend = backend
        self._cache: dict[tuple, CompiledExpression] = {}

    # -- compilation -----------------------------------------------------------

    def compile(self, expression: str,
                known_fields: Optional[Mapping[str, ResultKind]] = None,
                ) -> CompiledExpression:
        """Parse, lower, optimize, and validate an expression (cached)."""
        key = (expression, self.cse, self.commutative_cse,
               tuple(sorted(known_fields.items())) if known_fields else None)
        compiled = self._cache.get(key)
        if compiled is not None:
            return compiled
        program = parse(expression)
        spec, source_kinds = lower(program, registry=self.registry,
                                   known_fields=known_fields)
        if self.cse:
            spec = eliminate_common_subexpressions(
                spec, commutative=self.commutative_cse,
                registry=self.registry)
        network = Network(spec, registry=self.registry,
                          source_kinds=source_kinds)
        compiled = CompiledExpression(expression, program.result_name,
                                      network)
        self._cache[key] = compiled
        return compiled

    # -- execution ----------------------------------------------------------------

    def execute(self, expression: Union[str, CompiledExpression],
                fields: Mapping[str, BindingInput]) -> ExecutionReport:
        """Run an expression over host arrays; returns the full report.

        A fresh environment is created per execution so event counts,
        timings, and the memory high-water mark describe exactly one run.
        """
        compiled = (expression if isinstance(expression, CompiledExpression)
                    else self.compile(expression))
        missing = [name for name in compiled.required_inputs
                   if name not in fields]
        if missing:
            raise HostInterfaceError(
                f"expression {compiled.result_name!r} needs host fields "
                f"{missing}; got {sorted(fields)}")
        env = CLEnvironment(self.device, dry_run=self.dry_run,
                            backend=self.backend)
        return self.strategy.execute(compiled.network, fields, env)

    def derive(self, expression: Union[str, CompiledExpression],
               fields: Mapping[str, np.ndarray]) -> np.ndarray:
        """Execute and return just the derived field array."""
        if self.dry_run:
            raise HostInterfaceError(
                "derive() needs real arrays; this engine is dry_run=True")
        report = self.execute(expression, fields)
        assert report.output is not None
        return report.output
