"""The derived-field engine: parse -> lower -> optimize -> execute.

:class:`DerivedFieldEngine` is the orchestration object a host application
holds onto.  Compiling an expression (parse + lower + CSE + network
validation) happens once; the compiled form is cached and re-executed for
each new time step's arrays, matching the paper's in-situ usage where *"the
pipeline is executed only once per time step ... and it is executed again
if the data set changes."*

The engine extends that amortization down through execution.  On top of
the expression cache it keeps an LRU :class:`~repro.strategies.plancache.
PlanCache` of :class:`~repro.strategies.plancache.ExecutablePlan` objects —
planned stages, generated + validated OpenCL C, compiled kernels, buffer
sizes — and a persistent pooled
:class:`~repro.clsim.environment.CLEnvironment` whose buffer pool recycles
device reservations between runs.  A warm ``execute()`` therefore only
binds the new arrays, launches, and reads back.  Cold and warm runs share
one code path (``build_plan`` + ``plan.run``), so a warm run's output,
event counts, and modeled timings are identical to a cold run's.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..clsim.environment import CLEnvironment
from ..clsim.pipeline import coalesce_events
from ..clsim.platform import find_device
from ..codegen import (CompiledPlan, PlanDiskCache, codegen_token,
                       compile_plan)
from ..dataflow.network import Network
from ..dataflow.script import render_script
from ..errors import HostInterfaceError
from ..expr.lower import lower
from ..expr.optimize import eliminate_common_subexpressions
from ..expr.parser import parse
from ..metrics import get_registry
from ..obs.log import get_logger
from ..primitives.base import PrimitiveRegistry, ResultKind
from ..strategies import (CodegenInfo, ExecutionReport, ExecutionStrategy,
                          get_strategy)
from ..strategies.bindings import ArraySpec, Binding, BindingInput
from ..strategies.plancache import PlanCache, PlanKey, plan_key
from ..trace import NULL_TRACER, Tracer

__all__ = ["BatchExecution", "CompiledExpression", "DerivedFieldEngine",
           "PreparedExecution"]


@dataclass(frozen=True)
class CompiledExpression:
    """A parsed, lowered, optimized, validated expression."""

    text: str
    result_name: str
    network: Network

    @property
    def required_inputs(self) -> list[str]:
        return self.network.live_sources()

    def definition_script(self) -> str:
        """The inspectable Python script of network-API calls."""
        return render_script(self.network.spec)


@dataclass(frozen=True)
class PreparedExecution:
    """Everything the engine derives from a request before running it.

    The public prepare/plan path: :meth:`DerivedFieldEngine.prepare`
    validates the request, normalizes its bindings, sizes the problem,
    and (on the cached path) assembles the plan-cache key.  Hosts that
    schedule work — notably :class:`~repro.service.DerivedFieldService` —
    prepare once, route on ``key``, and hand the prepared request to a
    worker's :meth:`DerivedFieldEngine.execute_prepared`.

    ``key`` is ``None`` when this engine bypasses the plan cache
    (``plan_cache=False``, dry-run, or a strategy without ``build_plan``).
    ``sources`` is the network's source order, for positional rebinding
    on a structural cache hit.
    """

    compiled: CompiledExpression
    bindings: Mapping[str, Binding]
    n: int
    dtype: np.dtype
    key: Optional[PlanKey]
    sources: tuple[str, ...]


@dataclass
class BatchExecution:
    """The result of one coalesced multi-request launch.

    ``reports`` are per-member :class:`ExecutionReport` objects whose
    output/counts/timing/memory are identical to what each member's solo
    warm run would have produced — batching changes *scheduling*, never
    results.  ``modeled_seconds`` is the batched launch's own modeled
    device time (stacked transfers + one amortized kernel launch per
    plan step), which is what the service attributes to the device: it
    is smaller than the sum of the members' solo timings by exactly the
    amortized per-launch/latency overhead.  ``hit`` is the batch's
    single plan-cache lookup outcome.
    """

    reports: list[ExecutionReport]
    modeled_seconds: float
    hit: bool


class DerivedFieldEngine:
    """Compile and execute derived-field expressions on a simulated device.

    Parameters mirror the paper's knobs: the target device ('cpu'/'gpu'),
    the execution strategy ('roundtrip'/'staged'/'fusion'), whether the
    limited CSE pass runs, and optionally the stronger commutative CSE
    extension.

    ``plan_cache`` controls the warm-execution layer: ``True`` (default)
    builds an LRU of executable plans, an ``int`` sets its capacity, a
    :class:`PlanCache` instance is shared as-is, and ``False`` disables
    caching entirely (every run re-plans, like the seed implementation).
    ``pooling`` controls whether the persistent warm environment recycles
    released device-buffer reservations.  Dry-run engines and strategies
    without ``build_plan`` (streaming, multi-device) always take the
    uncached fresh-environment path.

    ``backend`` selects the executor: ``"vectorized"`` / ``"interpreted"``
    run the clsim kernel backends; ``"compiled"`` lowers each cached plan
    to one generated Python sweep function (DESIGN.md §10), falling back
    to the interpreter plan when codegen cannot lower the network.
    ``None`` (default) picks ``"compiled"`` for fusion engines on the
    cached path and ``"vectorized"`` otherwise.  ``plan_cache_dir``
    additionally persists compiled plans on disk (a path, or a shared
    :class:`~repro.codegen.PlanDiskCache` instance) so a restarted
    process warms without recompiling.
    """

    def __init__(self, device: Union[str, DeviceType, DeviceSpec] = "cpu",
                 strategy: Union[str, ExecutionStrategy] = "fusion", *,
                 registry: Optional[PrimitiveRegistry] = None,
                 cse: bool = True, commutative_cse: bool = False,
                 dry_run: bool = False, backend: Optional[str] = None,
                 plan_cache: Union[bool, int, PlanCache] = True,
                 plan_cache_dir: Union[None, str, Path,
                                       PlanDiskCache] = None,
                 pooling: bool = True, tracer: Optional[Tracer] = None):
        self.device = device
        self.tracer = NULL_TRACER if tracer is None else tracer
        self.device_spec: DeviceSpec = (
            device if isinstance(device, DeviceSpec) else find_device(device))
        self.strategy = (get_strategy(strategy)
                         if isinstance(strategy, str) else strategy)
        self.registry = registry
        self.cse = cse
        self.commutative_cse = commutative_cse
        self.dry_run = dry_run
        self.pooling = pooling
        if plan_cache is True:
            self.plan_cache: Optional[PlanCache] = PlanCache()
        elif isinstance(plan_cache, PlanCache):
            self.plan_cache = plan_cache
        elif plan_cache:
            self.plan_cache = PlanCache(int(plan_cache))
        else:
            self.plan_cache = None
        # The compiled executor lives on the warm plan path; without a
        # plan cache (or with a strategy that cannot build plans) it has
        # nowhere to hang, so requests for it downgrade gracefully.
        can_compile = (self.plan_cache is not None and not dry_run
                       and hasattr(self.strategy, "build_plan"))
        if backend is None:
            backend = ("compiled"
                       if can_compile and self.strategy.name == "fusion"
                       else "vectorized")
        elif backend == "compiled" and not can_compile:
            backend = "vectorized"
        self.backend = backend
        # The clsim Context only knows vectorized/interpreted; compiled
        # plans replay their captured events on a vectorized environment.
        self.env_backend = ("vectorized" if backend == "compiled"
                            else backend)
        if isinstance(plan_cache_dir, PlanDiskCache):
            self.plan_disk: Optional[PlanDiskCache] = plan_cache_dir
        elif plan_cache_dir:
            self.plan_disk = PlanDiskCache(plan_cache_dir)
        else:
            self.plan_disk = None
        self._cache: dict[tuple, CompiledExpression] = {}
        self._env: Optional[CLEnvironment] = None
        # Serializes warm-path execution: the persistent environment's
        # instrumentation (event log, peak tracking) describes exactly one
        # run at a time, so a single engine shared by several threads
        # executes warm runs one after another.  Service deployments get
        # real concurrency from one engine per device worker instead.
        self._exec_lock = threading.Lock()
        # Registry mirror of the engine phases (DESIGN.md §9): call
        # counters + duration histograms, with execution split by cache
        # disposition.  Children are bound once; a warm execute touches
        # exactly one counter and one histogram.
        registry = get_registry()
        self._m_compile_total = registry.counter(
            "repro_engine_compile_total",
            "Expressions compiled (parse+lower+optimize+validate; "
            "expression-cache hits not included)")
        self._m_compile_seconds = registry.histogram(
            "repro_engine_compile_duration_seconds",
            "Wall time of one expression compilation")
        self._m_prepare_total = registry.counter(
            "repro_engine_prepare_total",
            "Requests prepared (validated, bound, sized, keyed)")
        self._m_prepare_seconds = registry.histogram(
            "repro_engine_prepare_duration_seconds",
            "Wall time of one prepare")
        execute_total = registry.counter(
            "repro_engine_execute_total",
            "Executions, by plan-cache disposition",
            ("cache",))
        execute_seconds = registry.histogram(
            "repro_engine_execute_duration_seconds",
            "Wall time of one execution, by plan-cache disposition",
            ("cache",))
        self._m_execute = {
            disposition: (execute_total.labels(cache=disposition),
                          execute_seconds.labels(cache=disposition))
            for disposition in ("hit", "miss", "uncached")
        }
        # Compiled-executor observability (DESIGN.md §10): how every plan
        # the backend needed was obtained, and how often codegen bailed.
        self._m_codegen = {
            "compiles": registry.counter(
                "repro_codegen_compiles_total",
                "Plans lowered and compiled to a fused Python sweep"),
            "disk_hits": registry.counter(
                "repro_codegen_disk_hits_total",
                "Compiled plans rebuilt from the persistent plan cache"),
            "disk_misses": registry.counter(
                "repro_codegen_disk_misses_total",
                "Persistent plan-cache lookups that found no entry"),
            "invalidations": registry.counter(
                "repro_codegen_invalidations_total",
                "Stale or corrupt persistent plan-cache entries discarded"),
            "fallbacks": registry.counter(
                "repro_codegen_fallbacks_total",
                "Codegen failures that fell back to the interpreter plan"),
        }

    # -- compilation -----------------------------------------------------------

    def compile(self, expression: str,
                known_fields: Optional[Mapping[str, ResultKind]] = None,
                ) -> CompiledExpression:
        """Parse, lower, optimize, and validate an expression (cached)."""
        key = (expression, self.cse, self.commutative_cse,
               tuple(sorted(known_fields.items())) if known_fields else None)
        compiled = self._cache.get(key)
        if compiled is not None:
            return compiled
        tracer = self.tracer
        start = time.perf_counter()
        with tracer.span("engine.compile", category="engine",
                         expression=expression):
            with tracer.span("parse", category="engine"):
                program = parse(expression)
            with tracer.span("lower", category="engine"):
                spec, source_kinds = lower(program, registry=self.registry,
                                           known_fields=known_fields)
            if self.cse:
                with tracer.span("optimize", category="engine"):
                    spec = eliminate_common_subexpressions(
                        spec, commutative=self.commutative_cse,
                        registry=self.registry)
            with tracer.span("validate", category="engine"):
                network = Network(spec, registry=self.registry,
                                  source_kinds=source_kinds)
        self._m_compile_total.inc()
        self._m_compile_seconds.observe(time.perf_counter() - start)
        get_logger().info("engine.compiled", tracer=tracer,
                          expression=expression,
                          device=self.device_spec.name,
                          seconds=time.perf_counter() - start)
        compiled = CompiledExpression(expression, program.result_name,
                                      network)
        self._cache[key] = compiled
        return compiled

    # -- execution ----------------------------------------------------------------

    @property
    def environment(self) -> Optional[CLEnvironment]:
        """The persistent warm-path environment (None before first use or
        on engines that always take the fresh-environment path)."""
        return self._env

    def _warm_environment(self) -> CLEnvironment:
        if self._env is None:
            self._env = CLEnvironment(self.device_spec,
                                      backend=self.env_backend,
                                      pooling=self.pooling,
                                      tracer=self.tracer)
        return self._env

    def prepare(self, expression: Union[str, CompiledExpression],
                fields: Mapping[str, BindingInput]) -> PreparedExecution:
        """The public prepare/plan path: validate, bind, size, and key a
        request without executing it.

        Raises :class:`HostInterfaceError` on missing fields — so a
        serving layer can reject a malformed request synchronously, before
        admitting it to a queue.  The returned object is immutable and
        safe to hand to another thread (or, re-keyed via
        ``key.for_device``, to a worker on a different device).
        """
        start = time.perf_counter()
        with self.tracer.span("engine.prepare", category="engine"):
            compiled = (expression
                        if isinstance(expression, CompiledExpression)
                        else self.compile(expression))
            missing = [name for name in compiled.required_inputs
                       if name not in fields]
            if missing:
                raise HostInterfaceError(
                    f"expression {compiled.result_name!r} needs host "
                    f"fields {missing}; got {sorted(fields)}")
            bindings, n, dtype = self.strategy.prepare(compiled.network,
                                                       fields)
            if (self.plan_cache is None or self.dry_run
                    or not hasattr(self.strategy, "build_plan")):
                key: Optional[PlanKey] = None
                sources: tuple[str, ...] = ()
            else:
                key, sources = plan_key(compiled.network, self.strategy,
                                        bindings, n, dtype,
                                        self.device_spec, self.backend)
            self._m_prepare_total.inc()
            self._m_prepare_seconds.observe(time.perf_counter() - start)
            return PreparedExecution(compiled=compiled, bindings=bindings,
                                     n=n, dtype=dtype, key=key,
                                     sources=sources)

    def execute_prepared(self, prepared: PreparedExecution,
                         ) -> ExecutionReport:
        """Run a previously prepared request (see :meth:`prepare`)."""
        tracer = self.tracer
        start = time.perf_counter()
        if prepared.key is None:
            with tracer.span("engine.execute", category="engine",
                             strategy=self.strategy.name,
                             device=self.device_spec.name,
                             cached=False) as exec_span:
                env = CLEnvironment(self.device_spec, dry_run=self.dry_run,
                                    backend=self.env_backend, tracer=tracer)
                anchor = tracer.now()
                with tracer.span("execute", category="engine"):
                    report = self.strategy.execute(
                        prepared.compiled.network, prepared.bindings, env)
                report.alloc = env.alloc_stats()
                report.trace_id = exec_span.trace_id
                self._trace_device_run(env, anchor)
                self._observe_execute("uncached", start)
                return report

        with self._exec_lock:
            with tracer.span("engine.execute", category="engine",
                             strategy=self.strategy.name,
                             device=self.device_spec.name,
                             cached=True) as exec_span:
                env = self._warm_environment()
                env.reset_instrumentation()
                plan, hit, disposition = self._obtain_plan(prepared)
                tracer.note_plan(prepared.key, plan,
                                 disposition=disposition)
                anchor = tracer.now()
                with tracer.span("plan.launch", category="engine"):
                    report = plan.run(plan.rebind(prepared.bindings,
                                                  prepared.sources), env)
                report.cache = self.plan_cache.info(hit)
                report.alloc = env.alloc_stats()
                report.trace_id = exec_span.trace_id
                if self.backend == "compiled":
                    ran_compiled = isinstance(plan, CompiledPlan)
                    report.codegen = CodegenInfo(
                        backend=("compiled" if ran_compiled
                                 else self.env_backend),
                        disposition=disposition,
                        compiled=ran_compiled)
                exec_span.annotate(cache_hit=hit)
                log = get_logger()
                if log.debug_enabled:
                    log.debug("engine.execute", tracer=tracer,
                              device=self.device_spec.name,
                              plan_key=str(prepared.key),
                              cache=disposition)
                self._trace_device_run(env, anchor)
                self._observe_execute("hit" if hit else "miss", start)
                return report

    def _obtain_plan(self, prepared: PreparedExecution):
        """Look up (or build and cache) the executable plan for a keyed
        request; returns ``(plan, hit, disposition)``.  Callers hold
        ``_exec_lock``."""
        tracer = self.tracer
        with tracer.span("plan.lookup", category="engine") as look:
            plan = self.plan_cache.get(prepared.key)
            hit = plan is not None
            look.annotate(hit=hit)
        disposition = "memory-hit"
        if plan is None:
            if self.backend == "compiled":
                plan, disposition = self._codegen_plan(prepared)
            else:
                with tracer.span("plan.build", category="engine"):
                    plan = self.strategy.build_plan(
                        prepared.compiled.network, prepared.bindings,
                        prepared.n, prepared.dtype)
            self.plan_cache.put(prepared.key, plan)
        return plan, hit, disposition

    def execute_batch(self, batch: "Sequence[PreparedExecution]",
                      ) -> BatchExecution:
        """Run several prepared requests sharing one plan key as a single
        coalesced launch (the service dispatcher's micro-batching path).

        Each member executes against a capture twin of the warm
        environment — same context, allocator, and buffer pool, private
        silent event log — so its report's output, Table II counts,
        modeled timings, and memory peak are *identical* to its solo warm
        run.  The captured per-member event streams are then coalesced
        (:func:`~repro.clsim.pipeline.coalesce_events`) into the batched
        timeline the warm environment's log records once: transfers move
        the stacked payload behind a single link latency, and each kernel
        pays its launch overhead once for the whole batch.  That merged
        timeline is the batch's ``modeled_seconds`` — the amortization the
        per-launch-overhead perfmodel makes measurable.
        """
        if not batch:
            raise ValueError("execute_batch needs at least one request")
        if len(batch) == 1:
            report = self.execute_prepared(batch[0])
            hit = report.cache.hit if report.cache is not None else False
            return BatchExecution([report], report.timing.total, hit)
        key = batch[0].key
        if key is None or any(member.key != key for member in batch):
            raise HostInterfaceError(
                "execute_batch needs cache-keyed requests sharing one "
                "plan key; coalesce only same-key requests")
        tracer = self.tracer
        start = time.perf_counter()
        with self._exec_lock:
            with tracer.span("engine.execute_batch", category="engine",
                             strategy=self.strategy.name,
                             device=self.device_spec.name,
                             batch=len(batch)) as exec_span:
                env = self._warm_environment()
                env.reset_instrumentation()
                plan, hit, disposition = self._obtain_plan(batch[0])
                tracer.note_plan(batch[0].key, plan,
                                 disposition=disposition)
                reports: list[ExecutionReport] = []
                captures = []
                peak = 0
                anchor = tracer.now()
                with tracer.span("plan.launch", category="engine",
                                 batch=len(batch)):
                    for member in batch:
                        cap = env.capture()
                        env.context.allocator.reset_peak()
                        report = plan.run(
                            plan.rebind(member.bindings, member.sources),
                            cap)
                        report.cache = self.plan_cache.info(hit)
                        report.alloc = cap.alloc_stats()
                        if self.backend == "compiled":
                            ran_compiled = isinstance(plan, CompiledPlan)
                            report.codegen = CodegenInfo(
                                backend=("compiled" if ran_compiled
                                         else self.env_backend),
                                disposition=disposition,
                                compiled=ran_compiled)
                        report.trace_id = exec_span.trace_id
                        peak = max(peak, report.mem_high_water)
                        reports.append(report)
                        captures.append(cap.queue.log.events)
                # Record the batched timeline once, into the warm
                # environment's observed log: process-wide transfer and
                # kernel counters see what the device would actually do —
                # one coalesced launch — not B solo replays.
                for event in coalesce_events(captures, self.device_spec):
                    env.queue.log.record(event)
                env.context.allocator.reset_peak()
                env.context.allocator.note_external_peak(peak)
                modeled = env.timing().total
                exec_span.annotate(cache_hit=hit, modeled_seconds=modeled)
                self._trace_device_run(env, anchor)
                self._observe_execute("hit" if hit else "miss", start)
                return BatchExecution(reports, modeled, hit)

    def _codegen_plan(self, prepared: PreparedExecution):
        """Obtain a compiled plan for a cache miss.

        Returns ``(plan, disposition)``: a persisted entry rebuilt from
        the disk cache (``disk-hit``), a freshly generated-and-compiled
        sweep (``cold-codegen``), or — when codegen cannot lower the
        network — the interpreter plan (``interpreter-fallback``), which
        is still cached so later runs take memory hits.
        """
        tracer = self.tracer
        network = prepared.compiled.network
        with tracer.span("codegen", category="engine"):
            token = codegen_token(network.registry)
            if self.plan_disk is not None:
                lookup = self.plan_disk.load(prepared.key, token)
                if lookup.status == "hit":
                    try:
                        plan = CompiledPlan.from_entry(lookup.entry,
                                                       network.registry)
                    except Exception:
                        # A structurally valid file the current code
                        # cannot rebuild — treat like a stale entry.
                        self.plan_disk.invalidate(prepared.key)
                        self._m_codegen["invalidations"].inc()
                        self.plan_cache.record_invalidation()
                    else:
                        self._m_codegen["disk_hits"].inc()
                        return plan, "disk-hit"
                elif lookup.status == "invalid":
                    self._m_codegen["invalidations"].inc()
                    self.plan_cache.record_invalidation()
                else:
                    self._m_codegen["disk_misses"].inc()
            with tracer.span("plan.build", category="engine"):
                base = self.strategy.build_plan(
                    network, prepared.bindings, prepared.n, prepared.dtype)
            try:
                plan = compile_plan(base, network, prepared.bindings,
                                    self.device_spec)
            except Exception as exc:
                self._m_codegen["fallbacks"].inc()
                get_logger().warning(
                    "codegen.fallback", tracer=tracer,
                    device=self.device_spec.name,
                    plan_key=str(prepared.key),
                    error=f"{type(exc).__name__}: {exc}")
                return base, "interpreter-fallback"
            self._m_codegen["compiles"].inc()
            get_logger().info("codegen.compiled", tracer=tracer,
                              device=self.device_spec.name,
                              plan_key=str(prepared.key))
            if self.plan_disk is not None:
                self.plan_disk.store(prepared.key, token, plan.entry())
            return plan, "cold-codegen"

    def _observe_execute(self, disposition: str, start: float) -> None:
        counter, histogram = self._m_execute[disposition]
        counter.inc()
        histogram.observe(time.perf_counter() - start)

    def _trace_device_run(self, env: CLEnvironment, anchor: float) -> None:
        """Bridge one run's device events into trace lanes and sample the
        pool/allocator gauges (no-op under the NullTracer)."""
        tracer = self.tracer
        if not tracer.enabled:
            return
        lane = threading.current_thread().name
        tracer.add_device_events(self.device_spec.name,
                                 env.queue.log.events, anchor=anchor,
                                 lane=lane)
        stats = env.alloc_stats()
        tracer.counter("pooled_bytes", stats.pooled_bytes)
        tracer.counter("live_bytes", stats.live_bytes)

    def execute(self, expression: Union[str, CompiledExpression],
                fields: Mapping[str, BindingInput]) -> ExecutionReport:
        """Run an expression over host arrays; returns the full report.

        With the plan cache enabled, execution reuses a persistent
        environment whose instrumentation resets per run, so event counts,
        timings, and the memory high-water mark still describe exactly one
        run; the report's ``cache``/``alloc`` fields carry the warm-layer
        counters.  Otherwise a fresh environment is created per execution.
        Equivalent to ``execute_prepared(prepare(...))``.
        """
        return self.execute_prepared(self.prepare(expression, fields))

    def derive(self, expression: Union[str, CompiledExpression],
               fields: Mapping[str, np.ndarray]) -> np.ndarray:
        """Execute and return just the derived field array."""
        if self.dry_run:
            raise HostInterfaceError(
                "derive() needs real arrays; this engine is dry_run=True")
        report = self.execute(expression, fields)
        assert report.output is not None
        return report.output
