"""Device workers: one thread per (simulated) device, each owning a
persistent warm engine.

A :class:`DeviceWorker` is the service's unit of execution parallelism.
Each worker holds its own :class:`~repro.host.engine.DerivedFieldEngine`
— hence its own persistent :class:`~repro.clsim.environment.CLEnvironment`
(context, queue, allocator, buffer pool) — while *sharing* the service's
thread-safe :class:`~repro.strategies.plancache.PlanCache`.  The split
mirrors real multi-device OpenCL: contexts and queues are per-device,
compiled programs are reusable wherever the device matches.

Workers run a take → checkpoint → execute loop:

* **checkpoint** — a cooperatively-cancelled or deadline-expired request
  resolves (``CANCELLED`` / ``TIMED_OUT``) without touching the device;
* **execute** — the request's :class:`PreparedExecution` is re-keyed for
  this worker's device (``PlanKey.for_device``) and run through
  ``engine.execute_prepared``: plan-cache lookup, launch, readback;
* **failure isolation** — any exception (device OOM above all) resolves
  that one request as ``FAILED`` and the worker keeps serving; strategy
  ``try/finally`` blocks have already released the request's buffers.

Busy wall-seconds and modeled device-seconds are reported per execution,
feeding the service's utilization and modeled-throughput metrics.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import replace
from typing import Callable, Optional, Union

from ..clsim.device import DeviceSpec, DeviceType
from ..host.engine import DerivedFieldEngine
from ..obs.log import get_logger
from ..strategies.plancache import PlanCache, PlanKey
from .metrics import ServiceMetrics
from .request import ServiceRequest

__all__ = ["DeviceWorker"]


class DeviceWorker:
    """One device's serving thread (see module docstring)."""

    def __init__(self, index: int,
                 device: Union[str, DeviceType, DeviceSpec],
                 strategy: str, plan_cache: PlanCache,
                 metrics: ServiceMetrics,
                 on_done: Callable[[ServiceRequest], None],
                 backend: Optional[str] = None, tracer=None,
                 plan_cache_dir=None):
        self.index = index
        self.engine = DerivedFieldEngine(
            device=device, strategy=strategy, plan_cache=plan_cache,
            plan_cache_dir=plan_cache_dir,
            pooling=True, backend=backend, tracer=tracer)
        token = device if isinstance(device, str) else \
            self.engine.device_spec.device_type.value
        self.name = f"{index}:{token}"
        self.metrics = metrics
        self._on_done = on_done
        self._inbox: "deque[ServiceRequest]" = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._outstanding = 0
        self._stopping = False
        self._thread = threading.Thread(target=self._run,
                                        name=f"repro-worker-{self.name}",
                                        daemon=True)
        metrics.register_device(self.name)

    # -- scheduler-facing view -----------------------------------------------

    @property
    def outstanding(self) -> int:
        """Requests assigned to this worker and not yet resolved."""
        with self._lock:
            return self._outstanding

    def device_key(self, key: PlanKey) -> PlanKey:
        return key.for_device(self.engine.device_spec)

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()

    def assign(self, request: ServiceRequest) -> None:
        """Dispatcher hands over a request (worker inboxes are unbounded;
        global admission control already bounded the total)."""
        request.mark_dispatched()
        with self._wake:
            self._inbox.append(request)
            self._outstanding += 1
            self._wake.notify()

    def assign_batch(self, requests: "list[ServiceRequest]") -> None:
        """Dispatcher hands over a coalesced same-plan batch.  The batch
        travels the inbox as one unit so its members launch together."""
        if len(requests) == 1:
            self.assign(requests[0])
            return
        for request in requests:
            request.mark_dispatched()
        with self._wake:
            self._inbox.append(requests)
            self._outstanding += len(requests)
            self._wake.notify()

    def stop(self, drain: bool = True) -> None:
        """Stop the thread; with ``drain`` the inbox is served first,
        otherwise leftover requests resolve ``CANCELLED``."""
        with self._wake:
            self._stopping = True
            if not drain:
                leftovers = []
                for item in self._inbox:
                    leftovers.extend(item if isinstance(item, list)
                                     else [item])
                self._inbox.clear()
            else:
                leftovers = []
            self._wake.notify_all()
        for request in leftovers:
            with self._lock:
                self._outstanding -= 1
            if request.resolve_cancelled():
                self._finish(request)
        if self._thread.is_alive():
            self._thread.join()

    # -- the serving loop ------------------------------------------------------

    def _run(self) -> None:
        while True:
            with self._wake:
                while not self._inbox and not self._stopping:
                    self._wake.wait(0.1)
                if not self._inbox:
                    if self._stopping:
                        return
                    continue
                item = self._inbox.popleft()
            if isinstance(item, list):
                self._process_batch(item)
            else:
                self._process(item)

    def _process(self, request: ServiceRequest) -> None:
        try:
            if request.cancel_requested:
                request.resolve_cancelled()
                return
            if request.deadline_expired():
                request.resolve_timed_out("waiting for a device worker")
                return
            request.mark_running()
            prepared = request.prepared
            if prepared.key is not None:
                prepared = replace(prepared,
                                   key=self.device_key(prepared.key))
            self.metrics.record_batch(1)
            start = time.perf_counter()
            try:
                # The request's root span lives on the submitting thread's
                # trace; parenting explicitly carries its trace id across
                # the queue into this worker thread.
                with self.engine.tracer.span("worker.execute",
                                             category="service",
                                             parent=request.span,
                                             worker=self.name,
                                             request=request.id):
                    report = self.engine.execute_prepared(prepared)
            except BaseException as exc:
                busy = time.perf_counter() - start
                self.metrics.record_execution(self.name, busy, 0.0,
                                              cache_hit=None, failed=True)
                get_logger().error("worker.execute_failed",
                                   device=self.name, request=request.id,
                                   trace_id=request.trace_id,
                                   expression=request.expression,
                                   error=f"{type(exc).__name__}: {exc}")
                request.resolve_failed(exc, device=self.name)
                return
            busy = time.perf_counter() - start
            report.trace_id = request.trace_id
            hit = report.cache.hit if report.cache is not None else None
            self.metrics.record_execution(self.name, busy,
                                          report.timing.total,
                                          cache_hit=hit)
            if request.deadline_expired():
                # Finished after its deadline: the client contract is
                # already broken, so the request counts as timed out (the
                # busy time still counts against this device — the work
                # did happen).  The report rides along for observability:
                # result() still raises, but debug bundles keep the
                # evidence of what the late execution did.
                request.resolve_timed_out("during execution",
                                          report=report)
                return
            request.resolve_served(report, device=self.name)
        finally:
            self._settle(request)

    def _process_batch(self, batch: "list[ServiceRequest]") -> None:
        """Launch a coalesced same-plan batch through
        :meth:`DerivedFieldEngine.execute_batch`.

        Each member is still checkpointed individually (a cancelled or
        deadline-expired member drops out without holding the batch), and
        each resolves with its *own* solo-identical report.  The device's
        busy wall-seconds and the batch's coalesced modeled seconds are
        attributed evenly across the members, so device utilization and
        modeled throughput reflect the amortized launch, not B solo runs.
        """
        runnable: list[ServiceRequest] = []
        for request in batch:
            if request.cancel_requested:
                request.resolve_cancelled()
                self._settle(request)
            elif request.deadline_expired():
                request.resolve_timed_out("waiting for a device worker")
                self._settle(request)
            else:
                runnable.append(request)
        if not runnable:
            return
        if len(runnable) == 1:
            self._process(runnable[0])
            return
        for request in runnable:
            request.mark_running()
        prepared_list = []
        for request in runnable:
            prepared = request.prepared
            if prepared.key is not None:
                prepared = replace(prepared,
                                   key=self.device_key(prepared.key))
            prepared_list.append(prepared)
        start = time.perf_counter()
        try:
            with self.engine.tracer.span("worker.execute",
                                         category="service",
                                         parent=runnable[0].span,
                                         worker=self.name,
                                         batch=len(runnable)):
                result = self.engine.execute_batch(prepared_list)
        except BaseException as exc:
            busy = (time.perf_counter() - start) / len(runnable)
            get_logger().error("worker.batch_failed", device=self.name,
                               batch=len(runnable),
                               error=f"{type(exc).__name__}: {exc}")
            for request in runnable:
                self.metrics.record_execution(self.name, busy, 0.0,
                                              cache_hit=None, failed=True)
                request.resolve_failed(exc, device=self.name)
                self._settle(request)
            return
        busy = (time.perf_counter() - start) / len(runnable)
        modeled = result.modeled_seconds / len(runnable)
        self.metrics.record_batch(len(runnable))
        for position, (request, report) in enumerate(zip(runnable,
                                                         result.reports)):
            # Plan-cache attribution: the batch performed one real lookup
            # (charged to its first member); every later member reused
            # the in-hand plan — a hit by construction.  One lookup per
            # request keeps the service's hit-rate denominator meaningful
            # under batching.
            hit = result.hit if position == 0 else True
            report.trace_id = request.trace_id
            self.metrics.record_execution(self.name, busy, modeled,
                                          cache_hit=hit)
            if request.deadline_expired():
                request.resolve_timed_out("during execution",
                                          report=report)
            else:
                request.resolve_served(report, device=self.name)
            self._settle(request)

    def _settle(self, request: ServiceRequest) -> None:
        with self._lock:
            self._outstanding -= 1
        self._finish(request)

    def _finish(self, request: ServiceRequest) -> None:
        try:
            self._on_done(request)
        except Exception:  # pragma: no cover - metrics must never kill
            pass
