"""Live service metrics: counters, gauges, histograms — snapshotable.

:class:`ServiceMetrics` is the single observable surface of a running
:class:`~repro.service.DerivedFieldService`:

* **request counters** — submitted / served / rejected / timed-out /
  failed / cancelled (every admitted request lands in exactly one
  terminal counter: the zero-dropped-requests invariant is checkable
  arithmetic);
* **queue-depth gauge** — current and peak admission-queue depth;
* **latency histograms** — per-expression submit→resolve latency with
  p50/p95/p99 (nearest-rank over a bounded reservoir);
* **plan-cache hit rate** — hits/lookups across all workers sharing the
  service's plan cache;
* **per-device utilization** — wall busy-seconds and modeled
  device-seconds per worker, against service uptime.

Everything updates under one lock (updates are tiny compared to an
execution) and :meth:`snapshot` returns plain dict/list/float data —
``json.dumps(metrics.snapshot())`` always works.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Optional

from .request import RequestStatus, ServiceRequest

__all__ = ["LatencyStats", "ServiceMetrics", "percentile"]

# Most recent traced requests retained in the snapshot (ring buffer).
MAX_TRACE_RECORDS = 64

# Per-expression latency samples kept for percentile estimation.  Beyond
# the cap we keep a uniformly-thinned reservoir (every other sample) so
# long-running services stay bounded without losing the distribution.
MAX_LATENCY_SAMPLES = 65536


def percentile(sorted_samples: "list[float]", q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted, non-empty list."""
    if not sorted_samples:
        raise ValueError("percentile of no samples")
    rank = round(q / 100.0 * (len(sorted_samples) - 1))
    return sorted_samples[int(rank)]


class LatencyStats:
    """Bounded latency accumulator for one expression label."""

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._stride = 1          # record every stride-th sample when full
        self._skip = 0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if self._skip > 0:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self._samples.append(seconds)
        if len(self._samples) >= MAX_LATENCY_SAMPLES:
            self._samples = self._samples[::2]
            self._stride *= 2

    def summary(self) -> dict:
        ordered = sorted(self._samples)
        out = {
            "count": self.count,
            "mean_s": self.total / self.count if self.count else 0.0,
            "max_s": self.max,
        }
        if ordered:
            out["p50_s"] = percentile(ordered, 50)
            out["p95_s"] = percentile(ordered, 95)
            out["p99_s"] = percentile(ordered, 99)
        return out


class _DeviceStats:
    """Per-worker accounting (one device each)."""

    def __init__(self):
        self.served = 0
        self.failed = 0
        self.busy_seconds = 0.0          # wall time spent executing
        self.modeled_seconds = 0.0       # simulated device time (Fig 5 axis)


class ServiceMetrics:
    """Thread-safe counters/gauges/histograms for one service instance."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.monotonic()
        self.submitted = 0
        self.rejected = 0
        self.resolved = {status: 0 for status in RequestStatus}
        self.queue_depth = 0
        self.queue_peak = 0
        self.cache_lookups = 0
        self.cache_hits = 0
        self._latency: dict[str, LatencyStats] = {}
        self._devices: dict[str, _DeviceStats] = {}
        # Traced requests (service built with a Tracer): request id ->
        # trace id join records, newest last.
        self._traces: "deque[dict]" = deque(maxlen=MAX_TRACE_RECORDS)
        self._traced_total = 0

    # -- update paths (service internals) -----------------------------------

    def register_device(self, name: str) -> None:
        with self._lock:
            self._devices.setdefault(name, _DeviceStats())

    def record_admitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def record_rejected(self) -> None:
        with self._lock:
            self.rejected += 1
            self.resolved[RequestStatus.REJECTED] += 1

    def set_queue_depth(self, depth: int) -> None:
        with self._lock:
            self.queue_depth = depth
            if depth > self.queue_peak:
                self.queue_peak = depth

    def record_result(self, request: ServiceRequest) -> None:
        """Fold one admitted request's terminal state into the counters."""
        with self._lock:
            status = request.status
            self.resolved[status] += 1
            if status is RequestStatus.SERVED:
                stats = self._latency.setdefault(request.expression,
                                                 LatencyStats())
                if request.latency is not None:
                    stats.record(request.latency)
            trace_id = getattr(request, "trace_id", None)
            if trace_id is not None:
                self._traced_total += 1
                self._traces.append({
                    "request": request.id,
                    "trace_id": trace_id,
                    "expression": request.expression,
                    "status": status.value,
                    "device": request.device,
                    "latency_s": request.latency,
                })

    def record_execution(self, device: str, busy_seconds: float,
                         modeled_seconds: float,
                         cache_hit: Optional[bool],
                         failed: bool = False) -> None:
        """One worker execution's accounting (served or failed)."""
        with self._lock:
            stats = self._devices.setdefault(device, _DeviceStats())
            if failed:
                stats.failed += 1
            else:
                stats.served += 1
            stats.busy_seconds += busy_seconds
            stats.modeled_seconds += modeled_seconds
            if cache_hit is not None:
                self.cache_lookups += 1
                self.cache_hits += int(cache_hit)

    # -- read path -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time, JSON-serializable view of every metric."""
        with self._lock:
            uptime = max(time.monotonic() - self.started_at, 1e-9)
            served = self.resolved[RequestStatus.SERVED]
            outcomes = {status.value: count
                        for status, count in self.resolved.items()
                        if status not in (RequestStatus.QUEUED,
                                          RequestStatus.DISPATCHED,
                                          RequestStatus.RUNNING)}
            terminal = sum(outcomes.values())
            devices = {}
            for name, stats in self._devices.items():
                devices[name] = {
                    "served": stats.served,
                    "failed": stats.failed,
                    "busy_seconds": stats.busy_seconds,
                    "modeled_seconds": stats.modeled_seconds,
                    "utilization": min(stats.busy_seconds / uptime, 1.0),
                }
            return {
                "uptime_seconds": uptime,
                "requests": {
                    "submitted": self.submitted,
                    "offered": self.submitted + self.rejected,
                    "resolved": terminal,
                    "in_flight": self.submitted
                                 - (terminal - self.rejected),
                    "outcomes": outcomes,
                },
                "queue": {
                    "depth": self.queue_depth,
                    "peak_depth": self.queue_peak,
                },
                "throughput_rps": served / uptime,
                "latency": {name: stats.summary()
                            for name, stats in self._latency.items()},
                "plan_cache": {
                    "lookups": self.cache_lookups,
                    "hits": self.cache_hits,
                    "hit_rate": (self.cache_hits / self.cache_lookups
                                 if self.cache_lookups else 0.0),
                },
                "devices": devices,
                "traces": {
                    "recorded": self._traced_total,
                    "recent": [dict(t) for t in self._traces],
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
