"""Live service metrics, re-based on the unified registry.

:class:`ServiceMetrics` is the observable surface of a running
:class:`~repro.service.DerivedFieldService`.  Since the metrics
subsystem landed (DESIGN.md §9) it is a thin layer over
:class:`~repro.metrics.MetricsRegistry` instruments:

* **request counters** — ``repro_service_requests_submitted_total``
  plus ``repro_service_requests_total{outcome=...}`` for every
  terminal outcome (served / rejected / timed-out / failed /
  cancelled).  The zero-dropped-requests invariant is explicit
  arithmetic: ``offered == terminal + in_flight`` with
  ``offered = submitted + rejected`` — :meth:`snapshot` computes
  ``in_flight`` directly from that identity;
* **queue-depth gauges** — current and peak admission-queue depth;
* **latency** — a ``repro_service_request_latency_seconds``
  histogram per expression, plus a bounded thinned reservoir for exact
  nearest-rank p50/p95/p99 (buckets cannot give those precisely);
* **plan-cache hit rate** and **per-device utilization** counters.

By default each service gets its own private registry, so
:meth:`snapshot` always describes exactly this service instance.
Passing ``registry=`` (typically :func:`repro.metrics.get_registry`)
re-bases the instruments onto a shared registry instead, which is how
``serve --metrics-port`` exposes service metrics next to the engine and
``clsim`` families on one ``/metrics`` endpoint — note that shared
counters are then cumulative across service instances in the process.

The :meth:`snapshot` schema is unchanged from the pre-registry
implementation: plain dict/list/float data, ``json.dumps`` always
works.
"""

from __future__ import annotations

import json
import math
import threading
import time
from collections import deque
from typing import Optional

from ..metrics import MetricsRegistry
from .request import RequestStatus, ServiceRequest, TERMINAL_STATUSES

__all__ = ["LatencyStats", "ServiceMetrics", "percentile"]

# Most recent traced requests retained in the snapshot (ring buffer).
MAX_TRACE_RECORDS = 64

# Per-expression latency samples kept for percentile estimation.  Beyond
# the cap we keep a uniformly-thinned reservoir (every other sample) so
# long-running services stay bounded without losing the distribution.
MAX_LATENCY_SAMPLES = 65536

# Latency buckets: 100 µs .. ~100 s in half-decade steps.
LATENCY_BUCKETS = tuple(1e-4 * math.sqrt(10) ** i for i in range(13))


def percentile(sorted_samples: "list[float]", q: float) -> float:
    """Ceil-based nearest-rank percentile of an ascending-sorted,
    non-empty list.

    The classic nearest-rank definition: the smallest value such that
    at least ``q``% of the samples are <= it, i.e. the element at
    1-based rank ``ceil(q/100 * N)``.  (The previous implementation
    used ``round()``, whose banker's rounding biased even-length p50
    low — ``round(0.5) == 0``.)
    """
    if not sorted_samples:
        raise ValueError("percentile of no samples")
    rank = math.ceil(q / 100.0 * len(sorted_samples))
    rank = min(max(rank, 1), len(sorted_samples))
    return sorted_samples[rank - 1]


class LatencyStats:
    """Bounded latency accumulator for one expression label."""

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self._samples: list[float] = []
        self._stride = 1          # record every stride-th sample when full
        self._skip = 0

    def record(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        if self._skip > 0:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self._samples.append(seconds)
        if len(self._samples) >= MAX_LATENCY_SAMPLES:
            self._samples = self._samples[::2]
            self._stride *= 2

    def summary(self) -> dict:
        ordered = sorted(self._samples)
        out = {
            "count": self.count,
            "mean_s": self.total / self.count if self.count else 0.0,
            "max_s": self.max,
        }
        if ordered:
            out["p50_s"] = percentile(ordered, 50)
            out["p95_s"] = percentile(ordered, 95)
            out["p99_s"] = percentile(ordered, 99)
        return out


class _DeviceInstruments:
    """The bound registry children for one device worker."""

    def __init__(self, metrics: "ServiceMetrics", name: str):
        label = {"device": name}
        self.served = metrics._device_served.labels(**label)
        self.failed = metrics._device_failed.labels(**label)
        self.busy_seconds = metrics._device_busy.labels(**label)
        self.modeled_seconds = metrics._device_modeled.labels(**label)


class ServiceMetrics:
    """Thread-safe counters/gauges/histograms for one service instance."""

    def __init__(self, registry: Optional[MetricsRegistry] = None):
        self._lock = threading.Lock()
        self.registry = MetricsRegistry() if registry is None else registry
        self.started_at = time.monotonic()
        registry = self.registry
        self._m_submitted = registry.counter(
            "repro_service_requests_submitted_total",
            "Requests admitted past admission control")
        outcomes = registry.counter(
            "repro_service_requests_total",
            "Requests resolved, by terminal outcome",
            ("outcome",))
        # Pre-bind every terminal outcome so the snapshot always lists
        # all of them (schema stability: zero counts stay visible).
        self._m_outcomes = {
            status: outcomes.labels(outcome=status.value)
            for status in RequestStatus if status in TERMINAL_STATUSES
        }
        self._m_queue_depth = registry.gauge(
            "repro_service_queue_depth",
            "Requests waiting in the admission queue")
        self._m_queue_peak = registry.gauge(
            "repro_service_queue_depth_peak",
            "Peak admission-queue depth since service start")
        self._m_latency = registry.histogram(
            "repro_service_request_latency_seconds",
            "Submit-to-resolve latency of served requests",
            ("expression",), buckets=LATENCY_BUCKETS)
        self._m_cache_lookups = registry.counter(
            "repro_service_plancache_lookups_total",
            "Plan-cache lookups across all workers")
        self._m_cache_hits = registry.counter(
            "repro_service_plancache_hits_total",
            "Plan-cache hits across all workers")
        self._device_served = registry.counter(
            "repro_service_device_served_total",
            "Requests served, per device worker", ("device",))
        self._device_failed = registry.counter(
            "repro_service_device_failed_total",
            "Requests failed, per device worker", ("device",))
        self._device_busy = registry.counter(
            "repro_service_device_busy_seconds_total",
            "Wall seconds spent executing, per device worker",
            ("device",))
        self._device_modeled = registry.counter(
            "repro_service_device_modeled_seconds_total",
            "Modeled device seconds executed, per device worker "
            "(the Fig 5 axis)", ("device",))
        # Micro-batching observability: how many coalesced launches
        # happened, how many requests rode them (size >= 2 only — solo
        # dispatches are not coalescing), and the size distribution.
        self._m_launches = registry.counter(
            "repro_service_launches_total",
            "Launches dispatched to device workers (a coalesced batch "
            "counts once)")
        self._m_batches = registry.counter(
            "repro_service_batches_total",
            "Coalesced multi-request launches dispatched")
        self._m_coalesced = registry.counter(
            "repro_service_coalesced_requests_total",
            "Requests served via a coalesced launch (batch size >= 2)")
        self._m_batch_size = registry.histogram(
            "repro_service_batch_size",
            "Requests per dispatched launch (1 = uncoalesced)",
            buckets=(1, 2, 4, 8, 16, 32, 64))
        self._latency: dict[str, LatencyStats] = {}
        self._devices: dict[str, _DeviceInstruments] = {}
        # Traced requests (service built with a Tracer): request id ->
        # trace id join records, newest last.
        self._traces: "deque[dict]" = deque(maxlen=MAX_TRACE_RECORDS)
        self._traced_total = 0

    # -- update paths (service internals) -----------------------------------

    def register_device(self, name: str) -> None:
        with self._lock:
            if name not in self._devices:
                self._devices[name] = _DeviceInstruments(self, name)

    def record_admitted(self) -> None:
        self._m_submitted.inc()

    def record_rejected(self) -> None:
        self._m_outcomes[RequestStatus.REJECTED].inc()

    def set_queue_depth(self, depth: int) -> None:
        self._m_queue_depth.set(depth)
        self._m_queue_peak.set_max(depth)

    def record_result(self, request: ServiceRequest) -> None:
        """Fold one admitted request's terminal state into the counters."""
        status = request.status
        self._m_outcomes[status].inc()
        with self._lock:
            if status is RequestStatus.SERVED:
                stats = self._latency.setdefault(request.expression,
                                                 LatencyStats())
                if request.latency is not None:
                    stats.record(request.latency)
                    self._m_latency.labels(
                        expression=request.expression
                    ).observe(request.latency)
            trace_id = getattr(request, "trace_id", None)
            if trace_id is not None:
                self._traced_total += 1
                self._traces.append({
                    "request": request.id,
                    "trace_id": trace_id,
                    "expression": request.expression,
                    "status": status.value,
                    "device": request.device,
                    "latency_s": request.latency,
                })

    def record_batch(self, size: int) -> None:
        """One dispatched launch of ``size`` requests.  Every dispatch is
        observed (the histogram's size-1 bucket measures how much of the
        load was unbatchable); the coalescing counters only move for real
        multi-request launches."""
        self._m_launches.inc()
        self._m_batch_size.observe(size)
        if size >= 2:
            self._m_batches.inc()
            self._m_coalesced.inc(size)

    def record_execution(self, device: str, busy_seconds: float,
                         modeled_seconds: float,
                         cache_hit: Optional[bool],
                         failed: bool = False) -> None:
        """One worker execution's accounting (served or failed)."""
        with self._lock:
            instruments = self._devices.get(device)
            if instruments is None:
                instruments = _DeviceInstruments(self, device)
                self._devices[device] = instruments
        if failed:
            instruments.failed.inc()
        else:
            instruments.served.inc()
        instruments.busy_seconds.inc(busy_seconds)
        instruments.modeled_seconds.inc(modeled_seconds)
        if cache_hit is not None:
            self._m_cache_lookups.inc()
            if cache_hit:
                self._m_cache_hits.inc()

    # -- read path -----------------------------------------------------------

    def snapshot(self) -> dict:
        """A point-in-time, JSON-serializable view of every metric.

        ``in_flight`` is computed from the explicit invariant
        ``offered == terminal + in_flight``: terminal counters are read
        *before* the submitted counter, and every terminal increment is
        preceded by its submitted/rejected increment, so the difference
        is never negative.
        """
        with self._lock:
            uptime = max(time.monotonic() - self.started_at, 1e-9)
            outcomes = {status.value: int(child.value)
                        for status, child in self._m_outcomes.items()}
            terminal = sum(outcomes.values())
            submitted = int(self._m_submitted.value)
            rejected = outcomes[RequestStatus.REJECTED.value]
            offered = submitted + rejected
            served = outcomes[RequestStatus.SERVED.value]
            devices = {}
            for name, inst in self._devices.items():
                busy = inst.busy_seconds.value
                devices[name] = {
                    "served": int(inst.served.value),
                    "failed": int(inst.failed.value),
                    "busy_seconds": busy,
                    "modeled_seconds": inst.modeled_seconds.value,
                    "utilization": min(busy / uptime, 1.0),
                }
            lookups = int(self._m_cache_lookups.value)
            hits = int(self._m_cache_hits.value)
            return {
                "uptime_seconds": uptime,
                "requests": {
                    "submitted": submitted,
                    "offered": offered,
                    "resolved": terminal,
                    "in_flight": offered - terminal,
                    "outcomes": outcomes,
                },
                "queue": {
                    "depth": int(self._m_queue_depth.value),
                    "peak_depth": int(self._m_queue_peak.value),
                },
                "throughput_rps": served / uptime,
                "latency": {name: stats.summary()
                            for name, stats in self._latency.items()},
                "plan_cache": {
                    "lookups": lookups,
                    "hits": hits,
                    "hit_rate": hits / lookups if lookups else 0.0,
                },
                "batching": {
                    "launches": int(self._m_launches.value),
                    "coalesced_launches": int(self._m_batches.value),
                    "coalesced_requests": int(self._m_coalesced.value),
                    "mean_batch_size": (
                        int(self._m_coalesced.value)
                        / int(self._m_batches.value)
                        if self._m_batches.value else 1.0),
                },
                "devices": devices,
                "traces": {
                    "recorded": self._traced_total,
                    "recent": [dict(t) for t in self._traces],
                },
            }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent)
