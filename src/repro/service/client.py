"""`ServiceClient`: the asyncio front-end over `ServiceRequest` futures.

The blocking client API (``submit().result()``) costs one waiting thread
per in-flight request — fine for a handful of closed-loop clients,
hopeless for the paper's in-situ motivation of thousands of derived-field
requests per timestep from one connection.  This bridge turns every
:class:`~repro.service.ServiceRequest` (a
:class:`concurrent.futures.Future`-compatible handle) into an asyncio
future resolved via ``loop.call_soon_threadsafe`` from whichever service
thread resolves the request, so a single event loop holds any number of
requests in flight with zero extra threads::

    client = ServiceClient(service)
    report = await client.submit("q = ...", fields)          # one
    futures = client.submit_many([("q = ...", fields)] * 1000)
    reports = await asyncio.gather(*futures)                 # thousands

Cancellation propagates both ways: cancelling the asyncio future requests
cooperative cancellation of the service request, and a service-side
terminal status (served / timed-out / failed / cancelled) resolves the
asyncio future with the same report or exception the blocking
``result()`` would have produced.
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Mapping, Optional, Tuple

import numpy as np

from ..errors import ServiceError
from ..strategies.bindings import BindingInput
from .request import RequestStatus, ServiceRequest
from .service import DerivedFieldService

__all__ = ["ServiceClient"]


class ServiceClient:
    """Asyncio client over an in-process :class:`DerivedFieldService`.

    Submission itself (prepare + admission) runs synchronously on the
    calling loop thread — it is the cheap, bounded part of the request
    path and raising admission errors synchronously from ``submit`` keeps
    malformed-request bugs at the call site.  Only the *wait* is bridged.
    """

    def __init__(self, service: DerivedFieldService):
        self.service = service

    # -- awaitable API -------------------------------------------------------

    async def submit(self, expression: str,
                     fields: Mapping[str, BindingInput], *,
                     timeout: Optional[float] = None):
        """Admit one request and await its full ``ExecutionReport``.

        Admission failures (:class:`~repro.errors.ServiceOverloaded`,
        :class:`~repro.errors.ServiceClosed`, malformed expressions)
        raise immediately; service-side outcomes (timeout, device
        failure, cancellation) raise from the ``await``.
        """
        handle = self.service.submit(expression, fields, timeout=timeout)
        return await self._bridge(asyncio.get_running_loop(), handle)

    async def derive(self, expression: str,
                     fields: Mapping[str, np.ndarray], *,
                     timeout: Optional[float] = None) -> np.ndarray:
        """Admit one request and await just the derived array."""
        report = await self.submit(expression, fields, timeout=timeout)
        assert report.output is not None
        return report.output

    def submit_many(self, requests: Iterable[
            Tuple[str, Mapping[str, BindingInput]]], *,
            timeout: Optional[float] = None) -> "list[asyncio.Future]":
        """Admit a stream of ``(expression, fields)`` requests; returns
        one awaitable future per request, in submission order.

        Unlike :meth:`submit`, admission errors are delivered on the
        corresponding future instead of raised mid-loop — one rejected
        request (queue full under burst) never strands the submissions
        after it.  Await them together with ``asyncio.gather(...,
        return_exceptions=True)`` to collect a mixed outcome set.
        """
        loop = asyncio.get_running_loop()
        futures: "list[asyncio.Future]" = []
        for expression, fields in requests:
            try:
                handle = self.service.submit(expression, fields,
                                             timeout=timeout)
            except Exception as exc:
                future: asyncio.Future = loop.create_future()
                future.set_exception(exc)
            else:
                future = self._bridge(loop, handle)
            futures.append(future)
        return futures

    # -- the bridge ----------------------------------------------------------

    @staticmethod
    def _bridge(loop: asyncio.AbstractEventLoop,
                handle: ServiceRequest) -> "asyncio.Future":
        """One asyncio future mirroring one service request handle."""
        future: asyncio.Future = loop.create_future()

        def transfer() -> None:          # runs on the loop thread
            if future.done():            # cancelled asyncio-side already
                return
            if handle.status is RequestStatus.SERVED:
                future.set_result(handle.report)
            else:
                future.set_exception(handle.error or ServiceError(
                    f"request #{handle.id} resolved "
                    f"{handle.status.value} without a cause"))

        def on_handle_done(_request: ServiceRequest) -> None:
            # Resolving thread is a worker/dispatcher; hop to the loop.
            # A closed loop means nobody is awaiting — drop silently
            # (the service-side resolution already completed).
            try:
                loop.call_soon_threadsafe(transfer)
            except RuntimeError:
                pass

        def on_future_done(fut: "asyncio.Future") -> None:
            if fut.cancelled():
                handle.cancel()          # cooperative, takes effect at
                                         # the next service checkpoint

        future.add_done_callback(on_future_done)
        handle.add_done_callback(on_handle_done)
        return future
