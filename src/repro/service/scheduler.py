"""Request → device-worker scheduling policy.

The dispatcher asks the scheduler where each admitted request should run.
The policy is **least-outstanding-work with plan-cache-locality
affinity**:

1. compute the request's :class:`~repro.strategies.plancache.PlanKey`
   re-targeted at each worker's device (``PlanKey.for_device``) and probe
   the shared plan cache — a worker whose device already has the compiled
   plan can serve the request without paying build/codegen again;
2. among the *warm* workers (if any), pick the one with the fewest
   outstanding requests — but only while that choice isn't ``slack``
   deeper than the globally least-loaded worker.  The slack keeps
   locality from defeating load balance: a single hot expression must
   not pile onto one device while others idle, because a miss merely
   rebuilds a plan (bounded cost) whereas an imbalanced queue grows
   without bound;
3. otherwise fall back to the globally least-loaded worker, ties broken
   by worker index (deterministic).

The scheduler is a pure policy object — it never blocks, owns no
threads, and reads worker load through the tiny
:class:`WorkerView` protocol, which keeps it unit-testable without a
running service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Protocol, Sequence

from ..strategies.plancache import PlanCache, PlanKey

__all__ = ["LeastLoadedScheduler", "SchedulerDecision", "WorkerView"]


class WorkerView(Protocol):
    """What the scheduler needs to know about a worker."""

    index: int

    @property
    def outstanding(self) -> int:
        """Requests assigned but not yet resolved."""
        ...  # pragma: no cover - protocol

    def device_key(self, key: PlanKey) -> PlanKey:
        """``key`` re-targeted at this worker's device."""
        ...  # pragma: no cover - protocol


@dataclass(frozen=True)
class SchedulerDecision:
    """Chosen worker plus why (surfaced in metrics/tests)."""

    worker: WorkerView
    affinity_hit: bool        # chosen because its device has the plan


class LeastLoadedScheduler:
    """Least outstanding work, with bounded plan-locality preference."""

    def __init__(self, plan_cache: PlanCache, affinity_slack: int = 1):
        if affinity_slack < 0:
            raise ValueError(
                f"affinity slack must be >= 0: {affinity_slack}")
        self.plan_cache = plan_cache
        self.affinity_slack = affinity_slack

    def pick(self, workers: Sequence[WorkerView],
             key: Optional[PlanKey]) -> SchedulerDecision:
        if not workers:
            raise ValueError("no workers to schedule onto")
        coldest = min(workers, key=lambda w: (w.outstanding, w.index))
        if key is None:
            return SchedulerDecision(coldest, affinity_hit=False)
        warm = [w for w in workers
                if w.device_key(key) in self.plan_cache]
        if warm:
            best_warm = min(warm, key=lambda w: (w.outstanding, w.index))
            if (best_warm.outstanding
                    <= coldest.outstanding + self.affinity_slack):
                return SchedulerDecision(best_warm, affinity_hit=True)
        return SchedulerDecision(coldest, affinity_hit=False)
