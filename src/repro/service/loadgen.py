"""Closed-loop synthetic load generation and the latency/throughput report.

Drives a :class:`~repro.service.DerivedFieldService` the way a saturating
host application would: ``clients`` threads each submit a request, block
for its outcome, and immediately submit the next (a *closed loop* — load
self-limits to service capacity, so the measured latency is service
latency, not queueing-from-overdrive).  The request stream round-robins
over a deterministic case list (the three paper vortex expressions by
default), so runs are reproducible and every expression's latency
histogram fills evenly.

Two throughput figures come out:

* **wall throughput** — served requests / host wall-clock seconds.  The
  simulated devices execute as vectorized NumPy inside one Python
  process, so wall throughput mostly measures the host, not the modeled
  fleet;
* **modeled throughput** — served requests / modeled makespan, where the
  makespan is the busiest device's accumulated simulated seconds
  (devices run concurrently in the model, exactly like the multi-device
  strategy's aggregation).  This is the figure that must scale with
  device count — the service analogue of Fig 5's per-device timing.

Two load shapes are supported: the default **closed loop** above, and an
**open loop** (``mode="open"``) where a single submitter offers requests
at a fixed rate (or as fast as it can) *without* waiting for outcomes —
the arrival process is independent of service speed, so bursts pile up
in the admission queue and the dispatcher's micro-batching has same-plan
neighbors to coalesce.  Open-loop is how batchable load actually arrives
(many in-situ producers per timestep), and it is the mode the
batched-throughput benchmark drives.

Every request resolves to exactly one of served / rejected / timed-out /
failed / cancelled; :func:`run_load` counts them and reports
``dropped = requests - resolved``, which a healthy service keeps at 0.
"""

from __future__ import annotations

import threading
import time
from typing import Mapping, Optional, Sequence

import numpy as np

from ..analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from ..errors import ReproError, RequestCancelled, RequestTimedOut, \
    ServiceOverloaded
from .service import DerivedFieldService

__all__ = ["LoadCase", "build_service", "default_cases", "run_load",
           "format_load_report"]


def build_service(devices: Sequence = ("cpu",),
                  strategy: str = "fusion", *,
                  backend: Optional[str] = None,
                  plan_cache_dir=None,
                  max_batch: int = 8,
                  batch_window: float = 0.0,
                  queue_depth: Optional[int] = None,
                  default_timeout: Optional[float] = None,
                  start: bool = True,
                  tracer=None,
                  metrics_registry=None,
                  obs=None,
                  debug_bundle_dir=None) -> DerivedFieldService:
    """Construct a :class:`DerivedFieldService` with the *same* engine-
    option spelling the engine and ``derive`` CLI use.

    One signature for every entry point — ``DerivedFieldService``
    directly, ``python -m repro serve``, and benchmark drivers — so
    ``backend=`` / ``plan_cache_dir=`` / ``max_batch=`` mean the same
    thing everywhere instead of three ad-hoc spellings.  ``queue_depth``
    defaults to the service's own default when ``None``.
    """
    kwargs: dict = {}
    if queue_depth is not None:
        kwargs["queue_depth"] = queue_depth
    return DerivedFieldService(
        devices=devices, strategy=strategy, backend=backend,
        plan_cache_dir=plan_cache_dir, max_batch=max_batch,
        batch_window=batch_window, default_timeout=default_timeout,
        start=start, tracer=tracer, metrics_registry=metrics_registry,
        obs=obs, debug_bundle_dir=debug_bundle_dir, **kwargs)


class LoadCase:
    """One request template: a named expression plus its bound arrays."""

    def __init__(self, name: str, expression: str,
                 fields: Mapping[str, np.ndarray]):
        self.name = name
        self.expression = expression
        self.fields = fields


def default_cases(fields: Mapping[str, np.ndarray],
                  names: Optional[Sequence[str]] = None) -> list[LoadCase]:
    """The paper's vortex expressions over one synthetic workload."""
    names = tuple(names) if names else tuple(EXPRESSIONS)
    cases = []
    for name in names:
        if name not in EXPRESSIONS:
            raise ValueError(f"unknown expression {name!r}; "
                             f"choose from {sorted(EXPRESSIONS)}")
        inputs = {k: fields[k] for k in EXPRESSION_INPUTS[name]}
        cases.append(LoadCase(name, EXPRESSIONS[name], inputs))
    return cases


def run_load(service: DerivedFieldService, cases: Sequence[LoadCase], *,
             clients: int, requests: int,
             timeout: Optional[float] = None,
             mode: str = "closed",
             rate_rps: Optional[float] = None,
             inject_deadline_miss: int = 0) -> dict:
    """Drive ``requests`` total requests through the service; returns the
    JSON-able load report.

    ``mode="closed"`` (default): ``clients`` threads each submit, block
    for the outcome, and immediately submit the next — load self-limits
    to service capacity.  ``mode="open"``: one submitter offers the whole
    stream without waiting (paced at ``rate_rps`` when given, else as
    fast as it can), then collects every outcome — arrivals are
    independent of service speed, which is what queues up the same-plan
    neighbors micro-batching coalesces.  ``clients`` is ignored open-loop.

    ``inject_deadline_miss`` forces the first N submitted requests to
    report an expired deadline at the worker's post-execution checkpoint
    (:meth:`~repro.service.request.ServiceRequest.force_deadline_miss`)
    — a deterministic fault injection that exercises deadline-miss debug
    bundles and the SLO error-burn path without racing real clocks.
    """
    if mode not in ("closed", "open"):
        raise ValueError(f"load mode must be 'closed' or 'open': {mode!r}")
    if clients < 1:
        raise ValueError(f"need at least one client: {clients}")
    if not cases:
        raise ValueError("need at least one load case")

    counter_lock = threading.Lock()
    next_index = 0
    injected = 0

    def take_index() -> Optional[int]:
        nonlocal next_index
        with counter_lock:
            if next_index >= requests:
                return None
            index = next_index
            next_index += 1
            return index

    def maybe_inject(handle) -> None:
        nonlocal injected
        if injected >= inject_deadline_miss:
            return
        with counter_lock:
            if injected >= inject_deadline_miss:
                return
            injected += 1
        handle.force_deadline_miss()

    outcomes = ["unresolved"] * requests

    def settle(index: int, handle) -> None:
        try:
            handle.result()
            outcomes[index] = "served"
        except RequestTimedOut:
            outcomes[index] = "timed_out"
        except RequestCancelled:
            outcomes[index] = "cancelled"
        except ReproError:
            outcomes[index] = "failed"

    def client_loop() -> None:
        while True:
            index = take_index()
            if index is None:
                return
            case = cases[index % len(cases)]
            try:
                handle = service.submit(case.expression, case.fields,
                                        timeout=timeout)
            except ServiceOverloaded:
                outcomes[index] = "rejected"
                continue
            maybe_inject(handle)
            settle(index, handle)

    def open_loop() -> float:
        """Submit everything, then collect; returns the wall time."""
        handles: "list[tuple[int, object]]" = []
        interval = 1.0 / rate_rps if rate_rps else 0.0
        begin = time.perf_counter()
        next_at = time.monotonic()
        for index in range(requests):
            if interval:
                now = time.monotonic()
                if next_at > now:
                    time.sleep(next_at - now)
                next_at += interval
            case = cases[index % len(cases)]
            try:
                handle = service.submit(case.expression, case.fields,
                                        timeout=timeout)
            except ServiceOverloaded:
                outcomes[index] = "rejected"
                continue
            maybe_inject(handle)
            handles.append((index, handle))
        for index, handle in handles:
            settle(index, handle)
        return time.perf_counter() - begin

    if mode == "open":
        wall = open_loop()
    else:
        threads = [threading.Thread(target=client_loop,
                                    name=f"repro-client-{i}", daemon=True)
                   for i in range(clients)]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        wall = time.perf_counter() - start

    snapshot = service.snapshot()
    tally = {status: outcomes.count(status)
             for status in ("served", "rejected", "timed_out",
                            "cancelled", "failed")}
    served = tally["served"]
    modeled_makespan = max(
        (dev["modeled_seconds"] for dev in snapshot["devices"].values()),
        default=0.0)
    return {
        "mode": mode,
        "clients": 1 if mode == "open" else clients,
        "requests": requests,
        "outcomes": tally,
        "dropped": outcomes.count("unresolved"),
        "wall_seconds": wall,
        "throughput_rps_wall": served / wall if wall > 0 else 0.0,
        "modeled_makespan_seconds": modeled_makespan,
        "throughput_rps_modeled": (served / modeled_makespan
                                   if modeled_makespan > 0 else 0.0),
        "latency": snapshot["latency"],
        "plan_cache": snapshot["plan_cache"],
        "batching": snapshot["batching"],
        "devices": snapshot["devices"],
        "queue_peak_depth": snapshot["queue"]["peak_depth"],
        "traces": snapshot["traces"],
        "observability": snapshot.get("observability"),
        "injected_deadline_misses": injected,
    }


def format_load_report(report: dict) -> str:
    """Human-readable summary of a :func:`run_load` report."""
    lines = []
    out = report["outcomes"]
    mode = report.get("mode", "closed")
    source = ("one open-loop submitter" if mode == "open" else
              f"{report['clients']} closed-loop clients")
    lines.append(
        f"{report['requests']} requests from {source} "
        f"in {report['wall_seconds']:.3f} s wall")
    lines.append(
        f"  outcomes: served={out['served']} rejected={out['rejected']} "
        f"timed-out={out['timed_out']} failed={out['failed']} "
        f"cancelled={out['cancelled']} dropped={report['dropped']}")
    lines.append(
        f"  throughput: {report['throughput_rps_wall']:.1f} req/s wall, "
        f"{report['throughput_rps_modeled']:.1f} req/s modeled "
        f"(makespan {report['modeled_makespan_seconds']:.4f} s)")
    cache = report["plan_cache"]
    lines.append(
        f"  plan cache: {cache['hits']}/{cache['lookups']} hits "
        f"({100.0 * cache['hit_rate']:.1f}%)   "
        f"queue peak depth: {report['queue_peak_depth']}")
    batching = report.get("batching")
    if batching and batching["coalesced_launches"]:
        lines.append(
            f"  batching: {batching['coalesced_requests']} requests in "
            f"{batching['coalesced_launches']} coalesced launches "
            f"(mean batch {batching['mean_batch_size']:.1f}, "
            f"{batching['launches']} launches total)")
    for name, stats in sorted(report["latency"].items()):
        lines.append(
            f"  latency[{name}]: p50={1e3 * stats['p50_s']:.2f} ms  "
            f"p95={1e3 * stats['p95_s']:.2f} ms  "
            f"p99={1e3 * stats['p99_s']:.2f} ms  "
            f"(n={stats['count']})")
    for name, dev in sorted(report["devices"].items()):
        lines.append(
            f"  device[{name}]: served={dev['served']} "
            f"failed={dev['failed']} "
            f"busy={dev['busy_seconds']:.3f} s "
            f"modeled={dev['modeled_seconds']:.4f} s "
            f"utilization={100.0 * dev['utilization']:.1f}%")
    return "\n".join(lines)
