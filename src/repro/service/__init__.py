"""The derived-field *service* layer: concurrent, multi-device serving.

Turns the single-call engine into a request-serving system — the
ROADMAP's scaling direction on top of the warm-execution layer:

* :class:`DerivedFieldService` — the serving facade: bounded admission,
  scheduling, device workers, metrics, drain-clean shutdown;
* :class:`ServiceRequest` / :class:`RequestStatus` — the request future
  and its life cycle;
* :class:`AdmissionQueue` — bounded intake with
  :class:`~repro.errors.ServiceOverloaded` backpressure;
* :class:`LeastLoadedScheduler` — least-outstanding-work routing with
  plan-cache-locality affinity;
* :class:`DeviceWorker` — one thread per device, persistent warm engine,
  shared thread-safe plan cache;
* :class:`ServiceMetrics` — counters, queue gauge, latency percentiles,
  cache hit rate, per-device utilization, JSON snapshot;
* :func:`run_load` / :func:`format_load_report` — closed-loop synthetic
  load generation (the ``python -m repro serve`` backbone).
"""

from .loadgen import LoadCase, default_cases, format_load_report, run_load
from .metrics import LatencyStats, ServiceMetrics, percentile
from .queue import AdmissionQueue
from .request import RequestStatus, ServiceRequest, TERMINAL_STATUSES
from .scheduler import LeastLoadedScheduler, SchedulerDecision, WorkerView
from .service import DerivedFieldService
from .worker import DeviceWorker

__all__ = [
    "AdmissionQueue", "DerivedFieldService", "DeviceWorker",
    "LatencyStats", "LeastLoadedScheduler", "LoadCase", "RequestStatus",
    "SchedulerDecision", "ServiceMetrics", "ServiceRequest",
    "TERMINAL_STATUSES", "WorkerView", "default_cases",
    "format_load_report", "percentile", "run_load",
]
