"""The derived-field *service* layer: concurrent, multi-device serving.

Turns the single-call engine into a request-serving system — the
ROADMAP's scaling direction on top of the warm-execution layer:

* :class:`DerivedFieldService` — the serving facade: bounded admission,
  micro-batching dispatch, scheduling, device workers, metrics,
  drain-clean shutdown;
* :class:`ServiceRequest` / :class:`RequestStatus` — the request future
  and its life cycle;
* :class:`ServiceClient` — the asyncio front-end (``await
  client.submit(...)`` / ``submit_many``) over request futures;
* :class:`AdmissionQueue` — bounded intake with
  :class:`~repro.errors.ServiceOverloaded` backpressure;
* :class:`LeastLoadedScheduler` — least-outstanding-work routing with
  plan-cache-locality affinity;
* :class:`DeviceWorker` — one thread per device, persistent warm engine,
  shared thread-safe plan cache, coalesced batch launches;
* :class:`ServiceMetrics` — counters, queue gauge, batch-size histogram,
  latency percentiles, cache hit rate, per-device utilization, JSON
  snapshot;
* :func:`run_load` / :func:`build_service` / :func:`format_load_report`
  — synthetic load generation, closed- and open-loop (the
  ``python -m repro serve`` backbone).

The one blessed request path
----------------------------

Every way of asking the service for work is a veneer over the same
pipeline: ``submit()`` returns a :class:`ServiceRequest` — a real
:class:`concurrent.futures.Future`-compatible handle (``done()`` /
``cancelled()`` / ``running()`` / ``result()`` / ``exception()`` /
``add_done_callback()``).  The conveniences are thin wrappers:

* ``service.execute(expr, fields)``  ==  ``submit(...).result()``;
* ``service.derive(expr, fields)``   ==  ``execute(...).output``;
* ``await ServiceClient(service).submit(...)``  ==  ``submit(...)``
  bridged onto the event loop via ``add_done_callback``.

New integrations should build on ``submit()`` + the Future protocol;
everything the service guarantees (exactly-one resolution, deadlines,
backpressure, batching transparency) is stated in terms of that handle.
"""

from .client import ServiceClient
from .loadgen import (LoadCase, build_service, default_cases,
                      format_load_report, run_load)
from .metrics import LatencyStats, ServiceMetrics, percentile
from .queue import AdmissionQueue
from .request import RequestStatus, ServiceRequest, TERMINAL_STATUSES
from .scheduler import LeastLoadedScheduler, SchedulerDecision, WorkerView
from .service import DerivedFieldService
from .worker import DeviceWorker

__all__ = [
    "AdmissionQueue", "DerivedFieldService", "DeviceWorker",
    "LatencyStats", "LeastLoadedScheduler", "LoadCase", "RequestStatus",
    "SchedulerDecision", "ServiceClient", "ServiceMetrics",
    "ServiceRequest", "TERMINAL_STATUSES", "WorkerView", "build_service",
    "default_cases", "format_load_report", "percentile", "run_load",
]
