"""`DerivedFieldService`: the multi-tenant, multi-device serving layer.

The paper's framework computes one derived field per call from a single
host process.  This module turns that engine into a *service*: many
concurrent clients submit expressions over their own arrays, a fleet of
device workers executes them against shared warm state, and the whole
thing degrades predictably under overload instead of falling over.

Request path::

    submit() ──prepare/validate──► AdmissionQueue (bounded; rejects past
        depth) ──dispatcher──► LeastLoadedScheduler (plan-cache-locality
        affinity) ──► DeviceWorker inbox ──► engine.execute_prepared()
        ──► ServiceRequest resolves; ServiceMetrics updated

Guarantees:

* **every admitted request resolves** — served, timed-out, failed, or
  cancelled; shutdown drains or explicitly cancels, never drops;
* **backpressure, not buffering** — past ``queue_depth`` waiting
  requests, `submit` raises :class:`ServiceOverloaded` immediately;
* **deadlines** — a request carries an optional deadline checked at
  every checkpoint (mid-queue, pre-launch, post-launch) with cooperative
  client cancellation on the same mechanism;
* **shared warm state, safely** — one thread-safe
  :class:`~repro.strategies.plancache.PlanCache` backs all workers
  (plans built by one device worker are warm hits for every other worker
  on the same device model), while environments/allocators/pools stay
  worker-private;
* **failure isolation** — a device OOM fails that request, releases its
  buffers, and the service keeps serving.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Mapping, Optional, Sequence, Union

import numpy as np

from ..clsim.device import DeviceSpec, DeviceType
from ..codegen import PlanDiskCache
from ..errors import ServiceClosed
from ..metrics import MetricsRegistry
from ..obs import Observability
from ..obs.log import get_logger
from ..strategies.bindings import BindingInput
from ..strategies.plancache import PlanCache
from ..trace import NULL_TRACER, Tracer
from .metrics import ServiceMetrics
from .queue import AdmissionQueue
from .request import ServiceRequest
from .scheduler import LeastLoadedScheduler
from .worker import DeviceWorker

__all__ = ["DerivedFieldService"]

DEFAULT_QUEUE_DEPTH = 64
DEFAULT_PLAN_CACHE_SIZE = 128


class DerivedFieldService:
    """Concurrent derived-field serving over a fleet of device workers.

    ``devices`` lists one entry per worker ('cpu' / 'gpu' /
    :class:`DeviceSpec`); repeated entries mean multiple workers of that
    device model.  ``strategy`` names the inner execution strategy every
    worker runs (fusion by default).  ``queue_depth`` bounds the
    admission queue; ``default_timeout`` (seconds) applies to requests
    submitted without an explicit one; ``affinity_slack`` tunes how far
    plan-locality may override least-loaded placement.  ``backend`` and
    ``plan_cache_dir`` pass through to every worker's engine: the default
    compiled executor plus one shared on-disk plan cache, so a restarted
    service warms without recompiling (DESIGN.md §10).

    ``max_batch`` enables micro-batching (DESIGN.md §11): the dispatcher
    coalesces up to that many queued requests sharing one device-
    retargeted plan key into a single launch over stacked bindings,
    amortizing per-launch overhead; ``1`` disables coalescing.
    ``batch_window`` optionally lingers that many seconds for a fuller
    batch, bounded by the head request's deadline so no request waits
    past its budget (``0``, the default, coalesces only what is already
    queued — zero added latency).

    Use as a context manager (``with DerivedFieldService(...) as svc:``)
    or call :meth:`close` explicitly — close drains by default.
    """

    def __init__(self,
                 devices: Sequence[Union[str, DeviceType, DeviceSpec]]
                 = ("cpu",),
                 strategy: str = "fusion", *,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 plan_cache_size: int = DEFAULT_PLAN_CACHE_SIZE,
                 default_timeout: Optional[float] = None,
                 affinity_slack: int = 1,
                 backend: Optional[str] = None,
                 plan_cache_dir=None,
                 max_batch: int = 8,
                 batch_window: float = 0.0,
                 start: bool = True,
                 tracer: Optional[Tracer] = None,
                 metrics_registry: Optional[MetricsRegistry] = None,
                 obs: "Union[Observability, None, bool]" = None,
                 debug_bundle_dir=None):
        if not devices:
            raise ValueError("service needs at least one device")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1: {max_batch}")
        if batch_window < 0.0:
            raise ValueError(f"batch_window must be >= 0: {batch_window}")
        self.max_batch = max_batch
        self.batch_window = batch_window
        # Observability (DESIGN.md §12): on by default.  ``obs=False``
        # turns the layer off entirely; ``obs=None`` builds the default
        # flight-recorder manager; an explicit Observability is used
        # as-is.  ``debug_bundle_dir`` arms tail-sampled debug bundles.
        if obs is False:
            self.obs: Optional[Observability] = None
        elif obs is None:
            self.obs = Observability(bundle_dir=debug_bundle_dir)
        else:
            self.obs = obs
            if debug_bundle_dir is not None and self.obs.bundles is None:
                from ..obs.bundles import BundleWriter
                self.obs.bundles = BundleWriter(debug_bundle_dir)
        # The flight recorder doubles as the default tracer, so every
        # request records passively even with tracing "off"; an explicit
        # tracer wins (and the recorder then only sees what the serving
        # layer reports through attach_result).
        if tracer is not None:
            self.tracer: Tracer = tracer
        elif self.obs is not None:
            self.tracer = self.obs.recorder
        else:
            self.tracer = NULL_TRACER
        self.plan_cache = PlanCache(plan_cache_size)
        # One shared disk cache: any worker's cold codegen persists the
        # plan, and a restarted service warms from it on first touch.
        if plan_cache_dir is not None and \
                not isinstance(plan_cache_dir, PlanDiskCache):
            plan_cache_dir = PlanDiskCache(plan_cache_dir)
        self.plan_disk: Optional[PlanDiskCache] = plan_cache_dir
        # Default: a private registry, so snapshot() describes exactly
        # this instance.  Pass repro.metrics.get_registry() to expose the
        # service on the process-wide /metrics endpoint instead.
        self.metrics = ServiceMetrics(registry=metrics_registry)
        if self.obs is not None:
            self.obs.bind_registry(self.metrics.registry)
        self.default_timeout = default_timeout
        self._queue = AdmissionQueue(queue_depth, gauge=self._gauge)
        self._scheduler = LeastLoadedScheduler(self.plan_cache,
                                               affinity_slack)
        self.workers = [
            DeviceWorker(i, device, strategy, self.plan_cache,
                         self.metrics, self._request_done, backend=backend,
                         tracer=self.tracer, plan_cache_dir=self.plan_disk)
            for i, device in enumerate(devices)
        ]
        # Requests are prepared (compiled, validated, keyed) through the
        # first worker's engine; its compiled-expression cache is shared
        # by every submitter and its device key is re-targeted per worker
        # at dispatch.
        self._front = self.workers[0].engine
        self._ids = itertools.count(1)
        self._inflight = 0
        self._idle = threading.Condition()
        self._closed = False
        self._started = False
        self._dispatcher = threading.Thread(target=self._dispatch_loop,
                                            name="repro-dispatcher",
                                            daemon=True)
        if start:
            self.start()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for worker in self.workers:
            worker.start()
        self._dispatcher.start()

    def __enter__(self) -> "DerivedFieldService":
        self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close(drain=exc_info[0] is None)

    def close(self, drain: bool = True,
              timeout: Optional[float] = None) -> None:
        """Shut down: refuse new work, then drain (default) or cancel
        what's in flight.  Idempotent."""
        self._closed = True
        if drain and self._started:
            self.wait_idle(timeout)
        leftovers = self._queue.close()
        for request in leftovers:     # only when not draining (or racing)
            if request.resolve_cancelled():
                self._request_done(request)
        if self._started:
            if self._dispatcher.is_alive():
                self._dispatcher.join()
            for worker in self.workers:
                worker.stop(drain=drain)

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until every admitted request has resolved."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight > 0:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(remaining if remaining is not None
                                else 0.5)
            return True

    @property
    def closed(self) -> bool:
        return self._closed

    # -- client API ----------------------------------------------------------

    def submit(self, expression: str,
               fields: Mapping[str, BindingInput], *,
               timeout: Optional[float] = None) -> ServiceRequest:
        """Admit one request; returns its handle (a future).

        Raises :class:`ServiceClosed` after shutdown began,
        :class:`ServiceOverloaded` when the admission queue is full, and
        the usual expression/binding errors synchronously (a malformed
        request is the submitter's bug, not service load).
        """
        if self._closed:
            raise ServiceClosed("service is shut down; submit refused")
        request_id = next(self._ids)
        # The request's root span: no parent (fresh trace id), finished by
        # the request itself at resolution — possibly on another thread.
        span = self.tracer.span("request", category="service",
                                parent=None, request=request_id).start()
        try:
            with self.tracer.span("submit.prepare", category="service",
                                  parent=span):
                prepared = self._front.prepare(expression, fields)
        except Exception:
            span.annotate(status="invalid")
            span.finish()
            raise
        span.annotate(expression=prepared.compiled.result_name)
        timeout = self.default_timeout if timeout is None else timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        request = ServiceRequest(request_id,
                                 prepared.compiled.result_name,
                                 prepared, deadline, span=span)
        request.queue_span = self.tracer.span(
            "queue.wait", category="service", parent=span).start()
        with self._idle:
            self._inflight += 1
        try:
            # record_admitted runs under the queue lock, after the append:
            # the dispatcher drains under that same lock, so the
            # submitted-counter increment happens-before any terminal
            # accounting for this request — the snapshot invariant
            # ``offered == resolved + in_flight`` can never transiently
            # go negative (see ServiceMetrics.snapshot).
            self._queue.offer(request,
                              on_admit=self.metrics.record_admitted)
        except Exception:
            with self._idle:
                self._inflight -= 1
                self._idle.notify_all()
            self.metrics.record_rejected()
            raise
        return request

    def execute(self, expression: str,
                fields: Mapping[str, BindingInput], *,
                timeout: Optional[float] = None):
        """Submit and block for the full :class:`ExecutionReport`."""
        return self.submit(expression, fields, timeout=timeout).result()

    def derive(self, expression: str,
               fields: Mapping[str, np.ndarray], *,
               timeout: Optional[float] = None) -> np.ndarray:
        """Submit and block for just the derived array."""
        report = self.execute(expression, fields, timeout=timeout)
        assert report.output is not None
        return report.output

    def snapshot(self) -> dict:
        """Point-in-time JSON-able metrics (see :class:`ServiceMetrics`)."""
        snap = self.metrics.snapshot()
        if self.obs is not None:
            snap["observability"] = self.obs.snapshot()
        return snap

    # -- health / debug surfaces ---------------------------------------------

    def health(self) -> "tuple[int, dict]":
        """The ``/healthz`` payload: (HTTP status, body).  503 while any
        expression burns its error budget past the limit, or after
        shutdown began."""
        if self.obs is None:
            payload: dict = {"healthy": not self._closed,
                             "observability": "disabled"}
        else:
            payload = self.obs.health()
        if self._closed:
            payload["healthy"] = False
            payload["closed"] = True
        return (200 if payload.get("healthy") else 503), payload

    def readiness(self) -> "tuple[int, dict]":
        """The ``/readyz`` payload: 200 once workers are started and the
        service accepts submissions, 503 before start or after close."""
        ready = self._started and not self._closed
        return (200 if ready else 503), {
            "ready": ready,
            "started": self._started,
            "closed": self._closed,
            "workers": len(self.workers),
            "queue_depth": len(self._queue),
        }

    def debug_index(self) -> dict:
        """The ``/debugz`` payload (empty shell when obs is off)."""
        if self.obs is None:
            return {"observability": "disabled"}
        return self.obs.debug_index()

    # -- internals ----------------------------------------------------------

    def _gauge(self, depth: int) -> None:
        """Admission-queue depth fan-out: metrics gauge + trace counter."""
        self.metrics.set_queue_depth(depth)
        self.tracer.counter("queue_depth", depth)

    def _dispatch_loop(self) -> None:
        while True:
            request = self._queue.take(timeout=0.05)
            if request is None:
                if self._closed and len(self._queue) == 0:
                    return
                continue
            if request.queue_span is not None:
                request.queue_span.finish()
            if request.cancel_requested:
                if request.resolve_cancelled():
                    self._request_done(request)
                continue
            if request.deadline_expired():
                if request.resolve_timed_out("in the admission queue"):
                    get_logger().warning("dispatch.deadline_miss",
                                         request=request.id,
                                         trace_id=request.trace_id,
                                         expression=request.expression,
                                         where="admission queue")
                    self._request_done(request)
                continue
            batch = self._coalesce(request)
            decision = self._scheduler.pick(self.workers,
                                            request.prepared.key)
            decision.worker.assign_batch(batch)

    def _coalesce(self, head: ServiceRequest) -> "list[ServiceRequest]":
        """Grow a batch behind ``head``: pull queued requests sharing its
        plan key (same structure, sizes, dtype, backend — retargetable to
        one device launch), up to ``max_batch``.  An optional linger
        (``batch_window``) is cut off at the head's deadline, so waiting
        for a fuller batch never pushes a request past its budget."""
        key = head.prepared.key
        if self.max_batch <= 1 or key is None:
            return [head]
        wait_until = None
        if self.batch_window > 0.0:
            wait_until = time.monotonic() + self.batch_window
            if head.deadline is not None:
                wait_until = min(wait_until, head.deadline)
        extras = self._queue.take_matching(
            lambda r: r.prepared.key == key,
            self.max_batch - 1, wait_until=wait_until)
        for extra in extras:
            if extra.queue_span is not None:
                extra.queue_span.finish()
        return [head, *extras]

    def _request_done(self, request: ServiceRequest) -> None:
        """Terminal bookkeeping for every admitted request (worker and
        dispatcher resolutions both land here exactly once)."""
        self.metrics.record_result(request)
        if self.obs is not None:
            # Exception-safe by contract (Observability.on_request_done
            # never raises), but this path runs on worker/dispatcher
            # threads — belt and braces.
            try:
                self.obs.on_request_done(request)
            except Exception:  # pragma: no cover - defensive
                pass
        with self._idle:
            self._inflight -= 1
            self._idle.notify_all()
