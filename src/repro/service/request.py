"""The service request model: a submitted derived-field computation.

A :class:`ServiceRequest` is both the internal unit of work (queued,
scheduled, executed) and the handle returned to the submitting client.
Its life cycle is a one-way walk through :class:`RequestStatus`:

``QUEUED -> DISPATCHED -> RUNNING -> SERVED``

with terminal exits ``REJECTED`` (admission control), ``TIMED_OUT``
(deadline expired — mid-queue or before/after launch), ``CANCELLED``
(client called :meth:`ServiceRequest.cancel` before a worker picked it
up), and ``FAILED`` (the execution raised, e.g. device OOM).

Resolution is first-writer-wins under a per-request lock, so races
between a worker finishing and a dispatcher timing the request out can
never produce two outcomes; every request resolves exactly once.
Cancellation is *cooperative*: :meth:`cancel` sets a flag that the
dispatcher and workers check at their checkpoints — a request already
launched runs to completion (kernels are not interruptible, exactly as
on a real device queue).

The handle speaks the :class:`concurrent.futures.Future` protocol —
``done()`` / ``cancelled()`` / ``running()`` / ``result()`` /
``exception()`` / ``add_done_callback()`` — so it drops into executor-
shaped code (``concurrent.futures.wait``-style polling loops, asyncio
bridges via :class:`~repro.service.ServiceClient`) unchanged.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import TYPE_CHECKING, Optional

from ..errors import (RequestCancelled, RequestTimedOut, ServiceError,
                      ServiceOverloaded)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..host.engine import PreparedExecution
    from ..strategies.base import ExecutionReport

__all__ = ["RequestStatus", "ServiceRequest", "TERMINAL_STATUSES"]


class RequestStatus(enum.Enum):
    """Where a request is in its life cycle."""

    QUEUED = "queued"            # admitted, waiting in the admission queue
    DISPATCHED = "dispatched"    # assigned to a device worker's inbox
    RUNNING = "running"          # executing on a device
    SERVED = "served"            # completed; report available
    REJECTED = "rejected"        # refused at admission (queue full)
    TIMED_OUT = "timed_out"      # deadline expired before completion
    CANCELLED = "cancelled"      # client cancelled before launch
    FAILED = "failed"            # execution raised (e.g. device OOM)


TERMINAL_STATUSES = frozenset({
    RequestStatus.SERVED, RequestStatus.REJECTED, RequestStatus.TIMED_OUT,
    RequestStatus.CANCELLED, RequestStatus.FAILED,
})


class ServiceRequest:
    """One admitted (or rejected) derived-field computation.

    Clients hold this as a future: :meth:`wait` / :meth:`result` block
    until resolution; :attr:`status`, :attr:`device`, and :attr:`latency`
    describe the outcome.  All mutation happens through :meth:`_resolve`
    and the status setters, which the service layer owns.
    """

    def __init__(self, request_id: int, expression: str,
                 prepared: "PreparedExecution",
                 deadline: Optional[float] = None, span=None):
        self.id = request_id
        self.expression = expression          # label for metrics/reports
        self.prepared = prepared
        self.deadline = deadline              # time.monotonic() instant
        self.submitted_at = time.monotonic()
        self.device: Optional[str] = None     # worker that served it
        self.report: "Optional[ExecutionReport]" = None
        self.error: Optional[BaseException] = None
        self.latency: Optional[float] = None  # submit -> resolve, seconds
        # Tracing: the request's root span (started by the service at
        # submission, finished here at resolution) and the queue-wait
        # child the dispatcher closes on take.  Both None when the
        # service runs untraced.
        self.span = span
        self.trace_id: Optional[str] = (
            getattr(span, "trace_id", None) if span is not None else None)
        self.queue_span = None
        self._status = RequestStatus.QUEUED
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._cancel = threading.Event()
        self._force_miss = False
        self._callbacks: list = []

    # -- client API (concurrent.futures.Future protocol) ---------------------

    @property
    def status(self) -> RequestStatus:
        return self._status

    def done(self) -> bool:
        """Whether the request has resolved (any terminal status)."""
        return self._done.is_set()

    def cancelled(self) -> bool:
        """Whether the request resolved CANCELLED (Future semantics:
        the cancellation actually took effect, not merely requested —
        for the cooperative flag see :attr:`cancel_requested`)."""
        return (self._done.is_set()
                and self._status is RequestStatus.CANCELLED)

    def running(self) -> bool:
        """Whether the request is currently executing on a device."""
        return self._status is RequestStatus.RUNNING

    @property
    def cancel_requested(self) -> bool:
        """Whether cancellation was *requested* (the cooperative flag the
        dispatcher and workers check at their checkpoints)."""
        return self._cancel.is_set()

    def cancel(self) -> bool:
        """Request cooperative cancellation.

        Returns ``False`` when the request already resolved or is
        running on a device (kernels are not interruptible — it will
        complete); ``True`` when the request was still pending, meaning
        the cancellation takes effect at the next scheduling checkpoint.
        Unlike :class:`concurrent.futures.Future`, a ``True`` return is
        a promise of *eventual* cancellation, not an instant one — wait
        on the handle to observe the terminal status.
        """
        self._cancel.set()
        return not (self._done.is_set()
                    or self._status is RequestStatus.RUNNING)

    def add_done_callback(self, fn) -> None:
        """Call ``fn(request)`` when the request resolves (immediately if
        it already has).  Callbacks run on the resolving thread — a
        worker, the dispatcher, or the submitting thread — and must not
        block; exceptions they raise are swallowed, matching
        :meth:`concurrent.futures.Future.add_done_callback`.
        """
        with self._lock:
            if not self._done.is_set():
                self._callbacks.append(fn)
                return
        try:
            fn(self)
        except Exception:
            pass

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request resolves; False on wait timeout."""
        return self._done.wait(timeout)

    def exception(self, timeout: Optional[float] = None,
                  ) -> Optional[BaseException]:
        """Block for resolution and return the failure cause — ``None``
        when the request was served.  Raises :class:`TimeoutError` if the
        *wait* times out (independent of the service-side deadline)."""
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request #{self.id} ({self.expression}) not resolved "
                f"within {timeout} s (status: {self._status.value})")
        return self.error

    def result(self, timeout: Optional[float] = None) -> "ExecutionReport":
        """Block for the outcome: the :class:`ExecutionReport` on success,
        or the failure re-raised (:class:`RequestTimedOut`,
        :class:`RequestCancelled`, :class:`ServiceOverloaded`, or the
        execution's own exception).

        ``timeout`` bounds only this *wait*; it is independent of the
        request's service-side deadline.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request #{self.id} ({self.expression}) not resolved "
                f"within {timeout} s (status: {self._status.value})")
        status = self._status
        if status is RequestStatus.SERVED:
            assert self.report is not None
            return self.report
        if self.error is not None:
            raise self.error
        raise ServiceError(  # pragma: no cover - defensive
            f"request #{self.id} resolved {status.value} without a cause")

    # -- service-side transitions -------------------------------------------

    def mark_dispatched(self) -> None:
        with self._lock:
            if self._status is RequestStatus.QUEUED:
                self._status = RequestStatus.DISPATCHED

    def mark_running(self) -> None:
        with self._lock:
            if self._status is RequestStatus.DISPATCHED:
                self._status = RequestStatus.RUNNING

    def force_deadline_miss(self) -> None:
        """Make this request report an expired deadline at the worker's
        *post-execution* checkpoint — and only there.  The request runs
        normally (its :class:`ExecutionReport` is computed and kept),
        then deterministically resolves TIMED_OUT.  This is the fault
        injection the obs-smoke CI job and the loadgen's
        ``inject_deadline_miss`` use to exercise debug bundles without
        racing a real clock."""
        self._force_miss = True

    def deadline_expired(self, now: Optional[float] = None) -> bool:
        if self._force_miss and self._status is RequestStatus.RUNNING:
            return True
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def _resolve(self, status: RequestStatus, *,
                 report: "Optional[ExecutionReport]" = None,
                 error: Optional[BaseException] = None,
                 device: Optional[str] = None) -> bool:
        """Terminal transition; returns False if already resolved (the
        first resolution wins, later ones are dropped)."""
        assert status in TERMINAL_STATUSES
        with self._lock:
            if self._done.is_set():
                return False
            self._status = status
            self.report = report
            self.error = error
            self.device = device
            self.latency = time.monotonic() - self.submitted_at
            self._done.set()
        if self.queue_span is not None:
            self.queue_span.finish()      # idempotent; covers early exits
        if self.span is not None:
            self.span.annotate(status=status.value,
                               device=device or "")
            self.span.finish()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            try:
                fn(self)
            except Exception:
                pass
        return True

    def resolve_served(self, report: "ExecutionReport",
                       device: str) -> bool:
        return self._resolve(RequestStatus.SERVED, report=report,
                             device=device)

    def resolve_rejected(self, depth: int) -> bool:
        return self._resolve(RequestStatus.REJECTED, error=ServiceOverloaded(
            f"request #{self.id} ({self.expression}) rejected: admission "
            f"queue at capacity ({depth})", depth=depth))

    def resolve_refused(self, error: BaseException) -> bool:
        """Admission refusal that is not load-shedding (service shut
        down): terminal status REJECTED with the refusal as the cause, so
        outcome accounting matches what the submitter was told."""
        return self._resolve(RequestStatus.REJECTED, error=error)

    def resolve_timed_out(self, where: str,
                          report: "Optional[ExecutionReport]" = None,
                          ) -> bool:
        """``report`` carries the execution's report when the deadline
        expired *after* the launch completed — :meth:`result` still
        raises (the contract was missed), but observability keeps the
        evidence of what the late execution actually did."""
        return self._resolve(RequestStatus.TIMED_OUT, report=report,
                             error=RequestTimedOut(
                                 f"request #{self.id} ({self.expression}) "
                                 f"exceeded its deadline {where}"))

    def resolve_cancelled(self) -> bool:
        return self._resolve(RequestStatus.CANCELLED, error=RequestCancelled(
            f"request #{self.id} ({self.expression}) cancelled"))

    def resolve_failed(self, error: BaseException,
                       device: Optional[str] = None) -> bool:
        return self._resolve(RequestStatus.FAILED, error=error,
                             device=device)

    def __repr__(self) -> str:
        return (f"ServiceRequest(#{self.id}, {self.expression!r}, "
                f"{self._status.value})")
