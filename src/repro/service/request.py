"""The service request model: a submitted derived-field computation.

A :class:`ServiceRequest` is both the internal unit of work (queued,
scheduled, executed) and the handle returned to the submitting client.
Its life cycle is a one-way walk through :class:`RequestStatus`:

``QUEUED -> DISPATCHED -> RUNNING -> SERVED``

with terminal exits ``REJECTED`` (admission control), ``TIMED_OUT``
(deadline expired — mid-queue or before/after launch), ``CANCELLED``
(client called :meth:`ServiceRequest.cancel` before a worker picked it
up), and ``FAILED`` (the execution raised, e.g. device OOM).

Resolution is first-writer-wins under a per-request lock, so races
between a worker finishing and a dispatcher timing the request out can
never produce two outcomes; every request resolves exactly once.
Cancellation is *cooperative*: :meth:`cancel` sets a flag that the
dispatcher and workers check at their checkpoints — a request already
launched runs to completion (kernels are not interruptible, exactly as
on a real device queue).
"""

from __future__ import annotations

import enum
import threading
import time
from typing import TYPE_CHECKING, Optional

from ..errors import (RequestCancelled, RequestTimedOut, ServiceError,
                      ServiceOverloaded)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..host.engine import PreparedExecution
    from ..strategies.base import ExecutionReport

__all__ = ["RequestStatus", "ServiceRequest", "TERMINAL_STATUSES"]


class RequestStatus(enum.Enum):
    """Where a request is in its life cycle."""

    QUEUED = "queued"            # admitted, waiting in the admission queue
    DISPATCHED = "dispatched"    # assigned to a device worker's inbox
    RUNNING = "running"          # executing on a device
    SERVED = "served"            # completed; report available
    REJECTED = "rejected"        # refused at admission (queue full)
    TIMED_OUT = "timed_out"      # deadline expired before completion
    CANCELLED = "cancelled"      # client cancelled before launch
    FAILED = "failed"            # execution raised (e.g. device OOM)


TERMINAL_STATUSES = frozenset({
    RequestStatus.SERVED, RequestStatus.REJECTED, RequestStatus.TIMED_OUT,
    RequestStatus.CANCELLED, RequestStatus.FAILED,
})


class ServiceRequest:
    """One admitted (or rejected) derived-field computation.

    Clients hold this as a future: :meth:`wait` / :meth:`result` block
    until resolution; :attr:`status`, :attr:`device`, and :attr:`latency`
    describe the outcome.  All mutation happens through :meth:`_resolve`
    and the status setters, which the service layer owns.
    """

    def __init__(self, request_id: int, expression: str,
                 prepared: "PreparedExecution",
                 deadline: Optional[float] = None, span=None):
        self.id = request_id
        self.expression = expression          # label for metrics/reports
        self.prepared = prepared
        self.deadline = deadline              # time.monotonic() instant
        self.submitted_at = time.monotonic()
        self.device: Optional[str] = None     # worker that served it
        self.report: "Optional[ExecutionReport]" = None
        self.error: Optional[BaseException] = None
        self.latency: Optional[float] = None  # submit -> resolve, seconds
        # Tracing: the request's root span (started by the service at
        # submission, finished here at resolution) and the queue-wait
        # child the dispatcher closes on take.  Both None when the
        # service runs untraced.
        self.span = span
        self.trace_id: Optional[str] = (
            getattr(span, "trace_id", None) if span is not None else None)
        self.queue_span = None
        self._status = RequestStatus.QUEUED
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._cancel = threading.Event()

    # -- client API ----------------------------------------------------------

    @property
    def status(self) -> RequestStatus:
        return self._status

    @property
    def done(self) -> bool:
        return self._done.is_set()

    @property
    def cancelled(self) -> bool:
        """Whether cancellation was *requested* (cooperative flag)."""
        return self._cancel.is_set()

    def cancel(self) -> None:
        """Request cooperative cancellation.  Takes effect at the next
        scheduling checkpoint; a request already running completes."""
        self._cancel.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the request resolves; False on wait timeout."""
        return self._done.wait(timeout)

    def result(self, timeout: Optional[float] = None) -> "ExecutionReport":
        """Block for the outcome: the :class:`ExecutionReport` on success,
        or the failure re-raised (:class:`RequestTimedOut`,
        :class:`RequestCancelled`, :class:`ServiceOverloaded`, or the
        execution's own exception).

        ``timeout`` bounds only this *wait*; it is independent of the
        request's service-side deadline.
        """
        if not self._done.wait(timeout):
            raise TimeoutError(
                f"request #{self.id} ({self.expression}) not resolved "
                f"within {timeout} s (status: {self._status.value})")
        status = self._status
        if status is RequestStatus.SERVED:
            assert self.report is not None
            return self.report
        if self.error is not None:
            raise self.error
        raise ServiceError(  # pragma: no cover - defensive
            f"request #{self.id} resolved {status.value} without a cause")

    # -- service-side transitions -------------------------------------------

    def mark_dispatched(self) -> None:
        with self._lock:
            if self._status is RequestStatus.QUEUED:
                self._status = RequestStatus.DISPATCHED

    def mark_running(self) -> None:
        with self._lock:
            if self._status is RequestStatus.DISPATCHED:
                self._status = RequestStatus.RUNNING

    def deadline_expired(self, now: Optional[float] = None) -> bool:
        if self.deadline is None:
            return False
        return (time.monotonic() if now is None else now) > self.deadline

    def _resolve(self, status: RequestStatus, *,
                 report: "Optional[ExecutionReport]" = None,
                 error: Optional[BaseException] = None,
                 device: Optional[str] = None) -> bool:
        """Terminal transition; returns False if already resolved (the
        first resolution wins, later ones are dropped)."""
        assert status in TERMINAL_STATUSES
        with self._lock:
            if self._done.is_set():
                return False
            self._status = status
            self.report = report
            self.error = error
            self.device = device
            self.latency = time.monotonic() - self.submitted_at
            self._done.set()
        if self.queue_span is not None:
            self.queue_span.finish()      # idempotent; covers early exits
        if self.span is not None:
            self.span.annotate(status=status.value,
                               device=device or "")
            self.span.finish()
        return True

    def resolve_served(self, report: "ExecutionReport",
                       device: str) -> bool:
        return self._resolve(RequestStatus.SERVED, report=report,
                             device=device)

    def resolve_rejected(self, depth: int) -> bool:
        return self._resolve(RequestStatus.REJECTED, error=ServiceOverloaded(
            f"request #{self.id} ({self.expression}) rejected: admission "
            f"queue at capacity ({depth})", depth=depth))

    def resolve_timed_out(self, where: str) -> bool:
        return self._resolve(RequestStatus.TIMED_OUT, error=RequestTimedOut(
            f"request #{self.id} ({self.expression}) exceeded its "
            f"deadline {where}"))

    def resolve_cancelled(self) -> bool:
        return self._resolve(RequestStatus.CANCELLED, error=RequestCancelled(
            f"request #{self.id} ({self.expression}) cancelled"))

    def resolve_failed(self, error: BaseException,
                       device: Optional[str] = None) -> bool:
        return self._resolve(RequestStatus.FAILED, error=error,
                             device=device)

    def __repr__(self) -> str:
        return (f"ServiceRequest(#{self.id}, {self.expression!r}, "
                f"{self._status.value})")
