"""Bounded admission queue with backpressure.

The service's single intake: :meth:`AdmissionQueue.offer` either admits a
request or raises :class:`~repro.errors.ServiceOverloaded` when the queue
is at its configured depth — callers get an immediate, explicit rejection
instead of unbounded buffering (the classic load-shedding discipline: a
deep queue only converts overload into latency).  The dispatcher drains
the queue with :meth:`take`, which blocks with a timeout so shutdown can
interleave.

Depth changes are reported to an optional gauge callback (the service
wires this to :class:`~repro.service.metrics.ServiceMetrics`), keeping
the queue itself free of metrics policy.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable, Optional

from ..errors import ServiceClosed, ServiceOverloaded
from .request import ServiceRequest

__all__ = ["AdmissionQueue"]


class AdmissionQueue:
    """FIFO of admitted requests, bounded at ``depth``."""

    def __init__(self, depth: int,
                 gauge: Optional[Callable[[int], None]] = None):
        if depth < 1:
            raise ValueError(f"admission queue depth must be >= 1: {depth}")
        self.depth = depth
        self._items: "deque[ServiceRequest]" = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False
        self._gauge = gauge or (lambda depth: None)

    def offer(self, request: ServiceRequest,
              on_admit: Optional[Callable[[], None]] = None) -> int:
        """Admit a request; returns the queue depth after admission.

        Raises :class:`ServiceOverloaded` at capacity (backpressure) and
        :class:`ServiceClosed` after :meth:`close` — in both cases the
        request is resolved accordingly before the exception propagates,
        so rejected work is never left pending.

        ``on_admit`` (when given) runs *inside the queue lock*, after the
        request is appended but before any consumer can take it — the
        dispatcher drains under the same lock, so admission-side
        bookkeeping (the service's ``submitted`` counter) is guaranteed
        to happen-before the request's terminal bookkeeping.  Without the
        hook a terminal count could land first and a metrics snapshot
        could observe a transiently negative in-flight figure.
        """
        with self._not_empty:
            if self._closed:
                request.resolve_refused(ServiceClosed(
                    f"request #{request.id} refused: service is shut down"))
                raise ServiceClosed(
                    f"request #{request.id} refused: service is shut down")
            if len(self._items) >= self.depth:
                request.resolve_rejected(self.depth)
                raise ServiceOverloaded(
                    f"admission queue full ({self.depth} deep); "
                    f"request #{request.id} ({request.expression}) "
                    "rejected", depth=self.depth)
            self._items.append(request)
            if on_admit is not None:
                on_admit()
            size = len(self._items)
            self._not_empty.notify()
        self._gauge(size)
        return size

    def take(self, timeout: Optional[float] = None,
             ) -> Optional[ServiceRequest]:
        """Pop the oldest request, blocking up to ``timeout`` seconds;
        ``None`` when nothing arrived (or the queue closed empty)."""
        with self._not_empty:
            if not self._items:
                self._not_empty.wait(timeout)
            if not self._items:
                return None
            request = self._items.popleft()
            size = len(self._items)
        self._gauge(size)
        return request

    def take_matching(self, match: Callable[[ServiceRequest], bool],
                      limit: int,
                      wait_until: Optional[float] = None,
                      ) -> "list[ServiceRequest]":
        """Extract up to ``limit`` requests satisfying ``match``, from
        anywhere in the queue (the dispatcher's batch-coalescing scan:
        same-plan requests need not be adjacent).

        With ``wait_until`` (a ``time.monotonic`` instant) the call
        lingers for more matches until the limit fills, the deadline
        passes, or the queue closes — the dispatcher bounds the linger by
        the earliest member deadline, so waiting for a fuller batch can
        never push a request past its budget.  FIFO order among matches
        is preserved.
        """
        if limit <= 0:
            return []
        taken: "list[ServiceRequest]" = []
        with self._not_empty:
            while True:
                for request in list(self._items):
                    if len(taken) >= limit:
                        break
                    if match(request):
                        self._items.remove(request)
                        taken.append(request)
                if len(taken) >= limit or self._closed \
                        or wait_until is None:
                    break
                remaining = wait_until - time.monotonic()
                if remaining <= 0:
                    break
                self._not_empty.wait(remaining)
            size = len(self._items)
        if taken:
            self._gauge(size)
        return taken

    def close(self) -> "list[ServiceRequest]":
        """Refuse further admissions; returns any still-queued requests so
        the caller can resolve them (nothing is dropped on the floor)."""
        with self._not_empty:
            self._closed = True
            leftovers = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
        self._gauge(0)
        return leftovers

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)
