"""``python -m repro top`` — a live terminal view of a serving process.

Polls a :class:`~repro.metrics.MetricsServer`'s ``/metrics.json``
endpoint and renders a compact dashboard: request throughput and
outcome mix, latency quantiles interpolated from histogram buckets
(the snapshot carries the bucket *bounds*, so no Prometheus text
parsing), per-expression SLO state (p99 / burn rate / outliers), and
per-device utilization counters.

``render_top`` is a pure function of two snapshots plus the poll
interval, so tests drive it without a server; ``run_top`` is the
polling loop the CLI calls (``--once`` prints a single frame, for CI).
"""

from __future__ import annotations

import json
import time
import urllib.request
from typing import Optional

__all__ = ["quantile_from_buckets", "render_top", "run_top"]

QUANTILES = (0.5, 0.9, 0.99)


def quantile_from_buckets(bounds, cumulative, q: float,
                          ) -> Optional[float]:
    """Estimate quantile ``q`` from a cumulative histogram.

    ``bounds`` are the finite upper bounds (sorted), ``cumulative`` the
    matching cumulative counts plus a final +Inf count.  Linear
    interpolation inside the winning bucket, the standard Prometheus
    ``histogram_quantile`` construction.  Returns None on no data.
    """
    if not cumulative:
        return None
    total = cumulative[-1]
    if total <= 0:
        return None
    rank = q * total
    prev_bound = 0.0
    prev_count = 0
    for bound, count in zip(bounds, cumulative):
        if count >= rank:
            span = count - prev_count
            if span <= 0:
                return bound
            frac = (rank - prev_count) / span
            return prev_bound + (bound - prev_bound) * frac
        prev_bound, prev_count = bound, count
    # Quantile lands in the +Inf bucket: report the largest finite bound.
    return bounds[-1] if bounds else None


def _histogram(snapshot: dict, name: str) -> Optional[dict]:
    family = snapshot.get(name)
    if not family or family.get("type") != "histogram":
        return None
    return family


def _sum_counter(snapshot: dict, name: str) -> float:
    family = snapshot.get(name)
    if not family:
        return 0.0
    return sum(sample.get("value", 0.0)
               for sample in family.get("samples", []))


def _labeled(snapshot: dict, name: str) -> "dict[tuple, float]":
    family = snapshot.get(name)
    if not family:
        return {}
    out = {}
    for sample in family.get("samples", []):
        labels = tuple(sorted(sample.get("labels", {}).items()))
        out[labels] = sample.get("value", 0.0)
    return out


def _latency_lines(snapshot: dict) -> "list[str]":
    family = _histogram(snapshot, "repro_service_request_latency_seconds")
    if family is None:
        return ["  (no latency histogram)"]
    bounds = family.get("bounds")
    lines = []
    for sample in family.get("samples", []):
        if bounds is None:
            lines.append("  (snapshot lacks bucket bounds; "
                         "upgrade the serving process)")
            break
        buckets = sample.get("buckets", {})
        ordered = [buckets.get(_label(bound), 0) for bound in bounds]
        ordered.append(sample.get("count", 0))
        labels = dict(sample.get("labels", {}))
        tag = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        cells = []
        for q in QUANTILES:
            est = quantile_from_buckets(bounds, ordered, q)
            cells.append(f"p{int(q * 100)}={_fmt_s(est)}")
        lines.append(f"  {tag or 'all':<28} "
                     f"n={sample.get('count', 0):<8} "
                     + "  ".join(cells))
    return lines or ["  (no latency samples yet)"]


def _label(bound: float) -> str:
    # Mirror of repro.metrics.registry.bucket_label for finite bounds.
    text = repr(float(bound))
    return text


def _fmt_s(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1.0:
        return f"{value:.2f}s"
    if value >= 1e-3:
        return f"{value * 1e3:.2f}ms"
    return f"{value * 1e6:.0f}us"


def _slo_lines(snapshot: dict) -> "list[str]":
    p99 = _labeled(snapshot, "repro_slo_latency_p99_seconds")
    burn = _labeled(snapshot, "repro_slo_error_burn_rate")
    outliers = _labeled(snapshot, "repro_slo_latency_outliers_total")
    if not p99 and not burn:
        return ["  (no SLO data)"]
    lines = []
    for labels in sorted(set(p99) | set(burn)):
        name = dict(labels).get("expression", "?")
        lines.append(
            f"  {name:<28} p99={_fmt_s(p99.get(labels))}"
            f"  burn={burn.get(labels, 0.0):.2f}"
            f"  outliers={int(outliers.get(labels, 0))}")
    healthy = snapshot.get("repro_slo_healthy")
    if healthy is not None and healthy.get("samples"):
        ok = healthy["samples"][0].get("value", 1.0) >= 1.0
        lines.append(f"  health: {'OK' if ok else 'BURNING'}")
    return lines


def render_top(snapshot: dict, prev: Optional[dict] = None,
               interval: float = 2.0) -> str:
    """One dashboard frame from a ``/metrics.json`` snapshot."""
    resolved = _sum_counter(snapshot, "repro_service_requests_total")
    rate = None
    if prev is not None and interval > 0:
        before = _sum_counter(prev, "repro_service_requests_total")
        rate = max(resolved - before, 0.0) / interval
    outcomes = _labeled(snapshot, "repro_service_requests_total")
    outcome_bits = []
    for labels, value in sorted(outcomes.items()):
        if not value:
            continue
        status = dict(labels).get("outcome", "?")
        outcome_bits.append(f"{status}={int(value)}")
    submitted = _sum_counter(snapshot,
                             "repro_service_requests_submitted_total")
    inflight = max(submitted - resolved, 0.0)
    depth = _sum_counter(snapshot, "repro_service_queue_depth")
    lines = [
        "repro top — derived-field service",
        f"resolved: {int(resolved)}"
        + (f"  ({rate:.1f} rps)" if rate is not None else "")
        + f"  in-flight: {int(inflight)}  queue: {int(depth)}",
        "outcomes: " + (" ".join(outcome_bits) or "(none)"),
        "",
        "latency (from histogram buckets):",
        *_latency_lines(snapshot),
        "",
        "slo:",
        *_slo_lines(snapshot),
    ]
    return "\n".join(lines)


def fetch_snapshot(url: str, timeout: float = 5.0) -> dict:
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return json.loads(resp.read().decode("utf-8"))


def run_top(url: str, *, interval: float = 2.0, once: bool = False,
            iterations: Optional[int] = None, out=None) -> int:
    """Poll ``url`` (a ``/metrics.json`` endpoint) and render frames.

    ``once`` prints a single frame and exits (CI / smoke tests);
    ``iterations`` bounds the loop for tests.  Returns an exit code.
    """
    import sys
    out = sys.stdout if out is None else out
    if not url.endswith("/metrics.json"):
        url = url.rstrip("/") + "/metrics.json"
    prev = None
    count = 0
    while True:
        try:
            snapshot = fetch_snapshot(url)
        except OSError as exc:
            print(f"repro top: cannot reach {url}: {exc}", file=out)
            return 1
        frame = render_top(snapshot, prev, interval)
        if not once and out.isatty():
            out.write("\x1b[2J\x1b[H")
        out.write(frame + "\n")
        out.flush()
        count += 1
        if once or (iterations is not None and count >= iterations):
            return 0
        prev = snapshot
        time.sleep(interval)
