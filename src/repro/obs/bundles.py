"""Debug bundles: self-contained on-disk captures of anomalous requests.

When the observability manager decides a request is worth keeping —
it failed, missed its deadline, was cancelled, fell back from codegen,
or landed above the rolling p99 outlier threshold — the
:class:`BundleWriter` dumps everything the flight recorder, metrics
registry, and structured log hold about that one request into a
directory:

    <root>/0007-deadline-miss-c3f1a2b9/
        manifest.json   trigger, ids, status, plan, device digest
        trace.json      Chrome trace reconstructed from the ring
        report.json     ExecutionReport.to_json() (null if none)
        plan.json       plan key, cache disposition, generated source
        metrics.json    full registry snapshot at capture time
        log.jsonl       structured-log slice for the trace + context

Everything in the bundle cross-references by ``trace_id``, so
``chrome://tracing`` lanes, report counters, and log lines line up.
The writer is bounded (``max_bundles``); beyond the cap it counts
skips instead of filling the disk.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Optional

from ..trace.chrome import chrome_trace_events

__all__ = ["BundleWriter", "BUNDLE_SCHEMA"]

BUNDLE_SCHEMA = "repro-debug-bundle-v1"
DEFAULT_MAX_BUNDLES = 64

# Everything the manager may trigger on.
TRIGGERS = ("failure", "deadline-miss", "cancellation",
            "codegen-fallback", "latency-outlier")


class BundleWriter:
    """Writes bounded per-request debug bundles under one root dir."""

    def __init__(self, root, *, max_bundles: int = DEFAULT_MAX_BUNDLES):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_bundles = max_bundles
        self._lock = threading.Lock()
        self._seq = 0
        self.written = 0
        self.skipped = 0

    # -- write path ----------------------------------------------------------

    def write(self, *, trigger: str, record, request=None, report=None,
              recorder=None, registry=None, logger=None,
              reason: Optional[str] = None) -> Optional[Path]:
        """Dump one bundle; returns its directory (None when over the
        cap or the record is missing).  Exceptions do not escape — a
        broken bundle write must never take down request resolution."""
        with self._lock:
            if self.written >= self.max_bundles:
                self.skipped += 1
                return None
            self._seq += 1
            seq = self._seq
        trace_id = getattr(record, "trace_id", None)
        stem = f"{seq:04d}-{trigger}-{(trace_id or 'untraced')[:8]}"
        bundle = self.root / stem
        try:
            bundle.mkdir(parents=True, exist_ok=True)
            self._write_manifest(bundle, trigger, record, request,
                                 report, reason)
            self._write_trace(bundle, record, recorder)
            self._write_json(bundle / "report.json",
                             None if report is None else report.to_json())
            self._write_json(bundle / "plan.json",
                             None if getattr(record, "plan", None) is None
                             else record.plan.to_json())
            if registry is not None:
                self._write_json(bundle / "metrics.json",
                                 registry.snapshot())
            if logger is not None:
                lines = logger.slice_for(trace_id)
                with open(bundle / "log.jsonl", "w") as fh:
                    for line in lines:
                        fh.write(json.dumps(line, default=str) + "\n")
        except Exception:
            with self._lock:
                self.skipped += 1
            return None
        with self._lock:
            self.written += 1
        return bundle

    def _write_manifest(self, bundle: Path, trigger: str, record,
                        request, report, reason) -> None:
        manifest = {
            "schema": BUNDLE_SCHEMA,
            "created_at": time.time(),
            "trigger": trigger,
            "reason": reason,
            "trace_id": getattr(record, "trace_id", None),
            "request_id": getattr(record, "request_id", None),
            "expression": getattr(record, "expression", None),
            "status": getattr(record, "status", None),
            "device": getattr(record, "device", None),
            "latency_s": getattr(record, "latency_s", None),
            "plan": (None if getattr(record, "plan", None) is None
                     else record.plan.to_json()),
            "device_digest": (record.device_digest()
                              if hasattr(record, "device_digest")
                              else {}),
            "dropped_spans": getattr(record, "dropped_spans", 0),
            "dropped_device_batches": getattr(record,
                                              "dropped_batches", 0),
            "files": ["manifest.json", "trace.json", "report.json",
                      "plan.json", "metrics.json", "log.jsonl"],
        }
        self._write_json(bundle / "manifest.json", manifest)

    def _write_trace(self, bundle: Path, record, recorder) -> None:
        if recorder is not None and hasattr(recorder, "trace_view"):
            view = recorder.trace_view(record)
        else:
            view = record
        events = chrome_trace_events(view)
        self._write_json(bundle / "trace.json",
                         {"traceEvents": events,
                          "displayTimeUnit": "ms"})

    @staticmethod
    def _write_json(path: Path, payload) -> None:
        with open(path, "w") as fh:
            json.dump(payload, fh, indent=2, default=str)
            fh.write("\n")

    # -- read side (``/debugz``) ---------------------------------------------

    def index(self) -> "list[dict]":
        """Manifests of every bundle under the root, oldest first."""
        out = []
        for manifest_path in sorted(self.root.glob("*/manifest.json")):
            try:
                with open(manifest_path) as fh:
                    manifest = json.load(fh)
            except (OSError, ValueError):
                continue
            manifest["path"] = str(manifest_path.parent)
            out.append(manifest)
        return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "root": str(self.root),
                "max_bundles": self.max_bundles,
                "written": self.written,
                "skipped": self.skipped,
            }
