"""The observability manager: always-on capture, tail-sampled keeps.

:class:`Observability` is the service-side coordinator.  The service
installs its :class:`~repro.obs.FlightRecorder` as the tracer (so every
request records passively) and calls :meth:`on_request_done` from its
resolution hook.  The manager then:

1. feeds the request into the :class:`~repro.obs.SloTracker` (latency
   windows, error burn rate, tail-outlier verdict);
2. enriches the sealed flight-recorder record with the request's
   terminal state (id, expression, status, device, latency);
3. decides whether this request is *anomalous* — and if so, and a
   :class:`~repro.obs.BundleWriter` is attached, dumps a debug bundle.

Trigger rules (tail sampling — a healthy request writes nothing):

========================  ============================================
trigger                   condition
========================  ============================================
``failure``               terminal status ``failed``
``deadline-miss``         terminal status ``timed_out``
``cancellation``          terminal status ``cancelled``
``codegen-fallback``      served, but the report's codegen disposition
                          is ``interpreter-fallback``
``latency-outlier``       served, latency above ``outlier_factor`` x
                          the expression's rolling p99 (post-warmup)
========================  ============================================

This module deliberately never imports ``repro.service`` — requests are
classified through their ``status.value`` strings and plain attributes,
keeping ``repro.obs`` a leaf the service layer depends on, not a cycle.
"""

from __future__ import annotations

from typing import Optional

from .bundles import BundleWriter
from .log import NULL_LOGGER, get_logger
from .recorder import FlightRecorder
from .slo import SloTracker

__all__ = ["Observability"]

# status.value -> bundle trigger for terminal failures.
_STATUS_TRIGGERS = {
    "failed": "failure",
    "timed_out": "deadline-miss",
    "cancelled": "cancellation",
}


class Observability:
    """Bundle of recorder + SLO tracker + structured log + bundle writer."""

    def __init__(self, *, recorder: Optional[FlightRecorder] = None,
                 slo: Optional[SloTracker] = None,
                 bundle_dir=None, max_bundles: Optional[int] = None,
                 logger=None, retain_trace: bool = False):
        self.recorder = (FlightRecorder(retain=retain_trace)
                         if recorder is None else recorder)
        self.slo = SloTracker() if slo is None else slo
        self.logger = get_logger() if logger is None else logger
        self._registry = None
        self.bundles: Optional[BundleWriter] = None
        if bundle_dir is not None:
            kwargs = {} if max_bundles is None \
                else {"max_bundles": max_bundles}
            self.bundles = BundleWriter(bundle_dir, **kwargs)

    def bind_registry(self, registry) -> None:
        """Attach the service's metrics registry: the SLO tracker
        publishes its ``repro_slo_*`` families there, and bundles
        snapshot it at capture time."""
        self._registry = registry
        self.slo.bind_registry(registry)

    # -- the resolution hook -------------------------------------------------

    def on_request_done(self, request) -> Optional[str]:
        """Observe one resolved request; returns the bundle trigger that
        fired (None for a healthy request).  Never raises — this runs on
        the dispatcher/worker resolution path."""
        try:
            return self._observe(request)
        except Exception:
            logger = self.logger or NULL_LOGGER
            try:
                logger.error("obs.observe_failed",
                             request=getattr(request, "id", None))
            except Exception:
                pass
            return None

    def _observe(self, request) -> Optional[str]:
        status = getattr(request.status, "value", str(request.status))
        latency = request.latency
        expression = getattr(request, "expression", None) or "?"
        report = getattr(request, "report", None)
        ok = status == "served"
        verdict = None
        if status in ("served", "failed", "timed_out") \
                and latency is not None:
            # Rejected/cancelled requests never ran; they are neither
            # tail latency nor error-budget burn.
            verdict = self.slo.observe(expression, latency, ok=ok)
        record = self.recorder.attach_result(
            request.trace_id,
            request_id=getattr(request, "id", None),
            expression=expression, status=status,
            device=getattr(request, "device", None),
            latency_s=latency)
        trigger, reason = self._classify(status, report, verdict)
        if trigger is None:
            return None
        self.logger.log(
            "warning" if trigger == "latency-outlier" else "error",
            "obs.anomaly", trigger=trigger, reason=reason,
            trace_id=request.trace_id,
            request=getattr(request, "id", None),
            expression=expression, status=status,
            device=getattr(request, "device", None),
            latency_s=latency)
        if self.bundles is not None and record is not None:
            path = self.bundles.write(
                trigger=trigger, record=record, request=request,
                report=report, recorder=self.recorder,
                registry=self._registry,
                logger=self.logger, reason=reason)
            if path is not None:
                self.logger.info("obs.bundle_written", trigger=trigger,
                                 trace_id=request.trace_id,
                                 path=str(path))
        return trigger

    @staticmethod
    def _trigger_for_report(report) -> bool:
        codegen = getattr(report, "codegen", None)
        return (codegen is not None
                and codegen.disposition == "interpreter-fallback")

    def _classify(self, status: str, report, verdict):
        trigger = _STATUS_TRIGGERS.get(status)
        if trigger is not None:
            return trigger, f"terminal status {status}"
        if status != "served":
            return None, None          # rejected: admission, not anomaly
        if self._trigger_for_report(report):
            return ("codegen-fallback",
                    "compiled backend fell back to the interpreter plan")
        if verdict is not None and verdict.outlier:
            return ("latency-outlier",
                    f"latency above {self.slo.outlier_factor:g}x rolling "
                    f"p99 ({verdict.p99_s:.6f}s)")
        return None, None

    # -- surfaces ------------------------------------------------------------

    def health(self) -> dict:
        payload = self.slo.health()
        payload["recorder"] = self.recorder.stats()
        if self.bundles is not None:
            payload["bundles"] = self.bundles.stats()
        return payload

    def debug_index(self) -> dict:
        """The ``/debugz`` payload: bundle manifests plus the recorder's
        most recent sealed records."""
        recent = [record.summary()
                  for record in self.recorder.records()[-32:]]
        return {
            "recorder": self.recorder.stats(),
            "bundles": ([] if self.bundles is None
                        else self.bundles.index()),
            "bundle_stats": (None if self.bundles is None
                             else self.bundles.stats()),
            "recent_requests": recent,
        }

    def snapshot(self) -> dict:
        """Summary block for the service snapshot / load report."""
        out = {"recorder": self.recorder.stats(),
               "slo": self.slo.expression_summary(),
               "healthy": self.slo.healthy()}
        if self.bundles is not None:
            out["bundles"] = self.bundles.stats()
        return out
