"""SLO tracking: rolling per-expression latency and error-burn windows.

:class:`SloTracker` watches every resolved request and answers two
questions the aggregate metrics cannot:

* **is this request anomalous?** — a served request whose latency
  exceeds ``outlier_factor`` x the expression's rolling p99 (computed
  over a bounded sample window, refreshed periodically, active only
  after ``warmup`` observations) is a *tail outlier*, which is what
  tells the debug-bundle layer to keep its flight-recorder capture;
* **is the service healthy?** — failures and deadline misses burn the
  per-expression error budget (``1 - availability_objective``) over a
  sliding time window; when the burn rate exceeds ``burn_limit`` with
  enough volume to mean anything, ``/healthz`` flips to 503.

Everything is exposed as ``repro_slo_*`` families on the service's
metrics registry, so ``repro top`` and Prometheus see the same numbers
the health endpoint decides on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Optional

__all__ = ["SloTracker", "SloVerdict"]

DEFAULT_WINDOW = 512           # latency samples kept per expression
DEFAULT_WARMUP = 64            # observations before outlier checks arm
DEFAULT_REFRESH = 16           # recompute the cached p99 every N samples
DEFAULT_TIME_WINDOW_S = 60.0   # error burn-rate sliding window
DEFAULT_OBJECTIVE = 0.999      # availability objective (error budget 0.1%)
DEFAULT_BURN_LIMIT = 2.0       # burn > 2x budget -> unhealthy
DEFAULT_MIN_VOLUME = 20        # window observations before health can fail
DEFAULT_OUTLIER_FACTOR = 3.0   # latency > factor * p99 -> tail outlier


class SloVerdict:
    """What the tracker concluded about one observation."""

    __slots__ = ("outlier", "p99_s", "threshold_s", "burn_rate",
                 "error_ratio")

    def __init__(self, outlier: bool, p99_s: Optional[float],
                 threshold_s: Optional[float], burn_rate: float,
                 error_ratio: float):
        self.outlier = outlier
        self.p99_s = p99_s
        self.threshold_s = threshold_s
        self.burn_rate = burn_rate
        self.error_ratio = error_ratio


class _ExpressionSlo:
    """Rolling windows for one expression label."""

    __slots__ = ("latencies", "events", "count", "p99", "since_refresh",
                 "errors", "outliers")

    def __init__(self, window: int):
        self.latencies: "deque[float]" = deque(maxlen=window)
        self.events: "deque[tuple[float, bool]]" = deque()
        self.count = 0
        self.p99: Optional[float] = None
        self.since_refresh = 0
        self.errors = 0          # errors currently inside the window
        self.outliers = 0


class SloTracker:
    """Per-expression latency/error SLO windows (module docstring)."""

    def __init__(self, registry=None, *,
                 window: int = DEFAULT_WINDOW,
                 warmup: int = DEFAULT_WARMUP,
                 refresh_every: int = DEFAULT_REFRESH,
                 time_window_s: float = DEFAULT_TIME_WINDOW_S,
                 availability_objective: float = DEFAULT_OBJECTIVE,
                 burn_limit: float = DEFAULT_BURN_LIMIT,
                 min_volume: int = DEFAULT_MIN_VOLUME,
                 outlier_factor: float = DEFAULT_OUTLIER_FACTOR,
                 clock=time.monotonic):
        if not 0.0 < availability_objective < 1.0:
            raise ValueError("availability objective must be in (0, 1): "
                             f"{availability_objective}")
        self.window = window
        self.warmup = max(warmup, 2)
        self.refresh_every = max(refresh_every, 1)
        self.time_window_s = time_window_s
        self.objective = availability_objective
        self.error_budget = 1.0 - availability_objective
        self.burn_limit = burn_limit
        self.min_volume = min_volume
        self.outlier_factor = outlier_factor
        self._clock = clock
        self._lock = threading.Lock()
        self._expressions: "dict[str, _ExpressionSlo]" = {}
        self._instruments = None
        if registry is not None:
            self.bind_registry(registry)

    def bind_registry(self, registry) -> None:
        """Register the ``repro_slo_*`` families on ``registry``."""
        self._instruments = {
            "p99": registry.gauge(
                "repro_slo_latency_p99_seconds",
                "Rolling per-expression p99 of served-request latency",
                ("expression",)),
            "burn": registry.gauge(
                "repro_slo_error_burn_rate",
                "Error-budget burn rate over the sliding window "
                "(1.0 = burning exactly the budget)", ("expression",)),
            "outliers": registry.counter(
                "repro_slo_latency_outliers_total",
                "Served requests whose latency exceeded the rolling "
                "p99 outlier threshold", ("expression",)),
            "errors": registry.counter(
                "repro_slo_errors_total",
                "Requests that burned error budget (failed or "
                "timed out)", ("expression",)),
            "observed": registry.counter(
                "repro_slo_observations_total",
                "Requests observed by the SLO tracker", ("expression",)),
            "healthy": registry.gauge(
                "repro_slo_healthy",
                "1 while every expression's burn rate is within the "
                "limit, else 0"),
        }
        self._instruments["healthy"].set(1.0)

    # -- observation ---------------------------------------------------------

    def observe(self, expression: str, latency_s: float, *,
                ok: bool, now: Optional[float] = None) -> SloVerdict:
        """Fold one resolved request in; returns the verdict."""
        now = self._clock() if now is None else now
        with self._lock:
            state = self._expressions.get(expression)
            if state is None:
                state = self._expressions[expression] \
                    = _ExpressionSlo(self.window)
            state.count += 1
            # Error burn window.
            state.events.append((now, ok))
            if not ok:
                state.errors += 1
            self._prune(state, now)
            total = len(state.events)
            error_ratio = state.errors / total if total else 0.0
            burn = error_ratio / self.error_budget
            # Latency window + outlier check (served requests only:
            # errored latencies describe the failure, not the tail).
            outlier = False
            threshold = None
            if ok:
                p99 = state.p99
                if p99 is not None and state.count > self.warmup:
                    threshold = p99 * self.outlier_factor
                    outlier = latency_s > threshold
                state.latencies.append(latency_s)
                state.since_refresh += 1
                if (state.p99 is None
                        or state.since_refresh >= self.refresh_every):
                    ordered = sorted(state.latencies)
                    rank = max(int(0.99 * len(ordered)) - 1, 0)
                    state.p99 = ordered[min(rank + 1,
                                            len(ordered) - 1)]
                    state.since_refresh = 0
                if outlier:
                    state.outliers += 1
            p99_out = state.p99
        inst = self._instruments
        if inst is not None:
            label = {"expression": expression}
            inst["observed"].labels(**label).inc()
            if p99_out is not None:
                inst["p99"].labels(**label).set(p99_out)
            inst["burn"].labels(**label).set(burn)
            if not ok:
                inst["errors"].labels(**label).inc()
            if outlier:
                inst["outliers"].labels(**label).inc()
            inst["healthy"].set(1.0 if self.healthy() else 0.0)
        return SloVerdict(outlier, p99_out, threshold, burn, error_ratio)

    def _prune(self, state: _ExpressionSlo, now: float) -> None:
        horizon = now - self.time_window_s
        events = state.events
        while events and events[0][0] < horizon:
            _, was_ok = events.popleft()
            if not was_ok:
                state.errors -= 1

    # -- health --------------------------------------------------------------

    def expression_summary(self, now: Optional[float] = None) -> dict:
        now = self._clock() if now is None else now
        out = {}
        with self._lock:
            for name, state in self._expressions.items():
                self._prune(state, now)
                total = len(state.events)
                ratio = state.errors / total if total else 0.0
                burn = ratio / self.error_budget
                out[name] = {
                    "observed": state.count,
                    "window_requests": total,
                    "window_errors": state.errors,
                    "error_ratio": ratio,
                    "burn_rate": burn,
                    "p99_s": state.p99,
                    "outliers": state.outliers,
                    "burning": (burn > self.burn_limit
                                and total >= self.min_volume),
                }
        return out

    def healthy(self) -> bool:
        return not any(row["burning"]
                       for row in self.expression_summary().values())

    def health(self) -> dict:
        """The ``/healthz`` payload: overall verdict plus per-expression
        windows and which expressions are burning."""
        expressions = self.expression_summary()
        burning = sorted(name for name, row in expressions.items()
                         if row["burning"])
        return {
            "healthy": not burning,
            "burning": burning,
            "objective": self.objective,
            "burn_limit": self.burn_limit,
            "window_seconds": self.time_window_s,
            "expressions": expressions,
        }
