"""Correlated structured logging: JSON-lines records with trace ids.

:class:`StructuredLogger` is the process-wide event log the engine,
strategies, codegen backend, workers, and dispatcher write through.
Every record is a flat dict — ``ts``, ``level``, ``event``, plus
whatever fields the call site supplies (``trace_id`` / ``span_id`` /
``device`` / ``plan_key`` by convention) — so one ``grep trace_id``
joins log lines to trace spans, bundle manifests, and report JSON.

Records land on a bounded in-memory ring (debug bundles slice it by
trace id) and, when a stream sink is attached (``serve`` with
``--debug-bundle-dir`` attaches ``<dir>/service.log.jsonl``), are also
written out as one JSON object per line.

Level gating is a single integer compare before any dict is built, so
warm-path ``debug(...)`` calls under the default ``info`` level cost a
method call and a comparison — nothing else.  ``tracer=`` lets a call
site stamp the calling thread's current span without knowing its ids.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Optional

__all__ = ["LEVELS", "NULL_LOGGER", "StructuredLogger", "get_logger",
           "set_logger"]

LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}
DEFAULT_CAPACITY = 2048


class StructuredLogger:
    """Bounded ring of structured records, with an optional line sink."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 level: str = "info", stream=None):
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}; "
                             f"choose from {sorted(LEVELS)}")
        self._level_no = LEVELS[level]
        self.level = level
        self._ring: "deque[dict]" = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._stream = stream
        self.emitted_total = 0

    # -- configuration -------------------------------------------------------

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(f"unknown log level {level!r}")
        self.level = level
        self._level_no = LEVELS[level]

    def set_stream(self, stream) -> None:
        """Attach (or detach, with ``None``) a JSON-lines sink.  The
        stream must be an open text file-like; the logger flushes after
        every record so a crash loses nothing."""
        with self._lock:
            self._stream = stream

    # -- write path ----------------------------------------------------------

    def log(self, level: str, event: str, *, tracer=None,
            **fields) -> Optional[dict]:
        """Emit one record; returns it (None when gated off)."""
        if LEVELS[level] < self._level_no:
            return None
        record = {"ts": time.time(), "level": level, "event": event}
        if tracer is not None:
            span = tracer.current()
            if span is not None and span.trace_id is not None:
                record["trace_id"] = span.trace_id
                record["span_id"] = span.span_id
        for key, value in fields.items():
            if value is not None:
                record[key] = value
        with self._lock:
            self._ring.append(record)
            self.emitted_total += 1
            stream = self._stream
            if stream is not None:
                try:
                    stream.write(json.dumps(record, default=str) + "\n")
                    stream.flush()
                except Exception:
                    self._stream = None     # sink died; keep serving
        return record

    @property
    def debug_enabled(self) -> bool:
        """Cheap pre-check for warm-path call sites whose *arguments*
        are expensive to build (``str(plan_key)`` etc.)."""
        return self._level_no <= 10

    def debug(self, event: str, **fields) -> Optional[dict]:
        if self._level_no > 10:      # fast path: no kwargs dict walk
            return None
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields) -> Optional[dict]:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields) -> Optional[dict]:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields) -> Optional[dict]:
        return self.log("error", event, **fields)

    # -- read path -----------------------------------------------------------

    def tail(self, n: int = 200,
             trace_id: Optional[str] = None) -> "list[dict]":
        """The most recent ``n`` records, optionally only those stamped
        with ``trace_id``."""
        with self._lock:
            records = list(self._ring)
        if trace_id is not None:
            records = [r for r in records
                       if r.get("trace_id") == trace_id]
        return records[-n:]

    def slice_for(self, trace_id: Optional[str],
                  context: int = 50) -> "list[dict]":
        """The bundle's log slice: every record for ``trace_id`` plus
        the last ``context`` records of any trace (what else the
        process was doing around the anomaly), de-duplicated and in
        arrival order."""
        with self._lock:
            records = list(self._ring)
        recent = records[-context:] if context else []
        if trace_id is None:
            return recent
        matched = [r for r in records if r.get("trace_id") == trace_id]
        seen = {id(r) for r in matched}
        merged = matched + [r for r in recent if id(r) not in seen]
        merged.sort(key=lambda r: r.get("ts", 0.0))
        return merged


class _NullLogger(StructuredLogger):
    """Drops everything (gating compare only)."""

    def __init__(self):
        super().__init__(capacity=1, level="error")
        self._level_no = 10 ** 9

    def log(self, level, event, *, tracer=None, **fields):
        return None


NULL_LOGGER = _NullLogger()

_default_logger = StructuredLogger()
_default_lock = threading.Lock()


def get_logger() -> StructuredLogger:
    """The process-wide structured logger call sites write through."""
    return _default_logger


def set_logger(logger: StructuredLogger) -> StructuredLogger:
    """Install ``logger`` as the process default; returns the previous
    one (tests swap in a fresh logger and restore after)."""
    global _default_logger
    with _default_lock:
        previous = _default_logger
        _default_logger = logger
    return previous
