"""``repro.obs`` — always-on observability for the serving stack.

Four cooperating pieces (see DESIGN.md §12):

* :class:`FlightRecorder` — a bounded :class:`~repro.trace.Tracer`
  subclass that passively summarizes *every* request into a ring of
  :class:`RequestRecord` objects, even with ``--trace-dir`` off;
* :class:`StructuredLogger` — JSON-lines records stamped with
  ``trace_id``/``span_id``, ring-buffered and optionally streamed;
* :class:`SloTracker` — per-expression rolling p99 / error-burn-rate
  windows behind ``repro_slo_*`` metrics, ``/healthz``, and the
  tail-outlier trigger;
* :class:`BundleWriter` + :class:`Observability` — tail-sampled debug
  bundles: anomalous requests (failure, deadline miss, cancellation,
  codegen fallback, latency outlier) dump a self-contained directory
  of trace + report + plan + metrics + log slice.
"""

from .bundles import BUNDLE_SCHEMA, BundleWriter
from .log import LEVELS, NULL_LOGGER, StructuredLogger, get_logger, \
    set_logger
from .manager import Observability
from .recorder import DeviceEventBatch, FlightRecorder, PlanNote, \
    RequestRecord, SpanSummary
from .slo import SloTracker, SloVerdict

__all__ = [
    "BUNDLE_SCHEMA",
    "BundleWriter",
    "DeviceEventBatch",
    "FlightRecorder",
    "LEVELS",
    "NULL_LOGGER",
    "Observability",
    "PlanNote",
    "RequestRecord",
    "SloTracker",
    "SloVerdict",
    "SpanSummary",
    "StructuredLogger",
    "get_logger",
    "set_logger",
]
