"""The flight recorder: always-on, bounded capture of every request.

:class:`FlightRecorder` is a :class:`~repro.trace.Tracer` subclass the
service installs by default, so every instrumented layer — engine
phases, strategies, workers, the dispatcher — flows into it with no
call-site changes.  Unlike the full tracer (unbounded lists, meant for
one explicitly-traced run), the recorder *summarizes as it goes*:

* each finished span folds into a small per-trace accumulator as a
  :class:`SpanSummary` (a slots object carrying exactly the fields the
  Chrome exporter reads);
* bridged device events are kept as **raw event batches** — a tuple
  copy of the environment's event list plus its anchor/lane — and only
  materialized into :class:`~repro.trace.DeviceSpan` lanes when a debug
  bundle or ``/debugz`` actually asks (the warm path pays one tuple
  copy, not one dataclass per event);
* when a trace's **root** span finishes, the accumulator seals into a
  :class:`RequestRecord` on a fixed-capacity ring; the oldest record
  falls off.  Caps on spans/events per trace make a single pathological
  request unable to blow the budget (overflow is counted, not kept).

``retain=True`` additionally keeps the base tracer's full unbounded
record lists, so one object can serve as both the ``--trace-dir``
tracer and the recorder.  The measured warm-path cost of the default
(non-retain) recorder is gated at <= 2% of warm fusion wall time in
``benchmarks/regress.py`` (``--check-recorder-overhead``).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from typing import Iterable, Optional

from ..trace.tracer import DeviceSpan, Span, Tracer

__all__ = ["DeviceEventBatch", "FlightRecorder", "PlanNote",
           "RequestRecord", "SpanSummary"]

DEFAULT_CAPACITY = 256
MAX_SPANS_PER_TRACE = 128
MAX_DEVICE_BATCHES_PER_TRACE = 64


class SpanSummary:
    """A finished span, reduced to what exporters and bundles need.

    Field-compatible with :class:`~repro.trace.Span` as far as
    :func:`~repro.trace.chrome_trace_events` is concerned (name,
    category, thread, ids, times, attrs, duration).
    """

    __slots__ = ("name", "category", "thread", "trace_id", "span_id",
                 "parent_id", "start_time", "end_time", "attrs")

    @property
    def duration(self) -> float:
        if self.start_time is None or self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    @classmethod
    def of(cls, span: Span) -> "SpanSummary":
        s = cls.__new__(cls)
        s.name = span.name
        s.category = span.category
        s.thread = span.thread
        s.trace_id = span.trace_id
        s.span_id = span.span_id
        s.parent_id = span.parent_id
        s.start_time = span.start_time
        s.end_time = span.end_time
        s.attrs = span.attrs
        return s

    def __repr__(self) -> str:
        return f"SpanSummary({self.name!r}, trace={self.trace_id})"


class DeviceEventBatch:
    """One bridged run's device events, kept raw until someone looks."""

    __slots__ = ("device", "lane", "anchor", "trace_id", "events")

    def __init__(self, device: str, lane: str, anchor: float,
                 trace_id: Optional[str], events: tuple):
        self.device = device
        self.lane = lane
        self.anchor = anchor
        self.trace_id = trace_id
        self.events = events

    def device_spans(self) -> "list[DeviceSpan]":
        """Materialize the batch into trace device lanes (bundle time)."""
        out = []
        for event in self.events:
            category = event.kind.value
            out.append(DeviceSpan(
                device=self.device,
                lane=(f"{self.lane}/{category}" if self.lane
                      else category),
                name=event.name or category,
                category=category,
                start=self.anchor + (event.ts_seconds or 0.0),
                duration=event.sim_seconds,
                nbytes=event.nbytes,
                trace_id=self.trace_id,
            ))
        return out


class PlanNote:
    """What plan one keyed execution ran (for bundles / ``/debugz``)."""

    __slots__ = ("key", "disposition", "sweep_source")

    def __init__(self, key, disposition: Optional[str],
                 sweep_source: Optional[str]):
        self.key = key
        self.disposition = disposition
        self.sweep_source = sweep_source

    def to_json(self) -> dict:
        return {
            "key": None if self.key is None else str(self.key),
            "disposition": self.disposition,
            "sweep_source": self.sweep_source,
        }


class _TraceAccum:
    """The open (root span not yet finished) side of one trace."""

    __slots__ = ("spans", "batches", "dropped_spans", "dropped_batches",
                 "plan")

    def __init__(self):
        self.spans: "list[SpanSummary]" = []
        self.batches: "list[DeviceEventBatch]" = []
        self.dropped_spans = 0
        self.dropped_batches = 0
        self.plan: Optional[PlanNote] = None


class RequestRecord:
    """One sealed trace on the recorder ring."""

    __slots__ = ("trace_id", "spans", "batches", "dropped_spans",
                 "dropped_batches", "plan", "sealed_at", "request_id",
                 "expression", "status", "device", "latency_s")

    def __init__(self, trace_id: Optional[str], accum: _TraceAccum,
                 sealed_at: float):
        self.trace_id = trace_id
        self.spans = accum.spans
        self.batches = accum.batches
        self.dropped_spans = accum.dropped_spans
        self.dropped_batches = accum.dropped_batches
        self.plan = accum.plan
        self.sealed_at = sealed_at
        # Result enrichment (attach_result) — None until the serving
        # layer reports the request's terminal state.
        self.request_id: Optional[int] = None
        self.expression: Optional[str] = None
        self.status: Optional[str] = None
        self.device: Optional[str] = None
        self.latency_s: Optional[float] = None

    @property
    def device_spans(self) -> "list[DeviceSpan]":
        spans: "list[DeviceSpan]" = []
        for batch in self.batches:
            spans.extend(batch.device_spans())
        return spans

    def device_digest(self) -> dict:
        """Per-device, per-category event counts/seconds/bytes — the
        cheap summary ``/debugz`` shows and bundles cross-check against
        the request's :class:`ExecutionReport` counters."""
        digest: dict = {}
        for batch in self.batches:
            lanes = digest.setdefault(batch.device, {})
            for event in batch.events:
                row = lanes.setdefault(event.kind.value, {
                    "count": 0, "modeled_seconds": 0.0, "bytes": 0})
                row["count"] += 1
                row["modeled_seconds"] += event.sim_seconds
                row["bytes"] += event.nbytes
        return digest

    def summary(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request": self.request_id,
            "expression": self.expression,
            "status": self.status,
            "device": self.device,
            "latency_s": self.latency_s,
            "spans": len(self.spans),
            "device_events": sum(len(b.events) for b in self.batches),
            "dropped_spans": self.dropped_spans,
            "dropped_device_batches": self.dropped_batches,
            "plan": None if self.plan is None else self.plan.to_json(),
        }


class _RecordView:
    """Adapter giving one :class:`RequestRecord` the read surface the
    Chrome exporter expects of a tracer (spans/device_spans/counters)."""

    __slots__ = ("spans", "device_spans", "counters")

    def __init__(self, record: RequestRecord):
        self.spans = tuple(record.spans)
        self.device_spans = tuple(record.device_spans)
        self.counters = ()


class FlightRecorder(Tracer):
    """Bounded, always-on request recorder (module docstring)."""

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY, *,
                 max_spans_per_trace: int = MAX_SPANS_PER_TRACE,
                 max_device_batches_per_trace:
                 int = MAX_DEVICE_BATCHES_PER_TRACE,
                 retain: bool = False, clock=time.perf_counter):
        super().__init__(clock)
        if capacity < 1:
            raise ValueError(f"recorder capacity must be >= 1: {capacity}")
        self.capacity = capacity
        self.retain = retain
        self.max_spans_per_trace = max_spans_per_trace
        self.max_device_batches_per_trace = max_device_batches_per_trace
        self._rlock = threading.Lock()
        self._open: "OrderedDict[str, _TraceAccum]" = OrderedDict()
        self._ring: "deque[RequestRecord]" = deque()
        self._by_trace: "dict[str, RequestRecord]" = {}
        self.sealed_total = 0
        self.dropped_traces = 0          # abandoned accums evicted

    # -- capture (warm path) -------------------------------------------------

    def _record(self, span: Span) -> None:
        if self.retain:
            with self._lock:
                self._spans.append(span)
        trace_id = span.trace_id
        if trace_id is None:
            return
        summary = SpanSummary.of(span)
        with self._rlock:
            accum = self._accum(trace_id)
            if len(accum.spans) < self.max_spans_per_trace:
                accum.spans.append(summary)
            else:
                accum.dropped_spans += 1
            if span.parent_id is None:
                self._seal(trace_id, accum)

    def _accum(self, trace_id: str) -> _TraceAccum:
        """Get (or open) the accumulator for a live trace.  Caller holds
        ``_rlock``."""
        accum = self._open.get(trace_id)
        if accum is None:
            accum = _TraceAccum()
            self._open[trace_id] = accum
            # Abandoned-trace bound: a trace whose root never finishes
            # (crashed thread, leaked span) must not pin its
            # accumulator forever.
            while len(self._open) > 4 * self.capacity:
                self._open.popitem(last=False)
                self.dropped_traces += 1
        return accum

    def _seal(self, trace_id: str, accum: _TraceAccum) -> None:
        """Root finished: move the accumulator onto the ring.  Caller
        holds ``_rlock``."""
        self._open.pop(trace_id, None)
        record = RequestRecord(trace_id, accum, time.time())
        if len(self._ring) >= self.capacity:
            old = self._ring.popleft()
            if self._by_trace.get(old.trace_id) is old:
                del self._by_trace[old.trace_id]
        self._ring.append(record)
        self._by_trace[trace_id] = record
        self.sealed_total += 1

    def add_device_events(self, device: str, events: Iterable, *,
                          anchor: Optional[float] = None, lane: str = "",
                          trace_id: Optional[str] = None) -> int:
        if anchor is None:
            anchor = self.now()
        if trace_id is None:
            span = self.current()
            trace_id = span.trace_id if span is not None else None
        batch = DeviceEventBatch(device, lane, anchor, trace_id,
                                 tuple(events))
        if self.retain:
            spans = batch.device_spans()
            with self._lock:
                self._device_spans.extend(spans)
        if trace_id is not None:
            with self._rlock:
                record = self._by_trace.get(trace_id)
                if record is not None:
                    # Late bridge after the root sealed (defensive):
                    # attach to the sealed record so lanes stay whole.
                    if len(record.batches) \
                            < self.max_device_batches_per_trace:
                        record.batches.append(batch)
                else:
                    accum = self._accum(trace_id)
                    if len(accum.batches) \
                            < self.max_device_batches_per_trace:
                        accum.batches.append(batch)
                    else:
                        accum.dropped_batches += 1
        return len(batch.events)

    def counter(self, name: str, value: float) -> None:
        # Counter samples are high-frequency (queue depth on every
        # offer/take); the bounded recorder drops them — the metrics
        # registry already keeps the aggregate — unless this instance
        # also serves as the full retained tracer.
        if self.retain:
            super().counter(name, value)

    def note_plan(self, key, plan=None, disposition: Optional[str] = None,
                  ) -> None:
        span = self.current()
        trace_id = span.trace_id if span is not None else None
        if trace_id is None:
            return
        note = PlanNote(key, disposition,
                        getattr(plan, "sweep_source", None))
        with self._rlock:
            record = self._by_trace.get(trace_id)
            if record is not None:
                record.plan = note
            else:
                self._accum(trace_id).plan = note

    # -- read side -----------------------------------------------------------

    def records(self) -> "tuple[RequestRecord, ...]":
        """Sealed records, oldest first."""
        with self._rlock:
            return tuple(self._ring)

    def record_for(self, trace_id: Optional[str],
                   ) -> Optional[RequestRecord]:
        if trace_id is None:
            return None
        with self._rlock:
            return self._by_trace.get(trace_id)

    def attach_result(self, trace_id: Optional[str], *,
                      request_id: Optional[int] = None,
                      expression: Optional[str] = None,
                      status: Optional[str] = None,
                      device: Optional[str] = None,
                      latency_s: Optional[float] = None,
                      ) -> Optional[RequestRecord]:
        """Enrich the sealed record for ``trace_id`` with the request's
        terminal state; returns it (None when the trace never recorded,
        e.g. the service was built with a different tracer)."""
        record = self.record_for(trace_id)
        if record is None:
            return None
        record.request_id = request_id
        record.expression = expression
        record.status = status
        record.device = device
        record.latency_s = latency_s
        return record

    def trace_view(self, record: RequestRecord) -> _RecordView:
        """A tracer-shaped view of one record for the Chrome exporter."""
        return _RecordView(record)

    def stats(self) -> dict:
        with self._rlock:
            return {
                "capacity": self.capacity,
                "records": len(self._ring),
                "open_traces": len(self._open),
                "sealed_total": self.sealed_total,
                "dropped_traces": self.dropped_traces,
            }
