"""Command-line interface: ``python -m repro <command>``.

The subcommands mirror the ways the paper's framework is used:

* ``derive`` — evaluate an expression over a synthetic workload (or show
  its generated OpenCL) on a chosen device/strategy;
* ``sweep`` — regenerate the paper's evaluation tables and figure series;
* ``render`` — run the in-situ pipeline and write a pseudocolor PPM image
  of a derived-field slice (the Fig 7 visualization);
* ``plan`` — dry-run one configuration at full paper scale and report its
  memory requirement and modeled runtime;
* ``serve`` — run the concurrent multi-device service under a closed-loop
  synthetic load and print the latency/throughput/utilization report.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .analysis.vortex import EXPRESSION_INPUTS, EXPRESSIONS
from .clsim import GIB
from .errors import ReproError
from .experiments import (format_fig_series, format_table1, format_table2,
                          gpu_success_rate, run_case, run_sweep)
from .host.engine import DerivedFieldEngine
from .workloads import SubGrid, TABLE1_SUBGRIDS, make_fields, make_shapes

__all__ = ["main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--device", choices=("cpu", "gpu"), default="cpu")
    parser.add_argument("--strategy",
                        choices=("roundtrip", "staged", "fusion",
                                 "streaming", "multi-device"),
                        default="fusion")
    parser.add_argument("--grid", default="16x16x32",
                        help="cell dims NIxNJxNK of the synthetic "
                             "workload (default 16x16x32)")
    parser.add_argument("--seed", type=int, default=0)


def _add_backend(parser: argparse.ArgumentParser) -> None:
    from .codegen import default_plan_cache_dir
    parser.add_argument(
        "--backend",
        choices=("vectorized", "interpreted", "compiled"),
        default=None,
        help="executor backend (default: compiled for cached fusion, "
             "vectorized otherwise)")
    parser.add_argument(
        "--plan-cache-dir", metavar="DIR", nargs="?",
        const=str(default_plan_cache_dir()), default=None,
        help="persist compiled plans on disk so a restarted process "
             "warms without recompiling (bare flag uses "
             f"{default_plan_cache_dir()})")


def _parse_grid(text: str) -> SubGrid:
    try:
        ni, nj, nk = (int(p) for p in text.lower().split("x"))
        return SubGrid(ni, nj, nk)
    except ValueError:
        raise SystemExit(f"bad --grid {text!r}; expected e.g. 16x16x32")


def _expression(args) -> str:
    if args.expression in EXPRESSIONS:
        return EXPRESSIONS[args.expression]
    return args.expression


def cmd_derive(args) -> int:
    grid = _parse_grid(args.grid)
    fields = make_fields(grid, seed=args.seed)
    tracer = None
    if args.trace or args.profile:
        from .trace import Tracer
        tracer = Tracer()
    engine = DerivedFieldEngine(device=args.device, strategy=args.strategy,
                                backend=args.backend,
                                plan_cache_dir=args.plan_cache_dir,
                                tracer=tracer)
    compiled = engine.compile(_expression(args))
    inputs = {k: fields[k] for k in compiled.required_inputs}
    report = engine.execute(compiled, inputs)
    if args.trace:
        from .trace import write_chrome_trace
        n_events = write_chrome_trace(tracer, args.trace)
        print(f"wrote {n_events} trace events to {args.trace} "
              "(open in chrome://tracing or Perfetto)")
    if args.profile:
        from .trace import format_profile
        print(format_profile(tracer))
    if args.metrics:
        from .metrics import get_registry, write_metrics_json
        snapshot = write_metrics_json(args.metrics, get_registry())
        print(f"wrote {len(snapshot)} metric families to {args.metrics}")
    out = report.output
    print(f"derived {compiled.result_name!r} over {grid.n_cells:,} cells "
          f"on {args.device} / {report.strategy}")
    print(f"  range:   [{out.min():.6g}, {out.max():.6g}]  "
          f"mean {out.mean():.6g}")
    print(f"  events:  Dev-W={report.counts.dev_writes} "
          f"Dev-R={report.counts.dev_reads} "
          f"K-Exe={report.counts.kernel_execs}")
    print(f"  modeled: {report.timing.total:.6f} s   "
          f"device memory {report.mem_high_water:,} B")
    if args.verbose:
        if report.codegen is not None:
            cg = report.codegen
            print(f"  executor:   {cg.backend} ({cg.disposition})")
        else:
            print(f"  executor:   {engine.backend}")
        if report.cache is not None:
            c = report.cache
            print(f"  plan cache: {'hit' if c.hit else 'miss'} "
                  f"(hits={c.hits} misses={c.misses} "
                  f"evictions={c.evictions} size={c.size}/{c.maxsize})")
        if report.alloc is not None:
            a = report.alloc
            print(f"  allocator:  {a.total_allocations} reservations, "
                  f"{a.reused_allocations} reused from pool "
                  f"(hits={a.pool_hits} misses={a.pool_misses})")
            print(f"  pool:       {a.pooled_bytes:,} B parked, "
                  f"{a.live_bytes:,} B live, peak {a.peak_bytes:,} B")
    if args.show_kernels:
        for name, source in report.generated_sources.items():
            print(f"\n// ---- {name} ----\n{source}")
    return 0


def cmd_check(args) -> int:
    """Differentially validate an expression: the generated OpenCL,
    executed from source by the interpreter, must match the vectorized
    execution bit for bit."""
    import numpy as np
    grid = _parse_grid(args.grid)
    fields = make_fields(grid, seed=args.seed)
    text = _expression(args)
    fast = DerivedFieldEngine(device=args.device, strategy=args.strategy)
    slow = DerivedFieldEngine(device=args.device, strategy=args.strategy,
                              backend="interpreted")
    compiled = fast.compile(text)
    inputs = {k: fields[k] for k in compiled.required_inputs}
    report = fast.execute(compiled, inputs)
    interpreted = slow.derive(text, inputs)
    max_err = float(np.abs(report.output - interpreted).max())
    n_kernels = len(report.generated_sources)
    lines = sum(s.count("\n") for s in report.generated_sources.values())
    exact = max_err == 0.0
    print(f"expression:        {compiled.result_name!r} over "
          f"{grid.n_cells:,} cells ({args.strategy}/{args.device})")
    print(f"generated kernels: {n_kernels} ({lines} lines of OpenCL C)")
    print(f"max |vectorized - interpreted|: {max_err:.3e} "
          f"({'bit-exact' if exact else 'MISMATCH'})")
    return 0 if exact else 1


def cmd_sweep(args) -> int:
    print(format_table1())
    results = run_sweep()
    print()
    print(format_table2(results))
    for expression in EXPRESSIONS:
        print()
        print(format_fig_series(results, metric=args.metric,
                                expression=expression))
    ok, total = gpu_success_rate(results)
    print(f"\nGPU completed {ok} of {total} cases (paper: 106 of 144)")
    return 0


def cmd_render(args) -> int:
    from .host.visitsim import (GlobalArrayReader, Pipeline,
                                PythonExpressionFilter,
                                RectilinearDataset, save_ppm)
    grid = _parse_grid(args.grid)
    fields = make_fields(grid, seed=args.seed)

    def loader(_timestep):
        return RectilinearDataset(
            x=fields["x"], y=fields["y"], z=fields["z"],
            cell_fields={"u": fields["u"], "v": fields["v"],
                         "w": fields["w"]})

    engine = DerivedFieldEngine(device=args.device, strategy=args.strategy)
    expr_filter = PythonExpressionFilter(_expression(args), engine=engine)
    pipeline = Pipeline(GlobalArrayReader(loader), [expr_filter])
    image = pipeline.render(0, field=expr_filter.output_name,
                            axis=args.axis)
    save_ppm(image, args.output)
    print(f"wrote {image.shape[1]}x{image.shape[0]} pseudocolor of "
          f"{expr_filter.output_name!r} (axis {args.axis}) to "
          f"{args.output}")
    return 0


def cmd_plan(args) -> int:
    grid = (TABLE1_SUBGRIDS[args.table1_row - 1]
            if args.table1_row else _parse_grid(args.grid))
    name = args.expression
    if name not in EXPRESSIONS:
        raise SystemExit(
            f"plan needs a named paper expression: {sorted(EXPRESSIONS)}")
    result = run_case(name, grid, args.device, args.strategy)
    status = "FAILED (out of device global memory)" if result.failed \
        else "ok"
    print(f"{name} on {grid.label()} ({grid.n_cells:,} cells), "
          f"{args.device}/{args.strategy}: {status}")
    print(f"  device memory high-water: "
          f"{result.mem_high_water / GIB:.3f} GiB")
    if not result.failed:
        print(f"  modeled runtime: {result.runtime:.3f} s")
        print(f"  events: Dev-W={result.dev_writes} "
              f"Dev-R={result.dev_reads} K-Exe={result.kernel_execs}")
    return 1 if result.failed else 0


def cmd_serve(args) -> int:
    import json

    from .service import (build_service, default_cases,
                          format_load_report, run_load)

    devices = [d.strip() for d in args.devices.split(",") if d.strip()]
    for device in devices:
        if device not in ("cpu", "gpu"):
            raise SystemExit(f"bad --devices entry {device!r}; "
                             "expected a comma list of cpu/gpu")
    names = ([e.strip() for e in args.expressions.split(",") if e.strip()]
             if args.expressions else None)
    grid = _parse_grid(args.grid)
    fields = make_fields(grid, seed=args.seed)
    try:
        cases = default_cases(fields, names)
    except ValueError as exc:
        raise SystemExit(str(exc))

    # Observability (DESIGN.md §12): always on.  --trace-dir upgrades
    # the flight recorder to retain mode so it doubles as the full
    # tracer; --debug-bundle-dir arms tail-sampled debug bundles;
    # --log-jsonl streams the structured log.
    from .obs import Observability, StructuredLogger, set_logger
    obs = Observability(bundle_dir=args.debug_bundle_dir,
                        retain_trace=bool(args.trace_dir))
    log_stream = None
    if args.log_jsonl:
        log_stream = open(args.log_jsonl, "w")
        set_logger(StructuredLogger(level=args.log_level,
                                    stream=log_stream))
    elif args.log_level != "info":
        set_logger(StructuredLogger(level=args.log_level))
    tracer = obs.recorder

    metrics_server = None
    metrics_registry = None
    if args.metrics_port is not None:
        from .metrics import MetricsServer, get_registry
        # Re-base the service's metrics on the process registry so one
        # endpoint exposes service + engine + clsim families together.
        metrics_registry = get_registry()
        metrics_server = MetricsServer(metrics_registry,
                                       port=args.metrics_port).start()
        print(f"metrics on {metrics_server.url('/metrics')} "
              f"(Prometheus text) and "
              f"{metrics_server.url('/metrics.json')}")

    mode = "open" if args.open_loop else "closed"
    print(f"serving {sorted({c.name for c in cases})} over "
          f"{grid.n_cells:,} cells on devices {devices} "
          f"({args.strategy}), queue depth {args.queue_depth}, "
          f"max batch {args.max_batch}")
    try:
        with build_service(devices=devices, strategy=args.strategy,
                           queue_depth=args.queue_depth,
                           default_timeout=args.timeout,
                           backend=args.backend,
                           plan_cache_dir=args.plan_cache_dir,
                           max_batch=args.max_batch,
                           batch_window=args.batch_window,
                           tracer=tracer,
                           metrics_registry=metrics_registry,
                           obs=obs,
                           ) as service:
            if metrics_server is not None:
                # Health/debug surfaces ride the metrics listener.
                metrics_server.add_json_route("/healthz", service.health)
                metrics_server.add_json_route("/readyz",
                                              service.readiness)
                metrics_server.add_json_route("/debugz",
                                              service.debug_index)
                print(f"health on {metrics_server.url('/healthz')}, "
                      f"{metrics_server.url('/readyz')}, debug index "
                      f"on {metrics_server.url('/debugz')}")
            report = run_load(
                service, cases, clients=args.clients,
                requests=args.requests, mode=mode, rate_rps=args.rate,
                inject_deadline_miss=args.inject_deadline_miss)
            snapshot = service.snapshot()
    finally:
        if metrics_server is not None:
            metrics_server.close()
        if log_stream is not None:
            log_stream.close()
    print(format_load_report(report))
    if args.debug_bundle_dir and obs.bundles is not None:
        stats = obs.bundles.stats()
        print(f"debug bundles: {stats['written']} written under "
              f"{stats['root']} ({stats['skipped']} skipped)")
    if args.trace_dir:
        import os

        from .trace import format_profile, write_chrome_trace
        os.makedirs(args.trace_dir, exist_ok=True)
        trace_path = os.path.join(args.trace_dir, "trace.json")
        profile_path = os.path.join(args.trace_dir, "profile.txt")
        n_events = write_chrome_trace(tracer, trace_path)
        with open(profile_path, "w") as handle:
            handle.write(format_profile(tracer) + "\n")
        print(f"wrote {n_events} trace events to {trace_path} and the "
              f"phase profile to {profile_path}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump({"load": report, "metrics": snapshot}, handle,
                      indent=2)
        print(f"wrote load report + metrics snapshot to {args.json}")
    if report["dropped"]:
        print(f"ERROR: {report['dropped']} requests dropped on the floor",
              file=sys.stderr)
        return 1
    return 0


def cmd_top(args) -> int:
    from .obs.top import run_top
    return run_top(args.url, interval=args.interval, once=args.once)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Derived field generation framework "
                    "(SC 2012 reproduction)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("derive", help="evaluate an expression")
    _add_common(p)
    p.add_argument("expression",
                   help="expression text, or a named one: "
                        + ", ".join(EXPRESSIONS))
    p.add_argument("--show-kernels", action="store_true",
                   help="print the generated OpenCL C")
    p.add_argument("--verbose", "-v", action="store_true",
                   help="also print the executor backend, its cache "
                        "disposition, and plan-cache and allocator/pool "
                        "statistics for this run")
    _add_backend(p)
    p.add_argument("--trace", metavar="FILE",
                   help="trace this run (engine phases, strategy spans, "
                        "modeled device lanes) and write Chrome "
                        "trace-event JSON")
    p.add_argument("--profile", action="store_true",
                   help="print a per-phase self/total time profile of "
                        "this run")
    p.add_argument("--metrics", metavar="FILE",
                   help="dump the metrics-registry JSON snapshot "
                        "(allocator, event, plan-cache, engine-phase "
                        "families) after the run")
    p.set_defaults(fn=cmd_derive)

    p = sub.add_parser("check",
                       help="differentially validate generated OpenCL "
                            "against the vectorized execution")
    _add_common(p)
    p.add_argument("expression")
    p.set_defaults(fn=cmd_check)

    p = sub.add_parser("sweep", help="regenerate the evaluation tables")
    p.add_argument("--metric", choices=("runtime", "memory"),
                   default="runtime")
    p.set_defaults(fn=cmd_sweep)

    p = sub.add_parser("render", help="render a derived-field slice")
    _add_common(p)
    p.add_argument("expression")
    p.add_argument("--axis", type=int, default=2, choices=(0, 1, 2))
    p.add_argument("--output", default="derived.ppm")
    p.set_defaults(fn=cmd_render)

    p = sub.add_parser("serve",
                       help="run the concurrent service under synthetic "
                            "load and report latency/throughput")
    p.add_argument("--devices", default="cpu",
                   help="comma list of worker devices, e.g. cpu,gpu "
                        "(repeat a device for more workers)")
    p.add_argument("--strategy",
                   choices=("roundtrip", "staged", "fusion"),
                   default="fusion")
    p.add_argument("--clients", type=int, default=8,
                   help="closed-loop client threads (default 8)")
    p.add_argument("--requests", type=int, default=500,
                   help="total requests to issue (default 500)")
    p.add_argument("--queue-depth", type=int, default=64,
                   help="admission queue depth; beyond it requests are "
                        "rejected with backpressure (default 64)")
    p.add_argument("--timeout", type=float, default=None,
                   help="per-request deadline in seconds (default none)")
    p.add_argument("--max-batch", type=int, default=8,
                   help="coalesce up to this many queued same-plan "
                        "requests into one batched device launch "
                        "(1 disables micro-batching; default 8)")
    p.add_argument("--batch-window", type=float, default=0.0,
                   help="seconds the dispatcher may linger for same-plan "
                        "followers before launching a partial batch "
                        "(bounded by request deadlines; default 0)")
    p.add_argument("--open-loop", action="store_true",
                   help="submit the whole request stream without waiting "
                        "for outcomes (arrivals independent of service "
                        "speed; --clients is ignored)")
    p.add_argument("--rate", type=float, default=None, metavar="RPS",
                   help="pace open-loop arrivals at this rate "
                        "(default: as fast as possible)")
    p.add_argument("--expressions", default=None,
                   help="comma list of paper expressions to serve "
                        "(default: all three)")
    p.add_argument("--grid", default="16x16x32",
                   help="cell dims NIxNJxNK of the synthetic workload")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", metavar="FILE", default=None,
                   help="also write the load report and metrics snapshot "
                        "as JSON")
    p.add_argument("--trace-dir", metavar="DIR", default=None,
                   help="trace the whole run and write DIR/trace.json "
                        "(Chrome trace events) and DIR/profile.txt")
    p.add_argument("--metrics-port", type=int, default=None,
                   metavar="PORT",
                   help="serve live /metrics (Prometheus text), "
                        "/metrics.json, /healthz, /readyz, and /debugz "
                        "on this port for the duration of the run "
                        "(0 picks an ephemeral port)")
    p.add_argument("--debug-bundle-dir", metavar="DIR", default=None,
                   help="dump a self-contained debug bundle (trace, "
                        "report, plan, metrics, log slice) for every "
                        "anomalous request — failure, deadline miss, "
                        "cancellation, codegen fallback, p99 latency "
                        "outlier — under DIR")
    p.add_argument("--inject-deadline-miss", type=int, default=0,
                   metavar="N",
                   help="force the first N requests to miss their "
                        "deadline at the post-execution checkpoint "
                        "(deterministic fault injection for the obs "
                        "smoke test; default 0)")
    p.add_argument("--log-jsonl", metavar="FILE", default=None,
                   help="stream the correlated structured log (JSON "
                        "lines with trace ids) to FILE")
    p.add_argument("--log-level", default="info",
                   choices=("debug", "info", "warning", "error"),
                   help="structured-log level (default info)")
    _add_backend(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("top",
                       help="live terminal view of a serving process "
                            "(polls its /metrics.json endpoint)")
    p.add_argument("url",
                   help="base URL or /metrics.json endpoint of a "
                        "running `repro serve --metrics-port` process, "
                        "e.g. http://127.0.0.1:9100")
    p.add_argument("--interval", type=float, default=2.0,
                   help="poll interval in seconds (default 2)")
    p.add_argument("--once", action="store_true",
                   help="print one frame and exit (for scripts/CI)")
    p.set_defaults(fn=cmd_top)

    p = sub.add_parser("plan",
                       help="dry-run one full-scale configuration")
    _add_common(p)
    p.add_argument("expression")
    p.add_argument("--table1-row", type=int, choices=range(1, 13),
                   metavar="1..12",
                   help="use a Table I sub-grid instead of --grid")
    p.set_defaults(fn=cmd_plan)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
