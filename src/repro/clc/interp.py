"""Tree-walking interpreter for the OpenCL C subset.

Executes parsed translation units the way an OpenCL device would, one
work-item at a time: global buffers are NumPy arrays, by-value arguments
are scalars, vector values are 4-lane NumPy arrays, and ``get_global_id``
returns the current work-item index.

This is deliberately slow and simple — its job is *differential testing*:
the generated kernels must compute exactly what the vectorized NumPy
executors compute (see ``tests/clc/``), proving the emitted OpenCL C is
real code and not documentation.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from ..errors import ReproError
from . import ast

__all__ = ["CLCError", "Interpreter", "GlobalBuffer"]


class CLCError(ReproError):
    """Semantic error while interpreting OpenCL C."""


_SCALAR_DTYPES = {
    "double": np.float64, "float": np.float32,
    "int": np.int32, "long": np.int64, "size_t": np.int64,
}


@dataclass
class GlobalBuffer:
    """A __global pointer argument: array plus an element offset."""

    array: np.ndarray
    offset: int = 0

    def shifted(self, delta: int) -> "GlobalBuffer":
        return GlobalBuffer(self.array, self.offset + int(delta))

    def load(self, index: int):
        return self.array[self.offset + int(index)]

    def store(self, index: int, value) -> None:
        self.array[self.offset + int(index)] = value


@dataclass
class _Ref:
    """Address of a local variable (&x)."""

    env: dict
    name: str

    def load(self):
        return self.env[self.name]

    def store(self, value) -> None:
        self.env[self.name] = value


class _ReturnSignal(Exception):
    def __init__(self, value):
        self.value = value


def _as_bool(value) -> bool:
    if isinstance(value, np.ndarray):
        raise CLCError("vector value used as a condition")
    return bool(value)


def _vector_dtype(base: str):
    return _SCALAR_DTYPES[ast.TypeSpec(base).scalar_base]


class Interpreter:
    """Executes one translation unit."""

    _BUILTINS = {
        "sqrt": math.sqrt, "fabs": abs, "exp": math.exp,
        "log": math.log, "pow": math.pow,
        "fmin": min, "fmax": max,
        "sin": math.sin, "cos": math.cos,
    }

    def __init__(self, unit: ast.TranslationUnit):
        self.unit = unit
        self._functions = {fn.name: fn for fn in unit.functions}
        self._gid = 0

    # -- public ------------------------------------------------------------------

    def run_kernel(self, name: str, args, global_size: int) -> None:
        """Execute a ``__kernel`` over ``global_size`` work items.

        ``args`` match the kernel parameters positionally: NumPy arrays
        for ``__global`` pointers (mutated in place for outputs), plain
        scalars for by-value parameters.
        """
        kernel = self._functions.get(name)
        if kernel is None or not kernel.is_kernel:
            raise CLCError(f"no kernel named {name!r}")
        if len(args) != len(kernel.params):
            raise CLCError(
                f"kernel {name} takes {len(kernel.params)} arguments, "
                f"got {len(args)}")
        bound = []
        for param, value in zip(kernel.params, args):
            if param.type.pointer:
                if not isinstance(value, np.ndarray):
                    raise CLCError(
                        f"parameter {param.name} needs an array")
                bound.append(GlobalBuffer(value))
            else:
                bound.append(value)
        for gid in range(global_size):
            self._gid = gid
            env = {p.name: v for p, v in zip(kernel.params, bound)}
            try:
                self._exec_block(kernel.body, env)
            except _ReturnSignal:
                pass

    def call(self, name: str, args):
        """Call a helper function directly (for unit tests)."""
        return self._call_function(self._functions[name], list(args))

    # -- execution ------------------------------------------------------------------

    def _call_function(self, fn: ast.Function, args):
        if len(args) != len(fn.params):
            raise CLCError(
                f"{fn.name} takes {len(fn.params)} arguments, "
                f"got {len(args)}")
        env = {p.name: a for p, a in zip(fn.params, args)}
        try:
            self._exec_block(fn.body, env)
        except _ReturnSignal as signal:
            return signal.value
        return None

    def _exec_block(self, block: ast.Block, env: dict) -> None:
        for statement in block.statements:
            self._exec(statement, env)

    def _exec(self, statement, env: dict) -> None:
        if isinstance(statement, ast.Declaration):
            for decl in statement.declarators:
                if decl.init is not None:
                    value = self._coerce(statement.type,
                                         self._eval(decl.init, env))
                elif statement.type.vector_width > 1:
                    value = np.zeros(statement.type.vector_width,
                                     dtype=_vector_dtype(statement.type.base))
                else:
                    value = _SCALAR_DTYPES.get(
                        statement.type.base, np.float64)(0)
                env[decl.name] = value
        elif isinstance(statement, ast.Assign):
            self._assign(statement.target,
                         self._eval(statement.value, env), env)
        elif isinstance(statement, ast.ExprStatement):
            self._eval(statement.expr, env)
        elif isinstance(statement, ast.Return):
            raise _ReturnSignal(
                None if statement.value is None
                else self._eval(statement.value, env))
        elif isinstance(statement, ast.Block):
            self._exec_block(statement, env)
        elif isinstance(statement, ast.If):
            if _as_bool(self._eval(statement.cond, env)):
                self._exec(statement.then, env)
            elif statement.otherwise is not None:
                self._exec(statement.otherwise, env)
        else:  # pragma: no cover - grammar is closed
            raise CLCError(f"cannot execute {type(statement).__name__}")

    def _assign(self, target, value, env: dict) -> None:
        if isinstance(target, ast.Var):
            env[target.name] = value
        elif isinstance(target, ast.Index):
            base = self._eval(target.base, env)
            index = self._eval(target.index, env)
            if not isinstance(base, GlobalBuffer):
                raise CLCError("indexed assignment needs a global pointer")
            base.store(index, value)
        elif isinstance(target, ast.Member):
            vector = self._eval(target.base, env)
            vector[_component(target.name)] = value
        elif isinstance(target, ast.Deref):
            ref = self._eval(target.operand, env)
            if isinstance(ref, _Ref):
                ref.store(value)
            elif isinstance(ref, GlobalBuffer):
                ref.store(0, value)
            else:
                raise CLCError("dereferencing a non-pointer")
        else:
            raise CLCError(
                f"invalid assignment target {type(target).__name__}")

    # -- expression evaluation ---------------------------------------------------------

    def _eval(self, node, env: dict):
        method = getattr(self, f"_eval_{type(node).__name__.lower()}")
        return method(node, env)

    def _eval_intlit(self, node, env):
        return node.value

    def _eval_floatlit(self, node, env):
        return node.value

    def _eval_var(self, node, env):
        try:
            return env[node.name]
        except KeyError:
            raise CLCError(f"undefined variable {node.name!r}") from None

    def _eval_unary(self, node, env):
        value = self._eval(node.operand, env)
        if node.op == "-":
            return -value
        if node.op == "!":
            return 0 if _as_bool(value) else 1
        raise CLCError(f"unary {node.op}")  # pragma: no cover

    def _eval_binary(self, node, env):
        op = node.op
        if op == "&&":
            return 1 if (_as_bool(self._eval(node.left, env))
                         and _as_bool(self._eval(node.right, env))) else 0
        if op == "||":
            return 1 if (_as_bool(self._eval(node.left, env))
                         or _as_bool(self._eval(node.right, env))) else 0
        left = self._eval(node.left, env)
        right = self._eval(node.right, env)
        if isinstance(left, GlobalBuffer):
            if op == "+":
                return left.shifted(right)
            if op == "-":
                return left.shifted(-right)
            raise CLCError(f"pointer arithmetic {op}")
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, (int, np.integer)) and \
                    isinstance(right, (int, np.integer)):
                return int(left) // int(right) if right else 0
            return left / right
        if op == "%":
            return int(left) % int(right)
        if op == "<":
            return 1 if left < right else 0
        if op == ">":
            return 1 if left > right else 0
        if op == "<=":
            return 1 if left <= right else 0
        if op == ">=":
            return 1 if left >= right else 0
        if op == "==":
            return 1 if left == right else 0
        if op == "!=":
            return 1 if left != right else 0
        raise CLCError(f"binary {op}")  # pragma: no cover

    def _eval_ternary(self, node, env):
        if _as_bool(self._eval(node.cond, env)):
            return self._eval(node.then, env)
        return self._eval(node.otherwise, env)

    def _coerce(self, type_spec: ast.TypeSpec, value):
        if type_spec.pointer:
            return value
        if type_spec.vector_width > 1:
            dtype = _vector_dtype(type_spec.base)
            if isinstance(value, np.ndarray):
                return value.astype(dtype, copy=True)
            return np.full(type_spec.vector_width, value, dtype=dtype)
        dtype = _SCALAR_DTYPES.get(type_spec.base)
        return dtype(value) if dtype is not None else value

    def _eval_cast(self, node, env):
        return self._coerce(node.type, self._eval(node.operand, env))

    def _eval_vectorconstruct(self, node, env):
        dtype = _vector_dtype(node.type.base)
        values = [self._eval(c, env) for c in node.components]
        if len(values) != node.type.vector_width:
            raise CLCError(
                f"{node.type.base} constructor needs "
                f"{node.type.vector_width} components, got {len(values)}")
        return np.array(values, dtype=dtype)

    def _eval_call(self, node, env):
        args = [self._eval(a, env) for a in node.args]
        if node.name == "get_global_id":
            return self._gid
        builtin = self._BUILTINS.get(node.name)
        if builtin is not None:
            return builtin(*[float(a) for a in args])
        fn = self._functions.get(node.name)
        if fn is None:
            raise CLCError(f"undefined function {node.name!r}")
        return self._call_function(fn, args)

    def _eval_index(self, node, env):
        base = self._eval(node.base, env)
        index = self._eval(node.index, env)
        if isinstance(base, GlobalBuffer):
            return base.load(index)
        if isinstance(base, np.ndarray):
            return base[int(index)]
        raise CLCError("indexing a non-pointer")

    def _eval_member(self, node, env):
        vector = self._eval(node.base, env)
        if not isinstance(vector, np.ndarray):
            raise CLCError(f".{node.name} on a non-vector value")
        return vector[_component(node.name)]

    def _eval_addressof(self, node, env):
        if isinstance(node.operand, ast.Var):
            return _Ref(env, node.operand.name)
        raise CLCError("can only take the address of a variable")

    def _eval_deref(self, node, env):
        pointer = self._eval(node.operand, env)
        if isinstance(pointer, _Ref):
            return pointer.load()
        if isinstance(pointer, GlobalBuffer):
            return pointer.load(0)
        raise CLCError("dereferencing a non-pointer")

    def _eval_assign(self, node, env):
        value = self._eval(node.value, env)
        self._assign(node.target, value, env)
        return value


_COMPONENTS = {"s0": 0, "s1": 1, "s2": 2, "s3": 3,
               "x": 0, "y": 1, "z": 2, "w": 3}


def _component(name: str) -> int:
    try:
        return _COMPONENTS[name]
    except KeyError:
        raise CLCError(f"unknown vector component .{name}") from None
