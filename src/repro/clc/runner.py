"""Convenience runner: parse generated source and execute one kernel."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .cparser import parse_clc
from .interp import CLCError, Interpreter

__all__ = ["execute_kernel"]


def execute_kernel(source: str, kernel_name: str, args: Sequence,
                   global_size: int,
                   out_shapes: Optional[dict[int, tuple]] = None
                   ) -> list[np.ndarray]:
    """Parse ``source``, run ``kernel_name`` over ``global_size`` items.

    ``args`` are NumPy arrays for ``__global`` pointers (vector-typed
    arrays flattened internally: an ``(n, 4)`` array is addressed per
    element ``double4``) and scalars for by-value parameters.  Returns the
    argument list post-execution (outputs mutated in place).
    """
    unit = parse_clc(source)
    interp = Interpreter(unit)
    kernel = unit.function(kernel_name)
    prepared = []
    views = []
    for param, value in zip(kernel.params, list(args)):
        if isinstance(value, np.ndarray) and param.type.vector_width > 1:
            if value.ndim != 2 or value.shape[1] != param.type.vector_width:
                raise CLCError(
                    f"parameter {param.name} expects shape "
                    f"(n, {param.type.vector_width})")
            prepared.append(value)   # rows are the vector elements
        else:
            prepared.append(value)
        views.append(prepared[-1])
    interp.run_kernel(kernel_name, prepared, global_size)
    return views
