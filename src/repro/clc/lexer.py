"""Lexer for the OpenCL C subset, built on :mod:`repro.lexyacc`."""

from __future__ import annotations

from ..lexyacc import LexerSpec, TokenRule, build_lexer

__all__ = ["clc_lexer", "TYPE_NAMES"]

# The element/vector types the generators emit.
TYPE_NAMES = ("void", "double4", "double2", "float4", "float2",
              "double", "float", "int", "long", "size_t")

_KEYWORDS = {
    "if": "IF", "else": "ELSE", "return": "RETURN",
    "const": "CONST", "inline": "INLINE",
    "__kernel": "KERNEL", "__global": "GLOBAL",
    **{name: "TYPE" for name in TYPE_NAMES},
}


def _drop(_text: str):
    return None


_RULES = [
    TokenRule("BLOCK_COMMENT", r"/\*([^*]|\*[^/])*\*/", _drop),
    TokenRule("LINE_COMMENT", r"//[^\n]*", _drop),
    TokenRule("PRAGMA", r"#[^\n]*", _drop),
    TokenRule("FLOAT_LIT",
              r"(\d+\.\d*|\.\d+)([eE][+-]?\d+)?[fF]?|\d+[eE][+-]?\d+[fF]?",
              lambda s: float(s.rstrip("fF"))),
    TokenRule("INT_LIT", r"\d+[uUlL]*",
              lambda s: int(s.rstrip("uUlL"))),
    TokenRule("IDENT", r"[A-Za-z_]\w*", str),
    # multi-character operators before their prefixes
    TokenRule("LE", r"<="), TokenRule("GE", r">="),
    TokenRule("EQEQ", r"=="), TokenRule("NEQ", r"!="),
    TokenRule("ANDAND", r"&&"), TokenRule("OROR", r"\|\|"),
    TokenRule("LT", r"<"), TokenRule("GT", r">"),
    TokenRule("ASSIGN", r"="),
    TokenRule("PLUS", r"\+"), TokenRule("MINUS", r"-"),
    TokenRule("STAR", r"\*"), TokenRule("SLASH", r"/"),
    TokenRule("PERCENT", r"%"),
    TokenRule("AMP", r"&"), TokenRule("BANG", r"!"),
    TokenRule("QUESTION", r"\?"), TokenRule("COLON", r":"),
    TokenRule("LPAREN", r"\("), TokenRule("RPAREN", r"\)"),
    TokenRule("LBRACE", r"\{"), TokenRule("RBRACE", r"\}"),
    TokenRule("LBRACKET", r"\["), TokenRule("RBRACKET", r"\]"),
    TokenRule("COMMA", r","), TokenRule("SEMI", r";"),
    TokenRule("DOT", r"\."),
]

_SPEC = LexerSpec(_RULES, keywords=_KEYWORDS, identifier_rule="IDENT")


def clc_lexer():
    """Build the OpenCL C lexer (keywords promote IDENT to TYPE etc.)."""
    return build_lexer(_SPEC)
