"""AST for the OpenCL C subset the framework generates.

The subset covers everything the kernel generators emit: function
definitions (``inline`` helpers and ``__kernel`` entry points), local
declarations with initializers, assignments (including vector-component
and pointer-target forms), ``if``/``else``, ``return``, the conditional
operator, casts, vector constructors, array indexing, member access
(``.s0``..``.s3``), address-of, and calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

__all__ = [
    "IntLit", "FloatLit", "Var", "Unary", "Binary", "Ternary", "Cast",
    "VectorConstruct", "Call", "Index", "Member", "AddressOf", "Deref",
    "Expr", "Declaration", "Declarator", "Assign", "ExprStatement",
    "If", "Return", "Block", "Statement", "Param", "Function",
    "TranslationUnit", "TypeSpec",
]


@dataclass(frozen=True)
class TypeSpec:
    """A (possibly pointer, possibly vector) type."""

    base: str               # "double", "float4", "int", "void", ...
    pointer: bool = False
    is_global: bool = False
    const: bool = False

    @property
    def vector_width(self) -> int:
        return int(self.base[-1]) if self.base[-1].isdigit() else 1

    @property
    def scalar_base(self) -> str:
        return self.base.rstrip("0123456789")


@dataclass(frozen=True)
class IntLit:
    value: int


@dataclass(frozen=True)
class FloatLit:
    value: float


@dataclass(frozen=True)
class Var:
    name: str


@dataclass(frozen=True)
class Unary:
    op: str                 # '-', '!', '+'
    operand: "Expr"


@dataclass(frozen=True)
class Binary:
    op: str
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Ternary:
    cond: "Expr"
    then: "Expr"
    otherwise: "Expr"


@dataclass(frozen=True)
class Cast:
    type: TypeSpec
    operand: "Expr"


@dataclass(frozen=True)
class VectorConstruct:
    type: TypeSpec
    components: tuple["Expr", ...]


@dataclass(frozen=True)
class Call:
    name: str
    args: tuple["Expr", ...]


@dataclass(frozen=True)
class Index:
    base: "Expr"
    index: "Expr"


@dataclass(frozen=True)
class Member:
    base: "Expr"
    name: str               # s0..s3 (or x/y/z/w aliases)


@dataclass(frozen=True)
class AddressOf:
    operand: "Expr"


@dataclass(frozen=True)
class Deref:
    operand: "Expr"


Expr = Union[IntLit, FloatLit, Var, Unary, Binary, Ternary, Cast,
             VectorConstruct, Call, Index, Member, AddressOf, Deref]


@dataclass(frozen=True)
class Declarator:
    name: str
    init: Optional[Expr]


@dataclass(frozen=True)
class Declaration:
    type: TypeSpec
    declarators: tuple[Declarator, ...]


@dataclass(frozen=True)
class Assign:
    target: Expr            # Var, Index, Member, or Deref
    value: Expr


@dataclass(frozen=True)
class ExprStatement:
    expr: Expr


@dataclass(frozen=True)
class Return:
    value: Optional[Expr]


@dataclass(frozen=True)
class Block:
    statements: tuple["Statement", ...]


@dataclass(frozen=True)
class If:
    cond: Expr
    then: "Statement"
    otherwise: Optional["Statement"]


Statement = Union[Declaration, Assign, ExprStatement, Return, Block, If]


@dataclass(frozen=True)
class Param:
    type: TypeSpec
    name: str


@dataclass(frozen=True)
class Function:
    name: str
    return_type: TypeSpec
    params: tuple[Param, ...]
    body: Block
    is_kernel: bool


@dataclass(frozen=True)
class TranslationUnit:
    functions: tuple[Function, ...]

    def function(self, name: str) -> Function:
        for fn in self.functions:
            if fn.name == name:
                return fn
        raise KeyError(name)
