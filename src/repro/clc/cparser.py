"""Parser for the OpenCL C subset, generated with :mod:`repro.lexyacc`.

The grammar is a pruned C99: function definitions, declarations,
assignments, ``if``/``else``, ``return``, and a full expression ladder
(ternary, logical, equality, relational, additive, multiplicative, unary
with casts/address-of/dereference, postfix calls/indexing/member access).
Two classic C ambiguities appear and are resolved the yacc way:

* the dangling ``else`` binds to the nearest ``if`` (precedence);
* ``(type)(expr)`` after a cast prefers the parenthesized-expression
  shift, so ``(double4)(a, b, c, 0)`` parses as a vector constructor and
  ``(double)(x)`` as a cast.
"""

from __future__ import annotations

from functools import lru_cache

from ..errors import ParseError
from ..lexyacc import Grammar, LRParser, Precedence, Production
from . import ast
from .lexer import clc_lexer

__all__ = ["parse_clc", "clc_diagnostics"]


def _type_spec(base, *, pointer=False, is_global=False, const=False):
    return ast.TypeSpec(base=base, pointer=pointer, is_global=is_global,
                        const=const)


def _build_grammar() -> Grammar:
    P = Production

    def pass1(x):
        return x

    productions = [
        # --- translation unit -------------------------------------------------
        P("unit", ("fn_list",), lambda fns: ast.TranslationUnit(tuple(fns))),
        P("fn_list", ("function",), lambda f: [f]),
        P("fn_list", ("fn_list", "function"),
          lambda fns, f: fns + [f]),

        # --- functions --------------------------------------------------------
        P("function", ("INLINE", "TYPE", "IDENT", "LPAREN", "params",
                       "RPAREN", "block"),
          lambda _i, rtype, name, _l, params, _r, body: ast.Function(
              name, _type_spec(rtype), tuple(params), body, False)),
        P("function", ("KERNEL", "TYPE", "IDENT", "LPAREN", "params",
                       "RPAREN", "block"),
          lambda _k, rtype, name, _l, params, _r, body: ast.Function(
              name, _type_spec(rtype), tuple(params), body, True)),

        P("params", (), lambda: []),
        P("params", ("param_list",), pass1),
        P("param_list", ("param",), lambda p: [p]),
        P("param_list", ("param_list", "COMMA", "param"),
          lambda ps, _c, p: ps + [p]),
        P("param", ("quals", "TYPE", "stars", "IDENT"),
          lambda quals, base, stars, name: ast.Param(
              _type_spec(base, pointer=stars > 0,
                         is_global="global" in quals,
                         const="const" in quals), name)),
        P("quals", (), lambda: frozenset()),
        P("quals", ("GLOBAL", "quals"),
          lambda _g, rest: rest | {"global"}),
        P("quals", ("CONST", "quals"),
          lambda _c, rest: rest | {"const"}),
        P("stars", (), lambda: 0),
        P("stars", ("STAR",), lambda _s: 1),

        # --- statements -------------------------------------------------------
        P("block", ("LBRACE", "stmts", "RBRACE"),
          lambda _l, stmts, _r: ast.Block(tuple(stmts))),
        P("stmts", (), lambda: []),
        P("stmts", ("stmts", "stmt"), lambda ss, s: ss + [s]),

        P("stmt", ("declaration",), pass1),
        P("stmt", ("expr", "SEMI"), lambda e, _s: (
            e if isinstance(e, ast.Assign) else ast.ExprStatement(e))),
        P("stmt", ("RETURN", "expr", "SEMI"),
          lambda _r, e, _s: ast.Return(e)),
        P("stmt", ("RETURN", "SEMI"), lambda _r, _s: ast.Return(None)),
        P("stmt", ("block",), pass1),
        P("stmt", ("IF", "LPAREN", "expr", "RPAREN", "stmt"),
          lambda _i, _l, cond, _r, then: ast.If(cond, then, None),
          prec="THEN"),
        P("stmt", ("IF", "LPAREN", "expr", "RPAREN", "stmt", "ELSE",
                   "stmt"),
          lambda _i, _l, cond, _r, then, _e, other:
          ast.If(cond, then, other)),

        P("declaration", ("decl_quals", "TYPE", "init_list", "SEMI"),
          lambda quals, base, decls, _s: ast.Declaration(
              _type_spec(base, const="const" in quals), tuple(decls))),
        P("decl_quals", (), lambda: frozenset()),
        P("decl_quals", ("CONST", "decl_quals"),
          lambda _c, rest: rest | {"const"}),
        P("init_list", ("init_decl",), lambda d: [d]),
        P("init_list", ("init_list", "COMMA", "init_decl"),
          lambda ds, _c, d: ds + [d]),
        P("init_decl", ("IDENT",), lambda n: ast.Declarator(n, None)),
        P("init_decl", ("IDENT", "ASSIGN", "cond"),
          lambda n, _a, e: ast.Declarator(n, e)),

        # --- expressions (C ladder) --------------------------------------------
        P("expr", ("cond",), pass1),
        P("expr", ("unary", "ASSIGN", "expr"),
          lambda target, _a, value: ast.Assign(target, value)),

        P("cond", ("or_expr",), pass1),
        P("cond", ("or_expr", "QUESTION", "expr", "COLON", "cond"),
          lambda c, _q, a, _c, b: ast.Ternary(c, a, b)),

        P("or_expr", ("and_expr",), pass1),
        P("or_expr", ("or_expr", "OROR", "and_expr"),
          lambda a, _o, b: ast.Binary("||", a, b)),
        P("and_expr", ("eq_expr",), pass1),
        P("and_expr", ("and_expr", "ANDAND", "eq_expr"),
          lambda a, _o, b: ast.Binary("&&", a, b)),

        P("eq_expr", ("rel_expr",), pass1),
        P("eq_expr", ("eq_expr", "EQEQ", "rel_expr"),
          lambda a, _o, b: ast.Binary("==", a, b)),
        P("eq_expr", ("eq_expr", "NEQ", "rel_expr"),
          lambda a, _o, b: ast.Binary("!=", a, b)),

        P("rel_expr", ("add_expr",), pass1),
        P("rel_expr", ("rel_expr", "LT", "add_expr"),
          lambda a, _o, b: ast.Binary("<", a, b)),
        P("rel_expr", ("rel_expr", "GT", "add_expr"),
          lambda a, _o, b: ast.Binary(">", a, b)),
        P("rel_expr", ("rel_expr", "LE", "add_expr"),
          lambda a, _o, b: ast.Binary("<=", a, b)),
        P("rel_expr", ("rel_expr", "GE", "add_expr"),
          lambda a, _o, b: ast.Binary(">=", a, b)),

        P("add_expr", ("mul_expr",), pass1),
        P("add_expr", ("add_expr", "PLUS", "mul_expr"),
          lambda a, _o, b: ast.Binary("+", a, b)),
        P("add_expr", ("add_expr", "MINUS", "mul_expr"),
          lambda a, _o, b: ast.Binary("-", a, b)),

        P("mul_expr", ("unary",), pass1),
        P("mul_expr", ("mul_expr", "STAR", "unary"),
          lambda a, _o, b: ast.Binary("*", a, b)),
        P("mul_expr", ("mul_expr", "SLASH", "unary"),
          lambda a, _o, b: ast.Binary("/", a, b)),
        P("mul_expr", ("mul_expr", "PERCENT", "unary"),
          lambda a, _o, b: ast.Binary("%", a, b)),

        P("unary", ("postfix",), pass1),
        P("unary", ("MINUS", "unary"),
          lambda _o, e: ast.Unary("-", e)),
        P("unary", ("PLUS", "unary"), lambda _o, e: e),
        P("unary", ("BANG", "unary"),
          lambda _o, e: ast.Unary("!", e)),
        P("unary", ("AMP", "unary"),
          lambda _o, e: ast.AddressOf(e)),
        P("unary", ("STAR", "unary"),
          lambda _o, e: ast.Deref(e)),
        # casts; "(T)(a, b, ...)" is the vector-constructor form
        P("unary", ("LPAREN", "TYPE", "RPAREN", "unary"),
          lambda _l, base, _r, e: ast.Cast(_type_spec(base), e)),
        P("unary", ("LPAREN", "TYPE", "RPAREN", "LPAREN", "args",
                    "RPAREN"),
          lambda _l, base, _r, _l2, args, _r2: (
              ast.Cast(_type_spec(base), args[0]) if len(args) == 1
              else ast.VectorConstruct(_type_spec(base), tuple(args)))),

        P("postfix", ("primary",), pass1),
        P("postfix", ("postfix", "LBRACKET", "expr", "RBRACKET"),
          lambda base, _l, index, _r: ast.Index(base, index)),
        P("postfix", ("postfix", "DOT", "IDENT"),
          lambda base, _d, name: ast.Member(base, name)),
        P("postfix", ("IDENT", "LPAREN", "args", "RPAREN"),
          lambda name, _l, args, _r: ast.Call(name, tuple(args))),
        P("postfix", ("IDENT", "LPAREN", "RPAREN"),
          lambda name, _l, _r: ast.Call(name, ())),

        P("args", ("expr",), lambda e: [e]),
        P("args", ("args", "COMMA", "expr"),
          lambda args, _c, e: args + [e]),

        P("primary", ("IDENT",), lambda n: ast.Var(n)),
        P("primary", ("INT_LIT",), lambda v: ast.IntLit(int(v))),
        P("primary", ("FLOAT_LIT",), lambda v: ast.FloatLit(float(v))),
        P("primary", ("LPAREN", "expr", "RPAREN"),
          lambda _l, e, _r: e),
    ]
    precedence = [
        Precedence("nonassoc", ("THEN",)),
        Precedence("nonassoc", ("ELSE",)),
    ]
    return Grammar(productions, "unit", precedence)


@lru_cache(maxsize=1)
def _machinery():
    return clc_lexer(), LRParser(_build_grammar())


def parse_clc(source: str) -> ast.TranslationUnit:
    """Parse an OpenCL C translation unit into its AST."""
    lexer, parser = _machinery()
    unit = parser.parse(lexer.tokens(source))
    if not isinstance(unit, ast.TranslationUnit):  # pragma: no cover
        raise ParseError("no functions in translation unit")
    return unit


def clc_diagnostics() -> dict:
    _, parser = _machinery()
    return {
        "states": parser.table.n_states,
        "conflicts": parser.table.conflicts,
        "resolutions": len(parser.table.resolutions),
    }
