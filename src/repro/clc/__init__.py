"""OpenCL C subset front-end and interpreter.

Built on the project's own :mod:`repro.lexyacc` toolkit, this package
parses and *executes* the OpenCL C the kernel generators emit, enabling
differential testing of the generated source against the NumPy executors
that back the simulated device (``tests/clc/``).
"""

from .cparser import clc_diagnostics, parse_clc
from .interp import CLCError, GlobalBuffer, Interpreter
from .runner import execute_kernel

__all__ = ["parse_clc", "clc_diagnostics", "CLCError", "GlobalBuffer",
           "Interpreter", "execute_kernel"]
