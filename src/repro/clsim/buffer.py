"""Device global-memory buffers, the tracking allocator, and the pool.

The paper's memory study (Fig 6) measures "the maximum amount of global
device memory reserved for OpenCL buffers during execution" by having the
environment interface track every buffer request.  :class:`Allocator` does
exactly that: it refuses allocations beyond the device's global memory
(the mechanism behind the M2050's failed test cases) and records the
high-water mark.

Buffers may be *dry*: allocated and tracked without backing storage.  The
full-scale paper grids (up to 2.6 GB per field) are planned this way, while
scaled-down runs attach real NumPy arrays.

:class:`BufferPool` is the warm-execution extension (PyOpenCL ships the
same idea as ``pyopencl.tools.MemoryPool``): released buffers park their
device reservation in a size-class free list instead of returning it to the
allocator, so a repeated execution of the same plan recycles reservations
rather than re-reserving them.  Pooling is opt-in — cold runs (every Fig 6
artifact) never see a pool, so their accounting is unchanged — and pooled
bytes are reported separately (``pooled_bytes``) so warm-run accounting
stays honest.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import CLInvalidOperation, CLOutOfMemoryError
from ..metrics import get_registry
from .device import DeviceSpec

__all__ = ["Buffer", "Allocator", "BufferPool", "AllocationStats"]


@dataclass(frozen=True)
class AllocationStats:
    """Observable allocator + pool counters for one device context.

    ``total_allocations`` counts real reservations (identical to the cold
    path); ``reused_allocations`` counts buffer requests satisfied from the
    pool without touching the allocator.  ``pooled_bytes`` is device memory
    currently parked in the pool — still reserved on the device, but not
    held by any live buffer.
    """

    total_allocations: int
    reused_allocations: int
    current_bytes: int
    peak_bytes: int
    pooled_bytes: int
    pool_hits: int
    pool_misses: int
    pool_returns: int

    @property
    def live_bytes(self) -> int:
        """Bytes held by live buffers (reserved minus pooled)."""
        return self.current_bytes - self.pooled_bytes


class Allocator:
    """Tracks global-memory consumption of one simulated device context."""

    def __init__(self, device: DeviceSpec, registry=None):
        self.device = device
        self.current_bytes = 0
        self.peak_bytes = 0
        self.total_allocations = 0
        self.reused_allocations = 0
        # Registry mirror (DESIGN.md §9): per-device allocated-bytes and
        # peak-bytes gauges plus a reservation counter.  Children are
        # bound once here; per-device gauges reflect the most recently
        # active allocator on that device label (one warm engine per
        # device in every supported deployment).  ``registry`` overrides
        # the process-wide registry — codegen's capture environment
        # passes NULL_REGISTRY so rehearsal runs stay unmetered.
        if registry is None:
            registry = get_registry()
        device_label = {"device": device.name}
        self._m_allocated = registry.gauge(
            "repro_clsim_allocated_bytes",
            "Device global memory currently reserved for buffers",
            ("device",)).labels(**device_label)
        self._m_peak = registry.gauge(
            "repro_clsim_peak_bytes",
            "High-water mark of reserved device global memory since the "
            "last instrumentation reset (the Fig 6 measure)",
            ("device",)).labels(**device_label)
        self._m_reservations = registry.counter(
            "repro_clsim_allocations_total",
            "Device buffer reservations served by the allocator",
            ("device",)).labels(**device_label)
        self._m_allocated.set(0)
        self._m_peak.set(0)

    def reserve(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise CLInvalidOperation(f"negative allocation: {nbytes}")
        if self.current_bytes + nbytes > self.device.global_mem_bytes:
            raise CLOutOfMemoryError(
                f"allocating {nbytes} B for {label!r} exceeds "
                f"{self.device.name} global memory "
                f"({self.current_bytes} B in use of "
                f"{self.device.global_mem_bytes} B)",
                requested=nbytes,
                available=self.device.global_mem_bytes - self.current_bytes,
            )
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.total_allocations += 1
        self._m_allocated.set(self.current_bytes)
        self._m_peak.set(self.peak_bytes)
        self._m_reservations.inc()

    def release(self, nbytes: int) -> None:
        if nbytes > self.current_bytes:
            raise CLInvalidOperation(
                f"releasing {nbytes} B but only {self.current_bytes} B in use")
        self.current_bytes -= nbytes
        self._m_allocated.set(self.current_bytes)

    @property
    def available_bytes(self) -> int:
        return self.device.global_mem_bytes - self.current_bytes

    def reset_peak(self) -> None:
        self.peak_bytes = self.current_bytes
        self._m_peak.set(self.peak_bytes)

    def note_external_peak(self, nbytes: int) -> None:
        """Raise the high-water mark to a peak modeled outside this
        allocator.  The compiled executor backend never allocates device
        buffers on a warm launch; it reports the peak its interpreter
        rehearsal captured so Fig 6 accounting is unchanged."""
        if nbytes > self.peak_bytes:
            self.peak_bytes = nbytes
            self._m_peak.set(self.peak_bytes)

    def stats(self, pool: "BufferPool | None" = None) -> AllocationStats:
        return AllocationStats(
            total_allocations=self.total_allocations,
            reused_allocations=self.reused_allocations,
            current_bytes=self.current_bytes,
            peak_bytes=self.peak_bytes,
            pooled_bytes=pool.pooled_bytes if pool else 0,
            pool_hits=pool.hits if pool else 0,
            pool_misses=pool.misses if pool else 0,
            pool_returns=pool.returns if pool else 0,
        )


_MIN_CLASS = 64


def size_class(nbytes: int) -> int:
    """Round a request up to its pool size class (power of two, >= 64 B).

    Class binning is what lets slightly different request sizes share one
    free list; for warm re-execution of an identical plan the sizes repeat
    exactly, so every class is an exact hit after the first run.
    """
    if nbytes <= _MIN_CLASS:
        return _MIN_CLASS
    return 1 << (nbytes - 1).bit_length()


class BufferPool:
    """Size-class free list of parked device reservations.

    The pool never stores array data or :class:`Buffer` objects — only the
    byte reservations themselves — so a recycled buffer can never alias a
    previously released one.  A released pooled buffer keeps its bytes
    reserved on the device (they count against the OOM limit, exactly as a
    real ``MemoryPool`` would) until :meth:`trim` hands them back.

    Thread-safe: a single lock serializes park/acquire/trim and the
    counters, so pooled warm state can be shared by concurrent executions
    (the service's shared-engine path).  One reservation is handed to at
    most one acquirer by construction — the free-list decrement happens
    under the lock.
    """

    def __init__(self, allocator: Allocator, registry=None):
        self.allocator = allocator
        self._free: dict[int, int] = {}   # capacity -> parked reservations
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.returns = 0
        self.pooled_bytes = 0
        self.bytes_reused = 0
        # Registry mirror of the pool counters (hot on the warm path:
        # one hit + one return per recycled buffer per run).
        if registry is None:
            registry = get_registry()
        device_label = {"device": allocator.device.name}
        self._m_hits = registry.counter(
            "repro_clsim_pool_hits_total",
            "Buffer requests satisfied from the pool free list",
            ("device",)).labels(**device_label)
        self._m_misses = registry.counter(
            "repro_clsim_pool_misses_total",
            "Buffer requests that fell through to the allocator",
            ("device",)).labels(**device_label)
        self._m_returns = registry.counter(
            "repro_clsim_pool_returns_total",
            "Released buffers parked back into the pool",
            ("device",)).labels(**device_label)
        self._m_reused_bytes = registry.counter(
            "repro_clsim_pool_reused_bytes_total",
            "Reservation bytes recycled from the pool",
            ("device",)).labels(**device_label)
        self._m_pooled = registry.gauge(
            "repro_clsim_pooled_bytes",
            "Device memory currently parked in the pool free list",
            ("device",)).labels(**device_label)
        self._m_pooled.set(0)

    def capacity_for(self, nbytes: int) -> int:
        return size_class(nbytes)

    def acquire(self, nbytes: int, label: str = "", *,
                dry: bool = False) -> "Optional[Buffer]":
        """Return a recycled buffer for ``nbytes``, or None on a miss."""
        capacity = self.capacity_for(nbytes)
        with self._lock:
            if self._free.get(capacity, 0) > 0:
                self._free[capacity] -= 1
                self.pooled_bytes -= capacity
                self.hits += 1
                self.bytes_reused += capacity
                self.allocator.reused_allocations += 1
                self._m_hits.inc()
                self._m_reused_bytes.inc(capacity)
                self._m_pooled.set(self.pooled_bytes)
                return Buffer._adopt(self.allocator, nbytes,
                                     capacity=capacity, label=label,
                                     dry=dry, pool=self)
            self.misses += 1
            self._m_misses.inc()
            return None

    def _park(self, capacity: int) -> None:
        """Take back a released buffer's reservation (internal: called by
        :meth:`Buffer.release`)."""
        with self._lock:
            self._free[capacity] = self._free.get(capacity, 0) + 1
            self.pooled_bytes += capacity
            self.returns += 1
            self._m_returns.inc()
            self._m_pooled.set(self.pooled_bytes)

    def trim(self) -> int:
        """Release every parked reservation back to the allocator; returns
        the number of bytes freed."""
        with self._lock:
            freed = 0
            for capacity, count in self._free.items():
                for _ in range(count):
                    self.allocator.release(capacity)
                    freed += capacity
            self._free.clear()
            self.pooled_bytes = 0
            self._m_pooled.set(0)
            return freed


class Buffer:
    """A simulated ``cl.Buffer``.

    ``data`` is the device-side copy as a NumPy array, or ``None`` for a dry
    buffer.  Release is explicit (:meth:`release`) — the execution
    strategies free intermediates as reference counts drop, which is what
    produces their distinct memory footprints.

    ``capacity`` is the reserved byte count; it equals ``nbytes`` except
    for pooled buffers, whose reservations are rounded up to the pool's
    size class.  A pooled buffer's :meth:`release` parks the reservation in
    the pool instead of returning it to the allocator.
    """

    def __init__(self, allocator: Allocator, nbytes: int, *,
                 label: str = "", dry: bool = False,
                 capacity: Optional[int] = None,
                 pool: Optional[BufferPool] = None):
        capacity = nbytes if capacity is None else max(capacity, nbytes)
        allocator.reserve(capacity, label)
        self._setup(allocator, nbytes, capacity, label, dry, pool)

    @classmethod
    def _adopt(cls, allocator: Allocator, nbytes: int, *, capacity: int,
               label: str, dry: bool, pool: BufferPool) -> "Buffer":
        """Construct over an already-reserved pooled capacity (no
        allocator traffic — the pool hit path)."""
        buf = cls.__new__(cls)
        buf._setup(allocator, nbytes, capacity, label, dry, pool)
        return buf

    def _setup(self, allocator: Allocator, nbytes: int, capacity: int,
               label: str, dry: bool, pool: Optional[BufferPool]) -> None:
        self._allocator = allocator
        self.nbytes = nbytes
        self.capacity = capacity
        self.label = label
        self.dry = dry
        self._pool = pool
        self.data: Optional[np.ndarray] = None
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def set_data(self, array: np.ndarray) -> None:
        """Attach the device-side copy (host->device write)."""
        self._check_alive()
        if self.dry:
            return
        if array.nbytes != self.nbytes:
            raise CLInvalidOperation(
                f"buffer {self.label!r} is {self.nbytes} B but host array "
                f"is {array.nbytes} B")
        # Device memory is a distinct address space: always copy, never view,
        # so in-situ host arrays are never aliased by kernels.
        self.data = np.array(array, copy=True)

    def get_data(self) -> np.ndarray:
        """Return the device-side copy (device->host read)."""
        self._check_alive()
        if self.dry:
            raise CLInvalidOperation(
                f"buffer {self.label!r} is dry; no data to read")
        if self.data is None:
            raise CLInvalidOperation(
                f"buffer {self.label!r} read before any write")
        return self.data

    def release(self) -> None:
        """Return this buffer's bytes to the allocator — or park them in
        the pool when this context pools buffers (idempotent)."""
        if self._released:
            return
        self.data = None
        self._released = True
        if self._pool is not None:
            self._pool._park(self.capacity)
        else:
            self._allocator.release(self.capacity)

    def _check_alive(self) -> None:
        if self._released:
            raise CLInvalidOperation(
                f"operation on released buffer {self.label!r}")

    def __repr__(self) -> str:
        state = "released" if self._released else (
            "dry" if self.dry else "live")
        return f"Buffer({self.label!r}, {self.nbytes} B, {state})"
