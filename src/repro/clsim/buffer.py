"""Device global-memory buffers and the tracking allocator.

The paper's memory study (Fig 6) measures "the maximum amount of global
device memory reserved for OpenCL buffers during execution" by having the
environment interface track every buffer request.  :class:`Allocator` does
exactly that: it refuses allocations beyond the device's global memory
(the mechanism behind the M2050's failed test cases) and records the
high-water mark.

Buffers may be *dry*: allocated and tracked without backing storage.  The
full-scale paper grids (up to 2.6 GB per field) are planned this way, while
scaled-down runs attach real NumPy arrays.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import CLInvalidOperation, CLOutOfMemoryError
from .device import DeviceSpec

__all__ = ["Buffer", "Allocator"]


class Allocator:
    """Tracks global-memory consumption of one simulated device context."""

    def __init__(self, device: DeviceSpec):
        self.device = device
        self.current_bytes = 0
        self.peak_bytes = 0
        self.total_allocations = 0

    def reserve(self, nbytes: int, label: str = "") -> None:
        if nbytes < 0:
            raise CLInvalidOperation(f"negative allocation: {nbytes}")
        if self.current_bytes + nbytes > self.device.global_mem_bytes:
            raise CLOutOfMemoryError(
                f"allocating {nbytes} B for {label!r} exceeds "
                f"{self.device.name} global memory "
                f"({self.current_bytes} B in use of "
                f"{self.device.global_mem_bytes} B)",
                requested=nbytes,
                available=self.device.global_mem_bytes - self.current_bytes,
            )
        self.current_bytes += nbytes
        self.peak_bytes = max(self.peak_bytes, self.current_bytes)
        self.total_allocations += 1

    def release(self, nbytes: int) -> None:
        if nbytes > self.current_bytes:
            raise CLInvalidOperation(
                f"releasing {nbytes} B but only {self.current_bytes} B in use")
        self.current_bytes -= nbytes

    @property
    def available_bytes(self) -> int:
        return self.device.global_mem_bytes - self.current_bytes

    def reset_peak(self) -> None:
        self.peak_bytes = self.current_bytes


class Buffer:
    """A simulated ``cl.Buffer``.

    ``data`` is the device-side copy as a NumPy array, or ``None`` for a dry
    buffer.  Release is explicit (:meth:`release`) — the execution
    strategies free intermediates as reference counts drop, which is what
    produces their distinct memory footprints.
    """

    def __init__(self, allocator: Allocator, nbytes: int, *,
                 label: str = "", dry: bool = False):
        allocator.reserve(nbytes, label)
        self._allocator = allocator
        self.nbytes = nbytes
        self.label = label
        self.dry = dry
        self.data: Optional[np.ndarray] = None
        self._released = False

    @property
    def released(self) -> bool:
        return self._released

    def set_data(self, array: np.ndarray) -> None:
        """Attach the device-side copy (host->device write)."""
        self._check_alive()
        if self.dry:
            return
        if array.nbytes != self.nbytes:
            raise CLInvalidOperation(
                f"buffer {self.label!r} is {self.nbytes} B but host array "
                f"is {array.nbytes} B")
        # Device memory is a distinct address space: always copy, never view,
        # so in-situ host arrays are never aliased by kernels.
        self.data = np.array(array, copy=True)

    def get_data(self) -> np.ndarray:
        """Return the device-side copy (device->host read)."""
        self._check_alive()
        if self.dry:
            raise CLInvalidOperation(
                f"buffer {self.label!r} is dry; no data to read")
        if self.data is None:
            raise CLInvalidOperation(
                f"buffer {self.label!r} read before any write")
        return self.data

    def release(self) -> None:
        """Return this buffer's bytes to the allocator (idempotent)."""
        if self._released:
            return
        self._allocator.release(self.nbytes)
        self.data = None
        self._released = True

    def _check_alive(self) -> None:
        if self._released:
            raise CLInvalidOperation(
                f"operation on released buffer {self.label!r}")

    def __repr__(self) -> str:
        state = "released" if self._released else (
            "dry" if self.dry else "live")
        return f"Buffer({self.label!r}, {self.nbytes} B, {state})"
